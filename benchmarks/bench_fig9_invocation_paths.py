"""Figure 9: execution time under cold/warm/hot vs untrusted paths."""

from repro.experiments import fig9


def test_fig9_invocation_paths(benchmark):
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    print()
    print(fig9.format_report(result))
    mbnet = result["details"]["TVM-MBNET"]
    assert 15 < mbnet["cold"] / mbnet["hot"] < 27     # paper: ~21x
    assert 8 < mbnet["cold"] / mbnet["warm"] < 14     # paper: ~11x
