"""Table I: evaluation models and their runtime buffer sizes."""

from repro.experiments import table1


def test_table1_models(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print()
    print(table1.format_report(result))
    assert len(result["paper_rows"]) == 3
