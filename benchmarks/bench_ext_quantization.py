"""Extension: int8 weight quantization's effect on the serving path.

A quantized artifact is ~4x smaller, which shrinks the model-dependent
stages -- download and in-enclave decryption -- and therefore the warm
path.  The hot path is untouched (the decrypted model is already
resident).  The effect is largest on slow cloud storage (the paper's
Azure numbers).
"""

import dataclasses

from repro.core.simbridge import servable_map
from repro.experiments.common import (
    action_budget,
    make_driver,
    make_testbed,
    system_factory,
)
from repro.experiments.fig9 import _managed_seconds
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.serverless.storage import AZURE_BLOB
from repro.workloads.arrival import Arrival


def _quantized_profile(name: str):
    """The paper profile with the int8 artifact size (weights / 4)."""
    prof = profile(name)
    return dataclasses.replace(prof, model_bytes=prof.model_bytes // 4)


def warm_and_hot(model_name: str, quantized: bool):
    prof = _quantized_profile(model_name) if quantized else profile(model_name)
    bed = make_testbed(num_nodes=1, storage=AZURE_BLOB)
    models = servable_map([("m", prof, "tvm"), ("decoy", profile("MBNET"), "tvm")])
    budget = max(action_budget(m) for m in models.values())
    spec = ActionSpec(name="ep", image="semirt", memory_budget=budget, concurrency=1)
    bed.platform.deploy(spec, system_factory("SeSeMI", models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="m", user_id="u"),
            Arrival(time=100.0, model_id="decoy", user_id="u"),
            Arrival(time=120.0, model_id="m", user_id="u"),   # warm (reload)
            Arrival(time=140.0, model_id="m", user_id="u"),   # hot
        ]
    )
    by_time = sorted(driver.run(until=800).results, key=lambda r: r.submitted_at)
    return _managed_seconds(by_time[2]), _managed_seconds(by_time[3])


def test_ext_quantization(benchmark):
    def sweep():
        return {
            (name, quantized): warm_and_hot(name, quantized)
            for name in ("MBNET", "RSNET")
            for quantized in (False, True)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Extension -- int8 artifacts on Azure-tier storage (TVM)")
    print(f"{'config':>16s} {'warm (s)':>9s} {'hot (s)':>8s}")
    for (name, quantized), (warm, hot) in results.items():
        label = f"{name}-{'int8' if quantized else 'fp32'}"
        print(f"{label:>16s} {warm:9.3f} {hot:8.3f}")
    for name in ("MBNET", "RSNET"):
        warm_fp, hot_fp = results[(name, False)]
        warm_q, hot_q = results[(name, True)]
        assert warm_q < warm_fp * 0.8          # smaller download+decrypt
        assert abs(hot_q - hot_fp) < 0.01      # hot path unchanged
