"""Ablation: EPC size sweep -- where the bottleneck moves (SGX1 -> SGX2).

Section VII: "for SGX2 the performance bottleneck has shifted from
memory to CPU."  Sweeping the configured EPC between the two hardware
generations makes the crossover visible: below a few hundred MB, TFLM's
small buffers win; above, TVM's faster kernels win.
"""

from repro.core.simbridge import semirt_factory, servable_map
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.sgx.epc import GB, MB
from repro.sgx.platform import SGX2, profile_with_epc
from repro.workloads.arrival import fixed_rate
from repro.workloads.metrics import LatencyStats

EPC_SIZES = (128 * MB, 512 * MB, 64 * GB)
RATE_RPS = 10.0


def run_point(epc_bytes: int, framework: str) -> float:
    hardware = profile_with_epc(SGX2, epc_bytes)
    bed = make_testbed(num_nodes=1, hardware=hardware)
    models = servable_map([("m", profile("MBNET"), framework)])
    spec = ActionSpec(
        name="ep", image="semirt",
        memory_budget=action_budget(models["m"], tcs_count=4), concurrency=4,
    )
    bed.platform.deploy(spec, semirt_factory(models, bed.cost, tcs_count=4))
    driver = make_driver(bed)
    ramp = fixed_rate(2.0, 40.0, "m", "u")
    steady = [
        type(a)(time=a.time + 40.0, model_id="m", user_id="u")
        for a in fixed_rate(RATE_RPS, 120.0, "m", "u")
    ]
    driver.submit_arrivals(ramp + steady)
    report = driver.run(until=1200.0)
    measured = [r for r in report.results if r.submitted_at >= 100.0]
    return LatencyStats.of(measured).mean


def test_ablation_epc_sweep(benchmark):
    def sweep():
        return {
            (epc, fw): run_point(epc, fw)
            for epc in EPC_SIZES
            for fw in ("tvm", "tflm")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"Ablation -- EPC sweep, MBNET @ {RATE_RPS:.0f} rps, 4 threads")
    for epc in EPC_SIZES:
        label = f"{epc // MB}MB" if epc < GB else f"{epc // GB}GB"
        print(
            f"  EPC {label:>6s}: TVM {results[(epc, 'tvm')]:7.3f}s   "
            f"TFLM {results[(epc, 'tflm')]:7.3f}s"
        )
    # Memory-bound regime: TFLM wins under the SGX1-sized EPC.
    assert results[(128 * MB, "tflm")] < results[(128 * MB, "tvm")]
    # CPU-bound regime: TVM wins once the EPC stops mattering.
    assert results[(64 * GB, "tvm")] < results[(64 * GB, "tflm")]
    # The large-EPC latency equals the unpressured hot path.
    assert results[(64 * GB, "tvm")] < 0.15
