"""Ablation: decompose the Table II isolation overhead into its parts.

The strong-isolation build flips two switches at once: the key cache
and runtime reuse.  This ablation measures them separately, showing how
much of the overhead is the per-request key re-fetch vs. the runtime
re-initialisation -- a decomposition the paper does not report.
"""

from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival

CONFIGS = {
    "baseline": dict(key_cache=True, reuse_runtime=True),
    "no-key-cache": dict(key_cache=False, reuse_runtime=True),
    "no-runtime-reuse": dict(key_cache=True, reuse_runtime=False),
    "strong-isolation": dict(key_cache=False, reuse_runtime=False),
}


def steady_seconds(model_name: str, **flags) -> float:
    bed = make_testbed(num_nodes=1)
    models = servable_map([("m", profile(model_name), "tvm")])
    spec = ActionSpec(
        name="ep", image="semirt",
        memory_budget=action_budget(models["m"]), concurrency=1,
    )
    bed.platform.deploy(spec, semirt_factory(models, bed.cost, **flags))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [Arrival(time=20.0 * i, model_id="m", user_id="u") for i in range(4)]
    )
    report = driver.run(until=600)
    last = max(report.results, key=lambda r: r.submitted_at)
    return sum(v for k, v in last.stage_seconds.items() if k != "sandbox_init")


def test_ablation_key_cache(benchmark):
    def sweep():
        return {
            name: steady_seconds("RSNET", **flags)
            for name, flags in CONFIGS.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation -- isolation knobs, steady-state TVM-RSNET request (ms)")
    for name, seconds in results.items():
        print(f"  {name:18s} {seconds * 1000:9.2f}")
    base = results["baseline"]
    key_only = results["no-key-cache"] - base
    runtime_only = results["no-runtime-reuse"] - base
    both = results["strong-isolation"] - base
    print(
        f"  decomposition: key re-fetch +{key_only * 1000:.0f}ms, "
        f"runtime re-init +{runtime_only * 1000:.0f}ms, "
        f"combined +{both * 1000:.0f}ms"
    )
    assert key_only > 0 and runtime_only > 0
    # The two costs are roughly additive.
    assert abs(both - (key_only + runtime_only)) < 0.2 * both
