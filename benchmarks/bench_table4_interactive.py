"""Table IV: interactive-session latency per model per strategy."""

from repro.experiments import table34


def test_table4_interactive(benchmark):
    result = benchmark.pedantic(
        table34.run, kwargs={"duration_s": 480.0}, rounds=1, iterations=1
    )
    print()
    print(table34.format_report(result))
    one = result["One-to-one"]["sessions"]
    packer = result["FnPacker"]["sessions"]
    allinone = result["All-in-one"]["sessions"]
    # Session 1: One-to-one pays a cold start for each of m2, m3, m4 ...
    for model in ("m2", "m3", "m4"):
        assert one[(1, model)] > 3.0, model
    # ... FnPacker cold-starts only the first infrequent model.
    assert packer[(1, "m2")] > 3.0
    assert packer[(1, "m3")] < 3.0
    assert packer[(1, "m4")] < 3.0
    # All-in-one avoids colds (warm switches) but pays them everywhere.
    for model in ("m2", "m3", "m4"):
        assert allinone[(1, model)] < one[(1, model)], model
    # Session 2 reuses session-1 sandboxes: no cold starts anywhere.
    for sessions in (one, packer, allinone):
        for model in ("m0", "m1", "m2", "m3", "m4"):
            assert sessions[(2, model)] < 3.0, model
