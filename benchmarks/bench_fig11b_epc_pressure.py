"""Figure 11b: latency under EPC pressure (SGX1), 1 vs 4 threads."""

from repro.experiments import fig11


def test_fig11b_epc_pressure(benchmark):
    series = benchmark.pedantic(fig11.run_epc_bound, rounds=1, iterations=1)
    print()
    print("Figure 11b -- latency under 128MB EPC (MBNET, SGX1)")
    for label, rows in series.items():
        rendered = "  ".join(f"{n}:{latency:.3f}s" for n, latency in rows)
        print(f"  {label:8s} {rendered}")
    last = {label: rows[-1][1] for label, rows in series.items()}
    assert last["TVM-4"] < last["TVM-1"]
    assert last["TFLM-4"] < last["TFLM-1"]
    assert last["TFLM-4"] < last["TVM-4"]
