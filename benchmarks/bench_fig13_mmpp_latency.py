"""Figure 13: multi-node MMPP latency (Native / Iso-reuse / SeSeMI)."""

from repro.experiments import fig13


def test_fig13_mmpp_latency(benchmark):
    result = benchmark.pedantic(
        fig13.run_latency,
        kwargs={"model_name": "DSNET", "duration_s": 240.0},
        rounds=1, iterations=1,
    )
    print()
    print("Figure 13 -- MMPP 20<->40 rps on 8 nodes, TVM-DSNET")
    print("Paper: Iso-reuse 3.35s vs SeSeMI 0.64s (81% better); Native worse.")
    for system, data in result.items():
        stats = data["stats"]
        print(f"  {system:10s} mean={stats.mean:8.3f}s p95={stats.p95:8.3f}s")
        series = "  ".join(f"{int(t)}s:{v:.2f}" for t, v in data["timeline"][:8])
        print(f"             timeline {series}")
    assert result["SeSeMI"]["stats"].mean < result["Iso-reuse"]["stats"].mean
    assert result["SeSeMI"]["stats"].mean < result["Native"]["stats"].mean
    assert result["SeSeMI"]["stats"].mean < 1.5  # paper: 0.64s


def test_fig13_rsnet(benchmark):
    result = benchmark.pedantic(
        fig13.run_latency,
        kwargs={
            "model_name": "RSNET",
            "duration_s": 180.0,
            "systems": ("Iso-reuse", "SeSeMI"),
        },
        rounds=1, iterations=1,
    )
    print()
    print("Figure 13 -- MMPP on 8 nodes, TVM-RSNET (paper: 12.54s vs 8.28s)")
    for system, data in result.items():
        print(f"  {system:10s} mean={data['stats'].mean:8.3f}s")
    assert result["SeSeMI"]["stats"].mean < result["Iso-reuse"]["stats"].mean
