"""Figure 16: remote attestation overhead vs concurrent quotes."""

from repro.experiments import fig15


def test_fig16_attestation(benchmark):
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    print()
    quote = result["quote"]
    for hw, rows in quote.items():
        print(f"Figure 16 ({hw}):")
        for n, quote_s, round_s in rows:
            print(f"  concurrent={n:3d} quote={quote_s:.3f}s  quote+verify={round_s:.3f}s")
    dcap = {n: t for n, t, _ in quote["sgx2"]}
    epid = {n: t for n, t, _ in quote["sgx1"]}
    assert dcap[1] < 0.1            # paper: <0.1s at 1 enclave
    assert 0.8 < dcap[16] < 1.2     # paper: ~1s at 16
    assert epid[1] > dcap[1]        # EPID pays the IAS round trip
