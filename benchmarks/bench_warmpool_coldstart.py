"""Warm-pool policies: cold-start elimination and scale-to-zero.

The four fleet policies (no keep-alive, LCS, MRU, LCS+predictive)
serve the Table III Poisson mix and the Figure 13 MMPP trace through
the real :class:`~repro.warmpool.WarmPoolManager` in virtual time.
Asserted floors mirror the CI gates: predictive LCS cuts the
cold-start ratio by at least
:data:`~repro.experiments.warmpool.REDUCTION_GATE` versus no
keep-alive, and the janitor shrinks an idle fleet to ``min_warm``.
"""

from repro.experiments import warmpool


def test_warmpool_coldstart(benchmark):
    result = benchmark.pedantic(
        warmpool.run, kwargs={"duration_s": 240.0}, rounds=1, iterations=1
    )
    print()
    print(warmpool.format_report(result))
    assert result["reduction"] >= warmpool.REDUCTION_GATE
    assert result["scale_to_zero"]["scaled_to_floor"]
    # keep-alive alone must already beat the no-keep-alive baseline on
    # both workloads; predictive must never be worse than plain LCS
    for workload in warmpool.WORKLOADS:
        rows = result["workloads"][workload]
        assert rows["lcs"]["cold_ratio"] < rows["none"]["cold_ratio"] / 3
        assert (
            rows["lcs+predictive"]["cold"] <= rows["lcs"]["cold"]
        )
