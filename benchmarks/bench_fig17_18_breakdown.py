"""Figures 17/18: execution-time breakdown with vs without SGX."""

import pytest

from repro.experiments import fig17


def test_fig17_18_breakdown(benchmark):
    result = benchmark.pedantic(fig17.run, rounds=1, iterations=1)
    print()
    print(fig17.format_report(result))
    for label, shared_sgx, shared_plain, overhead in result["rows"]:
        # The stages shared with the plain path barely differ (64GB EPC).
        assert shared_sgx == pytest.approx(shared_plain, rel=0.05), label
        # The TEE overhead is dominated by enclave init + attestation.
        details = result["details"][label]["sgx"]
        trust = details.get("enclave_init", 0) + details.get("key_retrieval", 0)
        assert trust / overhead > 0.8, label
