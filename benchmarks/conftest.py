"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation through :mod:`repro.experiments` and prints the paper-style
rows.  ``pytest benchmarks/ --benchmark-only`` runs them all; add ``-s``
to see the rendered tables inline.
"""

collect_ignore_glob: list = []
