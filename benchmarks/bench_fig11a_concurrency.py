"""Figure 11a: latency vs concurrent executions (CPU bound, SGX2)."""

from repro.experiments import fig11


def test_fig11a_concurrency(benchmark):
    rows = benchmark.pedantic(fig11.run_cpu_bound, rounds=1, iterations=1)
    print()
    print("Figure 11a -- latency vs concurrency (TVM-RSNET, SGX2, 12 cores)")
    for n, latency in rows:
        print(f"  concurrency={n:3d}  mean latency={latency:.3f}s")
    by_n = dict(rows)
    assert by_n[16] > by_n[12]  # knee past the physical core count
