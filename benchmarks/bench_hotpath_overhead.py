"""Hot-path per-request overhead: codec, cipher, and key-memo caches.

Two users alternate on one shared host.  The legacy lane reproduces
the seed request path -- canonical-JSON frames, a fresh AES-GCM
context per client call, and the paper's single-entry key cache --
while the fast lane runs the shipped default: binary wire frames,
cached session ciphers, and the multi-entry SeMIRT key memo.  The
asserted floor mirrors the ``hotpath-bench`` CI gate
(:data:`~repro.experiments.hotpath.SPEEDUP_GATE`).
"""

from repro.experiments import hotpath


def test_hotpath_overhead(benchmark):
    result = benchmark.pedantic(
        hotpath.run, kwargs={"requests": 60}, rounds=1, iterations=1
    )
    print()
    print(hotpath.format_report(result))
    assert result["speedup"] >= hotpath.SPEEDUP_GATE
    # the micro-sections must each show their own win: binary framing
    # beats hex-doubled JSON, and the derived cipher beats per-call
    # construction
    assert result["codec_micro"]["speedup"] > 1.0
    assert result["crypto_micro"]["speedup"] > 1.0
