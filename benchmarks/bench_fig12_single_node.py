"""Figure 12: single-node serving with hot invocations (rate sweeps)."""

from repro.experiments import fig12


def test_fig12_single_node(benchmark):
    result = benchmark.pedantic(fig12.run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(fig12.format_report(result))
    # 12a: at 40 rps offered, Native's goodput collapses while SeSeMI and
    # Iso-reuse keep up with offered load (MBNET, SGX2).
    mbnet = {(row[0], row[1]): row[2] for row in result["mbnet"]}
    assert mbnet[("Native", 40)] < 15.0
    assert mbnet[("SeSeMI", 40)] > 38.0
    assert mbnet[("Iso-reuse", 40)] > 38.0
    # 12b: SeSeMI sustains a higher RSNET rate than Iso-reuse.
    rsnet = {(row[0], row[1]): row[2] for row in result["rsnet"]}
    assert rsnet[("SeSeMI", 8)] > rsnet[("Iso-reuse", 8)]
    # 12c/d: TFLM-4 sustains the highest rate under the 128MB EPC.
    sgx1 = {(row[0], row[1]): row[2] for row in result["sgx1"]}
    top_rate = max(rate for _, rate in sgx1)
    assert sgx1[("TFLM-4", top_rate)] > sgx1[("TVM-4", top_rate)]
    assert sgx1[("TFLM-4", top_rate)] > sgx1[("TVM-1", top_rate)]
