"""Ablation: sensitivity of FnPacker to its exclusivity idle interval.

DESIGN.md section 7.  FnPacker reclaims an exclusive endpoint for other
models after `idle_interval_s` of quiet.  Too small and the popular
models lose their endpoints to session traffic (interference returns);
too large and the session models cannot pack onto warm endpoints.  The
paper fixes a single interval; this ablation sweeps it.
"""

from repro.experiments.table34 import run_strategy

INTERVALS = (1.0, 10.0, 60.0)


def test_ablation_fnpacker_interval(benchmark):
    def sweep():
        return {
            interval: run_strategy(
                "FnPacker", duration_s=480.0, idle_interval_s=interval
            )
            for interval in INTERVALS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation -- FnPacker idle interval (TVM-RSNET pool)")
    print(f"{'interval':>9s} {'poisson avg (ms)':>17s} {'session m3 (ms)':>16s} {'colds':>6s}")
    for interval, data in results.items():
        m3 = data["sessions"].get((1, "m3"))
        print(
            f"{interval:9.0f} {data['poisson_stats'].mean * 1000:17.1f} "
            f"{(m3 or 0) * 1000:16.0f} {data['cold_starts']:6d}"
        )
    # The mid-range interval must keep the popular models un-interfered.
    baseline = results[10.0]["poisson_stats"].mean
    assert results[60.0]["poisson_stats"].mean < baseline * 1.5
    # Packing still works at 10s: m3 rides a warm endpoint in session 1.
    assert results[10.0]["sessions"][(1, "m3")] < 3.0
