"""Extension: hot-path request batching (beyond the paper).

Above the unbatched CPU ceiling, executing same-user hot requests as
batches amortises framework overhead and raises sustainable throughput
-- the BATCH/MArk idea, applied inside SeSeMI's one-user-per-enclave
security rule.
"""

from repro.core.batching import BatchPolicy, batching_semirt_factory
from repro.core.simbridge import servable_map
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival, fixed_rate

CONCURRENCY = 64
OFFERED_RPS = 16.0


def completion_rate(window_s: float) -> float:
    models = servable_map([("m", profile("RSNET"), "tvm")])
    budget = action_budget(models["m"], tcs_count=CONCURRENCY)
    bed = make_testbed(num_nodes=1, node_memory=budget)
    spec = ActionSpec(
        name="ep", image="semirt", memory_budget=budget, concurrency=CONCURRENCY
    )
    bed.platform.deploy(
        spec,
        batching_semirt_factory(
            models, bed.cost, tcs_count=CONCURRENCY,
            policy=BatchPolicy(batch_window_s=window_s, max_batch=8),
        ),
    )
    driver = make_driver(bed)
    ramp = fixed_rate(2.0, 30.0, "m", "u")
    steady = [
        Arrival(time=a.time + 30.0, model_id="m", user_id="u")
        for a in fixed_rate(OFFERED_RPS, 120.0, "m", "u")
    ]
    driver.submit_arrivals(list(ramp) + steady)
    report = driver.run(until=3000)
    done = [r for r in report.results if 60.0 <= r.finished_at < 150.0]
    return len(done) / 90.0


def test_ext_batching(benchmark):
    def sweep():
        return {w: completion_rate(w) for w in (0.0, 0.1, 0.25)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"Extension -- batching, TVM-RSNET @ {OFFERED_RPS:.0f} rps offered, 12 cores")
    for window, rate in results.items():
        print(f"  batch window {window * 1000:4.0f}ms -> {rate:5.2f} completions/s")
    assert results[0.0] < 13.0           # the unbatched CPU ceiling
    assert results[0.25] > results[0.0] * 1.2
