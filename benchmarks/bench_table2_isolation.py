"""Table II: overhead of stronger isolation on hot invocations."""

import pytest

from repro.experiments import table2


def test_table2_isolation(benchmark):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    print()
    print(table2.format_report(result))
    for label, without, with_iso, slowdown, p_without, p_with in result["rows"]:
        assert slowdown > 1.2, label
        # Within 35% of the paper's measured slowdown factor per model.
        assert slowdown == pytest.approx(p_with / p_without, rel=0.35), label
