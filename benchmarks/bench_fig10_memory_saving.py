"""Figure 10: enclave memory saving with concurrent execution."""

from repro.experiments import fig10


def test_fig10_memory_saving(benchmark):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    print()
    print(fig10.format_report(result))
    label, saving = result["peak"]
    assert label == "TFLM-RSNET" and saving > 0.75  # paper: 86.2%
