"""Ablation: storage tier (cluster NFS vs Azure Blob) on the warm path.

Section VI-A argues hot invocations matter *more* with real cloud
storage: a warm invocation re-downloads the model, which costs ~180ms
(MBNET) to ~2.1s (RSNET) on in-region Azure Blob.  This ablation runs
warm and hot invocations against both storage profiles.
"""

from repro.experiments import fig9
from repro.experiments.common import make_testbed
from repro.serverless.storage import AZURE_BLOB, NFS


def _paths(model, storage):
    import repro.experiments.fig9 as fig9_module
    from repro.core.simbridge import servable_map
    from repro.experiments.common import action_budget, make_driver, system_factory
    from repro.mlrt.zoo import profile
    from repro.serverless.action import ActionSpec
    from repro.workloads.arrival import Arrival

    bed = make_testbed(num_nodes=1, storage=storage)
    models = servable_map(
        [("m", profile(model), "tvm"), ("decoy", profile("MBNET"), "tvm")]
    )
    budget = max(action_budget(m) for m in models.values())
    spec = ActionSpec(name="ep", image="semirt", memory_budget=budget, concurrency=1)
    bed.platform.deploy(spec, system_factory("SeSeMI", models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="m", user_id="u"),
            Arrival(time=100.0, model_id="decoy", user_id="u"),
            Arrival(time=120.0, model_id="m", user_id="u"),   # warm
            Arrival(time=140.0, model_id="m", user_id="u"),   # hot
        ]
    )
    by_time = sorted(driver.run(until=600).results, key=lambda r: r.submitted_at)
    managed = lambda r: sum(v for k, v in r.stage_seconds.items() if k != "sandbox_init")
    return managed(by_time[2]), managed(by_time[3])


def test_ablation_storage_tier(benchmark):
    def sweep():
        out = {}
        for model in ("MBNET", "RSNET"):
            for name, storage in (("nfs", NFS), ("azure", AZURE_BLOB)):
                out[(model, name)] = _paths(model, storage)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation -- storage tier effect on warm vs hot invocations (TVM)")
    print(f"{'config':>14s} {'warm (s)':>9s} {'hot (s)':>8s} {'warm/hot':>9s}")
    for (model, tier), (warm, hot) in results.items():
        print(f"{model + '/' + tier:>14s} {warm:9.3f} {hot:8.3f} {warm / hot:9.1f}")
    # Azure makes the warm path dramatically worse; the hot path is immune.
    for model in ("MBNET", "RSNET"):
        warm_nfs, hot_nfs = results[(model, "nfs")]
        warm_azure, hot_azure = results[(model, "azure")]
        assert warm_azure > warm_nfs * 1.5
        assert abs(hot_azure - hot_nfs) / hot_nfs < 0.05
