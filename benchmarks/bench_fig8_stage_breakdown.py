"""Figure 8: latency ratio of serving stages for cold invocations."""

from repro.experiments import fig8


def test_fig8_stage_breakdown(benchmark):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    print()
    print(fig8.format_report(result))
    # The paper's headline: enclave init + key fetch dominate TVM colds.
    for label, details in result["details"].items():
        if label.startswith("TVM"):
            fractions = details["fractions"]
            assert fractions.get("enclave_init", 0) + fractions.get(
                "key_retrieval", 0
            ) > 0.6, label
