"""Figure 15: enclave initialisation overhead vs concurrent launches."""

import pytest

from repro.experiments import fig15


def test_fig15_enclave_init(benchmark):
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    print()
    print(fig15.format_report(result))
    sgx2 = {(size, n): t for size, n, t in result["init"]["sgx2"]}
    assert sgx2[(256, 16)] == pytest.approx(4.06, rel=0.05)  # appendix anchor
    sgx1 = {(size, n): t for size, n, t in result["init"]["sgx1"]}
    # SGX1 grows much faster: launching 16x128MB overcommits the EPC.
    assert sgx1[(128, 16)] / sgx1[(128, 1)] > sgx2[(128, 16)] / sgx2[(128, 1)]
