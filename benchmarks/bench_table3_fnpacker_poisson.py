"""Table III: FnPacker vs All-in-one / One-to-one under Poisson traffic."""

from repro.experiments import table34


def test_table3_fnpacker_poisson(benchmark):
    result = benchmark.pedantic(
        table34.run, kwargs={"duration_s": 480.0}, rounds=1, iterations=1
    )
    print()
    print(table34.format_report(result))
    means = {name: data["poisson_stats"].mean for name, data in result.items()}
    # Paper: All-in-one 1700.50ms vs ~1456/1466ms -- a >= 10% penalty from
    # model-switch interference, with FnPacker matching One-to-one.
    assert means["All-in-one"] > 1.10 * means["One-to-one"]
    assert abs(means["FnPacker"] - means["One-to-one"]) < 0.15 * means["One-to-one"]
