"""Figure 14: memory GB-seconds under MMPP, 1- vs 4-thread enclaves."""

from repro.experiments import fig13


def test_fig14_memory_cost(benchmark):
    results = benchmark.pedantic(
        fig13.run_memory_cost,
        kwargs={"model_name": "DSNET", "duration_s": 240.0},
        rounds=1, iterations=1,
    )
    print()
    print("Figure 14 -- GB-seconds, TVM-DSNET (paper: 3543 -> 1459, -59%)")
    for threads, data in results.items():
        print(
            f"  TVM-DSNET-{threads}: {data['gb_seconds']:9.1f} GB-s  "
            f"mean latency {data['stats'].mean:.3f}s"
        )
    reduction = 1 - results[4]["gb_seconds"] / results[1]["gb_seconds"]
    print(f"  reduction with 4 threads: {reduction:.0%}")
    assert 0.3 < reduction < 0.8  # paper: 59%


def test_fig14_rsnet(benchmark):
    results = benchmark.pedantic(
        fig13.run_memory_cost,
        kwargs={"model_name": "RSNET", "duration_s": 180.0},
        rounds=1, iterations=1,
    )
    print()
    print("Figure 14 -- GB-seconds, TVM-RSNET (paper: 2273 -> 1179, -48%)")
    reduction = 1 - results[4]["gb_seconds"] / results[1]["gb_seconds"]
    for threads, data in results.items():
        print(f"  TVM-RSNET-{threads}: {data['gb_seconds']:9.1f} GB-s")
    print(f"  reduction with 4 threads: {reduction:.0%}")
    assert 0.25 < reduction < 0.75  # paper: 48%
