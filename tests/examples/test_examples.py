"""Every example script must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "confidential inference works",
    "healthcare_ehr.py": "access revoked",
    "multi_model_serving.py": "takeaway",
    "epc_pressure_study.py": "bottleneck moved",
    "trace_replay.py": "takeaway",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)
