"""Discrete-event simulation core: events, processes, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulation


def test_timeout_advances_clock(sim):
    def proc(sim):
        yield sim.timeout(5.0)
        return sim.now

    assert sim.run_process(proc(sim)) == 5.0


def test_zero_timeout_allowed(sim):
    def proc(sim):
        yield sim.timeout(0.0)
        return "done"

    assert sim.run_process(proc(sim)) == "done"


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order(sim):
    log = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        log.append(name)

    sim.process(proc(sim, "late", 10))
    sim.process(proc(sim, "early", 1))
    sim.process(proc(sim, "middle", 5))
    sim.run()
    assert log == ["early", "middle", "late"]


def test_simultaneous_events_fifo(sim):
    log = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        sim.process(proc(sim, name))
    sim.run()
    assert log == ["a", "b", "c"]


def test_run_until_stops_clock(sim):
    def proc(sim):
        yield sim.timeout(100.0)

    sim.process(proc(sim))
    assert sim.run(until=10.0) == 10.0
    assert sim.now == 10.0


def test_process_return_value(sim):
    def proc(sim):
        yield sim.timeout(1)
        return {"answer": 42}

    assert sim.run_process(proc(sim)) == {"answer": 42}


def test_process_waits_on_manual_event(sim):
    gate = sim.event()
    result = []

    def waiter(sim):
        value = yield gate
        result.append((value, sim.now))

    def trigger(sim):
        yield sim.timeout(3)
        gate.succeed("go")

    sim.process(waiter(sim))
    sim.process(trigger(sim))
    sim.run()
    assert result == [("go", 3.0)]


def test_event_failure_raises_in_waiter(sim):
    gate = sim.event()

    def waiter(sim):
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    proc = sim.process(waiter(sim))
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert proc.value == "caught boom"


def test_uncaught_process_exception_propagates(sim):
    def broken(sim):
        yield sim.timeout(1)
        raise ValueError("bug")

    proc = sim.process(broken(sim))
    sim.run()
    assert proc.triggered
    with pytest.raises(ValueError):
        _ = proc.value


def test_double_trigger_rejected(sim):
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_yielding_non_event_is_an_error(sim):
    def bad(sim):
        yield 42

    proc = sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_every_event(sim):
    def worker(sim, delay):
        yield sim.timeout(delay)
        return delay

    def supervisor(sim):
        procs = [sim.process(worker(sim, d)) for d in (3, 1, 2)]
        values = yield sim.all_of(procs)
        return (values, sim.now)

    values, when = sim.run_process(supervisor(sim))
    assert values == [3, 1, 2]
    assert when == 3.0


def test_all_of_empty(sim):
    def proc(sim):
        values = yield sim.all_of([])
        return values

    assert sim.run_process(proc(sim)) == []


def test_deadlock_detected_by_run_process(sim):
    gate = sim.event()  # never triggered

    def stuck(sim):
        yield gate

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(stuck(sim))


def test_chained_processes(sim):
    def inner(sim):
        yield sim.timeout(2)
        return "inner-done"

    def outer(sim):
        result = yield sim.process(inner(sim))
        return f"outer saw {result}"

    assert sim.run_process(outer(sim)) == "outer saw inner-done"


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulation()
        log = []

        def proc(sim, name, delay):
            yield sim.timeout(delay)
            log.append((name, sim.now))

        for i in range(20):
            sim.process(proc(sim, f"p{i}", (i * 7) % 5 + 0.5))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
