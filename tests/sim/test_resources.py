"""Resources and stores: capacity, FIFO, conservation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.core import Simulation
from repro.sim.resources import Resource, Store


def test_capacity_enforced(sim):
    cores = Resource(sim, capacity=2)
    finish_times = {}

    def worker(sim, name):
        claim = cores.request()
        yield claim
        try:
            yield sim.timeout(1.0)
            finish_times[name] = sim.now
        finally:
            cores.release(claim)

    for i in range(4):
        sim.process(worker(sim, i))
    sim.run()
    assert finish_times == {0: 1.0, 1: 1.0, 2: 2.0, 3: 2.0}


def test_fifo_admission(sim):
    gate = Resource(sim, capacity=1)
    order = []

    def worker(sim, name, arrive):
        yield sim.timeout(arrive)
        claim = gate.request()
        yield claim
        try:
            order.append(name)
            yield sim.timeout(10.0)
        finally:
            gate.release(claim)

    for i, arrive in enumerate((0.0, 1.0, 2.0, 3.0)):
        sim.process(worker(sim, i, arrive))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_invalid_capacity():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_release_without_request_rejected(sim):
    resource = Resource(sim, capacity=1)
    claim = resource.request()
    resource.release(claim)
    with pytest.raises(SimulationError):
        resource.release(claim)


def test_release_wrong_resource_rejected(sim):
    a, b = Resource(sim, 1), Resource(sim, 1)
    claim = a.request()
    with pytest.raises(SimulationError):
        b.release(claim)


def test_queue_length_visible(sim):
    resource = Resource(sim, capacity=1)
    resource.request()
    resource.request()
    resource.request()
    assert resource.in_use == 1
    assert resource.queue_length == 2


def test_store_fifo(sim):
    box = Store(sim)
    received = []

    def consumer(sim):
        for _ in range(3):
            item = yield box.get()
            received.append(item)

    def producer(sim):
        for item in ("a", "b", "c"):
            yield sim.timeout(1)
            box.put(item)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert received == ["a", "b", "c"]


def test_store_buffers_when_no_getter(sim):
    box = Store(sim)
    box.put(1)
    box.put(2)
    assert len(box) == 2

    def consumer(sim):
        first = yield box.get()
        second = yield box.get()
        return (first, second)

    assert sim.run_process(consumer(sim)) == (1, 2)


def test_store_getters_served_in_order(sim):
    box = Store(sim)
    log = []

    def consumer(sim, name):
        item = yield box.get()
        log.append((name, item))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))

    def producer(sim):
        yield sim.timeout(1)
        box.put("x")
        box.put("y")

    sim.process(producer(sim))
    sim.run()
    assert log == [("first", "x"), ("second", "y")]


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 4),
    durations=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=15),
)
def test_resource_conservation_property(capacity, durations):
    """Never more than `capacity` workers hold the resource at once."""
    sim = Simulation()
    resource = Resource(sim, capacity=capacity)
    active = {"count": 0, "peak": 0}

    def worker(sim, hold):
        claim = resource.request()
        yield claim
        active["count"] += 1
        active["peak"] = max(active["peak"], active["count"])
        try:
            yield sim.timeout(hold)
        finally:
            active["count"] -= 1
            resource.release(claim)

    for hold in durations:
        sim.process(worker(sim, hold))
    sim.run()
    assert active["count"] == 0
    assert active["peak"] <= capacity
    assert resource.in_use == 0
