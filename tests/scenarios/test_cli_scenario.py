"""The ``repro scenario`` command group, end to end through main()."""

import json

import pytest

from repro.cli import main
from repro.scenarios import get_scenario

SMOKE = "scenario-smoke"


def _run_smoke(tmp_path, *extra):
    return main(["scenario", "run", SMOKE, "--store", str(tmp_path), *extra])


def test_scenario_run_persists_manifest(tmp_path, capsys):
    assert _run_smoke(tmp_path) == 0
    out = capsys.readouterr().out
    run_id = get_scenario(SMOKE).run_id
    assert run_id in out
    manifest = json.loads((tmp_path / run_id / "manifest.json").read_text())
    assert manifest["scenario"] == SMOKE
    assert manifest["metrics"]["summary"]


def test_scenario_run_twice_is_byte_identical(tmp_path, capsys):
    run_id = get_scenario(SMOKE).run_id
    assert _run_smoke(tmp_path) == 0
    first = (tmp_path / run_id / "manifest.json").read_bytes()
    assert _run_smoke(tmp_path) == 0
    assert (tmp_path / run_id / "manifest.json").read_bytes() == first
    capsys.readouterr()


def test_scenario_run_json_prints_manifest(tmp_path, capsys):
    assert _run_smoke(tmp_path, "--json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run_id"] == get_scenario(SMOKE).run_id


def test_scenario_run_spec_file_seed_and_set(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(get_scenario(SMOKE).to_json())
    code = main([
        "scenario", "run", str(spec_path), "--store", str(tmp_path / "s"),
        "--seed", "7", "--set", "workload.duration_s=20",
    ])
    assert code == 0
    run_id = (tmp_path / "s").iterdir().__next__().name
    manifest = json.loads(
        (tmp_path / "s" / run_id / "manifest.json").read_text()
    )
    assert manifest["seed"] == 7
    assert manifest["spec"]["workload"]["duration_s"] == 20.0
    capsys.readouterr()


def test_scenario_run_no_save(tmp_path, capsys):
    store = tmp_path / "never"
    assert _run_smoke(store, "--no-save") == 0
    assert not store.exists()
    assert "not saved" in capsys.readouterr().out


def test_scenario_run_errors_return_2(tmp_path, capsys):
    assert main(["scenario", "run", "fig99", "--store", str(tmp_path)]) == 2
    assert "no scenario named" in capsys.readouterr().err
    assert _run_smoke(tmp_path, "--set", "nonsense") == 2
    assert "PATH=VALUE" in capsys.readouterr().err
    assert _run_smoke(tmp_path, "--set", "workload.teleport=1") == 2
    assert "unknown spec path" in capsys.readouterr().err


def test_scenario_list(tmp_path, capsys):
    assert main(["scenario", "list", "--store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert SMOKE in out and "no stored runs" in out
    assert _run_smoke(tmp_path) == 0
    capsys.readouterr()
    assert main(["scenario", "list", "--store", str(tmp_path)]) == 0
    assert get_scenario(SMOKE).run_id in capsys.readouterr().out


def test_scenario_compare(tmp_path, capsys):
    assert _run_smoke(tmp_path) == 0
    assert _run_smoke(tmp_path, "--seed", "7") == 0
    capsys.readouterr()
    a, b = sorted(
        p.name for p in tmp_path.iterdir() if (p / "manifest.json").is_file()
    )
    assert main(["scenario", "compare", a, b, "--store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "spec differences:" in out and "seed" in out
    assert main([
        "scenario", "compare", a, b, "--store", str(tmp_path), "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run_a"] == a and payload["run_b"] == b
    assert ["seed", 2025, 7] in payload["spec"]
    assert main([
        "scenario", "compare", a, "missing-s0-x", "--store", str(tmp_path),
    ]) == 2


def test_scenario_report(tmp_path, capsys):
    assert _run_smoke(tmp_path) == 0
    out_md = tmp_path / "runs.md"
    assert main([
        "scenario", "report", "--store", str(tmp_path), "--out", str(out_md),
    ]) == 0
    text = out_md.read_text()
    assert text.startswith("# Scenario runs")
    assert get_scenario(SMOKE).run_id in text
    capsys.readouterr()
    assert main(["scenario", "report", "--store", str(tmp_path)]) == 0
    assert "# Scenario runs" in capsys.readouterr().out


def test_scenario_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["scenario"])
