"""ScenarioSpec: validation, round-trips, identity, derivation."""

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    FaultSpec,
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
)


def _spec(**overrides) -> ScenarioSpec:
    base = dict(name="t", executor="sim")
    base.update(overrides)
    return ScenarioSpec(**base)


def test_defaults_validate():
    spec = _spec()
    assert spec.workload.shape == "poisson"
    assert spec.fleet.sweep_systems() == ("SeSeMI",)
    assert spec.policy.sweep_routers() == ("direct",)
    assert spec.faults is None


@pytest.mark.parametrize("bad", [
    dict(name=""),
    dict(name="has space"),
    dict(name="has/slash"),
    dict(executor="kubernetes"),
])
def test_scenario_validation(bad):
    with pytest.raises(ConfigError):
        _spec(**bad)


def test_executor_prerequisites():
    with pytest.raises(ConfigError):
        _spec(executor="chaos")  # no fault spec
    with pytest.raises(ConfigError):
        _spec(executor="chaos", faults=FaultSpec())  # wrong shape
    with pytest.raises(ConfigError):
        _spec(executor="warmpool")  # no warm policies
    with pytest.raises(ConfigError):
        _spec(executor="hotpath")  # needs the requests shape
    with pytest.raises(ConfigError):
        _spec(executor="streaming")  # needs the requests shape
    with pytest.raises(ConfigError):
        _spec(  # needs a continuous batch to compare against solo
            executor="streaming",
            workload=WorkloadSpec(shape="requests", requests=2),
        )
    ok_stream = _spec(
        executor="streaming",
        workload=WorkloadSpec(shape="requests", requests=2),
        policy=PolicySpec(max_batch=2),
    )
    assert ok_stream.executor == "streaming"
    ok = _spec(
        executor="chaos",
        faults=FaultSpec(),
        workload=WorkloadSpec(shape="requests", requests=4),
    )
    assert ok.executor == "chaos"


@pytest.mark.parametrize("kwargs", [
    dict(shape="teleport"),
    dict(shape="poisson", rate_rps=0.0),
    dict(shape="mmpp", rates_rps=()),
    dict(shape="mmpp", rates_rps=(5.0,), phase_s=0.0),
    dict(shape="diurnal", rate_rps=2.0, base_rps=3.0),
    dict(shape="requests", requests=0),
    dict(duration_s=0.0),
    dict(warmup_s=10.0, warmup_rate_rps=0.0),
    dict(timeline_bucket_s=0.0),
    dict(horizon_s=-1.0),
])
def test_workload_validation(kwargs):
    with pytest.raises(ConfigError):
        WorkloadSpec(**kwargs)


def test_workload_arrival_seed_override():
    assert WorkloadSpec().arrival_seed(2025) == 2025
    assert WorkloadSpec(seed=11).arrival_seed(2025) == 11


@pytest.mark.parametrize("kwargs", [
    dict(num_nodes=0),
    dict(hardware="sgx3"),
    dict(system="Kubernetes"),
    dict(systems=("SeSeMI", "Kubernetes")),
    dict(framework="onnx"),
])
def test_fleet_validation(kwargs):
    with pytest.raises(ConfigError):
        FleetSpec(**kwargs)


def test_fault_sweep_points():
    faults = FaultSpec(sweep=(
        {"wire_rate": 0.0},
        {"wire_rate": 0.15, "crash_rate": 0.04},
    ))
    points = faults.points()
    assert [p.wire_rate for p in points] == [0.0, 0.15]
    assert points[1].crash_rate == 0.04
    assert all(p.sweep == () for p in points)
    # a spec without a sweep is its own single point
    assert FaultSpec(wire_rate=0.1).points()[0].wire_rate == 0.1


def test_fault_sweep_rejects_unknown_and_invalid_overrides():
    with pytest.raises(ConfigError):
        FaultSpec(sweep=({"teleport_rate": 0.5},))
    with pytest.raises(ConfigError):
        FaultSpec(sweep=({"wire_rate": 2.0},))  # re-validated per point


@pytest.mark.parametrize("kwargs", [
    dict(router="hash-ring"),
    dict(warm_policies=("lcs", "psychic")),
    dict(resilience="mostly"),
    dict(alpha=0.0),
    dict(max_endpoints=0),
])
def test_policy_validation(kwargs):
    with pytest.raises(ConfigError):
        PolicySpec(**kwargs)


def test_policy_sweeps():
    policy = PolicySpec(routers=("All-in-one", "FnPacker"))
    assert policy.sweep_routers() == ("All-in-one", "FnPacker")
    assert PolicySpec(resilience="both").resilience_modes() == (
        "resilient", "baseline",
    )
    assert PolicySpec(resilience="baseline").resilience_modes() == ("baseline",)


def test_round_trip_json_preserves_identity():
    spec = _spec(
        workload=WorkloadSpec(shape="mmpp", rates_rps=(20.0, 40.0),
                              warmup_s=60.0, warmup_rate_rps=20.0),
        faults=None,
        notes="round trip",
    )
    clone = ScenarioSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.run_id == spec.run_id


def test_round_trip_with_faults_restores_tuples():
    spec = _spec(
        executor="chaos",
        workload=WorkloadSpec(shape="requests", requests=8),
        faults=FaultSpec(sweep=({"wire_rate": 0.1},)),
    )
    clone = ScenarioSpec.from_dict(spec.to_dict())
    assert clone.faults.points()[0].wire_rate == 0.1
    assert clone == spec


def test_from_dict_rejects_unknown_fields():
    data = _spec().to_dict()
    data["color"] = "blue"
    with pytest.raises(ConfigError):
        ScenarioSpec.from_dict(data)
    nested = _spec().to_dict()
    nested["workload"]["teleport"] = True
    with pytest.raises(ConfigError):
        ScenarioSpec.from_dict(nested)


def test_run_id_shape_and_sensitivity():
    spec = _spec(seed=7)
    assert spec.run_id.startswith("t-s7-")
    assert len(spec.run_id.split("-")[-1]) == 10
    # any spec change (including the seed) moves the hash
    assert _spec(seed=8).spec_hash() != spec.spec_hash()
    assert _spec(seed=7).spec_hash() == spec.spec_hash()


def test_with_updates_coerces_cli_strings():
    spec = _spec()
    updated = spec.with_updates({
        "seed": "7",
        "workload.duration_s": "60",
        "fleet.num_nodes": "4",
        "notes": "edited",
    })
    assert updated.seed == 7
    assert updated.workload.duration_s == 60.0
    assert updated.fleet.num_nodes == 4
    assert updated.notes == "edited"
    assert spec.seed == 2025  # the original is untouched


def test_with_updates_rejects_bad_paths_and_values():
    spec = _spec()
    with pytest.raises(ConfigError):
        spec.with_updates({"workload.teleport": "1"})
    with pytest.raises(ConfigError):
        spec.with_updates({"nope.duration_s": "1"})
    with pytest.raises(ConfigError):
        spec.with_updates({"seed": "banana"})
    with pytest.raises(ConfigError):
        spec.with_updates({"workload.duration_s": "-5"})  # re-validated
