"""Scenario runner: arrival streams, executors, determinism, registry.

Anything that runs a twin here uses deliberately tiny workloads; the
full-size byte-identity checks live in CI (``scenario-smoke``) and in
the migrated experiments themselves.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.scenarios import (
    DETERMINISTIC_EXECUTORS,
    EXECUTORS,
    FaultSpec,
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
    build_arrivals,
    get_scenario,
    named_scenarios,
    run_scenario,
    scenario_names,
)
from repro.workloads.arrival import merge_arrivals, mmpp, poisson


def _digest(obj) -> str:
    def fallback(value):
        try:
            return float(value)
        except (TypeError, ValueError):
            return str(value)

    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=fallback).encode()
    ).hexdigest()


# -- arrival streams ---------------------------------------------------------------


def test_build_arrivals_matches_fig13_convention():
    """Warm-up first, main stream shifted -- same RNG, same trace."""
    workload = WorkloadSpec(
        shape="mmpp", rates_rps=(20.0, 40.0), phase_s=60.0, duration_s=60.0,
        warmup_s=60.0, warmup_rate_rps=20.0, model_id="m", user_id="u",
        seed=11,
    )
    got, sessions = build_arrivals(workload, scenario_seed=2025)
    rng = np.random.default_rng(11)  # workload seed wins over scenario seed
    warm = poisson(20.0, 60.0, "m", user_id="u", rng=rng)
    burst = mmpp((20.0, 40.0), 60.0, 60.0, "m", user_id="u", rng=rng)
    shifted = [
        type(a)(time=a.time + 60.0, model_id=a.model_id, user_id=a.user_id)
        for a in burst
    ]
    want = merge_arrivals(warm, shifted)
    assert sessions == []
    assert [a.time for a in got] == [a.time for a in want]


def test_build_arrivals_without_warmup_is_unshifted():
    workload = WorkloadSpec(shape="poisson", rate_rps=5.0, duration_s=30.0)
    got, _ = build_arrivals(workload, scenario_seed=3)
    want = poisson(5.0, 30.0, "m", user_id="user",
                   rng=np.random.default_rng(3))
    assert [a.time for a in got] == [a.time for a in want]


@pytest.mark.parametrize("workload", [
    WorkloadSpec(shape="fixed", rate_rps=4.0, duration_s=10.0),
    WorkloadSpec(shape="diurnal", rate_rps=10.0, base_rps=1.0,
                 period_s=60.0, duration_s=60.0),
    WorkloadSpec(shape="burst", rate_rps=2.0, burst_rps=20.0,
                 burst_start_s=5.0, burst_duration_s=5.0, duration_s=30.0),
])
def test_build_arrivals_shapes_sorted_and_bounded(workload):
    arrivals, sessions = build_arrivals(workload, scenario_seed=1)
    assert sessions == []
    assert arrivals, workload.shape
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    horizon = workload.warmup_s + workload.duration_s
    assert all(0 <= t < horizon for t in times)


def test_build_arrivals_fnpacker_poisson_filters_sessions():
    mix_wl = WorkloadSpec(shape="fnpacker-mix", duration_s=120.0)
    arrivals, sessions = build_arrivals(mix_wl, scenario_seed=2025)
    assert sessions  # the interactive sessions of Table IV
    poisson_wl = WorkloadSpec(shape="fnpacker-poisson", duration_s=120.0)
    only, no_sessions = build_arrivals(poisson_wl, scenario_seed=2025)
    assert no_sessions == []
    assert {a.user_id for a in only} <= {"alice", "bob"}
    assert len(only) == sum(
        1 for a in arrivals if a.user_id in ("alice", "bob")
    )


def test_build_arrivals_requests_shape_is_empty():
    workload = WorkloadSpec(shape="requests", requests=9, duration_s=1.0)
    assert build_arrivals(workload, scenario_seed=0) == ([], [])


# -- executors ---------------------------------------------------------------------


SMOKE = ScenarioSpec(
    name="runner-smoke",
    executor="sim",
    workload=WorkloadSpec(shape="poisson", rate_rps=2.0, duration_s=30.0),
    fleet=FleetSpec(num_nodes=2, model_name="MBNET"),
)


def test_sim_executor_is_deterministic():
    a = run_scenario(SMOKE)
    b = run_scenario(SMOKE)
    assert _digest(a.metrics) == _digest(b.metrics)
    system = a.metrics["systems"]["SeSeMI"]
    assert system["completed"] > 0
    assert system["completed"] <= a.metrics["submitted"]
    assert a.metrics["summary"]["SeSeMI.mean_s"] == system["mean_s"]
    assert a.spans is None


def test_sim_executor_traced_collects_spans():
    result = run_scenario(SMOKE, traced=True)
    assert result.spans
    assert all(hasattr(span, "events") for span in result.spans)


def test_chaos_executor_matches_bespoke_run_mode():
    from repro.experiments.chaos import _run_mode, _user_primary_shard
    from repro.faults.plan import FaultPlan

    spec = ScenarioSpec(
        name="chaos-mini",
        executor="chaos",
        seed=5,
        workload=WorkloadSpec(shape="requests", requests=6, duration_s=1.0),
        faults=FaultSpec(wire_rate=0.15, crash_rate=0.04, shard_outages=1),
        policy=PolicySpec(resilience="resilient"),
    )
    result = run_scenario(spec)
    point, = result.metrics["points"]
    plan = FaultPlan.from_seed(
        5, 6, wire_rate=0.15, crash_rate=0.04, shard_outages=1,
        num_shards=2, outage_duration=8, warmup=2,
        target_shard=_user_primary_shard(2),
    )
    want, _spans = _run_mode(5, 6, plan, resilient=True, warmup=2)
    assert point["modes"]["resilient"] == want
    assert result.metrics["summary"]["p0.resilient.availability"] == (
        want["availability"]
    )


def test_warmpool_executor_matches_bespoke_run_policy():
    from repro.experiments.warmpool import run_policy

    spec = ScenarioSpec(
        name="warm-mini",
        executor="warmpool",
        seed=9,
        workload=WorkloadSpec(shape="poisson", rate_rps=1.0, duration_s=40.0,
                              model_id="m0"),
        policy=PolicySpec(warm_policies=("none", "lcs"), keep_alive_s=20.0),
    )
    result = run_scenario(spec)
    arrivals, _ = build_arrivals(spec.workload, spec.seed)
    want = run_policy("lcs", arrivals, keep_alive_s=20.0, min_warm=0,
                      max_endpoints=64, until=40.0 + 3600.0)
    assert result.metrics["policies"]["lcs"] == want
    assert result.metrics["arrivals"] == len(arrivals)
    assert set(result.metrics["policies"]) == {"none", "lcs"}
    assert result.metrics["summary"]["none.cold_ratio"] == 1.0


def test_deterministic_executor_list_is_accurate():
    # hotpath and streaming measure wall-clock time: live, not twins
    assert set(DETERMINISTIC_EXECUTORS) == set(EXECUTORS) - {
        "hotpath", "streaming",
    }


# -- registry ----------------------------------------------------------------------


def test_registry_names_build_matching_specs():
    names = scenario_names()
    assert "fig13-dsnet-mmpp" in names
    assert "table3-fnpacker-mix" in names
    assert "chaos-quick" in names
    assert "warmpool-poisson" in names
    assert "hotpath-2user" in names
    assert "stream-chat" in names
    assert "scenario-smoke" in names
    for name, spec in named_scenarios().items():
        assert spec.name == name
        assert spec.executor in EXECUTORS
        assert spec.notes  # every registered spec documents itself


def test_registry_specs_round_trip_and_rebuild_identically():
    for name in scenario_names():
        spec = get_scenario(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert get_scenario(name).run_id == spec.run_id  # builders are pure


def test_get_scenario_unknown_name():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="no scenario named"):
        get_scenario("fig99")
