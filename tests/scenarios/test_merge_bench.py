"""scripts/merge_bench.py: the CI benchmark-trajectory consolidation."""

import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "merge_bench.py"


def _load():
    import importlib.util

    spec = importlib.util.spec_from_file_location("merge_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _artifact_tree(tmp_path):
    """The shape actions/download-artifact leaves: one dir per artifact."""
    root = tmp_path / "artifacts"
    (root / "service-bench").mkdir(parents=True)
    (root / "service-bench" / "BENCH_service.json").write_text(
        json.dumps({"pass": True, "shed_count": 3})
    )
    (root / "gateway-bench").mkdir()
    (root / "gateway-bench" / "gateway-bench.json").write_text(
        json.dumps({"fleets": [1, 3]})
    )
    (root / "service-trace").mkdir()
    (root / "service-trace" / "service-trace.json").write_text("{}")
    return root


def test_merge_keys_and_sources(tmp_path):
    mb = _load()
    root = _artifact_tree(tmp_path)
    paths = mb.find_bench_files(root)
    assert [p.name for p in paths] == [
        "BENCH_service.json", "gateway-bench.json",
    ]  # the trace is skipped
    merged = mb.merge_paths(paths, root)
    assert merged["trajectory_version"] == 1
    assert set(merged["benchmarks"]) == {"service", "gateway"}
    assert merged["benchmarks"]["service"]["shed_count"] == 3
    assert merged["sources"]["gateway"] == "gateway-bench/gateway-bench.json"


def test_main_writes_deterministic_output(tmp_path, capsys):
    mb = _load()
    root = _artifact_tree(tmp_path)
    out = tmp_path / "BENCH_trajectory.json"
    assert mb.main(["--root", str(root), "--out", str(out)]) == 0
    first = out.read_bytes()
    assert mb.main(["--root", str(root), "--out", str(out)]) == 0
    assert out.read_bytes() == first
    payload = json.loads(first)
    assert set(payload["benchmarks"]) == {"service", "gateway"}
    capsys.readouterr()


def test_main_errors(tmp_path, capsys):
    mb = _load()
    assert mb.main(["--root", str(tmp_path / "missing")]) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert mb.main(["--root", str(empty)]) == 2
    capsys.readouterr()


def test_duplicate_keys_rejected(tmp_path):
    mb = _load()
    root = tmp_path / "artifacts"
    (root / "a").mkdir(parents=True)
    (root / "b").mkdir()
    (root / "a" / "BENCH_service.json").write_text("{}")
    (root / "b" / "service-bench.json").write_text("{}")
    with pytest.raises(SystemExit, match="duplicate benchmark key"):
        mb.merge_paths(mb.find_bench_files(root), root)


def test_invalid_json_rejected(tmp_path):
    mb = _load()
    root = tmp_path / "artifacts"
    root.mkdir()
    (root / "broken-bench.json").write_text("{nope")
    with pytest.raises(SystemExit, match="not valid JSON"):
        mb.merge_paths(mb.find_bench_files(root), root)
