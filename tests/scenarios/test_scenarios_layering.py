"""The layering gate: the scenario read side stays stdlib-loadable."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "check_layering.py"
SCENARIOS = REPO / "src" / "repro" / "scenarios"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_scenarios_package_passes_the_gate():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)], cwd=REPO, capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "repro.scenarios layering OK" in result.stdout
    assert "repro.scenarios.spec layering OK" in result.stdout


def test_read_side_modules_are_pinned():
    checker = _load_checker()
    for dotted in ("scenarios.spec", "scenarios.table", "scenarios.store",
                   "scenarios.compare", "scenarios.registry"):
        assert dotted in checker.MODULES, dotted
    # the runner is deliberately NOT pinned: it may import the twins
    assert "scenarios.runner" not in checker.MODULES


def test_gate_sees_lazy_imports_in_function_bodies():
    """The AST walk must catch deferred imports -- the runner relies on
    the *package* ceiling covering them, and the per-module pins would
    be meaningless if a lazy import could hide from the checker."""
    checker = _load_checker()
    tree = __import__("ast").parse(
        "def f():\n    from repro.core.semirt import SchedulerConfig\n"
    )
    found = [m for _lineno, m in checker._imported_modules(tree)]
    assert found == ["repro.core.semirt"]


def test_gate_catches_a_cli_import_from_spec(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "spec.py"
    bad.write_text("from repro.cli import main\n")
    violations = checker.check_module(
        bad, "scenarios.spec", checker.MODULES["scenarios.spec"]
    )
    assert len(violations) == 1
    assert "repro.cli" in violations[0]


def test_package_ceiling_excludes_cli_and_service():
    checker = _load_checker()
    allowed = checker.PACKAGES["scenarios"]
    for banned in ("repro.cli", "repro.service", "repro.obs"):
        assert not any(prefix.startswith(banned) for prefix in allowed)
