"""RunStore: deterministic manifests, round-trips, error paths."""

import json

import pytest

from repro.errors import ConfigError
from repro.scenarios import RunStore, ScenarioSpec, current_git_sha

SPEC = ScenarioSpec(name="store-test", executor="sim", seed=3)
METRICS = {
    "summary": {"mean_s": 0.5},
    "systems": {"SeSeMI": {"count": 10, "mean_s": 0.5}},
}


def test_save_is_deterministic_and_idempotent(tmp_path):
    store = RunStore(tmp_path / "runs")
    first = store.save(SPEC, METRICS, git_sha="abc123")
    text_a = store.manifest_path(first.run_id).read_text()
    second = store.save(SPEC, METRICS, git_sha="abc123")
    text_b = store.manifest_path(second.run_id).read_text()
    assert first.run_id == second.run_id == SPEC.run_id
    assert text_a == text_b  # the scenario-smoke CI property
    assert text_a.endswith("\n")
    # canonical formatting: the text is its own re-serialisation
    payload = json.loads(text_a)
    assert text_a == json.dumps(
        payload, sort_keys=True, indent=2, ensure_ascii=True
    ) + "\n"


def test_manifest_has_no_timestamps(tmp_path):
    store = RunStore(tmp_path)
    record = store.save(SPEC, METRICS)
    payload = json.loads(store.manifest_path(record.run_id).read_text())
    assert set(payload) == {
        "manifest_version", "run_id", "scenario", "seed", "spec_hash",
        "git_sha", "has_trace", "spec", "metrics",
    }


def test_load_round_trips_spec_and_metrics(tmp_path):
    store = RunStore(tmp_path)
    saved = store.save(SPEC, METRICS, git_sha="abc123")
    loaded = store.load(saved.run_id)
    assert loaded.spec == SPEC
    assert loaded.metrics == METRICS
    assert loaded.git_sha == "abc123"
    assert loaded.spec_hash == SPEC.spec_hash()
    assert not loaded.has_trace


def test_numpy_scalars_serialise_as_numbers(tmp_path):
    np = pytest.importorskip("numpy")
    store = RunStore(tmp_path)
    record = store.save(
        SPEC, {"count": np.int64(7), "mean_s": np.float64(0.25)}
    )
    loaded = store.load(record.run_id)
    assert loaded.metrics == {"count": 7, "mean_s": 0.25}


def test_trace_persisted_next_to_manifest(tmp_path):
    store = RunStore(tmp_path)
    record = store.save(SPEC, METRICS, trace_json={"traceEvents": []})
    assert record.has_trace
    assert json.loads(store.trace_path(record.run_id).read_text()) == {
        "traceEvents": []
    }


def test_list_runs_sorted(tmp_path):
    store = RunStore(tmp_path)
    assert store.list_runs() == []
    ids = [
        store.save(ScenarioSpec(name=name, executor="sim"), {}).run_id
        for name in ("zeta", "alpha")
    ]
    assert store.list_runs() == sorted(ids)


def test_load_unknown_run_and_bad_version(tmp_path):
    store = RunStore(tmp_path)
    with pytest.raises(ConfigError, match="no run"):
        store.load("missing-s0-0000000000")
    record = store.save(SPEC, METRICS)
    path = store.manifest_path(record.run_id)
    payload = json.loads(path.read_text())
    payload["manifest_version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ConfigError, match="manifest version"):
        store.load(record.run_id)


def test_current_git_sha_in_this_repo():
    sha = current_git_sha()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))
