"""Compare and report rendering over stored runs."""

from repro.scenarios import (
    RunRecord,
    ScenarioSpec,
    flatten,
    format_compare,
    format_store_report,
    metric_diff,
    spec_diff,
)


def _record(name="cmp", seed=1, metrics=None, **spec_kwargs) -> RunRecord:
    spec = ScenarioSpec(name=name, executor="sim", seed=seed, **spec_kwargs)
    return RunRecord(
        run_id=spec.run_id,
        spec=spec,
        seed=seed,
        spec_hash=spec.spec_hash(),
        metrics=metrics or {},
    )


def test_flatten_nested_paths():
    flat = flatten({"a": {"b": 1}, "list": [10, {"x": 2}], "s": "v"})
    assert flat == {"a.b": 1, "list[0]": 10, "list[1].x": 2, "s": "v"}


def test_spec_diff_reports_only_changes():
    a = _record(seed=1)
    b = _record(seed=2)
    rows = spec_diff(a, b)
    assert rows == [("seed", 1, 2)]
    assert spec_diff(a, a) == []


def test_metric_diff_deltas_and_one_sided_keys():
    a = _record(metrics={"mean_s": 2.0, "count": 10, "only_here": 1,
                         "label": "x"})
    b = _record(seed=2, metrics={"mean_s": 1.0, "count": 10, "label": "y"})
    diff = metric_diff(a, b)
    by_key = {row[0]: row for row in diff["common"]}
    assert by_key["mean_s"] == ("mean_s", 2.0, 1.0, -1.0, 0.5)
    assert by_key["count"][3] == 0
    assert by_key["label"] == ("label", "x", "y", None, None)
    assert diff["only_a"] == ["only_here"]
    assert diff["only_b"] == []


def test_metric_diff_orders_headline_metrics_first():
    a = _record(metrics={"zzz": 1, "summary": {"p95_s": 1.0}, "count": 2})
    b = _record(seed=2, metrics={"zzz": 1, "summary": {"p95_s": 2.0},
                                 "count": 2})
    keys = [row[0] for row in metric_diff(a, b)["common"]]
    assert keys[0] == "summary.p95_s"
    assert keys[-1] == "zzz"


def test_metric_diff_zero_baseline_has_no_ratio():
    a = _record(metrics={"cold": 0})
    b = _record(seed=2, metrics={"cold": 3})
    (key, va, vb, delta, ratio), = metric_diff(a, b)["common"]
    assert (key, delta, ratio) == ("cold", 3, None)


def test_format_compare_renders_both_sections():
    a = _record(seed=1, metrics={"mean_s": 2.0, "count": 5})
    b = _record(seed=2, metrics={"mean_s": 1.0, "count": 5})
    text = format_compare(a, b)
    assert a.run_id in text and b.run_id in text
    assert "spec differences:" in text
    assert "seed" in text
    assert "0.500x" in text
    # changed_only drops the unchanged count row
    filtered = format_compare(a, b, changed_only=True)
    assert "mean_s" in filtered
    assert "count" not in filtered


def test_format_compare_identical_runs():
    a = _record(metrics={"count": 5})
    text = format_compare(a, a)
    assert "spec differences: none (same spec hash)" in text


def test_format_store_report_markdown():
    records = [
        _record(name="one", metrics={"summary": {"mean_s": 0.5}}),
        _record(name="two", metrics={"count": 3}),  # no summary block
    ]
    text = format_store_report(records)
    assert text.startswith("# Scenario runs")
    assert "| one-s1-" in text and "| two-s1-" in text
    assert "## " + records[0].run_id in text
    assert "## " + records[1].run_id not in text
    assert text.endswith("\n")
