"""Arrival processes: rates, phases, sessions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.arrival import (
    Session,
    burst,
    diurnal,
    fixed_rate,
    merge_arrivals,
    mmpp,
    poisson,
)


def test_fixed_rate_count_and_spacing():
    arrivals = fixed_rate(10.0, 5.0, "m")
    assert len(arrivals) == 50
    gaps = np.diff([a.time for a in arrivals])
    assert np.allclose(gaps, 0.1)


def test_fixed_rate_validation():
    with pytest.raises(ConfigError):
        fixed_rate(0.0, 1.0, "m")


def test_poisson_mean_rate():
    rng = np.random.default_rng(0)
    arrivals = poisson(20.0, 200.0, "m", rng=rng)
    assert len(arrivals) == pytest.approx(4000, rel=0.1)
    assert all(0 <= a.time < 200.0 for a in arrivals)


def test_poisson_deterministic_with_seeded_rng():
    a = poisson(5.0, 50.0, "m", rng=np.random.default_rng(7))
    b = poisson(5.0, 50.0, "m", rng=np.random.default_rng(7))
    assert [x.time for x in a] == [x.time for x in b]


def test_mmpp_alternates_rates():
    rng = np.random.default_rng(1)
    arrivals = mmpp((10.0, 40.0), phase_s=50.0, duration_s=200.0, model_id="m", rng=rng)
    def count(lo, hi):
        return sum(1 for a in arrivals if lo <= a.time < hi)
    # Odd phases run at 4x the rate of even phases.
    assert count(50, 100) > 2 * count(0, 50)
    assert count(150, 200) > 2 * count(100, 150)


def test_mmpp_respects_duration():
    arrivals = mmpp((5.0,), phase_s=60.0, duration_s=100.0, model_id="m")
    assert max(a.time for a in arrivals) < 100.0


def test_mmpp_validation():
    with pytest.raises(ConfigError):
        mmpp((), phase_s=10.0, duration_s=10.0, model_id="m")


def test_diurnal_peaks_mid_period():
    rng = np.random.default_rng(5)
    arrivals = diurnal(20.0, 2.0, period_s=200.0, duration_s=200.0,
                       model_id="m", rng=rng)
    def count(lo, hi):
        return sum(1 for a in arrivals if lo <= a.time < hi)
    # The sinusoid troughs at t=0 and t=period, peaks at period/2.
    assert count(75, 125) > 2 * count(0, 50)
    assert count(75, 125) > 2 * count(150, 200)
    assert all(0 <= a.time < 200.0 for a in arrivals)


def test_diurnal_deterministic_and_validated():
    a = diurnal(8.0, 1.0, 60.0, 120.0, "m", rng=np.random.default_rng(9))
    b = diurnal(8.0, 1.0, 60.0, 120.0, "m", rng=np.random.default_rng(9))
    assert [x.time for x in a] == [x.time for x in b]
    with pytest.raises(ConfigError):
        diurnal(0.0, 0.0, 60.0, 120.0, "m")
    with pytest.raises(ConfigError):
        diurnal(5.0, 9.0, 60.0, 120.0, "m")  # base above peak
    with pytest.raises(ConfigError):
        diurnal(5.0, 1.0, 0.0, 120.0, "m")


def test_burst_adds_rate_inside_window():
    rng = np.random.default_rng(4)
    arrivals = burst(2.0, 40.0, burst_start_s=50.0, burst_duration_s=20.0,
                     duration_s=120.0, model_id="m", rng=rng)
    inside = sum(1 for a in arrivals if 50.0 <= a.time < 70.0)
    before = sum(1 for a in arrivals if 0.0 <= a.time < 20.0)
    assert inside > 5 * max(before, 1)
    times = [a.time for a in arrivals]
    assert times == sorted(times)


def test_burst_zero_burst_is_plain_poisson():
    quiet = burst(3.0, 0.0, 10.0, 5.0, 60.0, "m",
                  rng=np.random.default_rng(2))
    plain = poisson(3.0, 60.0, "m", rng=np.random.default_rng(2))
    assert [a.time for a in quiet] == [a.time for a in plain]
    with pytest.raises(ConfigError):
        burst(0.0, 1.0, 0.0, 1.0, 10.0, "m")
    with pytest.raises(ConfigError):
        burst(1.0, -1.0, 0.0, 1.0, 10.0, "m")


def test_session_validation():
    with pytest.raises(ConfigError):
        Session(start_time=0.0, models=())
    session = Session(start_time=5.0, models=("a", "b"))
    assert session.models == ("a", "b")


def test_merge_arrivals_sorted():
    a = fixed_rate(1.0, 5.0, "a")
    b = poisson(2.0, 5.0, "b", rng=np.random.default_rng(3))
    merged = merge_arrivals(a, b)
    times = [x.time for x in merged]
    assert times == sorted(times)
    assert len(merged) == len(a) + len(b)


@settings(max_examples=20, deadline=None)
@given(rate=st.floats(0.5, 50.0), duration=st.floats(1.0, 30.0))
def test_fixed_rate_property(rate, duration):
    arrivals = fixed_rate(rate, duration, "m")
    assert len(arrivals) == int(duration * rate)
    assert all(a.time < duration for a in arrivals)
