"""Workload drivers: open-loop arrivals and closed-loop sessions."""

import pytest

from repro.core.fnpacker import AllInOneRouter, FnPool
from repro.experiments.common import make_testbed
from repro.serverless.action import ActionSpec, round_memory_budget
from repro.serverless.container import ActionRuntime
from repro.workloads.arrival import Arrival, Session
from repro.workloads.driver import WorkloadDriver

MB = 1024 * 1024


class InstantRuntime(ActionRuntime):
    def startup(self, ctx):
        yield ctx.sim.timeout(0.1)

    def handle(self, ctx, request):
        yield ctx.sim.timeout(0.2)
        return {"ok": True}, "hot", {}


@pytest.fixture()
def rig():
    bed = make_testbed(num_nodes=1)
    spec = ActionSpec(
        name="pool-all", image="i",
        memory_budget=round_memory_budget(64 * MB), concurrency=4,
    )
    bed.platform.deploy(spec, InstantRuntime)
    pool = FnPool(name="pool", models=("m0", "m1"), memory_budget=0)
    router = AllInOneRouter(pool)
    driver = WorkloadDriver(bed.sim, bed.controller, router)
    return bed, driver


def test_open_loop_fires_at_timestamps(rig):
    bed, driver = rig
    driver.submit_arrivals(
        [Arrival(time=t, model_id="m0", user_id="u") for t in (0.0, 1.0, 2.0)]
    )
    report = driver.run()
    assert len(report.results) == 3
    submits = sorted(r.submitted_at for r in report.results)
    assert submits == pytest.approx([0.0, 1.0, 2.0])


def test_session_queries_are_sequential(rig):
    bed, driver = rig
    driver.submit_session(Session(start_time=1.0, models=("m0", "m1")), index=1)
    report = driver.run()
    first = report.session_results[(1, "m0")]
    second = report.session_results[(1, "m1")]
    assert first.submitted_at == pytest.approx(1.0)
    # The second query waits for the first response.
    assert second.submitted_at >= first.finished_at


def test_mixed_workload_collects_everything(rig):
    bed, driver = rig
    driver.submit_arrivals([Arrival(time=0.5, model_id="m0", user_id="poisson")])
    driver.submit_session(Session(start_time=0.0, models=("m0", "m1")), index=1)
    report = driver.run()
    assert len(report.results) == 3
    assert len(report.session_results) == 2


def test_driver_updates_router_counters(rig):
    bed, driver = rig
    driver.submit_arrivals([Arrival(time=0.0, model_id="m0", user_id="u")])
    driver.run()
    # All dispatches completed: AllInOne router has no state, but the
    # report has every result.
    assert len(driver.report.results) == 1
