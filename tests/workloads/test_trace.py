"""Trace parsing, formatting, and synthetic skewed traces."""

import pytest

from repro.errors import ConfigError
from repro.workloads.arrival import Arrival
from repro.workloads.trace import (
    format_trace_csv,
    parse_trace_csv,
    synthesize_skewed_trace,
)


def test_parse_basic_trace():
    text = "time,model_id,user_id\n0.5,m1,alice\n0.1,m2,bob\n"
    arrivals = parse_trace_csv(text)
    assert [a.model_id for a in arrivals] == ["m2", "m1"]  # sorted by time
    assert arrivals[0].user_id == "bob"


def test_parse_without_header_and_user():
    arrivals = parse_trace_csv("1.0,m1\n2.0,m2,\n")
    assert len(arrivals) == 2
    assert arrivals[0].user_id == "trace-user"


def test_parse_skips_comments_and_blank_lines():
    arrivals = parse_trace_csv("# comment\n\n1.0,m1\n")
    assert len(arrivals) == 1


def test_parse_rejects_bad_rows():
    with pytest.raises(ConfigError):
        parse_trace_csv("not-a-time,m1\n")
    with pytest.raises(ConfigError):
        parse_trace_csv("-1.0,m1\n")
    with pytest.raises(ConfigError):
        parse_trace_csv("1.0\n")


def test_roundtrip():
    arrivals = [
        Arrival(time=0.25, model_id="m1", user_id="u1"),
        Arrival(time=1.5, model_id="m2", user_id="u2"),
    ]
    assert parse_trace_csv(format_trace_csv(arrivals)) == arrivals


def test_synthetic_trace_skew():
    models = [f"m{i}" for i in range(10)]
    arrivals = synthesize_skewed_trace(models, duration_s=500.0,
                                       total_rate_rps=10.0, skew=1.5)
    counts = {m: 0 for m in models}
    for arrival in arrivals:
        counts[arrival.model_id] += 1
    # Hot head: the top model gets far more traffic than the tail.
    assert counts["m0"] > 4 * counts["m9"]
    assert len(arrivals) == pytest.approx(5000, rel=0.1)


def test_synthetic_trace_validation():
    with pytest.raises(ConfigError):
        synthesize_skewed_trace([], 10.0, 1.0)
    with pytest.raises(ConfigError):
        synthesize_skewed_trace(["m"], 0.0, 1.0)
    with pytest.raises(ConfigError):
        synthesize_skewed_trace(["m"], 10.0, -1.0)


def test_synthetic_trace_deterministic():
    a = synthesize_skewed_trace(["m0", "m1"], 50.0, 5.0, seed=3)
    b = synthesize_skewed_trace(["m0", "m1"], 50.0, 5.0, seed=3)
    assert a == b
