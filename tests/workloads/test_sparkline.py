"""Sparkline rendering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.sparkline import labelled_sparkline, sparkline


def test_empty_series():
    assert sparkline([]) == ""


def test_flat_series_renders_low_blocks():
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_monotone_series_monotone_blocks():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line == "▁▂▃▄▅▆▇█"


def test_extremes_hit_first_and_last_blocks():
    line = sparkline([0.0, 10.0])
    assert line[0] == "▁" and line[-1] == "█"


def test_pinned_scale():
    # Pinning lo/hi lets two series share a scale.
    a = sparkline([1.0, 2.0], lo=0.0, hi=10.0)
    b = sparkline([9.0, 10.0], lo=0.0, hi=10.0)
    assert a < b  # lexically lower blocks


def test_labelled_line():
    text = labelled_sparkline("SeSeMI", [0.5, 1.0, 0.4])
    assert text.startswith("SeSeMI")
    assert "[0.40s .. 1.00s]" in text
    assert labelled_sparkline("x", []) == "x            (no data)"


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=60))
def test_length_and_charset_property(values):
    line = sparkline(values)
    assert len(line) == len(values)
    assert set(line) <= set("▁▂▃▄▅▆▇█")
