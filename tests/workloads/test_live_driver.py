"""Unit tests for the wall-clock load driver (no HTTP involved)."""

from __future__ import annotations

import time

import pytest

from repro.errors import QueueFull, TransportError
from repro.workloads.driver import LiveLoadDriver, LiveRecord, LiveReport


def test_outcomes_classify_as_admitted_shed_failed():
    def issue(client: int, seq: int) -> None:
        if seq == 1:
            raise QueueFull("busy")
        if seq == 2:
            raise TransportError("boom")

    driver = LiveLoadDriver(issue)
    records = [driver._one(0, seq) for seq in range(3)]
    assert [r.ok for r in records] == [True, False, False]
    assert [r.shed for r in records] == [False, True, False]
    assert records[1].error == "QueueFull"
    assert records[2].error == "TransportError"


def test_unexpected_exceptions_propagate():
    driver = LiveLoadDriver(lambda c, s: (_ for _ in ()).throw(ValueError("bug")))
    with pytest.raises(ValueError):
        driver._one(0, 0)


def test_closed_loop_runs_every_client_and_never_hangs():
    driver = LiveLoadDriver(lambda c, s: time.sleep(0.005))
    report = driver.closed_loop(clients=3, duration_s=0.2)
    assert report.hung == 0
    assert {r.client for r in report.records} == {0, 1, 2}
    assert all(r.ok for r in report.records)
    assert report.summary()["admitted"] == len(report.records)


def test_closed_loop_flags_hung_workers():
    driver = LiveLoadDriver(lambda c, s: time.sleep(30))
    report = driver.closed_loop(clients=2, duration_s=0.05, join_timeout_s=0.1)
    assert report.hung == 2
    assert report.summary()["hung"] == 2


def test_open_loop_paces_arrivals_at_the_requested_rate():
    driver = LiveLoadDriver(lambda c, s: None)
    report = driver.open_loop(rate_rps=100.0, duration_s=0.25)
    # ~25 arrivals at 100 rps for 0.25s; allow generous scheduler slack
    assert 15 <= len(report.records) <= 35
    assert report.hung == 0


def test_percentiles_use_nearest_rank_on_sorted_latencies():
    report = LiveReport(
        records=[
            LiveRecord(0, i, started=0.0, finished=ms / 1e3, ok=True, shed=False)
            for i, ms in enumerate([10, 20, 30, 40])
        ]
    )
    assert report.percentile_s(0.50) == pytest.approx(0.030)
    assert report.percentile_s(0.99) == pytest.approx(0.040)
    assert report.percentile_s(0.0) == pytest.approx(0.010)
    assert report.percentile_s(0.99, "sheds") == 0.0  # empty class


def test_summary_reports_all_gate_fields():
    report = LiveReport(
        records=[
            LiveRecord(0, 0, 0.0, 0.010, ok=True, shed=False),
            LiveRecord(0, 1, 0.0, 0.001, ok=False, shed=True),
            LiveRecord(0, 2, 0.0, 0.002, ok=False, shed=False, error="E"),
        ],
        hung=1,
    )
    summary = report.summary()
    assert summary["total"] == 3
    assert summary["admitted"] == 1
    assert summary["shed"] == 1
    assert summary["failed"] == 1
    assert summary["hung"] == 1
    assert summary["shed_p99_ms"] == pytest.approx(1.0)
