"""Metrics: latency stats, timelines, GB-second integral."""

import pytest

from repro.serverless.action import InvocationResult, Request
from repro.workloads.metrics import (
    GB,
    LatencyStats,
    gb_seconds,
    kind_counts,
    latency_timeline,
    stage_fractions,
    throughput_rps,
)


def result(submitted, finished, kind="hot", stages=None):
    return InvocationResult(
        request=Request(model_id="m", user_id="u"),
        response=None,
        kind=kind,
        container_id="c",
        node_id="n",
        submitted_at=submitted,
        started_at=submitted,
        finished_at=finished,
        stage_seconds=stages or {},
    )


def test_latency_stats_basic():
    results = [result(0, 1), result(0, 2), result(0, 3)]
    stats = LatencyStats.of(results)
    assert stats.count == 3
    assert stats.mean == pytest.approx(2.0)
    assert stats.p50 == pytest.approx(2.0)
    assert stats.max == pytest.approx(3.0)


def test_latency_stats_empty():
    stats = LatencyStats.of([])
    assert stats.count == 0
    assert stats.mean == 0.0


def test_throughput():
    results = [result(i, i + 0.5) for i in range(10)]
    assert throughput_rps(results) == pytest.approx(10 / 9.5)
    assert throughput_rps([]) == 0.0


def test_kind_counts():
    results = [result(0, 1, "cold"), result(1, 2, "hot"), result(2, 3, "hot")]
    assert kind_counts(results) == {"cold": 1, "hot": 2}


def test_latency_timeline_buckets():
    results = [result(5, 6), result(15, 17), result(16, 18)]
    timeline = latency_timeline(results, bucket_s=10.0)
    assert timeline == [(0.0, 1.0), (10.0, 2.0)]
    assert latency_timeline([], bucket_s=10.0) == []


def test_gb_seconds_step_function():
    # 1 GB for 10s, then 3 GB for 5s, then 0.
    timeline = [(0.0, 0), (0.0, GB), (10.0, 3 * GB), (15.0, 0)]
    assert gb_seconds(timeline, until=20.0) == pytest.approx(1 * 10 + 3 * 5)


def test_gb_seconds_clipped_at_horizon():
    timeline = [(0.0, GB)]
    assert gb_seconds(timeline, until=7.0) == pytest.approx(7.0)
    assert gb_seconds(timeline, until=0.0) == 0.0


def test_gb_seconds_ignores_changes_after_horizon():
    timeline = [(0.0, GB), (5.0, 100 * GB)]
    assert gb_seconds(timeline, until=5.0) == pytest.approx(5.0)


def test_stage_fractions():
    results = [
        result(0, 1, stages={"a": 3.0, "b": 1.0}),
        result(1, 2, stages={"a": 1.0, "b": 3.0}),
    ]
    fractions = stage_fractions(results)
    assert fractions["a"] == pytest.approx(0.5)
    assert fractions["b"] == pytest.approx(0.5)
    assert stage_fractions([]) == {}
