"""The MLPerf-style mixed workload generator (Section VI-D)."""

import pytest

from repro.workloads.mlperf import build_fnpacker_workload


def test_default_workload_shape():
    workload = build_fnpacker_workload()
    # Two Poisson streams at 2 rps for 8 minutes each: ~1920 arrivals.
    assert len(workload.arrivals) == pytest.approx(2 * 2 * 480, rel=0.15)
    assert {a.model_id for a in workload.arrivals} == {"m0", "m1"}
    assert {a.user_id for a in workload.arrivals} == {"alice", "bob"}
    assert len(workload.sessions) == 2


def test_sessions_cover_all_models():
    workload = build_fnpacker_workload()
    for session, expected_start in zip(workload.sessions, (240.0, 360.0)):
        assert session.models == ("m0", "m1", "m2", "m3", "m4")
        assert session.start_time == expected_start
        assert session.user_id == "analyst"


def test_arrivals_time_ordered_and_bounded():
    workload = build_fnpacker_workload(duration_s=100.0)
    times = [a.time for a in workload.arrivals]
    assert times == sorted(times)
    assert times[-1] < 100.0


def test_seed_determinism():
    a = build_fnpacker_workload(seed=1)
    b = build_fnpacker_workload(seed=1)
    c = build_fnpacker_workload(seed=2)
    assert [x.time for x in a.arrivals] == [x.time for x in b.arrivals]
    assert [x.time for x in a.arrivals] != [x.time for x in c.arrivals]


def test_custom_model_ids():
    workload = build_fnpacker_workload(model_ids=("x", "y", "z"))
    assert {a.model_id for a in workload.arrivals} == {"x", "y"}
    assert workload.sessions[0].models == ("x", "y", "z")
