"""FnPacker routing over *live* enclaves: the gateway acceptance test.

One :class:`FnPool` of two models is served by two real
:class:`SemirtHost` endpoints behind an :class:`InferenceGateway`
running the FnPacker strategy.  Requests run the full secure path
(client-side encryption, RA-TLS key provisioning, in-enclave inference),
while routing follows the same Section IV-C policy the simulated twin
benchmarks: overlapping hot-model traffic pins its endpoint
exclusively, pushing the cold model to the other endpoint; a crashed
endpoint reroutes in-place without failing a user request; and every
decision is visible as a ``route`` span on the environment tracer.
"""

import threading
import time

import numpy as np

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import SchedulerConfig
from repro.routing import FnPool

HOT, COLD = "hot-model", "cold-model"


def _wait_for(predicate, timeout_s=10.0):
    """Poll ``predicate`` (the functional twin runs on wall time)."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def test_fnpacker_gateway_over_live_endpoints(tiny_model, tiny_input):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    env.deploy(tiny_model, HOT, owner=owner).grant(user)
    env.deploy(tiny_model, COLD, owner=owner).grant(user)

    pool = FnPool(name="fleet", models=(HOT, COLD), memory_budget=0,
                  num_endpoints=2)
    # The service-time floor keeps hot requests genuinely overlapping,
    # so the router sees the hot model *pending* when the next arrives.
    gw = env.gateway(pool, scheduler=SchedulerConfig(paced_service_s=0.25))
    hot = env.session(user, HOT, gateway=gw)
    cold = env.session(user, COLD, gateway=gw)
    reference = tiny_model.run_reference(tiny_input).ravel()

    outputs, errors = [], []

    def request(session):
        try:
            outputs.append(session.infer(tiny_input))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    # Two overlapping hot requests: the second routes while the first
    # is still in flight, which is exactly FnPacker Rule 1 -- the hot
    # model's endpoint becomes its exclusive assignment.
    first = threading.Thread(target=request, args=(hot,))
    first.start()
    _wait_for(lambda: gw.in_flight >= 1)
    second = threading.Thread(target=request, args=(hot,))
    second.start()
    _wait_for(lambda: HOT in gw.router.exclusive_assignments().values())
    exclusive = {e: m for e, m in gw.router.exclusive_assignments().items()}
    hot_endpoint = next(e for e, m in exclusive.items() if m == HOT)

    # While the hot endpoint is exclusively held, the cold model must
    # land on the *other* endpoint even though the hot one may have
    # free TCS slots.
    request(cold)
    first.join()
    second.join()
    assert not errors, errors

    spans = [s for s in env.tracer.finished_spans() if s.name == "route"]
    by_model = {}
    for span in spans:
        by_model.setdefault(span.attributes["model_id"], []).append(span)
    assert {e.attributes["endpoint"] for e in by_model[HOT]} == {hot_endpoint}
    assert any(s.attributes["exclusive"] for s in by_model[HOT])
    cold_endpoint = by_model[COLD][0].attributes["endpoint"]
    assert cold_endpoint != hot_endpoint
    assert by_model[COLD][0].attributes["reroutes"] == 0

    # Crash the hot endpoint's enclave.  The next hot request finds the
    # pinned endpoint dead, reroutes to the survivor, and succeeds --
    # the user never sees the failure.
    gw.host(hot_endpoint).destroy()
    request(hot)
    assert not errors, errors

    rerouted = [s for s in env.tracer.finished_spans()
                if s.name == "route" and s.attributes["model_id"] == HOT
                and s.attributes["endpoint"] == cold_endpoint]
    assert rerouted and rerouted[-1].attributes["reroutes"] >= 1

    # Every request decrypted to the right answer through all of this.
    assert len(outputs) == 4
    for out in outputs:
        assert np.allclose(out, reference, atol=1e-5)

    gw.close()
    assert all(not h.enclave.alive for h in gw.hosts().values())
