"""Cross-feature integration: the whole system working together.

These tests wire multiple features at once -- the sharded KeyService
fleet, the FnPacker service on the simulated cluster, quantized model
artifacts through the functional enclaves -- the combinations a real
deployment would actually run.
"""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.core.fnpacker import FnPool
from repro.core.keyfleet import KeyServiceFleet
from repro.core.packer_service import FnPackerService
from repro.core.simbridge import servable_map
from repro.errors import AccessDenied
from repro.experiments.common import make_testbed
from repro.mlrt.quantize import load_quantized, quantize_model
from repro.mlrt.zoo import build_mobilenet, profile
from repro.serverless.telemetry import MetricsRegistry


def test_quantized_model_through_the_secure_path():
    """Owner quantizes, encrypts, deploys; user infers -- end to end."""
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tflm")
    float_model = build_mobilenet()
    # The owner ships the quantized artifact (reconstituted to a model
    # the runtimes execute; the wire artifact is 4x smaller pre-crypto).
    quant_blob = quantize_model(float_model)
    quantized = load_quantized(quant_blob)
    env.deploy(quantized, "quant-model", owner=owner, framework="tflm").grant(user)
    x = np.random.default_rng(0).standard_normal(float_model.input_spec.shape)
    x = x.astype(np.float32)
    enc = user.encrypt_request("quant-model", semirt.measurement, x)
    out = user.decrypt_response(
        "quant-model", semirt.measurement,
        semirt.infer(enc, user.principal_id, "quant-model"),
    )
    reference = float_model.run_reference(x).ravel()
    assert np.abs(out - reference).max() < 0.05  # quantization noise only


def test_sharded_fleet_serves_independent_owners(tiny_model, tiny_input):
    """Two owners on different shards run isolated deployments."""
    from repro.core.client import OwnerClient, UserClient
    from repro.core.semirt import SemirtHost, default_semirt_config
    from repro.serverless.storage import BlobStore
    from repro.sgx.attestation import AttestationService
    from repro.sgx.platform import SGX2, SgxPlatform

    attestation = AttestationService()
    fleet = KeyServiceFleet(4, attestation)
    storage = BlobStore()
    worker_platform = SgxPlatform(SGX2, attestation_service=attestation)

    outputs = {}
    for index in range(2):
        owner = OwnerClient(f"owner-{index}")
        user = UserClient(f"user-{index}")
        owner_shard = fleet.shard_for(owner.identity_key.fingerprint)
        for principal in (owner, user):
            # Owner and user must meet on ONE shard to share a model.
            principal.connect(owner_shard, attestation, fleet.measurement)
            principal.register()
        semirt = SemirtHost(
            platform=worker_platform,
            storage=storage,
            keyservice_host=owner_shard,
            framework="tvm",
            attestation=attestation,
            config=default_semirt_config(),
        )
        model_id = f"model-{index}"
        owner.deploy_model(tiny_model, model_id, storage)
        owner.add_model_key(model_id)
        owner.grant_access(model_id, semirt.measurement, user.principal_id)
        user.add_request_key(model_id, semirt.measurement)
        enc = user.encrypt_request(model_id, semirt.measurement, tiny_input)
        enc_out = semirt.infer(enc, user.principal_id, model_id)
        outputs[index] = user.decrypt_response(model_id, semirt.measurement, enc_out)
    assert np.allclose(outputs[0], outputs[1], atol=1e-6)  # same model


def test_fnpacker_cluster_with_telemetry():
    """FnPackerService + telemetry on an 8-node cluster."""
    metrics = MetricsRegistry()
    bed = make_testbed(num_nodes=8)
    bed.controller.metrics = metrics
    model_ids = ("hot-model", "cold-model")
    pool = FnPool(name="mixed", models=model_ids, memory_budget=0)
    models = servable_map([(m, profile("DSNET"), "tvm") for m in model_ids])
    service = FnPackerService(bed.sim, bed.controller, pool, models, bed.cost)

    def driver(sim):
        # steady traffic to the hot model, a sprinkle to the cold one
        for i in range(40):
            service.invoke("hot-model", "alice")
            if i % 10 == 0:
                service.invoke("cold-model", "bob")
            yield sim.timeout(0.5)

    bed.sim.process(driver(bed.sim))
    bed.sim.run()
    snapshot = metrics.snapshot()
    assert snapshot["requests.completed"] == 44
    assert service.stats["hot-model"].completed == 40
    assert metrics.histogram("latency.seconds").count == 44
    # Hot traffic pinned an endpoint at some point; everything drained.
    assert service.in_flight == 0
    assert metrics.time_series("containers.active").last == 0


def test_strong_isolation_plus_revocation(tiny_model, tiny_input):
    """The strictest build still enforces (and survives) revocation."""
    from repro.core.semirt import IsolationSettings

    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    isolation = IsolationSettings.strong(pinned_model="locked")
    semirt = env.launch_semirt("tvm", isolation=isolation)
    env.deploy(tiny_model, "locked", owner=owner, isolation=isolation).grant(user)
    first = user.decrypt_response(
        "locked", semirt.measurement,
        semirt.infer(
            user.encrypt_request("locked", semirt.measurement, tiny_input),
            user.principal_id, "locked",
        ),
    )
    assert np.allclose(first, tiny_model.run_reference(tiny_input).ravel(), atol=1e-5)
    owner.revoke_access("locked", semirt.measurement, user.principal_id)
    # Strong isolation re-fetches keys per request, so revocation bites
    # the very next request -- even on the same warm enclave.
    enc = user.encrypt_request("locked", semirt.measurement, tiny_input)
    with pytest.raises(AccessDenied):
        semirt.infer(enc, user.principal_id, "locked")