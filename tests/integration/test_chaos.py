"""Chaos integration: shard crash mid-workload, determinism, recovery."""

import json

import numpy as np
import pytest

from repro.experiments import chaos
from repro.faults.plan import FaultKind, FaultPlan


@pytest.fixture(scope="module")
def outage_runs():
    """One shard-outage plan run in both modes (shared across tests).

    The outage targets the chaos user's *primary* shard, so KeyService
    failover is on the critical path of every request during the outage
    (the key cache is disabled in the chaos harness).
    """
    requests = 18
    plan = FaultPlan.from_seed(
        13,
        requests,
        shard_outages=1,
        num_shards=2,
        outage_duration=6,
        target_shard=chaos._user_primary_shard(),
    )
    resilient, resilient_spans = chaos._run_mode(13, requests, plan, resilient=True)
    baseline, _ = chaos._run_mode(13, requests, plan, resilient=False)
    return plan, resilient, resilient_spans, baseline


def test_shard_crash_mid_workload_keeps_availability(outage_runs):
    """Failover + retry keep availability above 95% through the outage."""
    _, resilient, _, _ = outage_runs
    assert resilient["availability"] >= 0.95


def test_resilience_disabled_shows_visible_failures(outage_runs):
    """Without failover, the outage costs roughly its duration in errors."""
    _, resilient, _, baseline = outage_runs
    assert baseline["failed"] >= 3
    assert baseline["availability"] < resilient["availability"]


def test_outage_recovery_is_visible_in_the_trace(outage_runs):
    """The span dump shows the fault and the recovery machinery."""
    plan, resilient, spans, _ = outage_runs
    events = [event["name"] for span in spans for event in span.events]
    assert "fault:shard_crash" in events
    assert "fault:shard_restart" in events
    assert "keyservice_failover" in events
    assert "keyservice_reattest" in events
    assert resilient["failovers"] >= 1
    # the plan's schedule is what actually fired
    scheduled = [e.kind for e in plan.schedule]
    assert scheduled == [FaultKind.SHARD_CRASH, FaultKind.SHARD_RESTART]


def test_chaos_sweep_is_byte_identical_across_runs():
    """Same seed => the exact JSON the CI smoke job compares."""
    first = chaos.run(seed=5, requests=12, quick=True)
    second = chaos.run(seed=5, requests=12, quick=True)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_session_relaunches_cold_after_enclave_crash(tiny_model, tiny_input):
    """A dead SeMIRT enclave is replaced on the next request."""
    from repro.core.deployment import SeSeMIEnvironment

    env = SeSeMIEnvironment()
    env.deploy(tiny_model, "m", owner="owner").grant("user")
    with env.session("user", "m") as session:
        before = session.infer(tiny_input)
        session.semirt.enclave.destroy()  # simulated mid-flight crash
        after = session.infer(tiny_input)  # relaunches cold, same result
        assert np.allclose(before, after, atol=1e-5)
        assert session.semirt.enclave.alive
