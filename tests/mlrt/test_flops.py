"""MAC estimation against hand-computed values and the zoo ordering."""

import pytest

from repro.errors import ModelError
from repro.mlrt.flops import model_macs, node_macs, summarize
from repro.mlrt.model import GraphBuilder
from repro.mlrt.tensor import TensorSpec
from repro.mlrt.zoo import build_densenet, build_mobilenet, build_resnet


def test_conv_macs_hand_computed():
    builder = GraphBuilder("m", TensorSpec((1, 8, 8, 3)))
    conv = builder.conv("input", 16, k=3, stride=1, pad=1)
    model = builder.build()
    # output 8x8x16, each from a 3*3*3 patch
    assert node_macs(model, conv) == 8 * 8 * 16 * 3 * 3 * 3


def test_depthwise_macs_hand_computed():
    builder = GraphBuilder("m", TensorSpec((1, 8, 8, 4)))
    dw = builder.depthwise("input", k=3, stride=1, pad=1)
    model = builder.build()
    assert node_macs(model, dw) == 8 * 8 * 4 * 3 * 3


def test_dense_macs_hand_computed():
    builder = GraphBuilder("m", TensorSpec((1, 10)))
    fc = builder.dense("input", 7)
    model = builder.build()
    assert node_macs(model, fc) == 10 * 7


def test_depthwise_separable_cheaper_than_full_conv():
    """MobileNet's whole point, at the MAC level."""
    full = GraphBuilder("f", TensorSpec((1, 8, 8, 16)))
    conv = full.conv("input", 16, k=3)
    full_model = full.build()
    separable = GraphBuilder("s", TensorSpec((1, 8, 8, 16)))
    dw = separable.depthwise("input", k=3)
    pw = separable.conv(dw, 16, k=1, pad=0)
    sep_model = separable.build()
    assert model_macs(sep_model) < model_macs(full_model) / 2


def test_zoo_compute_ordering_matches_paper_latencies():
    """RSNET > DSNET > MBNET in compute, like the Table II latencies."""
    macs = {
        "mbnet": model_macs(build_mobilenet()),
        "rsnet": model_macs(build_resnet()),
        "dsnet": model_macs(build_densenet()),
    }
    assert macs["rsnet"] > macs["dsnet"] > macs["mbnet"]


def test_unknown_node_rejected():
    model = build_mobilenet()
    with pytest.raises(ModelError):
        node_macs(model, "ghost")


def test_summary_totals_consistent():
    model = build_mobilenet()
    summary = summarize(model)
    assert sum(s["macs"] for s in summary.values()) == model_macs(model)
    total_params = sum(s["parameters"] for s in summary.values())
    assert total_params == sum(w.size for w in model.weights.values())
