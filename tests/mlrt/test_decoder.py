"""DecoderSession: incremental decoding == full-context execution."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.mlrt.decoder import DecoderSession, greedy, streamable
from repro.mlrt.zoo import build_mobilenet, build_tinylm


def test_tinylm_is_streamable_cnns_are_not():
    assert streamable(build_tinylm())
    assert not streamable(build_mobilenet())


def test_non_streamable_model_refused():
    with pytest.raises(ModelError, match="not streamable"):
        DecoderSession(build_mobilenet())


def test_prefill_matches_full_context_reference():
    # Feed exactly ctx tokens: the reference runs the whole window at
    # once, the session one position at a time.  Same logits row.
    ctx = 8
    model = build_tinylm(ctx=ctx, seed=3)
    tokens = [(i * 5) % 32 for i in range(ctx)]
    full = model.run_reference(
        np.array([tokens], dtype=np.float32)
    )
    session = DecoderSession(model)
    incremental = session.prefill(tokens)
    assert session.position == ctx
    np.testing.assert_allclose(incremental, full, rtol=1e-5, atol=1e-6)


def test_step_logits_match_reference_at_every_prefix():
    # Positional encodings are a function of absolute position and the
    # causal mask is implicit in the KV cache, so *every* prefix of the
    # incremental decode must agree with a fresh full-context run.
    model = build_tinylm(ctx=8, seed=11)
    tokens = [1, 7, 2, 9, 4, 1, 3, 6]
    session = DecoderSession(model)
    for length in range(1, len(tokens) + 1):
        got = session.step(tokens[length - 1])
        want = model.run_reference(
            np.array([tokens[:length]], dtype=np.float32)
        )
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)


def test_generate_is_deterministic_and_greedy():
    model = build_tinylm(seed=5)
    prompt = [3, 1, 4]
    a = DecoderSession(model).generate(prompt, 16)
    b = DecoderSession(model).generate(prompt, 16)
    assert a == b
    assert len(a) == 16
    assert all(0 <= t < 32 for t in a)
    # the first generated token is the argmax over the prefilled prompt
    assert a[0] == greedy(DecoderSession(model).prefill(prompt))


def test_kv_cache_grows_one_row_per_step():
    model = build_tinylm(blocks=2, seed=7)
    session = DecoderSession(model)
    session.step(1)
    per_row = session.kv_bytes
    assert per_row > 0
    session.step(2)
    session.step(3)
    assert session.kv_bytes == 3 * per_row


def test_empty_prompt_and_bad_budget_refused():
    model = build_tinylm()
    with pytest.raises(ModelError, match="empty prompt"):
        DecoderSession(model).prefill([])
    with pytest.raises(ModelError, match="at least 1"):
        DecoderSession(model).generate([1], 0)
