"""Operator correctness against naive references and known values."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.mlrt import layers


def naive_conv2d(x, w, b, stride, pad):
    n, h, wd, cin = x.shape
    kh, kw, _, cout = w.shape
    x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for bi in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[bi, i * stride : i * stride + kh, j * stride : j * stride + kw]
                for co in range(cout):
                    out[bi, i, j, co] = (patch * w[:, :, :, co]).sum() + b[co]
    return out


@pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
def test_conv2d_matches_naive(stride, pad):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 6, 6, 3)).astype(np.float32)
    w = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
    b = rng.standard_normal(4).astype(np.float32)
    fast = layers.conv2d(x, w, b, stride=stride, pad=pad)
    assert np.allclose(fast, naive_conv2d(x, w, b, stride, pad), atol=1e-4)


def test_depthwise_matches_per_channel_conv():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 5, 5, 3)).astype(np.float32)
    w = rng.standard_normal((3, 3, 3)).astype(np.float32)
    b = np.zeros(3, dtype=np.float32)
    out = layers.depthwise_conv2d(x, w, b, stride=1, pad=1)
    for channel in range(3):
        single = layers.conv2d(
            x[..., channel : channel + 1],
            w[..., channel : channel + 1, None],
            np.zeros(1, dtype=np.float32),
            stride=1,
            pad=1,
        )
        assert np.allclose(out[..., channel], single[..., 0], atol=1e-4)


def test_dense_known_values():
    x = np.array([[1.0, 2.0]], dtype=np.float32)
    w = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
    b = np.array([10.0, 20.0], dtype=np.float32)
    assert np.allclose(layers.dense(x, w, b), [[11.0, 22.0]])


def test_batch_norm_scale_shift():
    x = np.ones((1, 2, 2, 2), dtype=np.float32)
    out = layers.batch_norm(x, np.array([2.0, 3.0]), np.array([1.0, -1.0]))
    assert np.allclose(out[..., 0], 3.0)
    assert np.allclose(out[..., 1], 2.0)


def test_relu_and_relu6():
    x = np.array([-5.0, 0.0, 3.0, 10.0], dtype=np.float32)
    assert np.allclose(layers.relu(x), [0, 0, 3, 10])
    assert np.allclose(layers.relu6(x), [0, 0, 3, 6])


def test_add_and_concat():
    a = np.ones((1, 2, 2, 2), dtype=np.float32)
    b = np.full((1, 2, 2, 3), 2.0, dtype=np.float32)
    assert layers.concat(a, b).shape == (1, 2, 2, 5)
    assert np.allclose(layers.add(a, a), 2.0)


def test_max_and_avg_pool():
    x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
    assert np.allclose(
        layers.max_pool(x, size=2, stride=2)[0, :, :, 0], [[5, 7], [13, 15]]
    )
    assert np.allclose(
        layers.avg_pool(x, size=2, stride=2)[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]]
    )


def test_global_avg_pool():
    x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
    assert np.allclose(layers.global_avg_pool(x), [[3.0, 4.0]])


def test_softmax_properties():
    x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
    out = layers.softmax(x)
    assert out.sum() == pytest.approx(1.0, abs=1e-5)
    assert (np.diff(out[0]) > 0).all()


def test_softmax_numerically_stable():
    out = layers.softmax(np.array([[1000.0, 1000.0]], dtype=np.float32))
    assert np.isfinite(out).all()


def test_shape_inference_matches_execution():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((1, 8, 8, 3)).astype(np.float32)
    w = rng.standard_normal((3, 3, 3, 5)).astype(np.float32)
    b = np.zeros(5, dtype=np.float32)
    out = layers.conv2d(x, w, b, stride=2, pad=1)
    inferred = layers.infer_shape(
        "conv2d", [x.shape], {"stride": 2, "pad": 1}, {"weight": w.shape}
    )
    assert tuple(out.shape) == inferred


def test_infer_shape_validates():
    with pytest.raises(ModelError):
        layers.infer_shape("add", [(1, 2), (1, 3)], {}, {})
    with pytest.raises(ModelError):
        layers.infer_shape("nonsense", [(1,)], {}, {})


def test_run_op_unknown_rejected():
    with pytest.raises(ModelError):
        layers.run_op("nonsense", [np.zeros(1)], {}, {})
