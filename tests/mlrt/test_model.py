"""Model graph IR, serialisation, and the graph builder."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.mlrt.model import GraphBuilder, GraphNode, Model
from repro.mlrt.tensor import TensorSpec


def small_model():
    builder = GraphBuilder("tiny", TensorSpec((1, 8, 8, 3)), seed=3)
    x = builder.relu(builder.conv("input", 4))
    x = builder.max_pool(x)
    x = builder.softmax(builder.dense(x, 5))
    return builder.build()


def test_builder_produces_runnable_model():
    model = small_model()
    x = np.random.default_rng(0).standard_normal((1, 8, 8, 3)).astype(np.float32)
    out = model.run_reference(x)
    assert out.shape == (1, 5)
    assert out.sum() == pytest.approx(1.0, abs=1e-5)


def test_shape_inference_consistency():
    model = small_model()
    assert model.shape_of("input") == (1, 8, 8, 3)
    assert model.output_shape == (1, 5)


def test_serialize_roundtrip_preserves_output():
    model = small_model()
    x = np.random.default_rng(1).standard_normal((1, 8, 8, 3)).astype(np.float32)
    restored = Model.deserialize(model.serialize())
    assert restored.name == model.name
    assert np.allclose(model.run_reference(x), restored.run_reference(x))


def test_serialize_roundtrip_preserves_weights():
    model = small_model()
    restored = Model.deserialize(model.serialize())
    assert set(restored.weights) == set(model.weights)
    for name in model.weights:
        assert np.array_equal(restored.weights[name], model.weights[name])


def test_deserialize_rejects_garbage():
    with pytest.raises(ModelError):
        Model.deserialize(b"not a model at all")


def test_deserialize_rejects_corrupt_header():
    blob = bytearray(small_model().serialize())
    blob[14] ^= 0xFF  # inside the JSON header
    with pytest.raises(ModelError):
        Model.deserialize(bytes(blob))


def test_deserialize_rejects_truncated_weights():
    blob = small_model().serialize()
    with pytest.raises(ModelError):
        Model.deserialize(blob[:-10])


def test_weight_bytes_counts_payload():
    model = small_model()
    assert model.weight_bytes == sum(w.nbytes for w in model.weights.values())


def test_unordered_graph_rejected():
    spec = TensorSpec((1, 4))
    nodes = [GraphNode("late", "relu", ("missing",))]
    with pytest.raises(ModelError, match="topologically"):
        Model("bad", spec, nodes, {})


def test_empty_model_has_no_output():
    model = Model("empty", TensorSpec((1, 4)), [], {})
    with pytest.raises(ModelError):
        _ = model.output_node


def test_residual_and_concat_graphs():
    builder = GraphBuilder("res", TensorSpec((1, 4, 4, 2)), seed=5)
    trunk = builder.conv("input", 2)
    branch = builder.relu(trunk)
    joined = builder.add(trunk, branch)
    both = builder.concat(joined, trunk)
    model = builder.build()
    assert model.shape_of(both) == (1, 4, 4, 4)
    x = np.zeros((1, 4, 4, 2), dtype=np.float32)
    assert model.run_reference(x).shape == (1, 4, 4, 4)


def test_builder_deterministic_by_seed():
    a = GraphBuilder("m", TensorSpec((1, 4, 4, 1)), seed=9)
    a.conv("input", 2)
    b = GraphBuilder("m", TensorSpec((1, 4, 4, 1)), seed=9)
    b.conv("input", 2)
    for name in a.weights:
        assert np.array_equal(a.weights[name], b.weights[name])


def test_tensor_spec_validation():
    with pytest.raises(ModelError):
        TensorSpec((1, 0, 4))
    with pytest.raises(ModelError):
        TensorSpec((1, 4), dtype="float64")
    assert TensorSpec((2, 3)).nbytes == 24
