"""The model zoo: paper profile values and runnable architectures."""

import pytest

from repro.errors import ModelError
from repro.mlrt.zoo import FRAMEWORKS, MB, PROFILES, profile


def test_table1_model_sizes():
    assert profile("MBNET").model_bytes == 17 * MB
    assert profile("RSNET").model_bytes == 170 * MB
    assert profile("DSNET").model_bytes == 44 * MB


def test_table1_buffer_sizes():
    assert profile("MBNET").tvm_buffer_bytes == 30 * MB
    assert profile("MBNET").tflm_buffer_bytes == 5 * MB
    assert profile("RSNET").tvm_buffer_bytes == 205 * MB
    assert profile("RSNET").tflm_buffer_bytes == 24 * MB
    assert profile("DSNET").tvm_buffer_bytes == 55 * MB
    assert profile("DSNET").tflm_buffer_bytes == 12 * MB


def test_table2_hot_latencies():
    assert profile("MBNET").tvm_exec_s == pytest.approx(0.06579)
    assert profile("RSNET").tvm_exec_s == pytest.approx(0.98296)
    assert profile("DSNET").tvm_exec_s == pytest.approx(0.38881)


def test_runtime_init_ratios():
    """Section VI-A: TVM runtime init is 39.6/21.3/15.0% of exec."""
    assert profile("MBNET").tvm_runtime_init_s / profile("MBNET").tvm_exec_s == pytest.approx(0.396)
    assert profile("RSNET").tvm_runtime_init_s / profile("RSNET").tvm_exec_s == pytest.approx(0.213)
    assert profile("DSNET").tvm_runtime_init_s / profile("DSNET").tvm_exec_s == pytest.approx(0.15)


def test_appendix_enclave_memory_configs():
    assert profile("MBNET").tvm_enclave_bytes == 0x4000000
    assert profile("RSNET").tvm_enclave_bytes == 0x23000000
    assert profile("DSNET").tvm_enclave_bytes == 0x8000000
    assert profile("MBNET").tflm_enclave_bytes == 0x3000000
    assert profile("RSNET").tflm_enclave_bytes == 0x16000000
    assert profile("DSNET").tflm_enclave_bytes == 0x6000000


def test_azure_download_times():
    assert profile("MBNET").azure_download_s == pytest.approx(0.180)
    assert profile("DSNET").azure_download_s == pytest.approx(0.360)
    assert profile("RSNET").azure_download_s == pytest.approx(2.100)


def test_lambda_ordering():
    """TFLM buffers are fractions of the model; TVM buffers exceed it."""
    for prof in PROFILES.values():
        assert prof.lam["tflm"] < 1.0
        assert prof.lam["tvm"] > 1.0


def test_accessors_validate_framework():
    prof = profile("MBNET")
    for accessor in (prof.buffer_bytes, prof.enclave_bytes, prof.exec_s, prof.runtime_init_s):
        with pytest.raises(ModelError):
            accessor("onnx")
    for framework in FRAMEWORKS:
        assert prof.buffer_bytes(framework) > 0


def test_unknown_model_rejected():
    with pytest.raises(ModelError):
        profile("GPT4")


def test_lookup_case_insensitive():
    assert profile("mbnet") is profile("MBNET")


@pytest.mark.parametrize("name", list(PROFILES))
def test_builders_produce_named_architectures(name):
    model = PROFILES[name].builder()
    ops = {node.op for node in model.nodes}
    if name == "MBNET":
        assert "depthwise_conv2d" in ops  # depthwise-separable blocks
    if name == "RSNET":
        assert "add" in ops  # residual connections
    if name == "DSNET":
        assert "concat" in ops  # dense connectivity
    assert model.nodes[-1].op == "softmax"
