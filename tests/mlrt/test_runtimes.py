"""TVM-style and TFLM-style runtimes: equivalence and memory behaviour."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.mlrt.framework import get_framework
from repro.mlrt.tflm_rt import plan_model_arena
from repro.mlrt.zoo import build_densenet, build_mobilenet, build_resnet

BUILDERS = [build_mobilenet, build_resnet, build_densenet]


@pytest.fixture(params=BUILDERS, ids=["mbnet", "rsnet", "dsnet"])
def model(request):
    return request.param()


def make_input(model, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_spec.shape).astype(np.float32)


def test_frameworks_registered():
    assert get_framework("tvm").name == "tvm"
    assert get_framework("tflm").name == "tflm"


def test_unknown_framework_rejected():
    with pytest.raises(ModelError):
        get_framework("pytorch")


def test_runtimes_agree_with_reference(model):
    x = make_input(model)
    reference = model.run_reference(x)
    for name in ("tvm", "tflm"):
        runtime = get_framework(name).create_runtime(model)
        assert np.allclose(runtime.execute(x), reference, atol=1e-5), name


def test_runtimes_agree_with_each_other(model):
    x = make_input(model, seed=7)
    tvm = get_framework("tvm").create_runtime(model)
    tflm = get_framework("tflm").create_runtime(model)
    assert np.allclose(tvm.execute(x), tflm.execute(x), atol=1e-5)


def test_tflm_buffer_smaller_than_tvm(model):
    tvm = get_framework("tvm").create_runtime(model)
    tflm = get_framework("tflm").create_runtime(model)
    assert tflm.buffer_bytes < tvm.buffer_bytes


def test_tvm_buffer_includes_weight_copies(model):
    tvm = get_framework("tvm").create_runtime(model)
    assert tvm.buffer_bytes >= model.weight_bytes


def test_tflm_arena_excludes_weights(model):
    tflm = get_framework("tflm").create_runtime(model)
    plan = plan_model_arena(model)
    assert tflm.buffer_bytes == plan.total_bytes


def test_repeated_execution_consistent(model):
    x = make_input(model, seed=3)
    runtime = get_framework("tflm").create_runtime(model)
    first = runtime.execute(x).copy()
    runtime.execute(make_input(model, seed=4))
    assert np.allclose(runtime.execute(x), first, atol=1e-6)


def test_prepare_output_roundtrip(model):
    x = make_input(model)
    runtime = get_framework("tvm").create_runtime(model)
    result = runtime.execute(x)
    raw = runtime.prepare_output()
    assert np.allclose(np.frombuffer(raw, dtype=np.float32), result.ravel())


def test_prepare_output_requires_execute(model):
    runtime = get_framework("tvm").create_runtime(model)
    with pytest.raises(ModelError):
        runtime.prepare_output()


def test_clear_drops_output(model):
    runtime = get_framework("tflm").create_runtime(model)
    runtime.execute(make_input(model))
    runtime.clear()
    with pytest.raises(ModelError):
        runtime.prepare_output()


def test_tflm_rejects_wrong_input_shape(model):
    runtime = get_framework("tflm").create_runtime(model)
    with pytest.raises(ModelError):
        runtime.execute(np.zeros((1, 2, 2, 3), dtype=np.float32))


def test_artifact_load_via_framework(model):
    blob = model.serialize()
    loaded = get_framework("tvm").load_model(blob)
    x = make_input(model)
    assert np.allclose(loaded.run_reference(x), model.run_reference(x))
