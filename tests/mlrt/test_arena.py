"""The tensor-arena planner: packing correctness and reuse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.mlrt.arena import TensorLife, plan_arena


def overlapping_bytes(plan, a: TensorLife, b: TensorLife) -> bool:
    start_a, end_a = plan.offsets[a.name], plan.offsets[a.name] + a.nbytes
    start_b, end_b = plan.offsets[b.name], plan.offsets[b.name] + b.nbytes
    return start_a < end_b and start_b < end_a


def test_disjoint_lifetimes_share_bytes():
    tensors = [
        TensorLife("a", 1000, 0, 1),
        TensorLife("b", 1000, 2, 3),  # a is dead by now
    ]
    plan = plan_arena(tensors)
    assert plan.total_bytes < 2048 + 64  # reuse happened


def test_overlapping_lifetimes_never_share():
    tensors = [
        TensorLife("a", 1000, 0, 5),
        TensorLife("b", 1000, 2, 3),
    ]
    plan = plan_arena(tensors)
    assert not overlapping_bytes(plan, tensors[0], tensors[1])


def test_chain_reuses_like_tflm():
    """A linear chain x0->x1->...->xN needs only ~2 slots."""
    tensors = [TensorLife(f"x{i}", 1024, i, i + 1) for i in range(10)]
    plan = plan_arena(tensors)
    assert plan.total_bytes <= 2 * 1024 + 128


def test_zero_size_tensor_handled():
    plan = plan_arena([TensorLife("empty", 0, 0, 1)])
    assert plan.total_bytes > 0  # aligned placeholder slot


def test_invalid_lifetime_rejected():
    with pytest.raises(ModelError):
        TensorLife("bad", 10, 5, 2)
    with pytest.raises(ModelError):
        TensorLife("bad", -1, 0, 1)


def test_empty_plan():
    plan = plan_arena([])
    assert plan.total_bytes == 0
    assert plan.offsets == {}


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(
        st.tuples(
            st.integers(0, 4096),    # size
            st.integers(0, 20),      # first use
            st.integers(0, 10),      # extra lifetime
        ),
        min_size=1,
        max_size=25,
    )
)
def test_no_live_overlap_property(specs):
    """Tensors with overlapping live ranges never overlap in the arena."""
    tensors = [
        TensorLife(f"t{i}", size, first, first + extra)
        for i, (size, first, extra) in enumerate(specs)
    ]
    plan = plan_arena(tensors)
    for i, a in enumerate(tensors):
        assert plan.offsets[a.name] >= 0
        for b in tensors[i + 1 :]:
            if a.overlaps(b) and a.nbytes and b.nbytes:
                assert not overlapping_bytes(plan, a, b), (a, b, plan.offsets)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=15)
)
def test_all_live_lower_bound_property(sizes):
    """If every tensor is live simultaneously, the arena holds them all."""
    tensors = [TensorLife(f"t{i}", s, 0, 100) for i, s in enumerate(sizes)]
    plan = plan_arena(tensors)
    assert plan.total_bytes >= sum(sizes)
