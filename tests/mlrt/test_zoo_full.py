"""Full-depth architecture builders: structure counts and execution."""

import numpy as np
import pytest

from repro.mlrt.flops import model_macs
from repro.mlrt.framework import get_framework
from repro.mlrt.zoo import build_densenet, build_mobilenet, build_resnet
from repro.mlrt.zoo_full import (
    build_densenet121_full,
    build_mobilenet_full,
    build_resnet101_full,
)


@pytest.fixture(scope="module")
def mbnet():
    return build_mobilenet_full()


@pytest.fixture(scope="module")
def rsnet():
    return build_resnet101_full()


@pytest.fixture(scope="module")
def dsnet():
    return build_densenet121_full()


def test_mobilenet_has_13_separable_blocks(mbnet):
    depthwise = [n for n in mbnet.nodes if n.op == "depthwise_conv2d"]
    assert len(depthwise) == 13
    pointwise = [
        n for n in mbnet.nodes
        if n.op == "conv2d" and mbnet.weights[f"{n.name}.weight"].shape[0] == 1
    ]
    assert len(pointwise) == 13  # one 1x1 conv per block


def test_resnet101_has_33_bottlenecks(rsnet):
    adds = [n for n in rsnet.nodes if n.op == "add"]
    assert len(adds) == 3 + 4 + 23 + 3
    # Each bottleneck contributes exactly three convolutions (plus
    # occasional projection shortcuts).
    convs = [n for n in rsnet.nodes if n.op == "conv2d"]
    assert len(convs) >= 3 * 33


def test_densenet121_has_58_dense_layers(dsnet):
    concats = [n for n in dsnet.nodes if n.op == "concat"]
    assert len(concats) == 6 + 12 + 24 + 16
    pools = [n for n in dsnet.nodes if n.op == "avg_pool"]
    assert len(pools) == 3  # three transitions


def test_full_models_execute_and_normalise(mbnet, rsnet, dsnet):
    for model in (mbnet, rsnet, dsnet):
        x = np.random.default_rng(0).standard_normal(model.input_spec.shape)
        out = model.run_reference(x.astype(np.float32))
        assert out.shape == (1, 10)
        assert out.sum() == pytest.approx(1.0, abs=1e-4)


def test_full_models_run_in_both_runtimes(mbnet):
    x = np.random.default_rng(1).standard_normal(mbnet.input_spec.shape)
    x = x.astype(np.float32)
    tvm_out = get_framework("tvm").create_runtime(mbnet).execute(x)
    tflm_out = get_framework("tflm").create_runtime(mbnet).execute(x)
    assert np.allclose(tvm_out, tflm_out, atol=1e-5)


def test_full_models_dwarf_the_shallow_ones():
    assert model_macs(build_mobilenet_full()) > 3 * model_macs(build_mobilenet())
    assert model_macs(build_resnet101_full()) > 5 * model_macs(build_resnet())
    assert model_macs(build_densenet121_full()) > 3 * model_macs(build_densenet())


def test_compute_ordering_holds_at_full_depth(mbnet, rsnet, dsnet):
    """RSNET > DSNET > MBNET, like the paper's latencies."""
    assert model_macs(rsnet) > model_macs(dsnet) > model_macs(mbnet)


def test_serialization_roundtrip_full(dsnet):
    from repro.mlrt.model import Model

    restored = Model.deserialize(dsnet.serialize())
    assert len(restored.nodes) == len(dsnet.nodes)
