"""Int8 weight quantization: size, accuracy, robustness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.mlrt.quantize import (
    dequantize_array,
    evaluate_quantization,
    load_quantized,
    quantize_array,
    quantize_model,
)
from repro.mlrt.zoo import build_mobilenet, build_resnet


def test_quantize_array_roundtrip_error_bounded():
    rng = np.random.default_rng(0)
    array = rng.standard_normal((64, 64)).astype(np.float32)
    quantized, scale = quantize_array(array)
    restored = dequantize_array(quantized, scale)
    assert np.abs(restored - array).max() <= scale  # half-step rounding bound


def test_quantize_zero_array():
    quantized, scale = quantize_array(np.zeros((4, 4), dtype=np.float32))
    assert scale == 1.0
    assert not quantized.any()


def test_quantize_preserves_shape_and_dtype():
    quantized, _ = quantize_array(np.ones((2, 3, 4), dtype=np.float32))
    assert quantized.shape == (2, 3, 4)
    assert quantized.dtype == np.int8


def test_model_artifact_smaller():
    # The weight payload shrinks exactly 4x (float32 -> int8); on the
    # tiny test models the JSON header dilutes the whole-artifact ratio.
    model = build_mobilenet()
    report = evaluate_quantization(
        model, np.zeros(model.input_spec.shape, dtype=np.float32)
    )
    assert report.compression > 1.8
    quantized_weight_bytes = sum(
        w.size for w in model.weights.values()  # int8: one byte per element
    )
    assert model.weight_bytes == 4 * quantized_weight_bytes


def test_quantized_model_outputs_close():
    model = build_resnet()
    x = np.random.default_rng(1).standard_normal(model.input_spec.shape)
    x = x.astype(np.float32)
    report = evaluate_quantization(model, x)
    assert report.max_output_error < 0.05  # softmax outputs in [0, 1]


def test_quantized_roundtrip_runs_in_runtimes():
    from repro.mlrt.framework import get_framework

    model = build_mobilenet()
    restored = load_quantized(quantize_model(model))
    x = np.random.default_rng(2).standard_normal(model.input_spec.shape)
    x = x.astype(np.float32)
    out = get_framework("tflm").create_runtime(restored).execute(x)
    assert np.allclose(out, restored.run_reference(x), atol=1e-5)


def test_load_rejects_float_artifact():
    model = build_mobilenet()
    with pytest.raises(ModelError, match="magic"):
        load_quantized(model.serialize())


def test_load_rejects_truncation():
    blob = quantize_model(build_mobilenet())
    with pytest.raises(ModelError):
        load_quantized(blob[:-5])


def test_quantization_deterministic():
    model = build_mobilenet()
    assert quantize_model(model) == quantize_model(model)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(-100.0, 100.0, allow_nan=False), min_size=1, max_size=50
    )
)
def test_quantize_error_bound_property(values):
    array = np.array(values, dtype=np.float32)
    quantized, scale = quantize_array(array)
    restored = dequantize_array(quantized, scale)
    assert np.abs(restored - array).max() <= scale * 0.5 + 1e-6
