"""Chunked AEAD (STREAM): roundtrips and chunk-level attacks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import TAG_SIZE
from repro.crypto.stream import (
    _HEADER,
    DEFAULT_CHUNK_SIZE,
    iter_open_stream,
    open_stream,
    seal_stream,
)
from repro.errors import CryptoError, InvalidTag

KEY = b"k" * 16


def test_roundtrip_multi_chunk():
    payload = bytes(range(256)) * 40  # 10240 bytes
    sealed = seal_stream(KEY, payload, chunk_size=1000)
    assert open_stream(KEY, sealed) == payload


def test_roundtrip_exact_chunk_boundary():
    payload = b"x" * 3000
    sealed = seal_stream(KEY, payload, chunk_size=1000)
    assert open_stream(KEY, sealed) == payload


def test_roundtrip_empty():
    sealed = seal_stream(KEY, b"")
    assert open_stream(KEY, sealed) == b""


def test_iteration_yields_chunks():
    payload = b"abcdefgh"
    sealed = seal_stream(KEY, payload, chunk_size=3)
    chunks = list(iter_open_stream(KEY, sealed))
    assert chunks == [b"abc", b"def", b"gh"]


def test_aad_binding():
    sealed = seal_stream(KEY, b"model-bytes", aad=b"model-1")
    assert open_stream(KEY, sealed, aad=b"model-1") == b"model-bytes"
    with pytest.raises(InvalidTag):
        open_stream(KEY, sealed, aad=b"model-2")


def test_wrong_key_rejected():
    sealed = seal_stream(KEY, b"payload")
    with pytest.raises(InvalidTag):
        open_stream(b"j" * 16, sealed)


def _chunks_of(sealed, chunk_size):
    header, body = sealed[: _HEADER.size], sealed[_HEADER.size :]
    wire = chunk_size + TAG_SIZE
    return header, [body[i : i + wire] for i in range(0, len(body), wire)]


def test_chunk_reorder_detected():
    sealed = seal_stream(KEY, b"A" * 1000 + b"B" * 1000 + b"C" * 1000, chunk_size=1000)
    header, chunks = _chunks_of(sealed, 1000)
    swapped = header + chunks[1] + chunks[0] + chunks[2]
    with pytest.raises(InvalidTag, match="chunk 0"):
        open_stream(KEY, swapped)


def test_chunk_duplication_detected():
    sealed = seal_stream(KEY, b"A" * 1000 + b"B" * 1000, chunk_size=1000)
    header, chunks = _chunks_of(sealed, 1000)
    duplicated = header + chunks[0] + chunks[0] + chunks[1]
    with pytest.raises(InvalidTag):
        open_stream(KEY, duplicated)


def test_truncation_detected():
    """Dropping the final chunk cannot yield a shorter 'valid' stream."""
    sealed = seal_stream(KEY, b"A" * 1000 + b"B" * 1000 + b"C" * 500, chunk_size=1000)
    header, chunks = _chunks_of(sealed, 1000)
    truncated = header + chunks[0] + chunks[1]
    with pytest.raises(InvalidTag):
        open_stream(KEY, truncated)


def test_header_tampering_detected():
    sealed = bytearray(seal_stream(KEY, b"payload"))
    sealed[0] ^= 1  # magic
    with pytest.raises(InvalidTag):
        open_stream(KEY, bytes(sealed))
    with pytest.raises(InvalidTag):
        open_stream(KEY, b"short")


def test_invalid_chunk_size_rejected():
    with pytest.raises(CryptoError):
        seal_stream(KEY, b"x", chunk_size=0)


def test_streams_are_unlinkable():
    """Two seals of the same payload share no ciphertext (fresh stream id)."""
    a = seal_stream(KEY, b"same payload")
    b = seal_stream(KEY, b"same payload")
    assert a[_HEADER.size:] != b[_HEADER.size:]


def test_default_chunk_size_large_payload():
    payload = b"z" * (2 * DEFAULT_CHUNK_SIZE + 123)
    sealed = seal_stream(KEY, payload)
    assert open_stream(KEY, sealed) == payload


@settings(max_examples=25, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=5000),
    chunk_size=st.integers(1, 700),
)
def test_roundtrip_property(payload, chunk_size):
    sealed = seal_stream(KEY, payload, chunk_size=chunk_size)
    assert open_stream(KEY, sealed) == payload


@settings(max_examples=15, deadline=None)
@given(
    payload=st.binary(min_size=10, max_size=2000),
    flip=st.integers(0, 10**9),
)
def test_any_bitflip_detected_property(payload, flip):
    sealed = bytearray(seal_stream(KEY, payload, chunk_size=256))
    body_start = _HEADER.size
    bit = flip % ((len(sealed) - body_start) * 8)
    sealed[body_start + bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(InvalidTag):
        open_stream(KEY, bytes(sealed))
