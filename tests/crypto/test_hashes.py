"""SHA-256 / HMAC / HKDF against published test vectors."""

import pytest

from repro.crypto.hashes import hkdf, hmac_sha256, sha256


def test_sha256_empty():
    assert (
        sha256(b"").hex()
        == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_sha256_abc():
    assert (
        sha256(b"abc").hex()
        == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_hmac_rfc4231_case1():
    key = b"\x0b" * 20
    assert (
        hmac_sha256(key, b"Hi There").hex()
        == "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


def test_hmac_rfc4231_case2():
    assert (
        hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex()
        == "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )


def test_hkdf_rfc5869_case1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf(ikm, length=42, salt=salt, info=info)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_rfc5869_case3_no_salt_no_info():
    okm = hkdf(b"\x0b" * 22, length=42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_hkdf_output_lengths():
    for length in (1, 16, 32, 33, 64, 255):
        assert len(hkdf(b"secret", length=length)) == length


def test_hkdf_invalid_length():
    with pytest.raises(ValueError):
        hkdf(b"secret", length=0)
    with pytest.raises(ValueError):
        hkdf(b"secret", length=255 * 32 + 1)


def test_hkdf_info_separates_keys():
    assert hkdf(b"secret", info=b"a") != hkdf(b"secret", info=b"b")
