"""AES-GCM: NIST vectors, authentication, AAD binding, seal/open."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AESGCM, NONCE_SIZE, TAG_SIZE
from repro.crypto.keys import SymmetricKey
from repro.errors import InvalidTag

# NIST GCM test vectors (McGrew & Viega test cases 1-4, AES-128).
NIST_CASES = [
    # (key, iv, plaintext, aad, ciphertext, tag)
    (
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "",
        "",
        "58e2fccefa7e3061367f1d57a4e7455a",
    ),
    (
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "00000000000000000000000000000000",
        "",
        "0388dace60b6a392f328c2b971b2fe78",
        "ab6e47d42cec13bdf53a67b21257bddf",
    ),
    (
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255",
        "",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985",
        "4d5c2af327cd64a62cf35abd2ba6fab4",
    ),
    (
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091",
        "5bc94fbc3221a5db94fae95ae7121a47",
    ),
]


@pytest.mark.parametrize("key,iv,pt,aad,ct,tag", NIST_CASES)
def test_nist_encrypt_vectors(key, iv, pt, aad, ct, tag):
    cipher = AESGCM(bytes.fromhex(key))
    out = cipher.encrypt(bytes.fromhex(iv), bytes.fromhex(pt), bytes.fromhex(aad))
    assert out[:-TAG_SIZE].hex() == ct
    assert out[-TAG_SIZE:].hex() == tag


@pytest.mark.parametrize("key,iv,pt,aad,ct,tag", NIST_CASES)
def test_nist_decrypt_vectors(key, iv, pt, aad, ct, tag):
    cipher = AESGCM(bytes.fromhex(key))
    wire = bytes.fromhex(ct) + bytes.fromhex(tag)
    assert cipher.decrypt(bytes.fromhex(iv), wire, bytes.fromhex(aad)).hex() == pt


def test_tampered_ciphertext_rejected():
    cipher = AESGCM(b"k" * 16)
    wire = cipher.encrypt(b"n" * 12, b"attack at dawn")
    for position in range(len(wire)):
        corrupted = bytearray(wire)
        corrupted[position] ^= 0x01
        with pytest.raises(InvalidTag):
            cipher.decrypt(b"n" * 12, bytes(corrupted))


def test_tampered_aad_rejected():
    cipher = AESGCM(b"k" * 16)
    wire = cipher.encrypt(b"n" * 12, b"payload", aad=b"model-1")
    with pytest.raises(InvalidTag):
        cipher.decrypt(b"n" * 12, wire, aad=b"model-2")


def test_wrong_nonce_rejected():
    cipher = AESGCM(b"k" * 16)
    wire = cipher.encrypt(b"n" * 12, b"payload")
    with pytest.raises(InvalidTag):
        cipher.decrypt(b"m" * 12, wire)


def test_wrong_key_rejected():
    wire = AESGCM(b"k" * 16).encrypt(b"n" * 12, b"payload")
    with pytest.raises(InvalidTag):
        AESGCM(b"j" * 16).decrypt(b"n" * 12, wire)


def test_truncated_ciphertext_rejected():
    cipher = AESGCM(b"k" * 16)
    with pytest.raises(InvalidTag):
        cipher.decrypt(b"n" * 12, b"short")


def test_non_default_nonce_length_supported():
    cipher = AESGCM(b"k" * 16)
    wire = cipher.encrypt(b"long-nonce-16byte", b"payload")
    assert cipher.decrypt(b"long-nonce-16byte", wire) == b"payload"


def test_seal_open_roundtrip():
    cipher = AESGCM(b"k" * 16)
    blob = cipher.seal(b"secret model", aad=b"ctx")
    assert cipher.open(blob, aad=b"ctx") == b"secret model"
    assert len(blob) == NONCE_SIZE + len(b"secret model") + TAG_SIZE


def test_seal_uses_fresh_nonces():
    cipher = AESGCM(b"k" * 16)
    assert cipher.seal(b"x") != cipher.seal(b"x")


def test_open_rejects_short_blob():
    with pytest.raises(InvalidTag):
        AESGCM(b"k" * 16).open(b"tiny")


def test_accepts_symmetric_key_objects():
    key = SymmetricKey.generate()
    cipher = AESGCM(key)
    assert cipher.open(cipher.seal(b"data")) == b"data"


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(min_size=0, max_size=200),
    aad=st.binary(min_size=0, max_size=64),
)
def test_roundtrip_property(key, nonce, plaintext, aad):
    cipher = AESGCM(key)
    assert cipher.decrypt(nonce, cipher.encrypt(nonce, plaintext, aad), aad) == plaintext


@settings(max_examples=15, deadline=None)
@given(
    plaintext=st.binary(min_size=1, max_size=100),
    flip=st.integers(min_value=0, max_value=10_000),
)
def test_any_bitflip_detected_property(plaintext, flip):
    cipher = AESGCM(b"k" * 16)
    wire = bytearray(cipher.encrypt(b"n" * 12, plaintext))
    index = flip % (len(wire) * 8)
    wire[index // 8] ^= 1 << (index % 8)
    with pytest.raises(InvalidTag):
        cipher.decrypt(b"n" * 12, bytes(wire))


def test_large_payload_roundtrip():
    cipher = AESGCM(b"k" * 16)
    payload = bytes(range(256)) * 2048  # 512 KiB
    assert cipher.open(cipher.seal(payload)) == payload
