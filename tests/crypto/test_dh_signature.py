"""Diffie-Hellman exchange and Schnorr signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import group
from repro.crypto.dh import DHKeyPair, DHPublicKey, derive_session_key
from repro.crypto.signature import Signature, SigningKey, VerifyKey
from repro.errors import CryptoError, InvalidSignature


def test_group_parameters_consistent():
    # P is a safe prime: Q = (P-1)/2 must also make G an order-Q element.
    assert group.P == 2 * group.Q + 1
    assert pow(group.G, group.Q, group.P) == 1
    assert group.is_group_element(group.G)


def test_shared_secret_agreement():
    a, b = DHKeyPair.generate(), DHKeyPair.generate()
    assert a.shared_secret(b.public) == b.shared_secret(a.public)


def test_distinct_pairs_distinct_secrets():
    a, b, c = (DHKeyPair.generate() for _ in range(3))
    assert a.shared_secret(b.public) != a.shared_secret(c.public)


@pytest.mark.parametrize("bad", [0, 1, group.P - 1, group.P, group.P + 5])
def test_invalid_public_values_rejected(bad):
    with pytest.raises(CryptoError):
        DHPublicKey(bad)


def test_non_subgroup_element_rejected():
    # Find a quadratic non-residue: it lies outside the order-Q subgroup.
    non_residue = next(
        x for x in range(2, 100) if pow(x, group.Q, group.P) != 1
    )
    with pytest.raises(CryptoError):
        DHPublicKey(non_residue)


def test_session_key_depends_on_transcript():
    secret = b"shared"
    assert derive_session_key(secret, b"t1") != derive_session_key(secret, b"t2")


def test_session_key_size():
    assert len(derive_session_key(b"s", b"t", size=32)) == 32


def test_sign_verify_roundtrip():
    key = SigningKey.generate()
    signature = key.sign(b"message")
    key.verify_key.verify(b"message", signature)  # no exception


def test_signature_rejects_other_message():
    key = SigningKey.generate()
    signature = key.sign(b"message")
    with pytest.raises(InvalidSignature):
        key.verify_key.verify(b"other", signature)


def test_signature_rejects_other_key():
    signature = SigningKey.generate().sign(b"message")
    with pytest.raises(InvalidSignature):
        SigningKey.generate().verify_key.verify(b"message", signature)


def test_signature_rejects_tampered_scalars():
    key = SigningKey.generate()
    sig = key.sign(b"m")
    with pytest.raises(InvalidSignature):
        key.verify_key.verify(b"m", Signature(e=sig.e ^ 1, s=sig.s))
    with pytest.raises(InvalidSignature):
        key.verify_key.verify(b"m", Signature(e=sig.e, s=(sig.s + 1) % group.Q))


def test_signature_rejects_out_of_range_scalars():
    key = SigningKey.generate()
    sig = key.sign(b"m")
    with pytest.raises(InvalidSignature):
        key.verify_key.verify(b"m", Signature(e=group.Q, s=sig.s))


def test_signature_encoding_roundtrip():
    sig = SigningKey.generate().sign(b"m")
    assert Signature.from_bytes(sig.to_bytes()) == sig


def test_signature_encoding_rejects_bad_length():
    with pytest.raises(InvalidSignature):
        Signature.from_bytes(b"\x00" * 10)


def test_verify_key_encoding_roundtrip():
    vk = SigningKey.generate().verify_key
    assert VerifyKey.from_bytes(vk.to_bytes()) == vk


def test_invalid_verify_key_rejected():
    bad = VerifyKey(2)  # not in the order-Q subgroup
    sig = SigningKey.generate().sign(b"m")
    with pytest.raises(InvalidSignature):
        bad.verify(b"m", sig)


@settings(max_examples=5, deadline=None)
@given(message=st.binary(min_size=0, max_size=64))
def test_sign_verify_property(message):
    key = SigningKey.generate()
    key.verify_key.verify(message, key.sign(message))
