"""Symmetric key material and fingerprints."""

import pytest

from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey, random_bytes
from repro.errors import InvalidKey


def test_generate_sizes():
    for size in (16, 24, 32):
        assert len(SymmetricKey.generate(size)) == size


def test_generate_default_is_aes128():
    assert len(SymmetricKey.generate()) == 16


def test_invalid_sizes_rejected():
    with pytest.raises(InvalidKey):
        SymmetricKey(b"short")
    with pytest.raises(InvalidKey):
        SymmetricKey.generate(17)


def test_fingerprint_is_sha256_of_material():
    key = SymmetricKey(b"0123456789abcdef")
    assert key.fingerprint == sha256(b"0123456789abcdef").hex()


def test_fingerprint_stable_and_distinct():
    a, b = SymmetricKey.generate(), SymmetricKey.generate()
    assert a.fingerprint == a.fingerprint
    assert a.fingerprint != b.fingerprint


def test_bytes_conversion():
    key = SymmetricKey(b"0123456789abcdef")
    assert bytes(key) == b"0123456789abcdef"


def test_repr_hides_material():
    key = SymmetricKey(b"0123456789abcdef")
    assert "0123456789abcdef" not in repr(key)


def test_random_bytes_length_and_freshness():
    assert len(random_bytes(12)) == 12
    assert random_bytes(16) != random_bytes(16)
