"""AES block cipher: FIPS-197 vectors, batch path, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.errors import InvalidKey

# FIPS-197 Appendix C example vectors: (key, plaintext, ciphertext)
FIPS_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_fips_encrypt_vectors(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == ciphertext


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_fips_decrypt_vectors(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() == plaintext


@pytest.mark.parametrize("size,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(size, rounds):
    assert AES(b"\x00" * size).rounds == rounds


def test_batch_matches_scalar():
    cipher = AES(b"0123456789abcdef")
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
    batch = cipher.encrypt_blocks(blocks)
    for i in range(64):
        assert batch[i].tobytes() == cipher.encrypt_block(blocks[i].tobytes())


def test_batch_is_pure():
    cipher = AES(b"0123456789abcdef")
    blocks = np.zeros((4, 16), dtype=np.uint8)
    cipher.encrypt_blocks(blocks)
    assert not blocks.any(), "input blocks must not be mutated"


@pytest.mark.parametrize("bad", [b"", b"short", b"\x00" * 15, b"\x00" * 33])
def test_invalid_key_sizes_rejected(bad):
    with pytest.raises(InvalidKey):
        AES(bad)


def test_non_bytes_key_rejected():
    with pytest.raises(InvalidKey):
        AES("0123456789abcdef")  # type: ignore[arg-type]


def test_wrong_block_size_rejected():
    cipher = AES(b"\x00" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"x" * 17)


def test_bad_batch_shape_rejected():
    cipher = AES(b"\x00" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(key=st.binary(min_size=32, max_size=32), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property_aes256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_encryption_not_identity():
    cipher = AES(b"\x00" * 16)
    block = b"\x00" * 16
    assert cipher.encrypt_block(block) != block


def test_different_keys_differ():
    block = b"A" * 16
    assert AES(b"k" * 16).encrypt_block(block) != AES(b"j" * 16).encrypt_block(block)
