"""Experiment scaffolding helpers."""

import pytest

from repro.core.simbridge import ServableModel
from repro.experiments.common import (
    DirectRouter,
    action_budget,
    deploy_single_model,
    format_table,
    make_testbed,
    sgx1_testbed,
    system_factory,
)
from repro.mlrt.zoo import profile
from repro.serverless.action import MEMORY_GRANULE
from repro.sgx.epc import MB
from repro.sgx.platform import SGX1, SGX2


def test_make_testbed_defaults():
    bed = make_testbed(num_nodes=3)
    assert len(bed.platform.nodes) == 3
    assert bed.platform.hardware is SGX2
    assert bed.cost.hardware is SGX2


def test_sgx1_testbed_matches_table5():
    bed = sgx1_testbed()
    node = bed.platform.nodes[0]
    assert node.sgx.profile is SGX1
    assert node.num_cores == 10            # Xeon W-1290P
    assert node.memory_total == 12 * 1024 ** 3 + 512 * MB  # 12.5 GB


def test_action_budget_granularity():
    servable = ServableModel(profile=profile("MBNET"), framework="tvm")
    budget = action_budget(servable)
    assert budget % MEMORY_GRANULE == 0
    assert budget >= servable.enclave_bytes
    assert action_budget(servable, tcs_count=4) > budget


def test_system_factory_names():
    models = {"m": ServableModel(profile=profile("MBNET"), framework="tvm")}
    bed = make_testbed(num_nodes=1)
    for system in ("SeSeMI", "Iso-reuse", "Native", "Untrusted"):
        factory = system_factory(system, models, bed.cost)
        assert callable(factory)
        assert factory() is not factory()  # fresh actor per container
    with pytest.raises(ValueError):
        system_factory("Kubernetes", models, bed.cost)


def test_deploy_single_model_registers_action():
    bed = make_testbed(num_nodes=1)
    models = deploy_single_model(bed, "SeSeMI", "DSNET", "tflm", endpoint="x")
    assert "m" in models
    assert bed.controller.deployment("x").spec.image == "sesemi-tflm"


def test_direct_router():
    router = DirectRouter("ep")
    assert router.route("anything", 0.0) == "ep"


def test_format_table_handles_mixed_types():
    text = format_table(["name", "value"], [("a", 1.23456), ("b", 1000.5)])
    assert "1.235" in text
    assert "1000.50" in text
