"""Experiment scaffolding helpers."""

import pytest

from repro.core.simbridge import ServableModel
from repro.errors import RoutingError
from repro.experiments.common import (
    DirectRouter,
    action_budget,
    deploy_single_model,
    format_table,
    make_driver,
    make_testbed,
    sgx1_testbed,
    system_factory,
)
from repro.workloads.driver import WorkloadDriver
from repro.mlrt.zoo import profile
from repro.serverless.action import MEMORY_GRANULE
from repro.sgx.epc import MB
from repro.sgx.platform import SGX1, SGX2


def test_make_testbed_defaults():
    bed = make_testbed(num_nodes=3)
    assert len(bed.platform.nodes) == 3
    assert bed.platform.hardware is SGX2
    assert bed.cost.hardware is SGX2


def test_sgx1_testbed_matches_table5():
    bed = sgx1_testbed()
    node = bed.platform.nodes[0]
    assert node.sgx.profile is SGX1
    assert node.num_cores == 10            # Xeon W-1290P
    assert node.memory_total == 12 * 1024 ** 3 + 512 * MB  # 12.5 GB


def test_action_budget_granularity():
    servable = ServableModel(profile=profile("MBNET"), framework="tvm")
    budget = action_budget(servable)
    assert budget % MEMORY_GRANULE == 0
    assert budget >= servable.enclave_bytes
    assert action_budget(servable, tcs_count=4) > budget


def test_system_factory_names():
    models = {"m": ServableModel(profile=profile("MBNET"), framework="tvm")}
    bed = make_testbed(num_nodes=1)
    for system in ("SeSeMI", "Iso-reuse", "Native", "Untrusted"):
        factory = system_factory(system, models, bed.cost)
        assert callable(factory)
        assert factory() is not factory()  # fresh actor per container
    with pytest.raises(ValueError):
        system_factory("Kubernetes", models, bed.cost)


def test_deploy_single_model_registers_action():
    bed = make_testbed(num_nodes=1)
    models = deploy_single_model(bed, "SeSeMI", "DSNET", "tflm", endpoint="x")
    assert "m" in models
    assert bed.controller.deployment("x").spec.image == "sesemi-tflm"


def test_direct_router():
    router = DirectRouter("ep")
    assert router.route("anything", 0.0) == "ep"
    assert router.endpoints() == [("ep", ())]


def test_direct_router_ignores_other_exclusions():
    router = DirectRouter("ep")
    assert router.route("m", 0.0, exclude=frozenset({"other"})) == "ep"


def test_direct_router_rejects_excluded_endpoint():
    # Regression: route() used to ignore ``exclude`` entirely, so a retry
    # that had just failed on "ep" was routed straight back to "ep".
    router = DirectRouter("ep")
    with pytest.raises(RoutingError):
        router.route("m", 0.0, exclude=frozenset({"ep"}))


def test_make_driver_binds_testbed_and_router():
    bed = make_testbed(num_nodes=1)
    driver = make_driver(bed, endpoint="x")
    assert isinstance(driver, WorkloadDriver)
    assert driver.router.route("m", 0.0) == "x"
    router = DirectRouter("elsewhere")
    assert make_driver(bed, router=router).router is router


def test_format_table_handles_mixed_types():
    text = format_table(["name", "value"], [("a", 1.23456), ("b", 1000.5)])
    assert "1.235" in text
    assert "1000.50" in text


def test_format_table_float_width_branches():
    # floats with |value| >= 100 get two decimals, smaller ones three;
    # ints and strings pass through str() untouched.
    text = format_table(
        ["v"], [(100.0,), (99.9999,), (-100.5,), (-0.1,), (7,), ("x",)]
    )
    lines = text.splitlines()
    assert lines[2].strip() == "100.00"
    assert lines[3].strip() == "100.000"  # rounds up, still the small branch
    assert lines[4].strip() == "-100.50"
    assert lines[5].strip() == "-0.100"
    assert lines[6].strip() == "7"
    assert lines[7].strip() == "x"


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [("xx", 1)])
    header, rule, row = text.splitlines()
    assert header == "a   bbbb"
    assert rule == "--  ----"
    assert row == "xx  1   "
