"""Smoke + shape checks for the warm-pool benchmark harness.

Short seeded traces through the real simulator: the paper-shape
properties (keep-alive beats no-keep-alive, the janitor scales to the
floor, the report renders) on grids small enough to stay fast.
"""

import numpy as np

from repro.experiments import warmpool


def _arrivals(duration_s=60.0, seed=5):
    from repro.workloads.arrival import poisson

    rng = np.random.default_rng(seed)
    return poisson(4.0, duration_s, "m0", user_id="u", rng=rng)


def test_no_keep_alive_pays_cold_starts_everywhere():
    row = warmpool.run_policy("none", _arrivals(), until=600.0)
    assert row["requests"] > 100
    # at 4 rps with ~0.5 s cold service some arrivals overlap a live
    # endpoint, but the vast majority land cold
    assert row["cold_ratio"] > 0.5
    assert row["janitor_retired"] == 0  # teardown, not janitor


def test_keep_alive_turns_the_stream_hot():
    none = warmpool.run_policy("none", _arrivals(), until=600.0)
    lcs = warmpool.run_policy("lcs", _arrivals(), until=600.0)
    assert lcs["cold_ratio"] < none["cold_ratio"] / 3
    assert lcs["hot"] > lcs["warm"]  # single model: reuse is hot
    assert lcs["p50_ms"] < none["p50_ms"]


def test_mru_holds_a_smaller_fleet_than_lcs():
    lcs = warmpool.run_policy("lcs", _arrivals(), until=600.0)
    mru = warmpool.run_policy("mru", _arrivals(), until=600.0)
    # MRU lets the idle tail expire: more janitor retires, never a
    # larger peak fleet
    assert mru["peak_fleet"] <= lcs["peak_fleet"]
    assert mru["janitor_retired"] >= lcs["janitor_retired"]


def test_scale_to_zero_reaches_the_floor():
    demo = warmpool.run_scale_to_zero(
        burst_rps=6.0, burst_s=10.0, idle_s=80.0, keep_alive_s=20.0
    )
    assert demo["peak_fleet"] > demo["min_warm"]
    assert demo["scaled_to_floor"]
    assert demo["final_fleet"] == demo["min_warm"]
    assert demo["janitor_retired"] >= demo["peak_fleet"] - demo["min_warm"]


def test_run_report_and_gates():
    result = warmpool.run(duration_s=40.0)
    assert result["pass"], result["gates"]
    report = warmpool.format_report(result)
    assert "scale-to-zero" in report
    for policy in warmpool.POLICIES:
        assert policy in report
    # every sweep row is internally consistent
    for workload in warmpool.WORKLOADS:
        for row in result["workloads"][workload].values():
            assert row["cold"] + row["warm"] + row["hot"] == row["requests"]
