"""The experiment-internal workload constructions (ramps, MMPP phases)."""

import pytest

from repro.experiments import fig12, fig13


def test_fig12_ramp_precedes_steady():
    arrivals, measure_from, duration = fig12._ramped_arrivals(rate=20.0)
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    ramp_span = len(fig12.RAMP_STEPS) * fig12.RAMP_STEP_S
    # Ramp phases run at fractions of the target rate.
    ramp = [t for t in times if t < ramp_span]
    steady = [t for t in times if t >= ramp_span]
    ramp_rate = len(ramp) / ramp_span
    steady_rate = len(steady) / fig12.STEADY_S
    assert steady_rate == pytest.approx(20.0, rel=0.05)
    assert ramp_rate < steady_rate
    assert measure_from == duration - fig12.MEASURE_S


def test_fig12_ramp_handles_low_rates():
    arrivals, measure_from, duration = fig12._ramped_arrivals(rate=1.0)
    assert arrivals, "even a 1 rps sweep needs warmup traffic"
    assert duration > measure_from > 0


def test_fig13_mmpp_has_warmup_then_bursts():
    arrivals = fig13._mmpp_arrivals(duration_s=120.0)
    times = [a.time for a in arrivals]
    assert times == sorted(times)

    def rate(lo, hi):
        return sum(1 for t in times if lo <= t < hi) / (hi - lo)

    # Warm-up phase at ~20 rps.
    assert rate(0, fig13.WARMUP_S) == pytest.approx(20.0, rel=0.25)
    # The second MMPP phase doubles the mean rate.
    phase1 = rate(fig13.WARMUP_S, fig13.WARMUP_S + fig13.PHASE_S)
    phase2 = rate(fig13.WARMUP_S + fig13.PHASE_S, fig13.WARMUP_S + 2 * fig13.PHASE_S)
    assert phase2 > 1.4 * phase1


def test_fig13_budgets_match_paper():
    assert fig13.FIG14_BUDGETS_MB == {
        ("DSNET", 1): 256,
        ("DSNET", 4): 384,
        ("RSNET", 1): 768,
        ("RSNET", 4): 1536,
    }
