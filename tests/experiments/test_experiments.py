"""Smoke + shape checks for every experiment harness.

These assert the *paper-shape* properties each figure/table is about,
on reduced parameter grids so the whole file stays fast.
"""

import pytest

from repro.core.stages import Stage
from repro.experiments import fig8, fig9, fig10, fig11, fig15, fig17, table1, table2
from repro.experiments.common import format_table


def test_table1_profiles_and_measured_ordering():
    result = table1.run()
    assert len(result["paper_rows"]) == 3
    for name, weights, tvm_buf, tflm_buf in result["measured_rows"]:
        assert tflm_buf < tvm_buf
        assert tvm_buf > weights  # TVM buffers embed weight copies


def test_fig8_trust_stages_dominate_tvm_cold():
    """Paper: enclave init + key fetching > 60% of cold latency for TVM."""
    for model in ("MBNET", "RSNET", "DSNET"):
        stages = fig8.cold_stage_seconds(model, "tvm")
        total = sum(stages.values())
        trust = stages[Stage.ENCLAVE_INIT.value] + stages[Stage.KEY_RETRIEVAL.value]
        assert trust / total > 0.60, model


def test_fig9_speedups_match_paper():
    paths = fig9._run_sesemi_paths("MBNET", "tvm")
    assert paths["cold"] / paths["hot"] == pytest.approx(21.0, rel=0.25)
    assert paths["cold"] / paths["warm"] == pytest.approx(11.0, rel=0.3)


def test_fig9_hot_close_to_untrusted_cached():
    paths = fig9._run_sesemi_paths("DSNET", "tvm")
    paths.update(fig9._run_untrusted("DSNET", "tvm"))
    assert paths["hot"] == pytest.approx(paths["untrusted_cached"], rel=0.1)
    assert paths["warm"] == pytest.approx(paths["untrusted"], rel=0.8)


def test_fig10_peak_saving_near_paper():
    result = fig10.run()
    label, saving = result["peak"]
    assert label == "TFLM-RSNET"
    assert saving == pytest.approx(0.862, abs=0.08)  # paper: 86.2%


def test_fig10_tflm_saves_more_than_tvm():
    result = fig10.run()
    by_label = {row[0]: row[-1] for row in result["rows"]}  # 8-thread saving
    for model in ("MBNET", "RSNET", "DSNET"):
        assert by_label[f"TFLM-{model}"] > by_label[f"TVM-{model}"]


def test_fig11a_knee_after_core_count():
    rows = dict(fig11.run_cpu_bound(concurrency_levels=(1, 12, 16)))
    assert rows[12] < rows[16]           # queueing past 12 cores
    assert rows[12] / rows[1] < 1.5      # nearly flat below


def test_fig11b_thread_sharing_wins_under_epc_pressure():
    series = fig11.run_epc_bound(concurrency_levels=(1, 8))
    assert series["TVM-4"][-1][1] < series["TVM-1"][-1][1]
    assert series["TFLM-4"][-1][1] < series["TFLM-1"][-1][1]
    assert series["TFLM-4"][-1][1] < series["TVM-4"][-1][1]


def test_table2_isolation_slowdown():
    result = table2.run()
    for label, without, with_iso, slowdown, p_without, p_with in result["rows"]:
        assert with_iso > without
        paper_slowdown = p_with / p_without
        assert slowdown == pytest.approx(paper_slowdown, rel=0.35), label


def test_fig15_anchor_and_monotonicity():
    result = fig15.run()
    sgx2 = {(size, n): t for size, n, t in result["init"]["sgx2"]}
    assert sgx2[(256, 16)] == pytest.approx(4.06, rel=0.05)
    assert sgx2[(256, 1)] < sgx2[(256, 16)]
    assert sgx2[(64, 8)] < sgx2[(256, 8)]


def test_fig16_quote_scaling():
    result = fig15.run()
    dcap = dict((n, t) for n, t, _ in result["quote"]["sgx2"])
    assert dcap[1] < 0.1 and 0.8 < dcap[16] < 1.2
    epid = dict((n, t) for n, t, _ in result["quote"]["sgx1"])
    assert epid[1] > dcap[1]


def test_fig17_shared_stages_equal():
    """Paper: the stages shared with the non-SGX path barely differ."""
    result = fig17.run()
    for label, shared_sgx, shared_plain, overhead in result["rows"]:
        assert shared_sgx == pytest.approx(shared_plain, rel=0.05), label
        assert overhead > 0


def test_format_table_alignment():
    text = format_table(["a", "bb"], [(1, 2.5), ("xyz", 10)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_reports_render():
    for module in (table1, fig10, fig15):
        text = module.format_report(module.run())
        assert isinstance(text, str) and len(text) > 50
