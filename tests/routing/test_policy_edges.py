"""Router edge cases: idle-lapse boundary, health churn, crash accounting."""

import pytest

from repro.errors import RoutingError
from repro.routing import EndpointState, FnPackerRouter, FnPool

MODELS = ("m0", "m1", "m2")


def make_pool(**kwargs):
    return FnPool(name="pool", models=MODELS, memory_budget=256, **kwargs)


def test_exclusivity_lapses_exactly_at_idle_interval():
    """The lapse condition is ``>= idle_interval_s``, not ``>``.

    An endpoint whose exclusivity has been quiet for *exactly* the idle
    interval is legitimately not-busy for other models -- the boundary
    must not be an off-by-one that keeps the endpoint hogged forever
    under a perfectly periodic workload.
    """
    router = FnPackerRouter(make_pool(num_endpoints=2), idle_interval_s=5.0)
    first = router.route("m0", now=0.0)
    router.on_dispatch(first, "m0", now=0.0)
    router.route("m0", now=0.0)  # overlap: pins m0 exclusively to `first`
    router.on_complete(first, "m0", now=1.0)
    # `first` went quiet at its last *request* (t=0.0).  One epsilon
    # before the interval it is still exclusive (m1 lands elsewhere)...
    assert router.route("m1", now=4.999) != first
    # ...but exactly at the boundary the exclusivity has lapsed, and
    # `first` is again the first not-busy endpoint in rotation.
    assert router.route("m1", now=5.0) == first


def test_reroute_away_from_unhealthy_and_back_after_recovery():
    """Down => excluded from every rule; up => first choice again."""
    router = FnPackerRouter(make_pool(num_endpoints=2))
    warm = router.route("m0", now=0.0)
    router.on_dispatch(warm, "m0", now=0.0)
    router.on_complete(warm, "m0", now=0.5)
    # healthy: warm-endpoint preference keeps m0 on `warm`
    assert router.route("m0", now=1.0) == warm
    router.mark_endpoint_down(warm)
    rerouted = router.route("m0", now=1.5)
    assert rerouted != warm
    router.on_dispatch(rerouted, "m0", now=1.5)
    router.on_complete(rerouted, "m0", now=2.0)
    router.mark_endpoint_up(warm)
    # recovered endpoint rejoins the rotation: once the substitute is
    # busy with another model, m0 can land on `warm` again.
    router.on_dispatch(rerouted, "m1", now=2.5)
    router.route("m1", now=2.6)  # pins m1 to the substitute
    assert router.route("m0", now=3.0) == warm


def test_slot_accounting_survives_mid_ecall_crash():
    """``on_failure`` frees the slot an in-flight crash leaked.

    With ``slots_per_endpoint=2``, two dispatches fill the endpoint.
    If one request dies mid-ECALL and is only accounted through
    ``on_failure``, the endpoint must be schedulable again (one free
    slot), and counters never go negative even if the endpoint was
    also marked down (which clears pending wholesale).
    """
    router = FnPackerRouter(make_pool(), slots_per_endpoint=2)
    ep = router.route("m0", now=0.0)
    router.on_dispatch(ep, "m0", now=0.0)
    second = router.route("m0", now=0.1)
    assert second == ep  # same-model burst packs onto the open slot
    router.on_dispatch(ep, "m0", now=0.1)
    # both slots taken: a third same-model request overflows elsewhere
    assert router._endpoints[ep].pending == 2
    # one request crashes mid-ECALL
    router.on_failure(ep, "m0", now=0.5)
    assert router._endpoints[ep].pending == 1
    assert router._model_pending["m0"] == 1
    # the freed slot is schedulable for the same model again
    assert router.route("m0", now=0.6) == ep
    # double accounting is tolerated: mark down clears counters, a late
    # on_failure for the already-cleared request is a no-op
    router.mark_endpoint_down(ep)
    router.on_failure(ep, "m0", now=1.0)
    assert router._endpoints[ep].pending == 0
    assert router._model_pending["m0"] == 0


def test_route_excludes_caller_supplied_endpoints():
    """``exclude`` overrides even the Rule-1 pin (full queue != usable)."""
    router = FnPackerRouter(make_pool())
    pinned = router.route("m0", now=0.0)
    router.on_dispatch(pinned, "m0", now=0.0)
    assert router.route("m0", now=0.1) == pinned  # Rule 1
    rerouted = router.route("m0", now=0.1, exclude=frozenset({pinned}))
    assert rerouted != pinned
    with pytest.raises(RoutingError):
        names = frozenset(name for name, _ in router.endpoints())
        router.route("m0", now=0.2, exclude=names)


def test_drain_then_retire_lifecycle():
    """Draining stops new traffic; retiring requires an empty endpoint."""
    router = FnPackerRouter(make_pool(num_endpoints=2))
    victim = router.route("m0", now=0.0)
    router.on_dispatch(victim, "m0", now=0.0)
    router.begin_drain(victim)
    # in-flight request still pins?  No: draining voids the pin, new
    # same-model traffic lands elsewhere.
    assert router.route("m0", now=0.1) != victim
    with pytest.raises(RoutingError):
        router.retire_endpoint(victim)  # still busy
    router.on_complete(victim, "m0", now=0.5)
    router.retire_endpoint(victim)
    assert victim not in dict(router.endpoints())
    assert len(router.endpoints()) == 1


def test_add_endpoint_scales_the_fleet():
    router = FnPackerRouter(make_pool(num_endpoints=1))
    name, servable = router.add_endpoint()
    assert servable == MODELS
    assert name in dict(router.endpoints())
    assert len(router.endpoints()) == 2
    # the new endpoint's name never collides, even after retirement
    router.begin_drain(name)
    router.retire_endpoint(name)
    again, _ = router.add_endpoint()
    assert again != name


def test_endpoint_state_availability():
    state = EndpointState(name="ep")
    assert state.available
    state.draining = True
    assert not state.available
    state.draining = False
    state.healthy = False
    assert not state.available
