"""Scale-out pressure tracking: debounce, cap, reset."""

import pytest

from repro.errors import ConfigError
from repro.routing import PressureTracker, ScaleOutPolicy


def test_policy_validation():
    with pytest.raises(ConfigError):
        ScaleOutPolicy(threshold=0)
    with pytest.raises(ConfigError):
        ScaleOutPolicy(max_endpoints=0)


def test_sustained_pressure_triggers_once_then_rearms():
    tracker = PressureTracker(ScaleOutPolicy(threshold=3, max_endpoints=8))
    assert not tracker.observe(True, fleet_size=2)
    assert not tracker.observe(True, fleet_size=2)
    assert tracker.observe(True, fleet_size=2)  # third consecutive fires
    assert tracker.spawns == 1
    # counter reset: the next burst needs fresh consecutive pressure
    assert not tracker.observe(True, fleet_size=3)
    assert not tracker.observe(True, fleet_size=3)
    assert tracker.observe(True, fleet_size=3)
    assert tracker.spawns == 2


def test_clean_dispatch_resets_the_counter():
    tracker = PressureTracker(ScaleOutPolicy(threshold=2))
    assert not tracker.observe(True, fleet_size=1)
    assert not tracker.observe(False, fleet_size=1)  # burst over
    assert tracker.consecutive == 0
    assert not tracker.observe(True, fleet_size=1)


def test_fleet_cap_blocks_growth():
    tracker = PressureTracker(ScaleOutPolicy(threshold=1, max_endpoints=2))
    assert tracker.observe(True, fleet_size=1)
    assert not tracker.observe(True, fleet_size=2)  # at the cap
    assert tracker.spawns == 1
