"""The layering gate: repro.routing stays twin-agnostic."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "check_layering.py"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_routing_package_passes_the_gate():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)], cwd=REPO, capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_gate_catches_a_core_import(tmp_path):
    bad = tmp_path / "policy.py"
    bad.write_text(
        "import threading\n"
        "from repro.core.semirt import SemirtHost\n"
        "from repro.errors import RoutingError\n"
        "from . import pool\n"
    )
    checker = _load_checker()
    violations = checker.check(tmp_path)
    assert len(violations) == 1
    assert "repro.core.semirt" in violations[0]


def test_gate_catches_a_faults_import(tmp_path):
    (tmp_path / "guard.py").write_text("import repro.faults.resilience\n")
    checker = _load_checker()
    assert any("repro.faults" in v for v in checker.check(tmp_path))
