"""Action specs and invocation records."""

import pytest

from repro.errors import ConfigError
from repro.serverless.action import (
    MEMORY_GRANULE,
    ActionSpec,
    InvocationResult,
    Request,
    round_memory_budget,
)


def test_round_memory_budget():
    assert round_memory_budget(1) == MEMORY_GRANULE
    assert round_memory_budget(MEMORY_GRANULE) == MEMORY_GRANULE
    assert round_memory_budget(MEMORY_GRANULE + 1) == 2 * MEMORY_GRANULE


def test_round_memory_budget_rejects_nonpositive():
    with pytest.raises(ConfigError):
        round_memory_budget(0)


def test_spec_requires_granular_budget():
    with pytest.raises(ConfigError):
        ActionSpec(name="f", image="i", memory_budget=100)
    ActionSpec(name="f", image="i", memory_budget=MEMORY_GRANULE)


def test_spec_requires_positive_concurrency():
    with pytest.raises(ConfigError):
        ActionSpec(name="f", image="i", memory_budget=MEMORY_GRANULE, concurrency=0)


def test_requests_get_unique_ids():
    a = Request(model_id="m", user_id="u")
    b = Request(model_id="m", user_id="u")
    assert a.request_id != b.request_id


def test_invocation_result_latency():
    result = InvocationResult(
        request=Request(model_id="m", user_id="u"),
        response=None,
        kind="hot",
        container_id="c",
        node_id="n",
        submitted_at=10.0,
        started_at=11.0,
        finished_at=13.5,
    )
    assert result.latency == pytest.approx(3.5)
    assert result.execution_seconds == pytest.approx(2.5)
