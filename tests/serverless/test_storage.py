"""Blob storage: real bytes plus the latency model."""

import pytest

from repro.errors import StorageError
from repro.serverless.storage import AZURE_BLOB, NFS, BlobStore, StorageProfile

MB = 1024 * 1024


def test_put_get_roundtrip():
    store = BlobStore()
    store.put("models/m1", b"encrypted-bytes")
    assert store.get("models/m1") == b"encrypted-bytes"
    assert "models/m1" in store


def test_missing_object_raises():
    with pytest.raises(StorageError):
        BlobStore().get("ghost")


def test_overwrite():
    store = BlobStore()
    store.put("k", b"v1")
    store.put("k", b"v2")
    assert store.get("k") == b"v2"


def test_delete():
    store = BlobStore()
    store.put("k", b"v")
    store.delete("k")
    assert "k" not in store
    store.delete("k")  # idempotent


def test_head_reports_size():
    store = BlobStore()
    store.put("k", b"12345")
    assert store.head("k").nbytes == 5


def test_download_time_scales_with_size():
    profile = StorageProfile("test", base_latency_s=0.01, bandwidth_bytes_per_s=100.0)
    assert profile.download_time(0) == pytest.approx(0.01)
    assert profile.download_time(200) == pytest.approx(2.01)


def test_azure_profile_matches_paper_downloads():
    """Section VI-A: MBNET ~180ms, DSNET ~360ms, RSNET ~2100ms in-region.

    The three published points do not sit on one line, so the linear
    profile is a fit: each point must land within ~45%.
    """
    assert AZURE_BLOB.download_time(17 * MB) == pytest.approx(0.180, rel=0.45)
    assert AZURE_BLOB.download_time(44 * MB) == pytest.approx(0.360, rel=0.45)
    assert AZURE_BLOB.download_time(170 * MB) == pytest.approx(2.100, rel=0.45)


def test_nfs_much_faster_than_azure():
    assert NFS.download_time(44 * MB) < AZURE_BLOB.download_time(44 * MB) / 5


def test_store_exposes_latency_helpers():
    store = BlobStore(NFS)
    store.put("k", b"x" * 1024)
    assert store.download_time("k") == NFS.download_time(1024)
    assert store.download_time_for_size(2048) == NFS.download_time(2048)
