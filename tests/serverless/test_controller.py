"""Controller scheduling: warm reuse, cold starts, queueing, keep-alive."""

import pytest

from repro.errors import PlatformError
from repro.serverless.action import ActionSpec, Request, round_memory_budget
from repro.serverless.container import ActionRuntime
from repro.serverless.controller import PlatformConfig
from repro.serverless.platform import ServerlessPlatform
from repro.sim.core import Simulation

MB = 1024 * 1024
BUDGET = round_memory_budget(100 * MB)


class EchoRuntime(ActionRuntime):
    """Serves requests after a fixed service time."""

    def __init__(self, startup_s=0.5, service_s=0.1):
        self.startup_s = startup_s
        self.service_s = service_s
        self.served = 0

    def startup(self, ctx):
        yield ctx.sim.timeout(self.startup_s)

    def handle(self, ctx, request):
        yield ctx.sim.timeout(self.service_s)
        self.served += 1
        return {"echo": request.model_id}, "hot", {"exec": self.service_s}


def build(num_nodes=1, node_memory=4 * 1024 * MB, config=None, concurrency=1,
          runtime_factory=None):
    sim = Simulation()
    platform = ServerlessPlatform(
        sim, num_nodes=num_nodes, node_memory=node_memory,
        config=config or PlatformConfig(),
    )
    spec = ActionSpec(name="f", image="img", memory_budget=BUDGET,
                      concurrency=concurrency)
    platform.deploy(spec, runtime_factory or EchoRuntime)
    return sim, platform


def invoke_n(sim, platform, count, gap=0.0):
    events = []

    def driver(sim):
        for _ in range(count):
            events.append(platform.invoke("f", Request(model_id="m", user_id="u")))
            if gap:
                yield sim.timeout(gap)
        if not gap:
            yield sim.timeout(0)

    sim.process(driver(sim))
    sim.run()
    return [e.value for e in events]


def test_deploy_twice_rejected():
    sim, platform = build()
    spec = ActionSpec(name="f", image="img", memory_budget=BUDGET)
    with pytest.raises(PlatformError):
        platform.deploy(spec, EchoRuntime)


def test_invoke_unknown_action_rejected():
    sim, platform = build()
    with pytest.raises(PlatformError):
        platform.invoke("ghost", Request(model_id="m", user_id="u"))


def test_first_request_is_cold():
    sim, platform = build()
    (result,) = invoke_n(sim, platform, 1)
    assert result.kind == "cold"
    assert "sandbox_init" in result.stage_seconds
    assert result.latency > 2.0  # sandbox init dominates


def test_warm_reuse_on_sequential_requests():
    sim, platform = build()
    results = invoke_n(sim, platform, 3, gap=5.0)
    assert [r.kind for r in results] == ["cold", "hot", "hot"]
    assert results[1].latency < results[0].latency
    assert platform.controller.cold_starts == 1


def test_burst_spawns_multiple_containers():
    sim, platform = build()
    results = invoke_n(sim, platform, 4)
    assert platform.controller.cold_starts == 4
    assert {r.kind for r in results} == {"cold"}


def test_container_concurrency_shares_instance():
    sim, platform = build(concurrency=4)
    results = invoke_n(sim, platform, 4)
    assert platform.controller.cold_starts == 1
    assert len({r.container_id for r in results}) == 1


def test_memory_exhaustion_queues_requests():
    # Node fits exactly one container; the second request must wait for it.
    sim, platform = build(node_memory=BUDGET)
    results = invoke_n(sim, platform, 3)
    assert platform.controller.cold_starts == 1
    assert len({r.container_id for r in results}) == 1
    assert sorted(r.finished_at for r in results)[2] > results[0].finished_at


def test_spillover_to_second_node():
    sim, platform = build(num_nodes=2, node_memory=BUDGET)
    results = invoke_n(sim, platform, 2)
    assert len({r.node_id for r in results}) == 2


def test_keepalive_reaps_idle_containers():
    config = PlatformConfig(keepalive_s=10.0)
    sim, platform = build(config=config)
    invoke_n(sim, platform, 1)
    sim.run(until=sim.now + 100.0)
    assert platform.controller.warm_containers("f") == 0
    reserved = sum(node.memory_used for node in platform.nodes)
    assert reserved == 0


def test_keepalive_not_reaped_while_active():
    config = PlatformConfig(keepalive_s=10.0)
    sim, platform = build(config=config)
    results = invoke_n(sim, platform, 10, gap=5.0)  # steady traffic
    assert platform.controller.cold_starts == 1
    assert [r.kind for r in results].count("cold") == 1


def test_memory_timeline_records_reservations():
    sim, platform = build()
    invoke_n(sim, platform, 1)
    timeline = platform.controller.memory_timeline
    assert timeline[0] == (0.0, 0)
    assert max(level for _, level in timeline) == BUDGET


def test_controller_overhead_serialises_admission():
    config = PlatformConfig(controller_overhead_s=1.0, sandbox_init_s=0.0)
    sim, platform = build(
        config=config, concurrency=8,
        runtime_factory=lambda: EchoRuntime(startup_s=0.0),
    )
    results = invoke_n(sim, platform, 3)
    # Admissions pass through a serial 1s stage: completions are spaced.
    finishes = sorted(r.finished_at for r in results)
    assert finishes[1] - finishes[0] >= 0.99
    assert finishes[2] - finishes[1] >= 0.99


def test_mru_container_preferred():
    sim, platform = build()
    events = []

    def driver(sim):
        events.append(platform.invoke("f", Request(model_id="m", user_id="u")))
        yield sim.timeout(1.0)
        events.append(platform.invoke("f", Request(model_id="m", user_id="u")))
        yield sim.timeout(9.0)  # both containers warm and idle by now
        events.append(platform.invoke("f", Request(model_id="m", user_id="u")))

    sim.process(driver(sim))
    sim.run()
    first, second, late = (e.value for e in events)
    assert {first.kind, second.kind} == {"cold"}
    # The most recently used container serves the follow-up request.
    most_recent = max((first, second), key=lambda r: r.finished_at)
    assert late.kind == "hot"
    assert late.container_id == most_recent.container_id
