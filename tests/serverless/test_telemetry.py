"""Telemetry metrics and their controller integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.serverless.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)


def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ConfigError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value == 3


def test_histogram_buckets_and_mean():
    histogram = Histogram("h", buckets=(1.0, 5.0))
    for value in (0.5, 0.7, 3.0, 100.0):
        histogram.observe(value)
    counts = histogram.bucket_counts()
    assert counts["le=1.0"] == 2
    assert counts["le=5.0"] == 1
    assert counts["le=+inf"] == 1
    assert histogram.count == 4
    assert histogram.mean == pytest.approx((0.5 + 0.7 + 3.0 + 100.0) / 4)


def test_histogram_quantile_estimate():
    histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.6, 3.0):
        histogram.observe(value)
    assert histogram.quantile(0.25) == 1.0
    assert histogram.quantile(0.75) == 2.0
    assert histogram.quantile(1.0) == 4.0
    with pytest.raises(ConfigError):
        histogram.quantile(1.5)


def test_histogram_empty_quantile():
    assert Histogram("h").quantile(0.5) == 0.0


def test_histogram_needs_buckets():
    with pytest.raises(ConfigError):
        Histogram("h", buckets=())


def test_time_series_integral():
    series = TimeSeries("s")
    series.record(0.0, 2.0)
    series.record(10.0, 5.0)
    assert series.integral(until=20.0) == pytest.approx(2 * 10 + 5 * 10)
    assert series.peak == 5.0
    assert series.last == 5.0


def test_time_series_rejects_time_travel():
    series = TimeSeries("s")
    series.record(5.0, 1.0)
    with pytest.raises(ConfigError):
        series.record(4.0, 1.0)


def test_registry_create_or_get():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.time_series("d") is registry.time_series("d")


def test_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("reqs").inc(3)
    registry.gauge("load").set(0.5)
    registry.histogram("lat").observe(2.0)
    registry.time_series("mem").record(0.0, 7.0)
    snap = registry.snapshot()
    assert snap["reqs"] == 3
    assert snap["load"] == 0.5
    assert snap["lat.mean"] == 2.0
    assert snap["mem.last"] == 7.0


def test_controller_populates_metrics():
    from repro.serverless.action import ActionSpec, Request, round_memory_budget
    from repro.serverless.container import ActionRuntime
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.core import Simulation

    class Quick(ActionRuntime):
        def startup(self, ctx):
            yield ctx.sim.timeout(0.1)

        def handle(self, ctx, request):
            yield ctx.sim.timeout(0.2)
            return None, "hot", {}

    registry = MetricsRegistry()
    sim = Simulation()
    platform = ServerlessPlatform(sim, num_nodes=1, metrics=registry)
    spec = ActionSpec(
        name="f", image="i", memory_budget=round_memory_budget(1), concurrency=1
    )
    platform.deploy(spec, Quick)

    def driver(sim):
        done = platform.invoke("f", Request(model_id="m", user_id="u"))
        yield done
        done2 = platform.invoke("f", Request(model_id="m", user_id="u"))
        yield done2

    sim.process(driver(sim))
    sim.run()
    snap = registry.snapshot()
    assert snap["requests.completed"] == 2
    assert snap["containers.cold_starts"] == 1
    assert snap["invocations.cold"] == 1
    assert snap["invocations.hot"] == 1
    assert registry.histogram("latency.seconds").count == 2
    assert registry.time_series("containers.active").peak == 1


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
def test_histogram_conservation_property(values):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    assert sum(histogram.bucket_counts().values()) == len(values)
    assert histogram.sum == pytest.approx(sum(values))
