"""Failure injection: node draining, storage loss, stale sessions.

The threat model assumes a cloud that controls the software stack, so
robustness to infrastructure misbehaviour -- maintenance drains, missing
artifacts, restarted services -- is part of the system's contract.
"""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.errors import StorageError
from repro.serverless.action import ActionSpec, Request, round_memory_budget
from repro.serverless.container import ActionRuntime
from repro.serverless.platform import ServerlessPlatform
from repro.sim.core import Simulation

MB = 1024 * 1024
BUDGET = round_memory_budget(100 * MB)


class Quick(ActionRuntime):
    def startup(self, ctx):
        yield ctx.sim.timeout(0.1)

    def handle(self, ctx, request):
        yield ctx.sim.timeout(0.2)
        return None, "hot", {}


def build_two_nodes():
    sim = Simulation()
    platform = ServerlessPlatform(sim, num_nodes=2, node_memory=BUDGET)
    spec = ActionSpec(name="f", image="i", memory_budget=BUDGET, concurrency=1)
    platform.deploy(spec, Quick)
    return sim, platform


def run_requests(sim, platform, count, gap=1.0):
    results = []

    def driver(sim):
        for _ in range(count):
            done = platform.invoke("f", Request(model_id="m", user_id="u"))
            result = yield done
            results.append(result)
            yield sim.timeout(gap)

    sim.process(driver(sim))
    sim.run(until=5000)
    return results


def test_drained_node_gets_no_new_containers():
    sim, platform = build_two_nodes()
    controller = platform.controller
    target = platform.nodes[0]
    controller.drain_node(target)
    results = run_requests(sim, platform, 3)
    assert all(r.node_id != target.node_id for r in results)
    assert controller.is_draining(target)


def test_drain_reclaims_idle_containers():
    sim, platform = build_two_nodes()
    controller = platform.controller
    observed = []

    def driver(sim):
        result = yield platform.invoke("f", Request(model_id="m", user_id="u"))
        node = next(n for n in platform.nodes if n.node_id == result.node_id)
        observed.append(node.memory_used)
        controller.drain_node(node)
        observed.append(node.memory_used)

    sim.process(driver(sim))
    sim.run(until=5000)
    before, after = observed
    assert before > 0
    assert after == 0


def test_busy_container_drains_after_completion():
    sim, platform = build_two_nodes()
    controller = platform.controller
    collected = []

    def driver(sim):
        done = platform.invoke("f", Request(model_id="m", user_id="u"))
        yield sim.timeout(0.15)  # mid-startup/serve
        served_node = None
        # Drain whichever node hosts the container (home-node hashing).
        for candidate in platform.nodes:
            if candidate.memory_used:
                controller.drain_node(candidate)
                served_node = candidate
        result = yield done
        collected.append((result, served_node))

    sim.process(driver(sim))
    sim.run(until=5000)
    result, node = collected[0]
    assert result.response is None  # request completed despite the drain
    assert node.memory_used == 0    # container reclaimed right after


def test_undrain_restores_scheduling():
    sim, platform = build_two_nodes()
    controller = platform.controller
    for node in platform.nodes:
        controller.drain_node(node)

    pending_probe = []

    def driver(sim):
        done = platform.invoke("f", Request(model_id="m", user_id="u"))
        yield sim.timeout(5.0)
        pending_probe.append(done.triggered)  # stuck: fully drained
        controller.undrain_node(platform.nodes[0])
        result = yield done
        pending_probe.append(result.node_id)

    sim.process(driver(sim))
    sim.run(until=5000)
    assert pending_probe[0] is False
    assert pending_probe[1] == platform.nodes[0].node_id


def test_missing_model_artifact_fails_loudly(tiny_model, tiny_input):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "m", owner=owner).grant(user)
    env.storage.delete("models/m")  # the cloud "loses" the artifact
    enc = user.encrypt_request("m", semirt.measurement, tiny_input)
    with pytest.raises(StorageError):
        semirt.infer(enc, user.principal_id, "m")


def test_semirt_recovers_from_keyservice_restart(tiny_model, tiny_input):
    """A restarted KeyService invalidates sessions; SeMIRT re-attests."""
    from repro.core.keyservice import KeyServiceHost

    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "m", owner=owner).grant(user)

    def infer_as(client):
        enc = client.encrypt_request("m", semirt.measurement, tiny_input)
        return client.decrypt_response(
            "m", semirt.measurement,
            semirt.infer(enc, client.principal_id, "m"),
        )

    first = infer_as(user)

    # Restart KeyService: fresh enclave, same code (same E_K), empty
    # channel table.  Re-register state as a recovering operator would.
    env.keyservice = KeyServiceHost(env.keyservice_platform, env.attestation)
    for principal in (owner, user):
        principal.connect(env.keyservice, env.attestation, env.keyservice.measurement)
        principal.register()
    owner.add_model_key("m")
    owner.grant_access("m", semirt.measurement, user.principal_id)
    user.add_request_key("m", semirt.measurement)
    # Point the host's network OCALLs at the restarted service.
    semirt.enclave.register_ocall("OC_KS_HANDSHAKE", env.keyservice.handshake)
    semirt.enclave.register_ocall("OC_KS_REQUEST", env.keyservice.request)

    # Force a key fetch (different user slot) over the stale session:
    # SeMIRT must drop it, re-attest, and keep serving.
    other = env.connect_user("other")
    owner.grant_access("m", semirt.measurement, other.principal_id)
    other.add_request_key("m", semirt.measurement)
    out = infer_as(other)
    assert np.allclose(out, first, atol=1e-5)


def test_sgx2_edmm_expansion(tiny_model):
    """Dynamic enclave memory: identity unchanged, EPC accounted."""
    from repro.sgx.enclave import EnclaveBuildConfig, EnclaveCode
    from repro.sgx.platform import SGX1, SGX2, SgxPlatform
    from repro.errors import EnclaveError

    class Code(EnclaveCode):
        pass

    sgx2 = SgxPlatform(SGX2)
    enclave = sgx2.create_enclave(Code(), EnclaveBuildConfig(memory_bytes=MB))
    identity = enclave.measurement
    committed = sgx2.epc.committed_bytes
    enclave.expand_memory(4 * MB)
    assert enclave.measurement == identity            # not re-measured
    assert enclave.dynamic_bytes == 4 * MB
    assert sgx2.epc.committed_bytes == committed + 4 * MB
    with pytest.raises(EnclaveError):
        enclave.expand_memory(0)
    enclave.destroy()
    assert sgx2.epc.committed_for(enclave.enclave_id) == 0

    # SGX1 has no EDMM.
    sgx1 = SgxPlatform(SGX1)
    legacy = sgx1.create_enclave(Code(), EnclaveBuildConfig(memory_bytes=MB))
    with pytest.raises(EnclaveError, match="EDMM"):
        legacy.expand_memory(MB)
