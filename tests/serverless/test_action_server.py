"""The OpenWhisk /init + /run action protocol around SeMIRT."""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.serverless.action_server import (
    BAD_REQUEST,
    CONFLICT,
    FORBIDDEN,
    OK,
    SERVER_ERROR,
    ActionServer,
)


@pytest.fixture(scope="module")
def rig(tiny_model, tiny_input):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "m", owner=owner).grant(user)
    server = ActionServer(semirt)
    assert server.init({"value": {"name": "secure-infer"}})["status"] == OK
    return env, user, semirt, server


def activation(user, semirt, tiny_input, model_id="m"):
    enc = user.encrypt_request(model_id, semirt.measurement, tiny_input)
    return {
        "value": {
            "request": enc.hex(),
            "uid": user.principal_id,
            "model_id": model_id,
        }
    }


def test_run_roundtrip(rig, tiny_model, tiny_input):
    env, user, semirt, server = rig
    reply = server.run(activation(user, semirt, tiny_input))
    assert reply["status"] == OK
    out = user.decrypt_response(
        "m", semirt.measurement, bytes.fromhex(reply["response"])
    )
    assert np.allclose(out, tiny_model.run_reference(tiny_input).ravel(), atol=1e-5)
    assert server.activations >= 1


def test_double_init_conflicts(rig):
    *_, server = rig
    assert server.init({"value": {"name": "again"}})["status"] == CONFLICT


def test_init_validation(tiny_model):
    env = SeSeMIEnvironment()
    semirt = env.launch_semirt("tvm")
    server = ActionServer(semirt)
    assert server.init({})["status"] == BAD_REQUEST
    assert server.init({"value": {}})["status"] == BAD_REQUEST
    assert server.action_name is None


def test_run_before_init_rejected(tiny_model):
    env = SeSeMIEnvironment()
    semirt = env.launch_semirt("tvm")
    server = ActionServer(semirt)
    assert server.run({"value": {}})["status"] == BAD_REQUEST


def test_run_parameter_validation(rig):
    env, user, semirt, server = rig
    assert server.run({})["status"] == BAD_REQUEST
    assert server.run({"value": {"uid": "x"}})["status"] == BAD_REQUEST
    bad_hex = {"value": {"request": "zz", "uid": "u", "model_id": "m"}}
    assert server.run(bad_hex)["status"] == BAD_REQUEST


def test_unauthorized_maps_to_403(rig, tiny_input):
    env, user, semirt, server = rig
    intruder = env.connect_user("intruder")
    intruder.add_request_key("m", semirt.measurement)
    reply = server.run(activation(intruder, semirt, tiny_input))
    assert reply["status"] == FORBIDDEN
    assert "response" not in reply


def test_bad_ciphertext_maps_to_502(rig):
    env, user, semirt, server = rig
    forged = {
        "value": {
            "request": (b"\x00" * 64).hex(),
            "uid": user.principal_id,
            "model_id": "m",
        }
    }
    assert server.run(forged)["status"] == SERVER_ERROR
