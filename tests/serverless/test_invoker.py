"""Invoker nodes: memory pool, SGX wiring, launch/quote timing hooks."""

import pytest

from repro.errors import PlatformError
from repro.serverless.invoker import Invoker
from repro.sgx.epc import GB, MB
from repro.sgx.platform import SGX1


@pytest.fixture()
def node(sim):
    return Invoker(sim, memory_bytes=1 * GB, cores=12)


def test_memory_reserve_release(node):
    node.reserve_memory(256 * MB)
    assert node.memory_free == 1 * GB - 256 * MB
    node.release_memory(256 * MB)
    assert node.memory_free == 1 * GB


def test_over_reserve_rejected(node):
    with pytest.raises(PlatformError):
        node.reserve_memory(2 * GB)


def test_over_release_rejected(node):
    with pytest.raises(PlatformError):
        node.release_memory(1)


def test_can_fit(node):
    assert node.can_fit(1 * GB)
    assert not node.can_fit(1 * GB + 1)


def test_node_has_sgx_platform(sim):
    node = Invoker(sim, memory_bytes=GB, hardware=SGX1)
    assert node.sgx.profile is SGX1
    assert node.sgx.epc.capacity_bytes == 128 * MB


def test_platform_id_matches_node(node):
    assert node.sgx.platform_id == node.node_id


def test_enclave_init_time_includes_epc_paging(sim):
    node = Invoker(sim, memory_bytes=GB, hardware=SGX1)
    small = node.enclave_init_time(32 * MB)
    node.sgx.epc.allocate("other", 128 * MB)  # EPC already full
    loaded = node.enclave_init_time(32 * MB)
    assert loaded > small


def test_quote_time_grows_with_queue(sim, node):
    idle = node.quote_time()
    node.quoting.request()
    node.quoting.request()  # one holder + one queued
    busy = node.quote_time()
    assert busy > idle


def test_shared_storage_link(sim):
    from repro.sim.resources import Resource

    shared = Resource(sim, capacity=1)
    a = Invoker(sim, memory_bytes=GB, storage_link=shared)
    b = Invoker(sim, memory_bytes=GB, storage_link=shared)
    assert a.storage_link is b.storage_link


def test_default_private_storage_link(sim):
    a = Invoker(sim, memory_bytes=GB)
    b = Invoker(sim, memory_bytes=GB)
    assert a.storage_link is not b.storage_link
