"""Whole-platform invariants under randomised workloads (fuzzing).

Hypothesis drives random workload shapes through the controller and the
SeSeMI actors; after the run the conservation laws must hold regardless
of the schedule taken:

- every submitted request completes exactly once;
- node memory accounting returns to zero once keep-alives expire;
- the EPC holds no pages once every container is reclaimed;
- the memory timeline is a well-formed non-negative step function.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival


@settings(max_examples=15, deadline=None)
@given(
    offsets=st.lists(st.floats(0.0, 30.0), min_size=1, max_size=25),
    model_picks=st.lists(st.integers(0, 1), min_size=1, max_size=25),
    concurrency=st.integers(1, 4),
    num_nodes=st.integers(1, 3),
)
def test_conservation_under_random_workloads(
    offsets, model_picks, concurrency, num_nodes
):
    bed = make_testbed(num_nodes=num_nodes)
    models = servable_map(
        [("a", profile("MBNET"), "tvm"), ("b", profile("DSNET"), "tflm")]
    )
    budget = max(action_budget(m, concurrency) for m in models.values())
    spec = ActionSpec(
        name="ep", image="semirt", memory_budget=budget, concurrency=concurrency
    )
    bed.platform.deploy(spec, semirt_factory(models, bed.cost, tcs_count=concurrency))
    driver = make_driver(bed)
    names = ["a", "b"]
    arrivals = [
        Arrival(
            time=offset,
            model_id=names[model_picks[i % len(model_picks)]],
            user_id=f"user-{i % 3}",
        )
        for i, offset in enumerate(offsets)
    ]
    driver.submit_arrivals(arrivals)
    report = driver.run()  # run to quiescence (keep-alives included)

    # 1. every request completed exactly once
    assert len(report.results) == len(arrivals)
    ids = [r.request.request_id for r in report.results]
    assert len(set(ids)) == len(ids)
    # 2. all memory returned
    for node in bed.platform.nodes:
        assert node.memory_used == 0
        # 3. no enclave pages left committed
        assert node.sgx.epc.committed_bytes == 0
        # no core or quoting-slot leaks either
        assert node.cores.in_use == 0
        assert node.quoting.in_use == 0
    # 4. well-formed memory timeline
    timeline = bed.controller.memory_timeline
    assert timeline[0] == (0.0, 0)
    assert timeline[-1][1] == 0
    times = [t for t, _ in timeline]
    assert times == sorted(times)
    assert all(level >= 0 for _, level in timeline)
    # latencies are physical
    assert all(r.latency > 0 for r in report.results)


@settings(max_examples=10, deadline=None)
@given(
    arrival_gaps=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=15),
    tail=st.integers(2, 6),
)
def test_fnpacker_service_conservation(arrival_gaps, tail):
    """FnPackerService bookkeeping balances for any arrival pattern."""
    from repro.core.fnpacker import FnPool
    from repro.core.packer_service import FnPackerService

    model_ids = tuple(f"m{i}" for i in range(tail))
    bed = make_testbed(num_nodes=2)
    pool = FnPool(name="pool", models=model_ids, memory_budget=0)
    models = servable_map([(m, profile("MBNET"), "tvm") for m in model_ids])
    service = FnPackerService(bed.sim, bed.controller, pool, models, bed.cost)
    count = len(arrival_gaps)

    def driver(sim):
        for index, gap in enumerate(arrival_gaps):
            yield sim.timeout(gap)
            service.invoke(model_ids[index % tail], "user")

    bed.sim.process(driver(bed.sim))
    bed.sim.run()
    assert service.in_flight == 0
    assert sum(s.completed for s in service.stats.values()) == count
    for state in service.router._endpoints.values():
        assert state.pending == 0
