"""Critical-path analysis: trees, adoption links, and sim parity."""

import pytest

from repro.core.stages import Stage
from repro.errors import SeSeMIError
from repro.experiments.common import deploy_single_model, make_driver, make_testbed
from repro.obs import Tracer, analysis
from repro.workloads.arrival import Arrival


def test_critical_path_picks_latest_finishing_chain():
    tracer = Tracer()
    root = tracer.start_span("request")
    fast = tracer.start_span("fast", parent=root)
    fast.end()
    slow = tracer.start_span("slow", parent=root)
    inner = tracer.start_span("inner", parent=slow)
    inner.end()
    slow.end()
    root.end()
    path = analysis.critical_path(tracer.spans, root)
    assert [s.name for s in path] == ["request", "fast", "slow", "inner"]


def test_find_root_filters_by_name_and_attrs():
    tracer = Tracer()
    tracer.start_span("container.startup", container_id="c-1").end()
    tracer.start_span("container.startup", container_id="c-2").end()
    found = analysis.find_root(
        tracer.spans, name="container.startup", container_id="c-2"
    )
    assert found.attributes["container_id"] == "c-2"
    with pytest.raises(SeSeMIError):
        analysis.find_root(tracer.spans, name="container.startup", container_id="c-9")


def test_stage_ratios_normalise_and_exclude():
    ratios = analysis.stage_ratios(
        {"sandbox_init": 5.0, "enclave_init": 3.0, "model_inference": 1.0}
    )
    assert "sandbox_init" not in ratios
    assert ratios["enclave_init"] == pytest.approx(0.75)
    assert sum(ratios.values()) == pytest.approx(1.0)


def _one_traced_cold_request():
    bed = make_testbed(num_nodes=1, traced=True)
    deploy_single_model(bed, "SeSeMI", "MBNET", "tvm")
    driver = make_driver(bed)
    driver.submit_arrivals([Arrival(time=0.0, model_id="m", user_id="u")])
    report = driver.run(until=400)
    (result,) = report.results
    return bed.tracer.finished_spans(), result


def test_sim_stage_seconds_match_invocation_result():
    """The analyzer reproduces the platform's stage accounting from spans."""
    spans, result = _one_traced_cold_request()
    (root,) = analysis.request_roots(spans)
    stages = analysis.stage_seconds(spans, root)
    assert set(stages) == set(result.stage_seconds)
    for stage, seconds in result.stage_seconds.items():
        assert stages[stage] == pytest.approx(seconds, abs=1e-9), stage


def test_adoption_link_folds_in_startup_stages():
    spans, _ = _one_traced_cold_request()
    (root,) = analysis.request_roots(spans)
    with_startup = analysis.stage_seconds(spans, root)
    without = analysis.stage_seconds(spans, root, follow_adopted_startup=False)
    assert Stage.SANDBOX_INIT.value in with_startup
    assert Stage.ENCLAVE_INIT.value in with_startup
    assert Stage.SANDBOX_INIT.value not in without
    assert Stage.ENCLAVE_INIT.value not in without


def test_concurrent_sim_requests_keep_separate_traces():
    """Interleaved sim processes must not cross-contaminate span trees."""
    bed = make_testbed(num_nodes=1, traced=True)
    deploy_single_model(bed, "SeSeMI", "MBNET", "tvm", tcs_count=2)
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="m", user_id="u"),
            Arrival(time=0.0, model_id="m", user_id="u"),
        ]
    )
    driver.run(until=800)
    spans = bed.tracer.finished_spans()
    roots = analysis.request_roots(spans)
    assert len(roots) == 2
    assert roots[0].trace_id != roots[1].trace_id
    trees = [analysis.subtree(spans, root) for root in roots]
    for root, tree in zip(roots, trees):
        assert {s.trace_id for s in tree} == {root.trace_id}
    ids = [{s.span_id for s in tree} for tree in trees]
    assert not (ids[0] & ids[1])


def test_breakdown_table_rows_per_request():
    spans, _ = _one_traced_cold_request()
    order = (Stage.ENCLAVE_INIT.value, Stage.MODEL_INFERENCE.value, "nonexistent")
    (row,) = analysis.breakdown_table(spans, order)
    assert set(row) == set(order)
    assert row["nonexistent"] == 0.0
    assert row[Stage.MODEL_INFERENCE.value] > 0.0
