"""Exporters: lossless JSON round trip and chrome://tracing output."""

import json

from repro.obs import (
    Tracer,
    spans_from_json,
    spans_to_json,
    to_chrome_trace,
    write_chrome_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("request", model_id="m", flavor="cold"):
        with tracer.span("serve", container_id="c-1"):
            with tracer.span("stage:model_inference", stage="model_inference"):
                pass
    return tracer


def test_json_round_trip_preserves_everything():
    tracer = _sample_tracer()
    originals = tracer.finished_spans()
    rebuilt = spans_from_json(spans_to_json(originals, indent=2))
    assert len(rebuilt) == len(originals)
    for before, after in zip(originals, rebuilt):
        assert after.name == before.name
        assert after.trace_id == before.trace_id
        assert after.span_id == before.span_id
        assert after.parent_id == before.parent_id
        assert after.start == before.start
        assert after.end_time == before.end_time
        assert after.attributes == before.attributes
        assert after.status == before.status


def test_rebuilt_spans_are_detached_but_analyzable():
    tracer = _sample_tracer()
    rebuilt = spans_from_json(spans_to_json(tracer.finished_spans()))
    from repro.obs import analysis

    root = analysis.find_root(rebuilt, name="request")
    assert [s.name for s in analysis.critical_path(rebuilt, root)] == [
        "request", "serve", "stage:model_inference",
    ]


def test_chrome_trace_shape():
    tracer = _sample_tracer()
    doc = to_chrome_trace(tracer.finished_spans(), service="sesemi-test")
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
    assert len(complete) == 3
    for event in complete:
        assert isinstance(event["ts"], float)
        assert event["dur"] >= 0.0
        assert event["pid"] == 1 and event["tid"] >= 1
        assert "span_id" in event["args"]
    stage_events = [e for e in complete if e["cat"] == "model_inference"]
    assert len(stage_events) == 1


def test_chrome_trace_skips_open_spans():
    tracer = Tracer()
    tracer.start_span("request")  # never ended
    doc = to_chrome_trace(tracer.spans)
    assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


def test_written_file_is_loadable_json(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer.finished_spans(), str(path))
    loaded = json.loads(path.read_text())
    assert isinstance(loaded["traceEvents"], list)
    assert loaded["displayTimeUnit"] == "ms"
    # chrome://tracing requirements: every event carries ph/pid/tid/name,
    # and complete events carry numeric ts + dur.
    for event in loaded["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
