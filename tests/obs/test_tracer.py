"""Tracer behaviour: nesting, explicit parents, status, metrics bridge."""

import pytest

from repro.errors import SeSeMIError
from repro.obs import SimClock, SpanContext, Tracer, maybe_span
from repro.serverless.telemetry import MetricsRegistry
from repro.sim.core import Simulation


def test_ambient_nesting_builds_one_trace():
    tracer = Tracer()
    with tracer.span("request") as root:
        with tracer.span("serve") as serve:
            with tracer.span("stage:model_inference", stage="model_inference") as leaf:
                assert tracer.current_span() is leaf
    assert tracer.current_span() is None
    assert serve.parent_id == root.span_id
    assert leaf.parent_id == serve.span_id
    assert root.trace_id == serve.trace_id == leaf.trace_id
    assert [s.name for s in tracer.finished_spans()] == [
        "request", "serve", "stage:model_inference",
    ]


def test_sibling_roots_get_distinct_traces():
    tracer = Tracer()
    with tracer.span("request"):
        pass
    with tracer.span("request"):
        pass
    assert len(tracer.trace_ids()) == 2
    assert len(tracer.roots()) == 2


def test_explicit_parent_propagates_context():
    tracer = Tracer()
    root = tracer.start_span("request")
    child = tracer.start_span("serve", parent=root)
    child.end()
    root.end()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id


def test_span_context_wire_round_trip():
    context = SpanContext(trace_id="trace-7", span_id="span-9")
    assert SpanContext.from_wire(context.to_wire()) == context


def test_exception_marks_span_error_and_unwinds_stack():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("request"):
            with tracer.span("serve"):
                raise ValueError("boom")
    assert tracer.current_span() is None
    by_name = {s.name: s for s in tracer.finished_spans()}
    assert by_name["serve"].status == "error"
    assert by_name["request"].status == "error"


def test_double_end_raises():
    tracer = Tracer()
    span = tracer.start_span("request")
    span.end()
    with pytest.raises(SeSeMIError):
        span.end()


def test_attributes_and_set_attribute():
    tracer = Tracer()
    span = tracer.start_span("request", model_id="m")
    span.set_attribute("flavor", "cold")
    span.set_attributes(enclave_id="abc", epc_pressure=0.5)
    span.end()
    assert span.attributes == {
        "model_id": "m", "flavor": "cold", "enclave_id": "abc", "epc_pressure": 0.5,
    }


def test_sim_clock_spans_use_virtual_time():
    sim = Simulation()
    tracer = Tracer(clock=SimClock(sim))

    def process():
        span = tracer.start_span("request")
        yield sim.timeout(2.5)
        span.end()

    sim.process(process())
    sim.run()
    (span,) = tracer.finished_spans()
    assert span.start == 0.0
    assert span.duration == pytest.approx(2.5)


def test_finished_spans_feed_metrics_histograms():
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    for _ in range(3):
        with tracer.span("serve"):
            pass
    snapshot = metrics.snapshot()
    assert snapshot["span.serve.seconds.count"] == 3
    assert "span.serve.seconds.p95" in snapshot


def test_maybe_span_without_tracer_is_noop():
    with maybe_span(None, "request") as span:
        assert span is None


def test_clear_drops_spans():
    tracer = Tracer()
    with tracer.span("request"):
        pass
    tracer.clear()
    assert tracer.finished_spans() == []
