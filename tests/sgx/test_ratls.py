"""RA-TLS handshakes and secure channels, including MITM scenarios."""

import pytest

from repro.crypto.dh import DHKeyPair
from repro.errors import AttestationError, CryptoError, InvalidTag
from repro.sgx.attestation import AttestationService, QuotePolicy
from repro.sgx.enclave import EnclaveBuildConfig, EnclaveCode
from repro.sgx.platform import SGX2, SgxPlatform
from repro.sgx.ratls import (
    HandshakeOffer,
    RatlsPeer,
    complete_handshake,
    perform_handshake,
    respond_handshake,
)

MB = 1024 * 1024


class Service(EnclaveCode):
    pass


@pytest.fixture()
def setup():
    attestation = AttestationService()
    platform = SgxPlatform(SGX2, attestation_service=attestation)
    enclave = platform.create_enclave(Service(), EnclaveBuildConfig(memory_bytes=MB))
    return attestation, platform, enclave


def attested_peer(name, enclave, platform):
    return RatlsPeer(name, enclave=enclave, quoter=platform.quote)


def test_plain_handshake_channel(setup):
    client, server = RatlsPeer("c"), RatlsPeer("s")
    c, s = perform_handshake(client, server)
    assert s.recv(c.send(b"hello")) == b"hello"
    assert c.recv(s.send(b"world")) == b"world"


def test_one_way_attested_handshake(setup):
    attestation, platform, enclave = setup
    client = RatlsPeer("client")
    server = attested_peer("server", enclave, platform)
    c, s = perform_handshake(
        client, server, attestation,
        client_requires=QuotePolicy(expected_mrenclave=enclave.measurement),
    )
    assert s.recv(c.send(b"register")) == b"register"


def test_mutual_attested_handshake(setup):
    attestation, platform, enclave = setup
    other = platform.create_enclave(Service(), EnclaveBuildConfig(memory_bytes=2 * MB))
    client = attested_peer("semirt", enclave, platform)
    server = attested_peer("keyservice", other, platform)
    c, s = perform_handshake(
        client, server, attestation,
        client_requires=QuotePolicy(expected_mrenclave=other.measurement),
        server_requires=QuotePolicy(expected_mrenclave=enclave.measurement),
    )
    assert s.recv(c.send(b"provision")) == b"provision"


def test_missing_quote_rejected(setup):
    attestation, platform, enclave = setup
    client, server = RatlsPeer("c"), RatlsPeer("s")  # server unattested
    with pytest.raises(AttestationError, match="no quote"):
        perform_handshake(
            client, server, attestation,
            client_requires=QuotePolicy(),
        )


def test_wrong_identity_rejected(setup):
    attestation, platform, enclave = setup
    client = RatlsPeer("client")
    server = attested_peer("server", enclave, platform)
    wrong = "ef" * 32
    from repro.sgx.measurement import EnclaveMeasurement

    with pytest.raises(AttestationError):
        perform_handshake(
            client, server, attestation,
            client_requires=QuotePolicy(expected_mrenclave=EnclaveMeasurement(wrong)),
        )


def test_quote_splice_mitm_rejected(setup):
    """An attacker cannot graft a genuine quote onto its own DH key."""
    attestation, platform, enclave = setup
    server = attested_peer("server", enclave, platform)
    genuine_offer = server.offer()
    mitm_key = DHKeyPair.generate()
    spliced = HandshakeOffer(dh_public=mitm_key.public, quote=genuine_offer.quote)
    client = RatlsPeer("client")
    client_offer = client.offer()
    with pytest.raises(AttestationError, match="bind"):
        complete_handshake(
            client, client_offer, spliced, attestation,
            client_requires=QuotePolicy(expected_mrenclave=enclave.measurement),
        )


def test_channel_rejects_replay(setup):
    c, s = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    wire = c.send(b"one")
    s.recv(wire)
    with pytest.raises(InvalidTag):
        s.recv(wire)


def test_channel_rejects_reorder(setup):
    c, s = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    first, second = c.send(b"one"), c.send(b"two")
    with pytest.raises(InvalidTag):
        s.recv(second)


def test_channel_rejects_reflection(setup):
    """A message cannot be reflected back to its sender (direction keys)."""
    c, s = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    wire = c.send(b"one")
    with pytest.raises(InvalidTag):
        c.recv(wire)


def test_channel_rejects_tampering(setup):
    c, s = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    wire = bytearray(c.send(b"payload"))
    wire[0] ^= 1
    with pytest.raises(InvalidTag):
        s.recv(bytes(wire))


def test_channels_are_independent(setup):
    c1, s1 = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    c2, s2 = perform_handshake(RatlsPeer("c"), RatlsPeer("s"))
    with pytest.raises(InvalidTag):
        s2.recv(c1.send(b"cross-channel"))


def test_offer_wire_roundtrip(setup):
    attestation, platform, enclave = setup
    peer = attested_peer("p", enclave, platform)
    offer = peer.offer()
    restored = HandshakeOffer.from_wire(offer.to_wire())
    assert restored.dh_public == offer.dh_public
    assert restored.quote == offer.quote


def test_offer_wire_malformed_rejected():
    with pytest.raises(AttestationError):
        HandshakeOffer.from_wire({"nonsense": 1})


def test_shared_secret_requires_offer_first():
    peer = RatlsPeer("p")
    other = RatlsPeer("o")
    other_offer = other.offer()
    with pytest.raises(CryptoError):
        peer.shared_secret(other_offer)


def test_attested_peer_needs_both_enclave_and_quoter(setup):
    _, platform, enclave = setup
    with pytest.raises(ValueError):
        RatlsPeer("bad", enclave=enclave)


def test_respond_handshake_returns_client_report(setup):
    attestation, platform, enclave = setup
    client = attested_peer("client", enclave, platform)
    server = RatlsPeer("server-plain")
    offer = client.offer()
    _, _, report = respond_handshake(
        server, offer, attestation, server_requires=QuotePolicy()
    )
    assert report is not None
    assert report.mrenclave == enclave.measurement


def test_respond_handshake_unattested_client_gives_no_report(setup):
    server = RatlsPeer("server")
    offer = RatlsPeer("client").offer()
    _, _, report = respond_handshake(server, offer)
    assert report is None
