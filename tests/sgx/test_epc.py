"""EPC accounting and the paging slowdown model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EpcError
from repro.sgx.epc import MB, PAGE_SIZE, EpcManager


def test_allocation_rounds_to_pages():
    epc = EpcManager(capacity_bytes=128 * MB)
    rounded = epc.allocate("e1", 1)
    assert rounded == PAGE_SIZE
    assert epc.committed_for("e1") == PAGE_SIZE


def test_capacity_validation():
    with pytest.raises(EpcError):
        EpcManager(capacity_bytes=0)


def test_negative_allocation_rejected():
    epc = EpcManager(capacity_bytes=MB)
    with pytest.raises(EpcError):
        epc.allocate("e1", -1)


def test_overcommit_allowed_with_slowdown():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.allocate("e1", 128 * MB)
    assert epc.access_slowdown() == 1.0
    epc.allocate("e2", 128 * MB)
    assert epc.pressure == pytest.approx(2.0)
    assert epc.access_slowdown() > 1.0


def test_slowdown_flat_until_capacity():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.allocate("e1", 64 * MB)
    assert epc.access_slowdown() == 1.0


def test_slowdown_monotone_in_pressure():
    epc = EpcManager(capacity_bytes=128 * MB)
    previous = epc.access_slowdown()
    for index in range(8):
        epc.allocate(f"e{index}", 64 * MB)
        current = epc.access_slowdown()
        assert current >= previous
        previous = current


def test_what_if_probe_does_not_commit():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.slowdown_for_working_set(512 * MB)
    assert epc.committed_bytes == 0


def test_free_partial_and_full():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.allocate("e1", 10 * MB)
    epc.free("e1", 4 * MB)
    assert epc.committed_for("e1") == 6 * MB
    epc.free("e1")
    assert epc.committed_for("e1") == 0


def test_free_more_than_held_rejected():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.allocate("e1", MB)
    with pytest.raises(EpcError):
        epc.free("e1", 2 * MB)


def test_free_unknown_enclave_is_noop():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.free("ghost")  # freeing everything held (nothing) is fine
    assert epc.committed_bytes == 0


def test_stats_track_peak():
    epc = EpcManager(capacity_bytes=128 * MB)
    epc.allocate("e1", 100 * MB)
    epc.free("e1")
    epc.allocate("e2", 10 * MB)
    assert epc.stats.peak_committed >= 100 * MB


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 16 * MB)), max_size=30
    )
)
def test_accounting_invariants_property(operations):
    """Committed bytes equal the sum of per-enclave holdings, never negative."""
    epc = EpcManager(capacity_bytes=64 * MB)
    holdings = {}
    for enclave_index, nbytes in operations:
        key = f"e{enclave_index}"
        epc.allocate(key, nbytes)
        pages = ((nbytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
        holdings[key] = holdings.get(key, 0) + pages
    assert epc.committed_bytes == sum(holdings.values())
    for key, held in holdings.items():
        assert epc.committed_for(key) == held
        epc.free(key)
    assert epc.committed_bytes == 0
    assert epc.access_slowdown() == 1.0
