"""Enclave lifecycle, ECALL surface, TCS limits, OCALL dispatch."""

import pytest

from repro.errors import EnclaveError, TcsExhausted
from repro.sgx.enclave import Enclave, EnclaveBuildConfig, EnclaveCode, ecall
from repro.sgx.platform import SGX2, SgxPlatform

MB = 1024 * 1024


class Adder(EnclaveCode):
    SETTINGS = {"program": "adder"}

    def __init__(self):
        super().__init__()
        self.total = 0

    @ecall
    def EC_ADD(self, x):
        self.total += x
        return self.total

    @ecall
    def EC_ASK_HOST(self, value):
        return self.ocall("OC_DOUBLE", value)

    def _secret_helper(self):  # NOT an ecall
        return "secret"


@pytest.fixture()
def platform():
    return SgxPlatform(SGX2)


@pytest.fixture()
def enclave(platform):
    return platform.create_enclave(Adder(), EnclaveBuildConfig(memory_bytes=MB))


def test_ecall_dispatch(enclave):
    assert enclave.ecall("EC_ADD", 3) == 3
    assert enclave.ecall("EC_ADD", 4) == 7


def test_only_exported_ecalls_callable(enclave):
    assert enclave.exported_ecalls == {"EC_ADD", "EC_ASK_HOST"}
    for name in ("_secret_helper", "total", "__init__", "nonexistent", "ocall"):
        with pytest.raises(EnclaveError):
            enclave.ecall(name)


def test_ocall_roundtrip(enclave):
    enclave.register_ocall("OC_DOUBLE", lambda v: v * 2)
    assert enclave.ecall("EC_ASK_HOST", 21) == 42


def test_unregistered_ocall_fails(enclave):
    with pytest.raises(EnclaveError):
        enclave.ecall("EC_ASK_HOST", 1)


def test_destroyed_enclave_rejects_ecalls(enclave):
    enclave.destroy()
    assert not enclave.alive
    with pytest.raises(EnclaveError):
        enclave.ecall("EC_ADD", 1)
    with pytest.raises(EnclaveError):
        enclave.get_report()


def test_destroy_idempotent(enclave):
    enclave.destroy()
    enclave.destroy()  # no error


def test_destroy_releases_epc(platform):
    enclave = platform.create_enclave(Adder(), EnclaveBuildConfig(memory_bytes=4 * MB))
    held = platform.epc.committed_bytes
    assert held >= 4 * MB
    enclave.destroy()
    assert platform.epc.committed_bytes < held


def test_tcs_exhaustion(platform):
    class Reenter(EnclaveCode):
        @ecall
        def EC_OUTER(self):
            # Re-entering through another ECALL consumes a second TCS.
            return self.enclave.ecall("EC_INNER")

        @ecall
        def EC_INNER(self):
            return "ok"

    one_tcs = platform.create_enclave(
        Reenter(), EnclaveBuildConfig(memory_bytes=MB, tcs_count=1)
    )
    with pytest.raises(TcsExhausted):
        one_tcs.ecall("EC_OUTER")

    two_tcs = platform.create_enclave(
        Reenter(), EnclaveBuildConfig(memory_bytes=MB, tcs_count=2)
    )
    assert two_tcs.ecall("EC_OUTER") == "ok"


def test_tcs_released_after_ecall(enclave):
    for _ in range(10):
        enclave.ecall("EC_ADD", 1)
    assert enclave.tcs_in_use == 0


def test_report_carries_identity_and_data(enclave):
    report = enclave.get_report(b"channel-binding")
    assert report.mrenclave == enclave.measurement
    assert report.report_data.startswith(b"channel-binding")
    assert len(report.report_data) == 64
    assert report.platform_id == enclave.platform_id


def test_report_data_too_long_rejected(enclave):
    with pytest.raises(EnclaveError):
        enclave.get_report(b"x" * 65)


def test_settings_affect_measurement(platform):
    class Configurable(EnclaveCode):
        def __init__(self, mode):
            super().__init__()
            self._mode = mode

        def settings(self):
            return {"mode": self._mode}

    config = EnclaveBuildConfig(memory_bytes=MB)
    a = platform.create_enclave(Configurable("fast"), config)
    b = platform.create_enclave(Configurable("safe"), config)
    assert a.measurement != b.measurement


def test_build_config_validation():
    with pytest.raises(EnclaveError):
        EnclaveBuildConfig(memory_bytes=0)
    with pytest.raises(EnclaveError):
        EnclaveBuildConfig(memory_bytes=MB, tcs_count=0)


def test_code_not_loaded_guard():
    code = Adder()
    with pytest.raises(EnclaveError):
        _ = code.enclave
