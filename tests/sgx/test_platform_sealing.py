"""SGX platforms (hardware profiles, timing model) and sealed storage."""

import pytest

from repro.errors import SealingError
from repro.sgx.enclave import EnclaveBuildConfig, EnclaveCode
from repro.sgx.epc import GB, MB
from repro.sgx.platform import SGX1, SGX2, SgxPlatform, profile_with_epc
from repro.sgx.sealing import SealingService


class Program(EnclaveCode):
    pass


class OtherProgram(EnclaveCode):
    pass


def test_profiles_match_paper_constants():
    assert SGX1.epc_bytes == 128 * MB
    assert SGX2.epc_bytes == 64 * GB
    assert SGX1.attestation.value == "epid"
    assert SGX2.attestation.value == "dcap"


def test_enclave_init_time_anchor():
    """Appendix C: 16 concurrent 256MB enclaves average ~4.06s on SGX2."""
    assert SGX2.enclave_init_time(256 * MB, 16) == pytest.approx(4.06, rel=0.05)


def test_enclave_init_monotone_in_size_and_concurrency():
    for hw in (SGX1, SGX2):
        assert hw.enclave_init_time(64 * MB) < hw.enclave_init_time(256 * MB)
        assert hw.enclave_init_time(64 * MB, 1) < hw.enclave_init_time(64 * MB, 8)


def test_sgx1_init_pays_epc_paging():
    """Launching beyond the 128MB EPC is disproportionately slow on SGX1."""
    over = SGX1.enclave_init_time(256 * MB, 2)
    under = SGX1.enclave_init_time(32 * MB, 2)
    assert over / under > (256 / 32)  # super-linear


def test_quote_time_anchor():
    """<0.1s at 1 quote to ~1s at 16 on SGX2 (Appendix C)."""
    assert SGX2.quote_time(1) < 0.1
    assert 0.8 < SGX2.quote_time(16) < 1.2


def test_epid_slower_than_dcap():
    assert SGX1.quote_time(1) > SGX2.quote_time(1)
    assert SGX1.attestation_round_time(1) > SGX2.attestation_round_time(1)


def test_profile_with_epc_override():
    shrunk = profile_with_epc(SGX2, 512 * MB)
    assert shrunk.epc_bytes == 512 * MB
    assert shrunk.attestation == SGX2.attestation


def test_platform_tracks_live_enclaves():
    platform = SgxPlatform(SGX2)
    enclave = platform.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    assert platform.live_enclaves == 1
    enclave.destroy()
    assert platform.live_enclaves == 0


def test_quote_requires_local_report():
    p1, p2 = SgxPlatform(SGX2), SgxPlatform(SGX2)
    enclave = p1.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    report = enclave.get_report()
    from repro.errors import EnclaveError

    with pytest.raises(EnclaveError):
        p2.quote(report)


def test_seal_unseal_same_identity():
    platform = SgxPlatform(SGX2)
    seal = SealingService()
    enclave = platform.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    blob = seal.seal(enclave, b"cached keys")
    assert seal.unseal(enclave, blob) == b"cached keys"


def test_unseal_other_identity_fails():
    platform = SgxPlatform(SGX2)
    seal = SealingService()
    a = platform.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    b = platform.create_enclave(OtherProgram(), EnclaveBuildConfig(memory_bytes=MB))
    blob = seal.seal(a, b"secret")
    with pytest.raises(SealingError):
        seal.unseal(b, blob)


def test_unseal_other_platform_root_fails():
    platform = SgxPlatform(SGX2)
    enclave = platform.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    blob = SealingService(root_secret=b"a" * 32).seal(enclave, b"secret")
    with pytest.raises(SealingError):
        SealingService(root_secret=b"b" * 32).unseal(enclave, blob)


def test_unseal_tampered_blob_fails():
    platform = SgxPlatform(SGX2)
    seal = SealingService()
    enclave = platform.create_enclave(Program(), EnclaveBuildConfig(memory_bytes=MB))
    blob = bytearray(seal.seal(enclave, b"secret"))
    blob[-1] ^= 1
    with pytest.raises(SealingError):
        seal.unseal(enclave, bytes(blob))
