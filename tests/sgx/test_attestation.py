"""Quotes, verification policies, and the attestation service."""

import pytest

from repro.crypto.signature import SigningKey
from repro.errors import AttestationError
from repro.sgx.attestation import (
    AttestationKind,
    AttestationService,
    Quote,
    QuotePolicy,
    QuotingEnclave,
    Report,
)
from repro.sgx.measurement import EnclaveMeasurement

MRENCLAVE = EnclaveMeasurement("ab" * 32)
OTHER = EnclaveMeasurement("cd" * 32)


def make_report(mrenclave=MRENCLAVE, isv_svn=2, debug=False, platform="node-1"):
    return Report(
        mrenclave=mrenclave,
        isv_svn=isv_svn,
        debug=debug,
        report_data=b"\x00" * 64,
        platform_id=platform,
    )


@pytest.fixture()
def service_and_qe():
    service = AttestationService()
    key = SigningKey.generate()
    service.provision_platform("node-1", key)
    return service, QuotingEnclave(AttestationKind.DCAP, key)


def test_report_data_must_be_64_bytes():
    with pytest.raises(AttestationError):
        Report(
            mrenclave=MRENCLAVE, isv_svn=1, debug=False,
            report_data=b"short", platform_id="node-1",
        )


def test_quote_verifies(service_and_qe):
    service, qe = service_and_qe
    report = service.verify(qe.quote(make_report()))
    assert report.mrenclave == MRENCLAVE


def test_unknown_platform_rejected(service_and_qe):
    service, qe = service_and_qe
    quote = qe.quote(make_report(platform="node-1"))
    rogue = Quote(
        report=make_report(platform="rogue"),
        kind=quote.kind,
        signature=quote.signature,
    )
    with pytest.raises(AttestationError, match="unknown platform"):
        service.verify(rogue)


def test_forged_signature_rejected(service_and_qe):
    service, _ = service_and_qe
    forged = Quote(
        report=make_report(),
        kind=AttestationKind.DCAP,
        signature=SigningKey.generate().sign(b"whatever"),
    )
    with pytest.raises(AttestationError, match="signature"):
        service.verify(forged)


def test_report_substitution_rejected(service_and_qe):
    """A valid signature cannot be re-bound to a different report."""
    service, qe = service_and_qe
    quote = qe.quote(make_report())
    spliced = Quote(
        report=make_report(mrenclave=OTHER), kind=quote.kind,
        signature=quote.signature,
    )
    with pytest.raises(AttestationError):
        service.verify(spliced)


def test_policy_mrenclave_mismatch(service_and_qe):
    service, qe = service_and_qe
    quote = qe.quote(make_report())
    with pytest.raises(AttestationError, match="identity mismatch"):
        service.verify(quote, QuotePolicy(expected_mrenclave=OTHER))


def test_policy_min_svn(service_and_qe):
    service, qe = service_and_qe
    quote = qe.quote(make_report(isv_svn=1))
    with pytest.raises(AttestationError, match="security version"):
        service.verify(quote, QuotePolicy(min_isv_svn=3))
    service.verify(quote, QuotePolicy(min_isv_svn=1))


def test_policy_debug_rejected_by_default(service_and_qe):
    service, qe = service_and_qe
    quote = qe.quote(make_report(debug=True))
    with pytest.raises(AttestationError, match="debug"):
        service.verify(quote)
    service.verify(quote, QuotePolicy(allow_debug=True))


def test_kind_is_bound_into_signature(service_and_qe):
    """Re-labelling an EPID quote as DCAP breaks the signature."""
    service, _ = service_and_qe
    key = SigningKey.generate()
    service.provision_platform("node-2", key)
    epid_qe = QuotingEnclave(AttestationKind.EPID, key)
    quote = epid_qe.quote(make_report(platform="node-2"))
    relabelled = Quote(
        report=quote.report, kind=AttestationKind.DCAP, signature=quote.signature
    )
    with pytest.raises(AttestationError):
        service.verify(relabelled)


def test_quote_counter(service_and_qe):
    _, qe = service_and_qe
    before = qe.quotes_generated
    qe.quote(make_report())
    assert qe.quotes_generated == before + 1
