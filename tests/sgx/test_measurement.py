"""MRENCLAVE computation: determinism and sensitivity."""

import pytest

from repro.sgx.enclave import EnclaveCode
from repro.sgx.measurement import EnclaveMeasurement, code_identity_of, measure


class ProgramA(EnclaveCode):
    def work(self):
        return 1


class ProgramB(EnclaveCode):
    def work(self):
        return 2


def test_measurement_deterministic():
    identity = code_identity_of(ProgramA)
    assert measure(identity, {"tcs": 1}) == measure(identity, {"tcs": 1})


def test_measurement_changes_with_config():
    identity = code_identity_of(ProgramA)
    assert measure(identity, {"tcs": 1}) != measure(identity, {"tcs": 2})


def test_measurement_changes_with_code():
    config = {"tcs": 1}
    assert measure(code_identity_of(ProgramA), config) != measure(
        code_identity_of(ProgramB), config
    )


def test_instance_and_class_identity_agree():
    assert code_identity_of(ProgramA()) == code_identity_of(ProgramA)


def test_nested_config_covered():
    identity = code_identity_of(ProgramA)
    a = measure(identity, {"settings": {"isolation": {"sequential": False}}})
    b = measure(identity, {"settings": {"isolation": {"sequential": True}}})
    assert a != b


def test_config_key_order_irrelevant():
    identity = code_identity_of(ProgramA)
    assert measure(identity, {"a": 1, "b": 2}) == measure(identity, {"b": 2, "a": 1})


def test_unserialisable_config_rejected():
    with pytest.raises(ValueError):
        measure(code_identity_of(ProgramA), {"bad": object()})


def test_measurement_value_validation():
    with pytest.raises(ValueError):
        EnclaveMeasurement("nothex")
    with pytest.raises(ValueError):
        EnclaveMeasurement("A" * 64)  # uppercase rejected


def test_measurement_to_bytes():
    m = measure(code_identity_of(ProgramA), {})
    assert m.to_bytes().hex() == m.value
