"""Streaming over HTTP: chunked token frames, cancel, errors, timeouts.

Drives ``POST /v1/stream`` end to end: a remote user opens a stream
through :meth:`RemoteSession.stream`, sealed frames arrive as chunked
records, and the client authenticates/orders them locally.  The server
side must release enclave stream contexts on every exit path -- clean
drain, client cancel, deadline expiry -- because an abandoned KV cache
pins enclave heap.
"""

import time

import pytest

from repro.core.batching import BatchPolicy
from repro.errors import DeadlineExceeded, InvocationError
from repro.mlrt.decoder import DecoderSession
from repro.mlrt.zoo import build_tinylm

from tests.service.conftest import launch_world


@pytest.fixture(scope="module")
def world():
    w = launch_world(
        tcs_count=4,
        paced_s=0.01,
        policy=BatchPolicy(batch_window_s=0.02, max_batch=4),
        max_inflight=16,
        model_builder=lambda: build_tinylm(seed=7),
    )
    yield w
    w.close()


def _wait_for(condition, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.02)
    return condition()


def _open_streams(world):
    return world.host.enclave.code.open_streams


def test_remote_stream_matches_reference_decode(world):
    want = DecoderSession(world.model).generate([3, 1, 4], 8)
    stream = world.session.stream([3, 1, 4], 8)
    assert stream.result(timeout_s=30) == want
    assert stream.done() and not stream.cancelled()
    assert stream.ttft_s is not None and stream.ttft_s >= 0
    assert stream.token_count == 8
    assert _wait_for(lambda: _open_streams(world) == 0)


def test_iterating_yields_tokens_in_decode_order(world):
    want = DecoderSession(world.model).generate([2, 7, 1], 6)
    got = list(world.session.stream([2, 7, 1], 6))
    assert got == want


def test_concurrent_remote_streams_batch_server_side(world):
    world.host.enclave.code.stream_log.clear()
    prompts = [[i + 1, 2, 3] for i in range(4)]
    refs = [DecoderSession(world.model).generate(p, 10) for p in prompts]
    streams = [world.session.stream(p, 10) for p in prompts]
    assert [s.result(timeout_s=30) for s in streams] == refs
    sizes = [n for _, _, n in world.host.enclave.code.stream_log]
    assert any(n > 1 for n in sizes), (
        f"four concurrent remote streams never shared a step ECALL: {sizes}"
    )
    assert _wait_for(lambda: _open_streams(world) == 0)


def test_cancel_stops_the_server_side_decode(world):
    stream = world.session.stream([1, 2, 3], 512)
    frames = iter(stream)
    next(frames)  # the stream is live end to end
    assert stream.cancel() is True
    assert stream.cancelled() and stream.done()
    assert stream.cancel() is False
    # closing the socket is the signal: the server's next frame write
    # fails, it cancels the gateway stream, and the enclave context --
    # KV cache included -- is released without waiting for 512 tokens
    assert _wait_for(lambda: _open_streams(world) == 0)
    log = world.host.enclave.code.stream_log
    steps_at_cancel = len(log)
    time.sleep(0.3)
    assert len(log) <= steps_at_cancel + 4, (
        "the server kept decoding long after the client hung up"
    )


def test_mid_stream_errors_arrive_as_typed_records(world):
    # a zero token budget passes the client but is refused in the
    # enclave after admission: the failure reaches the client as a
    # flagged error record on the open stream, not a silent hangup
    stream = world.session.stream([1, 2, 3], 0)
    with pytest.raises(InvocationError, match="max_new_tokens"):
        stream.result(timeout_s=30)
    assert stream.done() and not stream.cancelled()
    assert _wait_for(lambda: _open_streams(world) == 0)


def test_result_deadline_kills_the_transport(world):
    stream = world.session.stream([1, 2, 3], 512)
    with pytest.raises(DeadlineExceeded):
        stream.result(timeout_s=0.05)
    # the documented transport caveat: an expired remote stream is dead
    assert stream.done()
    with pytest.raises(DeadlineExceeded):
        stream.result(timeout_s=30)
    assert _wait_for(lambda: _open_streams(world) == 0)


def test_streams_and_one_shot_inference_share_the_connection_pool(world):
    # a streaming response must never wedge the keep-alive connection
    # used by the JSON endpoints: open a stream, then do normal work
    stream = world.session.stream([5, 2, 3], 4)
    want = DecoderSession(world.model).generate([5, 2, 3], 4)
    assert world.remote.healthz()["ok"] is True
    assert stream.result(timeout_s=30) == want
