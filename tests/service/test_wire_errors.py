"""The canonical error taxonomy must survive an HTTP round trip."""

from __future__ import annotations

import pytest

from repro.errors import (
    AccessDenied,
    AttestationError,
    CircuitOpen,
    DeadlineExceeded,
    InvocationError,
    QueueFull,
    ReproError,
    RequestCancelled,
    RoutingError,
    StorageError,
    TransportError,
    UnknownIdentity,
    from_wire,
    to_wire,
    wire_status,
)


@pytest.mark.parametrize(
    "exc_type,status",
    [
        (QueueFull, 429),
        (RequestCancelled, 409),
        (DeadlineExceeded, 504),
        (CircuitOpen, 503),
        (RoutingError, 503),
        (TransportError, 502),
        (AccessDenied, 403),
        (UnknownIdentity, 403),
        (AttestationError, 403),
        (InvocationError, 400),
        (StorageError, 404),
    ],
)
def test_round_trip_preserves_type_status_and_message(exc_type, status):
    sent, payload = to_wire(exc_type("what went wrong"))
    assert sent == status
    revived = from_wire(payload, sent)
    assert type(revived) is exc_type
    assert "what went wrong" in str(revived)


def test_subclasses_inherit_their_parents_status():
    class Narrower(QueueFull):
        pass

    assert wire_status(Narrower("x")) == 429
    status, payload = to_wire(Narrower("x"))
    assert status == 429
    # the wire name is the concrete class; unknown to the peer, so the
    # 429 fallback revives it as the canonical QueueFull
    assert payload["error"] == "Narrower"
    assert type(from_wire(payload, status)) is QueueFull


def test_unmapped_errors_travel_as_500_repro_error():
    status, payload = to_wire(ValueError("not ours"))
    assert status == 500
    revived = from_wire(payload, status)
    assert type(revived) is ReproError
    assert "not ours" in str(revived)


def test_unknown_name_falls_back_by_status():
    revived = from_wire({"error": "NoSuchClass", "message": "m"}, 429)
    assert type(revived) is QueueFull
    revived = from_wire({"error": "NoSuchClass", "message": "m"}, 418)
    assert type(revived) is ReproError


def test_from_wire_tolerates_junk_payloads():
    revived = from_wire({}, 503)
    assert isinstance(revived, ReproError)
    revived = from_wire({"message": "only text"}, 502)
    assert type(revived) is TransportError
    assert "only text" in str(revived)
