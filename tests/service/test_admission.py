"""Unit tests for the admission controller and its token buckets."""

from __future__ import annotations

import pytest

from repro.errors import QueueFull
from repro.service import AdmissionController, ServiceConfig, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def test_token_bucket_starts_full_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert bucket.try_take() and bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()  # empty; no time has passed
    clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
    assert bucket.try_take()
    assert not bucket.try_take()


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == pytest.approx(2.0)


def _controller(**overrides) -> AdmissionController:
    defaults = dict(max_inflight_total=4, max_inflight_per_tenant=2)
    defaults.update(overrides)
    return AdmissionController(ServiceConfig(**defaults), clock=FakeClock())


def test_per_tenant_bound_sheds_the_third_request():
    controller = _controller()
    controller.admit("a")
    controller.admit("a")
    with pytest.raises(QueueFull, match="in flight"):
        controller.admit("a")
    # a different tenant still fits
    controller.admit("b")
    assert controller.shed_tenant == 1


def test_total_bound_sheds_across_tenants():
    controller = _controller(max_inflight_per_tenant=4)
    for tenant in ("a", "a", "b", "b"):
        controller.admit(tenant)
    with pytest.raises(QueueFull, match="max inflight"):
        controller.admit("c")
    assert controller.shed_total == 1


def test_release_is_idempotent_and_frees_the_slot():
    controller = _controller(max_inflight_per_tenant=1)
    release = controller.admit("a")
    with pytest.raises(QueueFull):
        controller.admit("a")
    release()
    release()  # second call must be a no-op, not a double-decrement
    assert controller.inflight_total == 0
    controller.admit("a")
    assert controller.inflight_total == 1
    assert controller.released == 1


def test_rate_limit_sheds_before_inflight_accounting():
    clock = FakeClock()
    config = ServiceConfig(rate_rps=1.0, rate_burst=2)
    controller = AdmissionController(config, clock=clock)
    controller.admit("a")()
    controller.admit("a")()
    with pytest.raises(QueueFull, match="req/s"):
        controller.admit("a")
    clock.advance(1.0)
    controller.admit("a")()
    stats = controller.stats()
    assert stats["shed_rate"] == 1
    assert stats["admitted"] == 3
    assert stats["inflight_total"] == 0


def test_stats_snapshot_counts_by_tenant():
    controller = _controller()
    keep = controller.admit("a")
    controller.admit("b")()
    stats = controller.stats()
    assert stats["inflight_by_tenant"] == {"a": 1}
    assert stats["admitted"] == 2
    assert stats["released"] == 1
    assert stats["shed"] == 0
    keep()
