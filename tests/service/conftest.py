"""Shared world-building for the service-tier tests.

``launch_world`` boots the full functional stack -- environment, one
live SeMIRT endpoint behind a gateway, the HTTP service on an
ephemeral port -- and a :class:`~repro.service.client.RemoteEnvironment`
attested against the in-process trust root.  Test modules wrap it in a
module-scoped fixture with whatever pacing/batching knobs they need.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.batching import BatchPolicy
from repro.core.deployment import SeSeMIEnvironment
from repro.core.gateway import GatewayConfig
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.mlrt.zoo import build_mobilenet
from repro.routing import FnPool
from repro.service import InferenceService, RemoteEnvironment, ServiceConfig
from repro.warmpool import WarmPoolConfig

MODEL_ID = "svc-test"
USER = "svc-user"


class World:
    """One booted service plus the client-side view of it."""

    def __init__(
        self,
        env: SeSeMIEnvironment,
        service: InferenceService,
        remote: RemoteEnvironment,
        x: np.ndarray,
        model=None,
    ) -> None:
        self.env = env
        self.service = service
        self.remote = remote
        self.x = x
        self.model = model
        self.session = remote.session(USER, MODEL_ID)

    @property
    def host(self):
        """The single live endpoint host (for enclave-side asserts)."""
        return self.service.gateway.primary_host()

    def close(self) -> None:
        self.remote.close()
        gateway = self.service.gateway
        self.service.close()
        gateway.close()


def launch_world(
    *,
    tcs_count: int = 2,
    paced_s: Optional[float] = None,
    policy: Optional[BatchPolicy] = None,
    max_inflight: int = 8,
    queue_depth: int = 16,
    rate_rps: Optional[float] = None,
    result_ttl_s: float = 120.0,
    share_tracer: bool = False,
    warm_pool: Optional[WarmPoolConfig] = None,
    model_builder=None,
) -> World:
    """Boot a one-endpoint service world and connect a remote user.

    ``model_builder`` swaps the served model (default: the MobileNet
    one-shot workload; the streaming tests pass ``build_tinylm``).
    """
    env = SeSeMIEnvironment()
    model = (model_builder or (lambda: build_mobilenet(seed=11)))()
    config = default_semirt_config(tcs_count=tcs_count)
    handle = env.deploy(model, MODEL_ID, owner="owner", config=config)
    pool = FnPool(
        name="svc-test", models=(MODEL_ID,), memory_budget=0,
        num_endpoints=1,
    )
    scheduler = SchedulerConfig(
        queue_depth=queue_depth, paced_service_s=paced_s, batch=policy
    )
    gateway = env.gateway(
        pool, config=config, scheduler=scheduler,
        gateway_config=(
            GatewayConfig(slots_per_endpoint=tcs_count, warm_pool=warm_pool)
            if warm_pool is not None
            else None
        ),
    )
    service = InferenceService(
        env, gateway, [handle],
        config=ServiceConfig(
            max_inflight_total=max_inflight,
            max_inflight_per_tenant=max_inflight,
            rate_rps=rate_rps,
            result_ttl_s=result_ttl_s,
        ),
        scheduler=scheduler,
    )
    service.start_background()
    remote = RemoteEnvironment(
        service.base_url,
        env.attestation,
        tracer=env.tracer if share_tracer else None,
    )
    user = remote.connect_user(USER)
    remote.model(MODEL_ID).grant(user)
    rng = np.random.default_rng(3)
    x = rng.standard_normal(model.input_spec.shape).astype(np.float32)
    return World(env, service, remote, x, model=model)
