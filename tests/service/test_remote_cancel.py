"""``InferenceFuture.cancel()`` exercised through the HTTP service tier.

The satellite-3 scenarios: cancelling a request that is still queued,
one mid-serve inside a paced ECALL, and one riding in a live batch --
all over ``DELETE /v1/results/{id}`` -- plus the sticky terminal
replies (409 after a cancel, 410 after a consume) and the TTL sweeper
releasing abandoned results.  Every scenario ends with
``pending_outputs == 0``: a cancel must always release its enclave
execution context.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batching import BatchPolicy
from repro.errors import RequestCancelled, StorageError
from tests.service.conftest import launch_world


def assert_context_released(world, timeout_s: float = 10.0) -> None:
    """The HTTP 409 lands before the paced worker finishes its cleanup,
    so give the enclave a moment to clear the execution context."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if world.host.code.pending_outputs == 0:
            return
        time.sleep(0.05)
    assert world.host.code.pending_outputs == 0


@pytest.fixture(scope="module")
def paced_world():
    """2 TCS paced to 400 ms: submissions are reliably in flight."""
    world = launch_world(tcs_count=2, paced_s=0.4, max_inflight=8)
    world.session.infer(world.x)  # warm: launch, keys, first ECALL
    yield world
    world.close()


def test_cancel_a_queued_request_before_it_reaches_the_enclave(paced_world):
    world = paced_world
    blockers = [world.session.submit(world.x) for _ in range(2)]
    victim = world.session.submit(world.x)  # both TCS busy: queued
    assert victim.cancel() is True
    with pytest.raises(RequestCancelled):
        victim.result(timeout_s=30)
    for blocker in blockers:
        blocker.result(timeout_s=30)
    assert_context_released(world)


def test_cancel_mid_serve_releases_the_execution_context(paced_world):
    world = paced_world
    future = world.session.submit(world.x)
    time.sleep(0.15)  # inside the paced ECALL: the context exists now
    assert future.cancel() is True
    with pytest.raises(RequestCancelled):
        future.result(timeout_s=30)
    assert_context_released(world)


def test_cancel_is_sticky_409_on_every_later_poll(paced_world):
    world = paced_world
    future = world.session.submit(world.x)
    assert future.cancel() is True
    assert future.cancelled() is True
    assert future.done() is True  # sealed counts as done
    with pytest.raises(RequestCancelled):
        future.result(timeout_s=5)
    with pytest.raises(RequestCancelled):
        future.result(timeout_s=5)
    # cancelling again is idempotent, not an error
    assert future.cancel() is True


def test_cancel_after_consume_is_refused(paced_world):
    world = paced_world
    future = world.session.submit(world.x)
    future.result(timeout_s=30)
    assert future.cancel() is False
    assert future.cancelled() is False


@pytest.fixture(scope="module")
def batch_world():
    """A live accumulator (window 200 ms, batch 2) over paced TCS."""
    world = launch_world(
        tcs_count=2,
        paced_s=0.2,
        policy=BatchPolicy(batch_window_s=0.2, max_batch=2),
        max_inflight=8,
    )
    # two warm serves make the (user, model) pair hot so batches arm
    world.session.infer(world.x)
    world.session.infer(world.x)
    yield world
    world.close()


def test_cancel_one_batch_member_leaves_the_rest_correct(batch_world):
    world = batch_world
    xs = [world.x + np.float32(i) for i in range(3)]
    futures = [world.session.submit(x) for x in xs]
    assert futures[1].cancel() is True
    with pytest.raises(RequestCancelled):
        futures[1].result(timeout_s=30)
    from repro.mlrt.zoo import build_mobilenet

    model = build_mobilenet(seed=11)
    for index in (0, 2):
        y = futures[index].result(timeout_s=30)
        assert np.allclose(
            y, model.run_reference(xs[index]).ravel(), atol=1e-5
        )
    assert_context_released(world)


def test_ttl_sweeper_expires_abandoned_results():
    """A submitted-then-forgotten result is cancelled and its admission
    slot released once the TTL passes -- slots cannot leak."""
    world = launch_world(tcs_count=2, paced_s=0.05, result_ttl_s=1.0)
    try:
        world.session.infer(world.x)  # warm
        future = world.session.submit(world.x)
        path = f"/v1/results/{future.req_id}"
        deadline = time.monotonic() + 10
        status = None
        while time.monotonic() < deadline:
            status, _, _ = world.remote.client.request(
                "GET", path, query={"peek": "1"}
            )
            if status == 404:
                break
            time.sleep(0.25)
        assert status == 404, "the sweeper never expired the entry"
        with pytest.raises(StorageError):
            world.remote.client.call("GET", f"/v1/results/{future.req_id}")
        stats = world.remote.stats()
        assert stats["admission"]["inflight_total"] == 0
        assert stats["service"]["results_retained"] == 0
    finally:
        world.close()
