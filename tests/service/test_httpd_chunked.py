"""AsyncHttpServer chunked responses: framing, aborts, producer cleanup.

These tests drive :class:`StreamingHttpResponse` through a raw
``http.client`` reader: chunk framing must round-trip, a producer
exception after the head is written must surface as a truncated body
(the only honest failure signal left once the status line is gone), and
the aborted producer's ``aclose()`` must run promptly so upstream
cleanup (cancelling a gateway stream) is not deferred to GC.
"""

import asyncio
import http.client
import threading
from urllib.parse import urlsplit

import pytest

from repro.service.httpd import (
    AsyncHttpServer,
    HttpResponse,
    StreamingHttpResponse,
)


class _Httpd:
    """A background-thread AsyncHttpServer around one handler."""

    def __init__(self, handler):
        self._server = AsyncHttpServer(handler)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self._loop)
            self.address = self._loop.run_until_complete(self._server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(timeout=10)

    def connect(self) -> http.client.HTTPConnection:
        host, port = self.address
        return http.client.HTTPConnection(host, port, timeout=10)

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self._server.stop(), self._loop
        ).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture()
def httpd_factory():
    servers = []

    def launch(handler):
        server = _Httpd(handler)
        servers.append(server)
        return server

    yield launch
    for server in servers:
        server.close()


def test_chunked_body_roundtrips(httpd_factory):
    async def chunks():
        yield b"alpha"
        yield b""  # an empty chunk must be skipped, not end the body
        yield b"beta" * 100
        yield b"\x00\xff"

    async def handler(request):
        del request
        return StreamingHttpResponse(chunks(), headers={"x-kind": "stream"})

    server = httpd_factory(handler)
    conn = server.connect()
    conn.request("GET", "/stream")
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Transfer-Encoding") == "chunked"
    assert response.getheader("x-kind") == "stream"
    assert response.read() == b"alpha" + b"beta" * 100 + b"\x00\xff"
    conn.close()


def test_chunks_flush_before_the_body_ends(httpd_factory):
    release = threading.Event()

    async def chunks():
        yield b"first"
        # hold the body open until the client proves it saw the first
        # chunk -- this fails if the server buffers the whole body
        while not release.is_set():
            await asyncio.sleep(0.01)
        yield b"second"

    async def handler(request):
        del request
        return StreamingHttpResponse(chunks())

    server = httpd_factory(handler)
    conn = server.connect()
    conn.request("GET", "/stream")
    response = conn.getresponse()
    assert response.read(5) == b"first"
    release.set()
    assert response.read() == b"second"
    conn.close()


def test_producer_crash_truncates_the_body(httpd_factory):
    cleaned = threading.Event()

    async def chunks():
        try:
            yield b"partial"
            raise RuntimeError("decode failed mid-stream")
        finally:
            cleaned.set()  # aclose() must run promptly, not at GC

    async def handler(request):
        del request
        return StreamingHttpResponse(chunks())

    server = httpd_factory(handler)
    conn = server.connect()
    conn.request("GET", "/stream")
    response = conn.getresponse()
    assert response.read(7) == b"partial"
    with pytest.raises(http.client.IncompleteRead):
        response.read()  # connection died without the terminal 0-chunk
    assert cleaned.wait(timeout=5)
    conn.close()


def test_client_hangup_closes_the_producer(httpd_factory):
    closed = threading.Event()

    async def chunks():
        try:
            while True:
                yield b"x" * 1024
                await asyncio.sleep(0.005)
        finally:
            closed.set()

    async def handler(request):
        del request
        return StreamingHttpResponse(chunks())

    server = httpd_factory(handler)
    conn = server.connect()
    conn.request("GET", "/stream")
    response = conn.getresponse()
    assert response.read(1024)  # the stream is live
    conn.close()  # hang up mid-body
    # the server's next write fails and it must aclose() the producer --
    # upstream this is what cancels an abandoned inference stream
    assert closed.wait(timeout=5)


def test_plain_responses_keep_the_connection_alive_after_a_stream(
    httpd_factory,
):
    async def handler(request):
        if urlsplit(request.path).path == "/stream":
            async def chunks():
                yield b"streamed"

            return StreamingHttpResponse(chunks())
        return HttpResponse(body=b'{"plain": true}')

    server = httpd_factory(handler)
    conn = server.connect()
    conn.request("GET", "/stream")
    assert conn.getresponse().read() == b"streamed"
    conn.request("GET", "/other")  # same socket: keep-alive survived
    assert conn.getresponse().read() == b'{"plain": true}'
    conn.close()
