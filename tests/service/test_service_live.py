"""End-to-end HTTP: the session API over a live service tier.

One module-scoped world: a real SeMIRT endpoint (2 TCS, paced to 50 ms
so concurrency is observable) behind the gateway and the asyncio HTTP
front door, with ``max_inflight_total=2`` so admission sheds are
deterministic: two outstanding submissions fill the tier and the third
is a fast 429 -> :class:`~repro.errors.QueueFull` client-side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueueFull, ReproError, StorageError
from tests.service.conftest import MODEL_ID, USER, launch_world


@pytest.fixture(scope="module")
def world():
    world = launch_world(
        tcs_count=2, paced_s=0.05, max_inflight=2, share_tracer=True
    )
    # warm off the assertions: enclave launch, key release, first ECALL
    world.session.infer(world.x)
    yield world
    world.close()


def expected(world) -> np.ndarray:
    from repro.mlrt.zoo import build_mobilenet

    return build_mobilenet(seed=11).run_reference(world.x).ravel()


def test_sync_infer_round_trips_the_real_crypto(world):
    y = world.session.infer(world.x)
    assert np.allclose(y, expected(world), atol=1e-5)


def test_the_service_never_sees_plaintext(world):
    """The request body is AEAD ciphertext: no input bytes in the clear."""
    enc = world.session.user.encrypt_request(
        MODEL_ID, world.session.measurement, world.x
    )
    assert isinstance(enc, bytes)
    assert world.x.tobytes() not in enc


def test_submit_then_poll_consumes_exactly_once(world):
    future = world.session.submit(world.x)
    y = future.result(timeout_s=30)
    assert np.allclose(y, expected(world), atol=1e-5)
    assert future.done()
    # the result was consumed: every further poll replays a sticky 410
    with pytest.raises(ReproError, match="already fetched"):
        future.result(timeout_s=5)
    assert future.cancel() is False


def test_admission_shed_is_queue_full_client_side(world):
    first = world.session.submit(world.x)
    second = world.session.submit(world.x)
    with pytest.raises(QueueFull):
        world.session.submit(world.x)
    # draining the slots reopens admission
    first.result(timeout_s=30)
    second.result(timeout_s=30)
    world.session.submit(world.x).result(timeout_s=30)


def test_infer_many_pipelines_through_the_feed_window(world):
    xs = [world.x + np.float32(i) for i in range(5)]
    ys = world.session.infer_many(xs)
    from repro.mlrt.zoo import build_mobilenet

    model = build_mobilenet(seed=11)
    for x, y in zip(xs, ys):
        assert np.allclose(y, model.run_reference(x).ravel(), atol=1e-5)


def test_unknown_model_is_a_404_storage_error(world):
    with pytest.raises(ReproError):
        world.remote.session(USER, "no-such-model")
    status, payload, _ = world.remote.client.request(
        "POST", "/v1/infer",
        {"model_id": "ghost", "uid": "u", "enc_request": b"x"},
    )
    assert status == 404
    assert payload["error"] == "StorageError"


def test_unknown_request_id_is_a_404(world):
    with pytest.raises(StorageError):
        world.remote.client.call("GET", "/v1/results/r-999999")


def test_malformed_body_is_a_400_invocation_error(world):
    status, payload, _ = world.remote.client.request(
        "POST", "/v1/infer", {"model_id": MODEL_ID}
    )
    assert status == 400
    assert payload["error"] == "InvocationError"
    assert "missing field" in payload["message"]


def test_healthz_and_stats_report_the_traffic(world):
    health = world.remote.healthz()
    assert health["ok"] is True
    assert health["endpoints"] == 1
    stats = world.remote.stats()
    assert stats["admission"]["admitted"] > 0
    assert stats["service"]["requests"]["infer"] > 0
    assert stats["gateway"]["endpoints"] == 1


def test_meta_advertises_the_deployment(world):
    meta = world.remote.meta
    info = meta["models"][MODEL_ID]
    assert info["tcs_count"] == 2
    assert info["feed_window"] == 2  # no batch policy armed
    assert len(meta["keyservice_measurement"]) == 64


def test_client_span_joins_the_server_trace(world):
    """One shared tracer: the client's request span must point at the
    server's ``http:infer`` trace, which owns the ECALL spans."""
    tracer = world.env.tracer
    tracer.clear()
    world.session.infer(world.x)
    spans = tracer.finished_spans()
    client = [
        s for s in spans
        if s.name == "request" and s.attributes.get("transport") == "http"
    ]
    assert len(client) == 1
    server_trace = client[0].attributes["server_trace_id"]
    roots = [s for s in spans if s.name == "http:infer"]
    assert [s.trace_id for s in roots] == [server_trace]
    ecalls = {
        s.name for s in spans if s.trace_id == server_trace
    }
    assert "ecall:EC_MODEL_INF" in ecalls
    assert "route" in ecalls


def test_no_route_is_a_404(world):
    status, payload, _ = world.remote.client.request("GET", "/v1/nope")
    assert status == 404
