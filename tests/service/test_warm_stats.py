"""The warm pool surfaces through the live service's /v1/stats."""

import pytest

from repro.service import ServiceConfig
from repro.warmpool import STRATEGIES

from tests.service.conftest import launch_world


@pytest.fixture(scope="module")
def world():
    config = ServiceConfig(keep_alive_s=60.0, min_warm=1, warm_strategy="lcs")
    w = launch_world(warm_pool=config.warm_pool())
    yield w
    w.close()


def test_stats_carry_the_warm_pool_section(world):
    world.session.infer(world.x)
    stats = world.remote.stats()
    warm = stats["warm_pool"]
    assert warm["strategy"] == "lcs"
    assert warm["keep_alive_s"] == 60.0
    assert warm["min_warm"] == 1
    counters = warm["counters"]
    assert counters["cold"] + counters["warm"] + counters["hot"] >= 1
    assert counters["launches"] >= 1
    assert len(warm["endpoints"]) == 1


def test_service_config_validates_warm_knobs():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        ServiceConfig(keep_alive_s=-1.0)
    with pytest.raises(ConfigError):
        ServiceConfig(min_warm=-1)
    with pytest.raises(ConfigError):
        ServiceConfig(warm_strategy="fifo")
    for name in STRATEGIES:
        ServiceConfig(warm_strategy=name)


def test_warm_pool_config_is_off_by_default():
    assert ServiceConfig().warm_pool() is None
    armed = ServiceConfig(keep_alive_s=30.0).warm_pool(
        slots_per_endpoint=2, max_endpoints=4
    )
    assert armed is not None
    assert armed.keep_alive_s == 30.0
    assert armed.predictor.slots_per_endpoint == 2
    assert armed.max_endpoints == 4
