"""FaultInjector: deterministic execution of a plan at live sites."""

import pytest

from repro.errors import FaultInjected
from repro.faults.injector import FaultInjector, maybe_wire
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs.span import LogicalClock
from repro.obs.tracer import Tracer


def test_disarmed_injector_is_a_passthrough():
    injector = FaultInjector(FaultPlan(rates={FaultKind.WIRE_DROP: 1.0}))
    assert injector.on_wire("site", b"payload") == b"payload"
    assert injector.crash_enclave("site") is False
    assert injector.records == []


def test_wire_drop_raises_fault_injected():
    injector = FaultInjector(FaultPlan(rates={FaultKind.WIRE_DROP: 1.0})).arm()
    with pytest.raises(FaultInjected):
        injector.on_wire("a->b", b"payload")
    assert injector.counts() == {"wire_drop": 1}


def test_wire_corrupt_flips_exactly_one_bit():
    injector = FaultInjector(FaultPlan(rates={FaultKind.WIRE_CORRUPT: 1.0})).arm()
    payload = bytes(64)
    mutated = injector.on_wire("a->b", payload)
    assert mutated != payload
    delta = [x ^ y for x, y in zip(payload, mutated)]
    assert sum(bin(d).count("1") for d in delta) == 1


def test_wire_faults_are_deterministic_per_site():
    plan = FaultPlan(seed=3, rates={FaultKind.WIRE_DROP: 0.5})

    def observe():
        injector = FaultInjector(plan).arm()
        outcomes = []
        for _ in range(20):
            try:
                injector.on_wire("a->b", b"x")
                outcomes.append("ok")
            except FaultInjected:
                outcomes.append("drop")
        return outcomes

    assert observe() == observe()
    assert "drop" in observe() and "ok" in observe()


def test_scheduled_events_fire_at_their_request_index():
    fired = []
    plan = FaultPlan(
        schedule=[FaultEvent(FaultKind.SHARD_CRASH, 2, {"shard": 1})]
    )
    injector = FaultInjector(plan).arm()
    injector.on(FaultKind.SHARD_CRASH, lambda event: fired.append(event.at))
    for _ in range(4):
        injector.step()
    assert fired == [2]
    (record,) = injector.records
    assert record.request_index == 2


def test_crash_enclave_records_site():
    injector = FaultInjector(
        FaultPlan(rates={FaultKind.ENCLAVE_CRASH: 1.0})
    ).arm()
    assert injector.crash_enclave("semirt") is True
    (record,) = injector.records
    assert record.kind is FaultKind.ENCLAVE_CRASH
    assert record.site == "semirt"


def test_injected_faults_become_span_events():
    tracer = Tracer(service="t", clock=LogicalClock())
    injector = FaultInjector(
        FaultPlan(rates={FaultKind.WIRE_CORRUPT: 1.0}), tracer=tracer
    ).arm()
    with tracer.span("request"):
        injector.on_wire("a->b", b"payload")
    (span,) = tracer.finished_spans()
    assert [event["name"] for event in span.events] == ["fault:wire_corrupt"]
    assert span.events[0]["attributes"]["site"] == "a->b"


def test_maybe_wire_without_injector_is_identity():
    assert maybe_wire(None, "a->b", b"payload") == b"payload"
