"""Deadlines, retry-with-backoff, and circuit breakers."""

import pytest

from repro.errors import (
    AccessDenied,
    CircuitOpen,
    DeadlineExceeded,
    TransportError,
)
from repro.faults.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilientCaller,
    RetryPolicy,
)
from repro.obs.span import LogicalClock


def test_deadline_expires_on_the_clock():
    clock = LogicalClock()
    deadline = Deadline(clock, budget_s=3.0)
    deadline.check("op")  # plenty of budget left
    for _ in range(5):
        clock.now()
    with pytest.raises(DeadlineExceeded):
        deadline.check("op")


def test_none_deadline_never_expires():
    clock = LogicalClock()
    deadline = Deadline(clock, budget_s=None)
    for _ in range(100):
        clock.now()
    assert not deadline.expired()


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(
        backoff_base_s=0.1, backoff_multiplier=2.0, max_delay_s=0.5, jitter=0.0
    )
    delays = [policy.delay_s(attempt) for attempt in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
    jittered = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
    assert jittered.delay_s(0, jitter_draw=1.0) == pytest.approx(0.15)


def test_breaker_opens_after_threshold_and_probes_after_cooldown():
    clock = LogicalClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=2, cooldown_s=5.0), clock
    )
    assert breaker.state == "closed"
    breaker.on_failure()
    breaker.guard("ep")  # still closed after one failure
    breaker.on_failure()
    assert breaker.state == "open"
    with pytest.raises(CircuitOpen):
        breaker.guard("ep")
    for _ in range(6):
        clock.now()  # cooldown elapses
    assert breaker.state == "half-open"
    breaker.guard("ep")  # the single probe is admitted
    with pytest.raises(CircuitOpen):
        breaker.guard("ep")  # ...but only one
    breaker.on_success()
    assert breaker.state == "closed"


def test_caller_retries_transient_errors():
    attempts = []

    def flaky(attempt):
        attempts.append(attempt)
        if attempt < 2:
            raise TransportError("flake")
        return "done"

    caller = ResilientCaller(ResiliencePolicy(deadline_s=None), LogicalClock())
    assert caller.call("op", flaky) == "done"
    assert attempts == [0, 1, 2]


def test_caller_does_not_retry_permanent_errors():
    attempts = []

    def denied(attempt):
        attempts.append(attempt)
        raise AccessDenied("no grant")

    caller = ResilientCaller(ResiliencePolicy(deadline_s=None), LogicalClock())
    with pytest.raises(AccessDenied):
        caller.call("op", denied)
    assert attempts == [0]


def test_caller_gives_up_with_transport_error():
    caller = ResilientCaller(
        ResiliencePolicy(deadline_s=None, retry=RetryPolicy(max_attempts=3)),
        LogicalClock(),
    )
    observed = []
    with pytest.raises(TransportError, match="all 3 attempts"):
        caller.call(
            "op",
            lambda attempt: (_ for _ in ()).throw(TransportError("down")),
            on_retry=lambda attempt, exc, delay: observed.append(attempt),
        )
    assert observed == [0, 1, 2]


def test_caller_respects_deadline_between_attempts():
    clock = LogicalClock()
    caller = ResilientCaller(ResiliencePolicy(deadline_s=2.0), clock)

    def slow_failure(attempt):
        for _ in range(3):
            clock.now()  # burn budget
        raise TransportError("down")

    with pytest.raises(DeadlineExceeded):
        caller.call("op", slow_failure)


def test_caller_trips_shared_breaker():
    clock = LogicalClock()
    policy = ResiliencePolicy(
        deadline_s=None,
        retry=RetryPolicy(max_attempts=2),
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=1e9),
    )
    breaker = CircuitBreaker(policy.breaker, clock)
    caller = ResilientCaller(policy, clock, breaker=breaker)
    with pytest.raises(TransportError):
        caller.call(
            "op", lambda a: (_ for _ in ()).throw(TransportError("down"))
        )
    with pytest.raises(CircuitOpen):
        caller.call("op", lambda a: "never reached")


def test_disabled_policy_classmethod():
    assert ResiliencePolicy.disabled().enabled is False
