"""FaultPlan: seeded schedules are validated, sorted, and reproducible."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, WIRE_KINDS


def test_rates_validated():
    with pytest.raises(ConfigError):
        FaultPlan(rates={FaultKind.WIRE_DROP: 1.5})


def test_schedule_sorted_by_index():
    plan = FaultPlan(
        schedule=[
            FaultEvent(FaultKind.SHARD_RESTART, 9, {"shard": 0}),
            FaultEvent(FaultKind.SHARD_CRASH, 3, {"shard": 0}),
        ]
    )
    assert [event.at for event in plan.schedule] == [3, 9]


def test_events_at_filters_by_index():
    plan = FaultPlan(
        schedule=[
            FaultEvent(FaultKind.SHARD_CRASH, 3, {"shard": 1}),
            FaultEvent(FaultKind.SHARD_RESTART, 9, {"shard": 1}),
        ]
    )
    assert [e.kind for e in plan.events_at(3)] == [FaultKind.SHARD_CRASH]
    assert plan.events_at(4) == ()


def test_from_seed_is_deterministic():
    kwargs = dict(
        requests=40, wire_rate=0.1, crash_rate=0.02,
        shard_outages=2, num_shards=3,
    )
    first = FaultPlan.from_seed(7, **kwargs)
    second = FaultPlan.from_seed(7, **kwargs)
    assert first.to_mapping() == second.to_mapping()
    assert FaultPlan.from_seed(8, **kwargs).to_mapping() != first.to_mapping()


def test_from_seed_splits_wire_rate():
    plan = FaultPlan.from_seed(1, requests=10, wire_rate=0.3)
    for kind in WIRE_KINDS:
        assert plan.rate(kind) == pytest.approx(0.1)
    assert plan.rate(FaultKind.ENCLAVE_CRASH) == 0.0


def test_from_seed_outages_come_in_crash_restart_pairs():
    plan = FaultPlan.from_seed(
        5, requests=30, shard_outages=1, num_shards=2, outage_duration=6
    )
    kinds = [event.kind for event in plan.schedule]
    assert kinds == [FaultKind.SHARD_CRASH, FaultKind.SHARD_RESTART]
    crash, restart = plan.schedule
    assert restart.at == crash.at + 6
    assert crash.params["shard"] == restart.params["shard"]
    assert crash.at >= 2  # warmup protected


def test_from_seed_target_shard_pins_outage():
    plan = FaultPlan.from_seed(
        5, requests=30, shard_outages=1, num_shards=4, target_shard=3
    )
    assert all(event.params["shard"] == 3 for event in plan.schedule)


def test_from_seed_requires_shards_for_outages():
    with pytest.raises(ConfigError):
        FaultPlan.from_seed(1, requests=10, shard_outages=1, num_shards=0)
