"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.mlrt.zoo import build_mobilenet
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGX2, SgxPlatform
from repro.sim.core import Simulation


@pytest.fixture()
def sim() -> Simulation:
    return Simulation()


@pytest.fixture()
def attestation() -> AttestationService:
    return AttestationService()


@pytest.fixture()
def sgx_platform(attestation) -> SgxPlatform:
    return SgxPlatform(SGX2, attestation_service=attestation)


@pytest.fixture(scope="module")
def env() -> SeSeMIEnvironment:
    """A functional SeSeMI deployment shared within a test module."""
    return SeSeMIEnvironment()


@pytest.fixture(scope="module")
def tiny_model():
    return build_mobilenet()


@pytest.fixture(scope="module")
def tiny_input(tiny_model):
    rng = np.random.default_rng(42)
    return rng.standard_normal(tiny_model.input_spec.shape).astype(np.float32)
