"""Documentation hygiene: every public item carries a docstring.

The deliverable is a library someone else can adopt, so this meta-test
walks every module under ``repro`` and requires docstrings on modules,
public classes, and public functions/methods.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, member in public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module.__name__}: missing docstrings: {undocumented}"
