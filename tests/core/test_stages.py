"""Invocation-path planning: Algorithm 2's cold/warm/hot semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stages import (
    PER_REQUEST_STAGES,
    InvocationKind,
    SemirtCacheState,
    Stage,
    plan_invocation,
)


def fresh():
    return SemirtCacheState()


def primed(model="m", user="u"):
    state = SemirtCacheState()
    state.note_served(model, user)
    return state


def test_cold_path_runs_everything():
    plan = plan_invocation(fresh(), "m", "u")
    assert plan.kind == InvocationKind.COLD
    assert plan.stages[0] == Stage.ENCLAVE_INIT
    for stage in Stage:
        if stage == Stage.SANDBOX_INIT:
            continue
        assert plan.needs(stage), stage


def test_hot_path_minimal():
    plan = plan_invocation(primed(), "m", "u")
    assert plan.kind == InvocationKind.HOT
    assert plan.stages == PER_REQUEST_STAGES


def test_warm_path_model_switch():
    plan = plan_invocation(primed("other"), "m", "u")
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.MODEL_LOADING)
    assert plan.needs(Stage.MODEL_DECRYPT)
    assert plan.needs(Stage.RUNTIME_INIT)
    assert plan.needs(Stage.KEY_RETRIEVAL)  # single-pair cache was evicted
    assert not plan.needs(Stage.ENCLAVE_INIT)


def test_user_switch_only_refetches_keys():
    plan = plan_invocation(primed("m", "alice"), "m", "bob")
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.KEY_RETRIEVAL)
    assert not plan.needs(Stage.MODEL_LOADING)
    assert not plan.needs(Stage.RUNTIME_INIT)


def test_runtime_missing_downgrades_to_warm():
    state = primed()
    state.runtime_for = None
    plan = plan_invocation(state, "m", "u")
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.RUNTIME_INIT)
    assert not plan.needs(Stage.MODEL_LOADING)


def test_key_cache_disabled_forces_retrieval():
    plan = plan_invocation(primed(), "m", "u", key_cache_enabled=False)
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.KEY_RETRIEVAL)


def test_runtime_reuse_disabled_forces_init():
    plan = plan_invocation(primed(), "m", "u", reuse_runtime=False)
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.RUNTIME_INIT)
    assert not plan.needs(Stage.MODEL_LOADING)


def test_note_served_sets_all_caches():
    state = fresh()
    state.note_served("m", "u")
    assert state.enclave_ready
    assert state.loaded_model == "m"
    assert state.key_cache == ("m", "u")
    assert state.runtime_for == "m"


@settings(max_examples=80, deadline=None)
@given(
    enclave_ready=st.booleans(),
    loaded=st.sampled_from([None, "m", "other"]),
    keys=st.sampled_from([None, ("m", "u"), ("m", "x"), ("other", "u")]),
    runtime=st.sampled_from([None, "m", "other"]),
    key_cache_enabled=st.booleans(),
    reuse_runtime=st.booleans(),
)
def test_plan_invariants_property(
    enclave_ready, loaded, keys, runtime, key_cache_enabled, reuse_runtime
):
    state = SemirtCacheState(
        enclave_ready=enclave_ready,
        loaded_model=loaded if enclave_ready else None,
        key_cache=keys if enclave_ready else None,
        runtime_for=runtime if enclave_ready else None,
    )
    plan = plan_invocation(
        state, "m", "u",
        key_cache_enabled=key_cache_enabled, reuse_runtime=reuse_runtime,
    )
    # Per-request stages always run, in order, at the end.
    assert plan.stages[-3:] == PER_REQUEST_STAGES
    # Enclave init appears iff the enclave is not ready, and implies COLD.
    assert plan.needs(Stage.ENCLAVE_INIT) == (not enclave_ready)
    if not enclave_ready:
        assert plan.kind == InvocationKind.COLD
    # HOT means nothing model/key-related needs to run.
    if plan.kind == InvocationKind.HOT:
        assert not plan.needs(Stage.KEY_RETRIEVAL)
        assert not plan.needs(Stage.MODEL_LOADING)
        assert not plan.needs(Stage.RUNTIME_INIT)
    # Model decrypt never happens without model loading.
    assert plan.needs(Stage.MODEL_DECRYPT) == plan.needs(Stage.MODEL_LOADING)
    # Loading a model implies its runtime must be (re)initialised.
    if plan.needs(Stage.MODEL_LOADING):
        assert plan.needs(Stage.RUNTIME_INIT)
