"""Live hot-path micro-batching: the accumulator, the futures, the rule.

These tests drive the functional twin's batch plane end-to-end: the
``SchedulerConfig.batch`` accumulator in :class:`SemirtHost`, the
``EC_MODEL_INF_BATCH`` ECALL and its in-enclave single-``<uid, M_oid>``
security rule, the :class:`InferenceFuture` cancellation contract, and
the leader-crash fault site (``semirt:batch``).
"""

import time

import numpy as np
import pytest

from repro.core.batching import BatchPolicy
from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import (
    IsolationSettings,
    SchedulerConfig,
    default_semirt_config,
)
from repro.errors import (
    EnclaveError,
    FaultInjected,
    InvocationError,
    RequestCancelled,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan

MODEL_ID = "batch-model"


def _launch(
    tiny_model,
    *,
    users=("user",),
    policy=BatchPolicy(batch_window_s=0.25, max_batch=4),
    paced_s=None,
    injector=None,
):
    """One 4-TCS host with the batch accumulator armed."""
    env = SeSeMIEnvironment(injector=injector)
    config = default_semirt_config(tcs_count=4)
    handle = env.deploy(
        tiny_model, MODEL_ID, owner="owner", framework="tflm", config=config
    )
    for name in users:
        handle.grant(name)
    scheduler = SchedulerConfig(
        queue_depth=64, paced_service_s=paced_s, batch=policy
    )
    host = env.launch_semirt("tflm", config=config, scheduler=scheduler)
    return env, host


def _uid(env, name):
    return env.user(name).principal_id


def _encrypt(env, host, name, x):
    return env.user(name).encrypt_request(MODEL_ID, host.measurement, x)


def _decrypt(env, host, name, enc_response):
    return env.user(name).decrypt_response(
        MODEL_ID, host.measurement, enc_response
    )


def test_mixed_pairs_never_share_a_batch_ecall(tiny_model, tiny_input):
    """Two users on one host: every batch row names exactly one pair."""
    env, host = _launch(tiny_model, users=("user-a", "user-b"))
    uid_a, uid_b = _uid(env, "user-a"), _uid(env, "user-b")
    expected = tiny_model.run_reference(tiny_input).ravel()
    # warm serve makes <user-a, model> the hot pair
    out = host.infer(_encrypt(env, host, "user-a", tiny_input), uid_a, MODEL_ID)
    assert np.allclose(_decrypt(env, host, "user-a", out), expected, atol=1e-5)

    futures = []
    for _ in range(4):  # a hot burst the leader can collect into one batch
        futures.append(
            (
                "user-a",
                host.submit(
                    _encrypt(env, host, "user-a", tiny_input), uid_a, MODEL_ID
                ),
            )
        )
    for _ in range(3):  # a different pair: must never ride along
        futures.append(
            (
                "user-b",
                host.submit(
                    _encrypt(env, host, "user-b", tiny_input), uid_b, MODEL_ID
                ),
            )
        )
    for name, future in futures:
        plain = _decrypt(env, host, name, future.result(timeout_s=30))
        assert np.allclose(plain, expected, atol=1e-5), name

    assert host.code.batch_log, "the hot burst never produced a batch ECALL"
    pairs = {(uid, model_id) for uid, model_id, _ in host.code.batch_log}
    assert pairs <= {(uid_a, MODEL_ID), (uid_b, MODEL_ID)}
    # every row names one pair; had uids ever mixed inside one ECALL the
    # foreign payload would have failed AEAD and aborted the whole batch
    host.destroy()


def test_enclave_refuses_foreign_ciphertext_in_a_batch(tiny_model, tiny_input):
    """The security rule lives in the enclave: foreign payloads abort the
    whole batch before any execution context is committed."""
    env, host = _launch(tiny_model, users=("user-a", "user-b"))
    enc_a = _encrypt(env, host, "user-a", tiny_input)
    enc_b = _encrypt(env, host, "user-b", tiny_input)
    uid_a = _uid(env, "user-a")
    with pytest.raises(InvocationError, match="does not authenticate"):
        host.enclave.ecall("EC_MODEL_INF_BATCH", [enc_a, enc_b], uid_a, MODEL_ID)
    assert host.code.pending_outputs == 0  # all-or-nothing: nothing committed
    assert host.code.batch_log == []
    with pytest.raises(InvocationError, match="empty batch"):
        host.enclave.ecall("EC_MODEL_INF_BATCH", [], uid_a, MODEL_ID)
    host.destroy()


def test_sequential_build_refuses_batches(tiny_model, tiny_input):
    """A sequential build promises no co-execution, so any batch > 1 is
    refused inside the enclave (and the host refuses to arm batching)."""
    env = SeSeMIEnvironment()
    isolation = IsolationSettings.strong()
    config = default_semirt_config(tcs_count=1)
    handle = env.deploy(
        tiny_model, MODEL_ID, owner="owner", framework="tflm",
        config=config, isolation=isolation,
    )
    handle.grant("user")
    host = env.launch_semirt("tflm", config=config, isolation=isolation)
    enc = env.user("user").encrypt_request(MODEL_ID, host.measurement, tiny_input)
    with pytest.raises(InvocationError, match="sequential"):
        host.enclave.ecall(
            "EC_MODEL_INF_BATCH", [enc, enc], _uid(env, "user"), MODEL_ID
        )
    with pytest.raises(EnclaveError, match="sequential"):
        env.launch_semirt(
            "tflm", config=config, isolation=isolation,
            scheduler=SchedulerConfig(batch=BatchPolicy()),
        )
    host.destroy()


class _BatchSiteCrasher(FaultInjector):
    """Crashes only at the ``semirt:batch`` site, never at submit."""

    def __init__(self):
        super().__init__(FaultPlan(rates={FaultKind.ENCLAVE_CRASH: 1.0}))
        self.arm()

    def crash_enclave(self, site):
        if site != "semirt:batch":
            return False
        return super().crash_enclave(site)


def test_leader_crash_mid_batch_leaves_no_follower_hung(tiny_model, tiny_input):
    injector = _BatchSiteCrasher()
    env, host = _launch(tiny_model, injector=injector)
    uid = _uid(env, "user")
    # warm serve (single path: no crash site on it) makes the pair hot
    host.infer(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)

    futures = []
    for _ in range(6):
        try:
            futures.append(
                host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
            )
        except EnclaveError:
            break  # the batch already filled, crashed, and took the host down
    assert len(futures) >= 2, "the crash fired before a batch could even form"
    # every member and every request queued behind the dead host must
    # resolve promptly -- a hang here is the bug this test exists for
    for future in futures:
        with pytest.raises((FaultInjected, EnclaveError)):
            future.result(timeout_s=30)
    assert all(future.done() for future in futures)
    assert not host.enclave.alive
    assert any(
        record.site == "semirt:batch" for record in injector.records
    ), "the crash was not injected at the batch site"


def test_batch_of_one_takes_the_single_request_path(tiny_model, tiny_input):
    """A window that closes on a lone leader serves it byte-identically
    to the unbatched path: same ECALLs, same spans, no batch row."""
    policy = BatchPolicy(batch_window_s=0.05, max_batch=4)
    env, host = _launch(tiny_model, policy=policy)
    uid = _uid(env, "user")
    # first serve takes the single path (the pair is not hot yet)
    single = _decrypt(
        env,
        host,
        "user",
        host.infer(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID),
    )

    env.tracer.clear()
    future = host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
    plain = _decrypt(env, host, "user", future.result(timeout_s=30))

    names = [span.name for span in env.tracer.finished_spans()]
    assert "ecall:EC_MODEL_INF" in names
    assert "ecall:EC_MODEL_INF_BATCH" not in names
    assert host.code.batch_log == []
    assert plain.tobytes() == single.tobytes()
    expected = tiny_model.run_reference(tiny_input).ravel()
    assert np.allclose(plain, expected, atol=1e-5)
    host.destroy()


def test_cancel_clears_the_execution_context(tiny_model, tiny_input):
    """cancel() after the INF ECALL still releases the enclave context
    before RequestCancelled surfaces -- no slot leaks."""
    env, host = _launch(tiny_model, paced_s=0.5, policy=None)
    uid = _uid(env, "user")
    host.infer(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)

    future = host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
    time.sleep(0.15)  # inside the paced serve: the context exists now
    assert future.cancel() is True
    with pytest.raises(RequestCancelled):
        future.result(timeout_s=30)
    assert future.done()
    assert future.cancelled()
    assert future.cancel() is False  # the outcome is sealed
    assert host.code.pending_outputs == 0
    host.destroy()


def test_cancel_before_the_worker_never_touches_the_enclave(
    tiny_model, tiny_input
):
    """Cancelling a queued request fails it without creating a context."""
    env, host = _launch(tiny_model, paced_s=0.3)
    uid = _uid(env, "user")
    blockers = [
        host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
        for _ in range(4)
    ]  # all four TCS slots are busy pacing
    victim = host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
    assert victim.cancel() is True
    with pytest.raises(RequestCancelled):
        victim.result(timeout_s=30)
    for blocker in blockers:
        blocker.result(timeout_s=30)
    assert host.code.pending_outputs == 0
    host.destroy()


def test_int_ticket_surface_is_gone(tiny_model, tiny_input):
    """The pre-futures raw int-ticket shim was removed after its window."""
    env, host = _launch(tiny_model)
    uid = _uid(env, "user")
    expected = tiny_model.run_reference(tiny_input).ravel()
    future = host.submit(_encrypt(env, host, "user", tiny_input), uid, MODEL_ID)
    assert isinstance(future.ticket, int)  # observability id only
    with pytest.raises(InvocationError, match="int-ticket surface was removed"):
        host.result(future.ticket, timeout_s=1)
    # the future itself (directly or via the host composition) resolves
    plain = _decrypt(env, host, "user", host.result(future, timeout_s=30))
    assert np.allclose(plain, expected, atol=1e-5)
    host.destroy()
