"""Hot-path request batching (extension)."""

import pytest

from repro.core.batching import BatchPolicy, BatchingSemirtActor, batching_semirt_factory
from repro.core.simbridge import servable_map
from repro.errors import ConfigError
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival


def deploy(batch_window_s=0.05, max_batch=8, concurrency=8, single_container=False):
    models = servable_map([("m", profile("RSNET"), "tvm")])
    budget = action_budget(models["m"], tcs_count=concurrency)
    # Optionally size the node so exactly one container fits: all
    # requests then funnel into one enclave, where batching happens.
    bed = make_testbed(
        num_nodes=1, node_memory=budget if single_container else 64 * 1024 ** 3
    )
    spec = ActionSpec(
        name="ep", image="semirt", memory_budget=budget, concurrency=concurrency,
    )
    factory = batching_semirt_factory(
        models, bed.cost, tcs_count=concurrency,
        policy=BatchPolicy(batch_window_s=batch_window_s, max_batch=max_batch),
    )
    actor_holder = []

    def wrapped():
        actor = factory()
        actor_holder.append(actor)
        return actor

    bed.platform.deploy(spec, wrapped)
    return bed, actor_holder


def run_burst(bed, count, at=120.0, warmup=1):
    driver = make_driver(bed)
    arrivals = [Arrival(time=10.0 * i, model_id="m", user_id="u") for i in range(warmup)]
    arrivals += [Arrival(time=at, model_id="m", user_id="u") for _ in range(count)]
    driver.submit_arrivals(arrivals)
    report = driver.run(until=3000)
    return [r for r in report.results if r.submitted_at >= at]


def test_parameter_validation():
    with pytest.raises(ConfigError):
        BatchPolicy(batch_window_s=-1)
    with pytest.raises(ConfigError):
        BatchPolicy(alpha=0.0)
    with pytest.raises(ConfigError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ConfigError):
        BatchPolicy().clamped(0)


def test_policy_clamped_to_tcs_count():
    models = servable_map([("m", profile("MBNET"), "tvm")])
    bed = make_testbed(num_nodes=1)
    # every batched request occupies one TCS slot: the actor's policy is
    # the explicit clamp, not a silently shrunk constructor value
    actor = BatchingSemirtActor(
        models, bed.cost, tcs_count=4, policy=BatchPolicy(max_batch=16)
    )
    assert actor.policy.max_batch == 4
    assert actor.max_batch == 4
    assert BatchPolicy(max_batch=3).clamped(8) == BatchPolicy(max_batch=3)


def test_loose_kwargs_path_removed():
    """The pre-policy loose kwargs were dropped after their one-release
    window: the policy object is the only way to configure batching."""
    models = servable_map([("m", profile("MBNET"), "tvm")])
    bed = make_testbed(num_nodes=1)
    with pytest.raises(TypeError):
        BatchingSemirtActor(models, bed.cost, batch_window_s=0.1, max_batch=2)
    actor = BatchingSemirtActor(
        models, bed.cost, policy=BatchPolicy(batch_window_s=0.1, max_batch=2)
    )
    assert actor.policy == BatchPolicy(batch_window_s=0.1, max_batch=2)


def test_feed_window_derived_from_policy():
    # two full (clamped) batches, floored at one request per TCS slot
    assert BatchPolicy(max_batch=8).feed_window(4) == 8      # clamp to 4, x2
    assert BatchPolicy(max_batch=3).feed_window(8) == 8      # floor: tcs_count
    assert BatchPolicy(max_batch=6).feed_window(8) == 12
    assert BatchPolicy(max_batch=1).feed_window(2) == 2


def test_batched_exec_sublinear():
    bed = make_testbed(num_nodes=1)
    models = servable_map([("m", profile("RSNET"), "tvm")])
    actor = BatchingSemirtActor(models, bed.cost, policy=BatchPolicy(alpha=0.6))
    single = actor.batched_exec_s(models["m"], 1)
    quad = actor.batched_exec_s(models["m"], 4)
    assert single == pytest.approx(profile("RSNET").tvm_exec_s)
    assert quad < 4 * single
    assert quad > single


def test_simultaneous_hot_requests_share_a_batch():
    bed, actors = deploy()
    results = run_burst(bed, count=4)
    assert len(results) == 4
    actor = actors[0]
    assert actor.batches_executed >= 1
    assert actor.batched_requests == 4
    # One batch of 4: everyone finishes together, faster than 4 serials.
    finishes = {round(r.finished_at, 6) for r in results}
    if actor.batches_executed == 1:
        assert len(finishes) == 1


def test_batch_bounded_by_max_batch():
    bed, actors = deploy(max_batch=2)
    results = run_burst(bed, count=4)
    assert len(results) == 4
    assert actors[0].batches_executed >= 2


def test_cold_requests_not_batched():
    bed, actors = deploy()
    driver = make_driver(bed)
    driver.submit_arrivals([Arrival(time=0.0, model_id="m", user_id="u")])
    report = driver.run(until=2000)
    (result,) = report.results
    assert result.kind == "cold"
    assert actors[0].batches_executed == 0


def test_batching_raises_saturation_throughput():
    """Batching amortises compute: above the unbatched CPU ceiling
    (12 cores / 0.983s ~ 12.2 rps for TVM-RSNET) the batching build keeps
    up with 16 rps of offered load while the unbatched build saturates.

    Batching needs enough TCS slots to hold waiting batch members
    (requests occupy their slot while riding a batch), hence the large
    concurrency setting.
    """
    from repro.workloads.arrival import fixed_rate

    def completion_rate(window):
        bed, _ = deploy(
            batch_window_s=window, max_batch=8, concurrency=64,
            single_container=True,
        )
        driver = make_driver(bed)
        ramp = fixed_rate(2.0, 30.0, "m", "u")
        steady = [
            Arrival(time=a.time + 30.0, model_id="m", user_id="u")
            for a in fixed_rate(16.0, 120.0, "m", "u")
        ]
        driver.submit_arrivals(list(ramp) + steady)
        report = driver.run(until=3000)
        done = [r for r in report.results if 60.0 <= r.finished_at < 150.0]
        return len(done) / 90.0

    unbatched = completion_rate(0.0)
    batched = completion_rate(0.25)
    assert unbatched < 13.0          # CPU-bound without batching
    assert batched > 15.0            # keeps up with offered load
    assert batched > unbatched * 1.2


def test_user_switch_breaks_batches():
    bed, actors = deploy()
    driver = make_driver(bed)
    arrivals = [Arrival(time=0.0, model_id="m", user_id="alice")]
    arrivals += [
        Arrival(time=120.0, model_id="m", user_id="alice"),
        Arrival(time=120.0, model_id="m", user_id="bob"),
    ]
    driver.submit_arrivals(arrivals)
    report = driver.run(until=3000)
    late = [r for r in report.results if r.submitted_at >= 120.0]
    assert len(late) == 2
    # bob's request was not hot (key cache held alice): it cannot have
    # joined alice's batch.
    kinds = {r.request.user_id: r.kind for r in late}
    assert kinds["bob"] == "warm"
