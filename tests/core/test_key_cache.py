"""Hot-path key caches: session ciphers, the SeMIRT key memo, invalidation.

Three layers of cached key state ride the hot path (docs/performance.md):

- the process-wide ``AESGCM.derive`` session-cipher LRU (client side),
- the per-``UserClient`` request-cipher map,
- the in-enclave per-``(uid, model)`` key memo in SeMIRT.

These tests pin the *invalidation* contracts: re-grant, key rotation,
``EC_INVALIDATE_KEYS`` push, and KeyService restart / shard-failover
recovery must each drop exactly the stale state -- and a request under
fresh keys must always succeed afterwards.
"""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.core.keyfleet import KeyServiceFleet
from repro.core.semirt import SchedulerConfig
from repro.core.stages import Stage
from repro.crypto.gcm import (
    AESGCM,
    SessionCipher,
    clear_session_cache,
    evict_session,
    session_cache_size,
)
from repro.crypto.keys import SymmetricKey
from repro.errors import InvocationError, ReproError
from repro.sgx.attestation import AttestationService


def make_input(model, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_spec.shape).astype(np.float32)


def infer_on(user, host, model_id, x):
    enc = user.encrypt_request(model_id, host.measurement, x)
    return user.decrypt_response(
        model_id, host.measurement, host.infer(enc, user.principal_id, model_id)
    )


# -- session-cipher cache (crypto layer) --------------------------------------


def test_derive_returns_cached_context():
    key = SymmetricKey.generate()
    first = AESGCM.derive(key)
    assert isinstance(first, SessionCipher)
    assert AESGCM.derive(key) is first
    assert AESGCM.derive(bytes(key)) is first  # keyed on material


def test_derived_cipher_interoperates_with_fresh_aesgcm():
    key = SymmetricKey.generate()
    cipher = AESGCM.derive(key)
    blob = cipher.seal(b"payload", aad=b"ctx")
    assert AESGCM(bytes(key)).open(blob, aad=b"ctx") == b"payload"
    assert cipher.unseal(AESGCM(bytes(key)).seal(b"x", aad=b"a"), aad=b"a") == b"x"


def test_evict_session_drops_exactly_one_key():
    clear_session_cache()
    keys = [SymmetricKey.generate() for _ in range(3)]
    ciphers = [AESGCM.derive(k) for k in keys]
    assert session_cache_size() == 3
    assert evict_session(keys[1])
    assert not evict_session(keys[1])  # already gone
    assert session_cache_size() == 2
    # the evicted key derives a NEW context; the others kept theirs
    assert AESGCM.derive(keys[1]) is not ciphers[1]
    assert AESGCM.derive(keys[0]) is ciphers[0]
    assert AESGCM.derive(keys[2]) is ciphers[2]


def test_clear_session_cache_reports_count():
    clear_session_cache()
    for _ in range(4):
        AESGCM.derive(SymmetricKey.generate())
    assert clear_session_cache() == 4
    assert session_cache_size() == 0


# -- client request-cipher cache + re-grant -----------------------------------


@pytest.fixture()
def world(tiny_model):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "kc-model", owner=owner).grant(user)
    return env, owner, user, semirt


def test_client_reuses_one_request_cipher(world, tiny_model):
    _, _, user, semirt = world
    x = make_input(tiny_model)
    user.encrypt_request("kc-model", semirt.measurement, x)
    cipher = user._request_cipher("kc-model", semirt.measurement)
    user.encrypt_request("kc-model", semirt.measurement, x)
    assert user._request_cipher("kc-model", semirt.measurement) is cipher


def test_regrant_self_heals_the_enclave_memo(world, tiny_model):
    """A re-granted (fresh) request key invalidates client state at once
    and the enclave's memoised entry on first contact."""
    env, _, user, semirt = world
    x = make_input(tiny_model)
    before = infer_on(user, semirt, "kc-model", x)
    old_key = user.request_key("kc-model", semirt.measurement)

    # Re-grant: forget the old key, release a fresh one to KeyService.
    user.reset_request_key("kc-model", semirt.measurement)
    user.add_request_key("kc-model", semirt.measurement)
    new_key = user.request_key("kc-model", semirt.measurement)
    assert bytes(new_key) != bytes(old_key)

    # The enclave memo still holds the OLD key; the request under the
    # new key fails once in-enclave, drops the entry, refetches, serves.
    after = infer_on(user, semirt, "kc-model", x)
    assert np.allclose(before, after, atol=1e-5)

    # Self-healing is not a bypass: a forged request (random key never
    # released to KeyService) still fails after the refetch.
    forged = AESGCM(bytes(SymmetricKey.generate())).seal(
        b"junk", aad=b"sesemi-requestkc-model"
    )
    with pytest.raises((InvocationError, ReproError)):
        semirt.infer(forged, user.principal_id, "kc-model")


# -- the in-enclave key memo --------------------------------------------------


def test_memo_keeps_multiple_users_hot(world, tiny_model):
    """With the multi-entry memo, alternating users stay on the hot path."""
    env, owner, user_a, semirt = world
    user_b = env.connect_user("second-user")
    env.deploy(tiny_model, "kc-model", owner=owner).grant(user_b)
    x = make_input(tiny_model)
    for u in (user_a, user_b, user_a, user_b):
        infer_on(u, semirt, "kc-model", x)
    # warm-up done; now both alternating users skip KEY_RETRIEVAL
    for u in (user_a, user_b, user_a):
        infer_on(u, semirt, "kc-model", x)
        assert not semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)


def test_capacity_one_restores_single_pair_semantics(tiny_model):
    """key_cache_entries=1 is the paper's single-pair cache: every user
    switch evicts and pays the KeyService round trip again."""
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user_a = env.connect_user("a")
    user_b = env.connect_user("b")
    semirt = env.launch_semirt(
        "tvm", scheduler=SchedulerConfig(key_cache_entries=1)
    )
    handle = env.deploy(tiny_model, "m1", owner=owner)
    handle.grant(user_a).grant(user_b)
    x = make_input(tiny_model)
    infer_on(user_a, semirt, "m1", x)
    infer_on(user_b, semirt, "m1", x)  # evicts a's entry
    infer_on(user_a, semirt, "m1", x)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)


def test_ec_invalidate_keys_is_scoped(world, tiny_model):
    env, owner, user, semirt = world
    user_b = env.connect_user("scoped-user")
    env.deploy(tiny_model, "kc-model", owner=owner).grant(user_b)
    x = make_input(tiny_model)
    infer_on(user, semirt, "kc-model", x)
    infer_on(user_b, semirt, "kc-model", x)

    # drop only user_b's entry
    assert semirt.invalidate_keys(uid=user_b.principal_id) == 1
    infer_on(user, semirt, "kc-model", x)
    assert not semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
    infer_on(user_b, semirt, "kc-model", x)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)

    # no-filter drop clears the rest
    assert semirt.invalidate_keys() >= 1
    infer_on(user, semirt, "kc-model", x)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)


def test_gateway_invalidate_broadcasts_to_live_hosts(world, tiny_model):
    env, _, user, _ = world
    with env.session(user, "kc-model", node_id="bcast-node") as session:
        session.infer(make_input(tiny_model))
        dropped = session.gateway.invalidate_keys(uid=user.principal_id)
        assert dropped == 1


def test_keyservice_restart_flushes_the_whole_memo(tiny_model):
    """Shard-failover recovery: the first key fetch after a KeyService
    restart re-attests and flushes every memoised verdict (they predate
    the restarted world)."""
    attestation = AttestationService()
    fleet = KeyServiceFleet(1, attestation)
    env = SeSeMIEnvironment(
        keyservice=fleet.shards[0], attestation=attestation
    )
    owner = env.connect_owner()
    user_a = env.connect_user("fa")
    user_b = env.connect_user("fb")
    semirt = env.launch_semirt("tvm")
    handle = env.deploy(tiny_model, "fm", owner=owner)
    handle.grant(user_a).grant(user_b)
    x = make_input(tiny_model)

    infer_on(user_a, semirt, "fm", x)
    infer_on(user_a, semirt, "fm", x)
    assert not semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)

    # crash-stop + sealed-state restart (the failover/restore path)
    fleet.kill_shard(0)
    fleet.restart_shard(0)

    # user_b's first fetch hits the dead channel, re-attests, and
    # flushes the memo wholesale...
    infer_on(user_b, semirt, "fm", x)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
    # ...so user_a's memoised verdict is gone too: one refetch, then hot.
    infer_on(user_a, semirt, "fm", x)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
    infer_on(user_a, semirt, "fm", x)
    assert not semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)


def test_key_cache_entries_validation():
    with pytest.raises(ReproError):
        SchedulerConfig(key_cache_entries=0)
