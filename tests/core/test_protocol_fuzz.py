"""Protocol fuzzing: malformed and adversarial inputs never break the TCB.

The adversary can invoke enclave functions with arbitrary arguments
(threat model, Section III).  These tests throw random garbage at the
KeyService and SeMIRT ECALL surfaces and require that every outcome is a
*clean, typed* failure -- no unhandled exception classes, no state
corruption, and definitely no secrets.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import SeSeMIEnvironment
from repro.core.wire import WireError, dumps, loads
from repro.errors import ReproError
from repro.mlrt.zoo import build_mobilenet

#: exception families a hostile caller may legitimately trigger
ACCEPTABLE = (ReproError, ValueError, KeyError, TypeError, AttributeError)


@pytest.fixture(scope="module")
def world():
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    model = build_mobilenet()
    semirt = env.launch_semirt("tvm")
    env.deploy(model, "m", owner=owner).grant(user)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    baseline = _infer(user, semirt, x)
    return env, owner, user, semirt, model, x, baseline


def _infer(user, semirt, x):
    """One legitimate request through the raw host path."""
    enc = user.encrypt_request("m", semirt.measurement, x)
    return user.decrypt_response(
        "m", semirt.measurement, semirt.infer(enc, user.principal_id, "m")
    )


@settings(max_examples=25, deadline=None)
@given(garbage=st.binary(min_size=0, max_size=200))
def test_keyservice_rejects_garbage_ciphertext(world, garbage):
    env, *_ = world
    connection_blob_channel = 1  # some previously opened channel id
    try:
        env.keyservice.request(connection_blob_channel, garbage)
    except ACCEPTABLE:
        pass  # clean failure


@settings(max_examples=25, deadline=None)
@given(
    channel_id=st.integers(-10, 10_000),
    payload=st.binary(min_size=0, max_size=64),
)
def test_keyservice_rejects_random_channels(world, channel_id, payload):
    env, *_ = world
    try:
        env.keyservice.request(channel_id, payload)
    except ACCEPTABLE:
        pass


@settings(max_examples=25, deadline=None)
@given(
    offer=st.dictionaries(
        st.text(max_size=12),
        st.one_of(st.binary(max_size=64), st.integers(), st.text(max_size=12)),
        max_size=4,
    )
)
def test_keyservice_rejects_malformed_handshakes(world, offer):
    env, *_ = world
    try:
        env.keyservice.handshake(offer)
    except ACCEPTABLE:
        pass


@settings(max_examples=25, deadline=None)
@given(
    blob=st.binary(min_size=0, max_size=128),
    uid=st.text(max_size=80),
    model_id=st.text(max_size=40),
)
def test_semirt_rejects_garbage_requests(world, blob, uid, model_id):
    env, owner, user, semirt, *_ = world
    try:
        semirt.enclave.ecall("EC_MODEL_INF", blob, uid, model_id)
    except ACCEPTABLE:
        pass


@settings(max_examples=25, deadline=None)
@given(
    payload=st.dictionaries(
        st.text(max_size=8), st.one_of(st.integers(), st.text(max_size=8)),
        max_size=3,
    ),
    hex_value=st.text(alphabet="0123456789abcdef", max_size=16),
)
def test_wire_rejects_reserved_bytes_tag_key(payload, hex_value):
    """A payload dict carrying ``__bytes_hex__`` must not encode.

    Without the guard such a dict round-trips into *bytes* on the other
    side (type confusion an adversary controls); with it, encoding is a
    clean :class:`WireError` -- and a forged raw message carrying the
    tag alongside other keys fails to decode the same way.
    """
    hostile = dict(payload)
    hostile["__bytes_hex__"] = hex_value
    with pytest.raises(WireError):
        dumps({"field": hostile})
    if payload:  # tag mixed with other keys never decodes either
        forged = dumps({"field": dict(payload)}).replace(
            b"{", b'{"__bytes_hex__": "00", ', 1
        )
        with pytest.raises(WireError):
            loads(forged)


@settings(max_examples=25, deadline=None)
@given(
    value=st.sampled_from([float("nan"), float("inf"), float("-inf")]),
    depth=st.integers(0, 2),
)
def test_wire_rejects_non_finite_floats(value, depth):
    """NaN/Infinity are not JSON; encoding must fail deterministically."""
    payload = value
    for _ in range(depth):
        payload = [payload]
    with pytest.raises(WireError):
        dumps({"field": payload})
    assert math.isfinite(3.25)  # finite floats still pass
    assert loads(dumps({"field": 3.25})) == {"field": 3.25}


def test_system_still_healthy_after_fuzzing(world):
    """After all the garbage above, legitimate service is unaffected."""
    env, owner, user, semirt, model, x, baseline = world
    again = _infer(user, semirt, x)
    assert np.allclose(again, baseline)
