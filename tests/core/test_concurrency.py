"""Concurrent requests inside one SeMIRT enclave (real threads).

The paper's Figure 6: requests are dispatched to a thread pool, each
thread enters the enclave on its own TCS, the decrypted model lives in
the shared heap, and each thread keeps its runtime and output in
thread-local storage.  These tests run actual Python threads through the
functional enclave to verify the isolation of per-thread state and the
TCS admission limit.
"""

import threading

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import default_semirt_config
from repro.errors import TcsExhausted


@pytest.fixture(scope="module")
def concurrent_setup(tiny_model):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt(
        "tflm", config=default_semirt_config(tcs_count=4)
    )
    env.authorize(owner, user, tiny_model, "shared-model", semirt.measurement)
    return env, owner, user, semirt


def test_parallel_requests_get_their_own_outputs(concurrent_setup, tiny_model):
    env, owner, user, semirt = concurrent_setup
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal(tiny_model.input_spec.shape).astype(np.float32)
        for _ in range(4)
    ]
    outputs = [None] * 4
    errors = []
    barrier = threading.Barrier(4)

    def worker(index):
        try:
            barrier.wait(timeout=10)
            outputs[index] = env.infer(user, semirt, "shared-model", inputs[index])
        except Exception as exc:  # pragma: no cover - surfaced by assertion
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    for index, x in enumerate(inputs):
        expected = tiny_model.run_reference(x).ravel()
        assert np.allclose(outputs[index], expected, atol=1e-5), index


def test_all_threads_share_one_loaded_model(concurrent_setup, tiny_model):
    env, owner, user, semirt = concurrent_setup
    x = np.zeros(tiny_model.input_spec.shape, dtype=np.float32)
    env.infer(user, semirt, "shared-model", x)
    # One model object in the enclave heap, regardless of thread count.
    assert semirt.code._model_id == "shared-model"


def test_tcs_admission_limit(concurrent_setup, tiny_model):
    """More simultaneous ECALLs than TCSs are rejected by the hardware."""
    import time

    env, owner, user, semirt = concurrent_setup
    capacity = semirt.enclave.config.tcs_count
    release = threading.Event()
    admitted = []

    def blocking_load(model_id):
        """An OCALL handler that parks the loading thread in the enclave;
        the other threads park on the model-switch lock -- either way,
        each occupies its TCS."""
        release.wait(timeout=30)
        raise RuntimeError("unblocked")

    original = semirt.enclave._ocall_handlers["OC_LOAD_MODEL"]
    semirt.enclave.register_ocall("OC_LOAD_MODEL", blocking_load)
    # Force the model-load path so threads hit the blocking OCALL.
    semirt.code._model_id = None
    semirt.code._model = None

    enc = user.encrypt_request(
        "shared-model", semirt.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )

    def occupant():
        try:
            semirt.enclave.ecall(
                "EC_MODEL_INF", enc, user.principal_id, "shared-model"
            )
        except RuntimeError:
            admitted.append(1)

    threads = [threading.Thread(target=occupant) for _ in range(capacity)]
    for thread in threads:
        thread.start()
    # Wait until every TCS is occupied.
    deadline = time.time() + 10
    while semirt.enclave.tcs_in_use < capacity and time.time() < deadline:
        time.sleep(0.01)
    try:
        assert semirt.enclave.tcs_in_use == capacity
        with pytest.raises(TcsExhausted):
            semirt.enclave.ecall(
                "EC_MODEL_INF", enc, user.principal_id, "shared-model"
            )
    finally:
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        semirt.enclave.register_ocall("OC_LOAD_MODEL", original)
    assert len(admitted) >= 1  # at least the loader thread was unblocked
    assert semirt.enclave.tcs_in_use == 0
    # Restore a servable state for later tests in the module.
    x = np.zeros(tiny_model.input_spec.shape, dtype=np.float32)
    env.infer(user, semirt, "shared-model", x)
