"""Concurrent requests inside one SeMIRT enclave (real threads).

The paper's Figure 6: requests are dispatched to a thread pool, each
thread enters the enclave on its own TCS, the decrypted model lives in
the shared heap, and each request keeps its execution context in a
private ticketed slot.  These tests run actual Python threads through
the functional enclave to verify per-request isolation, the ticketed
ECALL surface, the TCS admission limit, the scheduler's backpressure,
and crash behaviour mid-batch.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import (
    IsolationSettings,
    SchedulerConfig,
    default_semirt_config,
)
from repro.errors import (
    EnclaveError,
    QueueFull,
    TcsExhausted,
    TransportError,
)


@pytest.fixture(scope="module")
def concurrent_setup(tiny_model):
    env = SeSeMIEnvironment()
    config = default_semirt_config(tcs_count=4)
    handle = env.deploy(
        tiny_model, "shared-model", owner="owner",
        framework="tflm", config=config,
    )
    handle.grant("user")
    semirt = env.launch_semirt("tflm", config=config)
    return env, handle, env.user("user"), semirt


def test_parallel_requests_get_their_own_outputs(concurrent_setup, tiny_model):
    env, handle, user, semirt = concurrent_setup
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal(tiny_model.input_spec.shape).astype(np.float32)
        for _ in range(4)
    ]
    outputs = [None] * 4
    errors = []
    barrier = threading.Barrier(4)

    def worker(index):
        try:
            session = env.session(
                "user", "shared-model", framework="tflm",
                config=semirt.enclave.config, semirt=semirt,
            )
            barrier.wait(timeout=10)
            outputs[index] = session.infer(inputs[index])
        except Exception as exc:  # pragma: no cover - surfaced by assertion
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    for index, x in enumerate(inputs):
        expected = tiny_model.run_reference(x).ravel()
        assert np.allclose(outputs[index], expected, atol=1e-5), index


def test_infer_many_returns_outputs_in_input_order(concurrent_setup, tiny_model):
    env, handle, user, semirt = concurrent_setup
    rng = np.random.default_rng(1)
    inputs = [
        rng.standard_normal(tiny_model.input_spec.shape).astype(np.float32)
        for _ in range(8)
    ]
    session = env.session(
        "user", "shared-model", framework="tflm",
        config=semirt.enclave.config, semirt=semirt,
    )
    outputs = session.infer_many(inputs)
    assert len(outputs) == len(inputs)
    for index, x in enumerate(inputs):
        expected = tiny_model.run_reference(x).ravel()
        assert np.allclose(outputs[index], expected, atol=1e-5), index


def test_distinct_users_never_mix_outputs(concurrent_setup, tiny_model):
    """N threads x distinct users on one enclave: outputs stay separate.

    Every user encrypts under their own request key and AAD; if two
    in-flight requests ever swapped execution contexts, the response
    would fail authentication (or decode to the wrong user's result).
    """
    env, handle, _, semirt = concurrent_setup
    names = [f"tenant-{i}" for i in range(4)]
    rng = np.random.default_rng(2)
    per_user_inputs = {}
    for name in names:
        handle.grant(name)
        per_user_inputs[name] = [
            rng.standard_normal(tiny_model.input_spec.shape).astype(np.float32)
            for _ in range(3)
        ]
    results = {name: None for name in names}
    errors = []
    barrier = threading.Barrier(len(names))

    def worker(name):
        try:
            session = env.session(
                name, "shared-model", framework="tflm",
                config=semirt.enclave.config, semirt=semirt,
            )
            barrier.wait(timeout=10)
            results[name] = session.infer_many(per_user_inputs[name])
        except Exception as exc:  # pragma: no cover - surfaced by assertion
            errors.append((name, exc))

    threads = [threading.Thread(target=worker, args=(n,)) for n in names]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    for name in names:
        for got, x in zip(results[name], per_user_inputs[name]):
            expected = tiny_model.run_reference(x).ravel()
            assert np.allclose(got, expected, atol=1e-5), name


def test_all_threads_share_one_loaded_model(concurrent_setup, tiny_model):
    env, handle, user, semirt = concurrent_setup
    session = env.session(
        "user", "shared-model", framework="tflm",
        config=semirt.enclave.config, semirt=semirt,
    )
    session.infer_many(
        [np.zeros(tiny_model.input_spec.shape, dtype=np.float32)] * 4
    )
    # One model object in the enclave heap, regardless of thread count.
    assert semirt.code._model_id == "shared-model"


def test_ticketed_ecall_surface(concurrent_setup, tiny_model):
    """EC_MODEL_INF hands out a ticket; GET/CLEAR operate on it."""
    env, handle, user, semirt = concurrent_setup
    enc = user.encrypt_request(
        "shared-model", handle.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )
    ticket = semirt.enclave.ecall(
        "EC_MODEL_INF", enc, user.principal_id, "shared-model"
    )
    assert isinstance(ticket, int)
    assert semirt.code.pending_outputs == 1
    first = semirt.enclave.ecall("EC_GET_OUTPUT", ticket)
    again = semirt.enclave.ecall("EC_GET_OUTPUT", ticket)  # not consumed
    assert first == again and isinstance(first, bytes)
    semirt.enclave.ecall("EC_CLEAR_EXEC_CTX", ticket)
    assert semirt.code.pending_outputs == 0
    with pytest.raises(EnclaveError, match="no output pending"):
        semirt.enclave.ecall("EC_GET_OUTPUT", ticket)
    # clearing an unknown/already-cleared ticket is a harmless no-op
    semirt.enclave.ecall("EC_CLEAR_EXEC_CTX", ticket)
    with pytest.raises(EnclaveError, match="no output pending"):
        semirt.enclave.ecall("EC_GET_OUTPUT", 999_999)


def test_context_table_is_bounded_by_tcs_count(concurrent_setup, tiny_model):
    """A host that never clears contexts cannot grow the enclave heap."""
    env, handle, user, semirt = concurrent_setup
    enc = user.encrypt_request(
        "shared-model", handle.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )
    capacity = semirt.enclave.config.tcs_count
    tickets = [
        semirt.enclave.ecall(
            "EC_MODEL_INF", enc, user.principal_id, "shared-model"
        )
        for _ in range(capacity)
    ]
    with pytest.raises(EnclaveError, match="execution contexts"):
        semirt.enclave.ecall(
            "EC_MODEL_INF", enc, user.principal_id, "shared-model"
        )
    for ticket in tickets:
        semirt.enclave.ecall("EC_CLEAR_EXEC_CTX", ticket)
    assert semirt.code.pending_outputs == 0


def test_tcs_admission_limit(concurrent_setup, tiny_model):
    """More simultaneous ECALLs than TCSs are rejected by the hardware."""
    env, handle, user, semirt = concurrent_setup
    capacity = semirt.enclave.config.tcs_count
    release = threading.Event()
    admitted = []

    def blocking_load(model_id):
        """An OCALL handler that parks the loading thread in the enclave;
        the other threads park on the model-switch lock -- either way,
        each occupies its TCS."""
        release.wait(timeout=30)
        raise RuntimeError("unblocked")

    original = semirt.enclave._ocall_handlers["OC_LOAD_MODEL"]
    semirt.enclave.register_ocall("OC_LOAD_MODEL", blocking_load)
    # Force the model-load path so threads hit the blocking OCALL.
    semirt.code._model_id = None
    semirt.code._model = None

    enc = user.encrypt_request(
        "shared-model", handle.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )

    def occupant():
        try:
            semirt.enclave.ecall(
                "EC_MODEL_INF", enc, user.principal_id, "shared-model"
            )
        except RuntimeError:
            admitted.append(1)

    threads = [threading.Thread(target=occupant) for _ in range(capacity)]
    for thread in threads:
        thread.start()
    # Wait until every TCS is occupied.
    deadline = time.time() + 10
    while semirt.enclave.tcs_in_use < capacity and time.time() < deadline:
        time.sleep(0.01)
    try:
        assert semirt.enclave.tcs_in_use == capacity
        with pytest.raises(TcsExhausted):
            semirt.enclave.ecall(
                "EC_MODEL_INF", enc, user.principal_id, "shared-model"
            )
    finally:
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        semirt.enclave.register_ocall("OC_LOAD_MODEL", original)
    assert len(admitted) >= 1  # at least the loader thread was unblocked
    assert semirt.enclave.tcs_in_use == 0
    # Restore a servable state for later tests in the module.
    semirt.infer(enc, user.principal_id, "shared-model")


def test_sequential_isolation_refuses_multi_tcs(concurrent_setup):
    env, handle, user, semirt = concurrent_setup
    with pytest.raises(EnclaveError, match="sequential"):
        env.launch_semirt(
            "tflm",
            config=default_semirt_config(tcs_count=4),
            isolation=IsolationSettings.strong(),
        )


def test_submit_backpressure_raises_queue_full(tiny_model):
    """Submits beyond (busy workers + queue depth) bounce with QueueFull."""
    env = SeSeMIEnvironment()
    config = default_semirt_config(tcs_count=1)
    handle = env.deploy(
        tiny_model, "bp-model", owner="owner",
        framework="tflm", config=config,
    )
    handle.grant("user")
    user = env.user("user")
    host = env.launch_semirt(
        "tflm", config=config, scheduler=SchedulerConfig(queue_depth=1)
    )
    release = threading.Event()
    original = host.enclave._ocall_handlers["OC_LOAD_MODEL"]

    def slow_load(model_id):
        release.wait(timeout=30)
        return original(model_id)

    host.enclave.register_ocall("OC_LOAD_MODEL", slow_load)
    enc = user.encrypt_request(
        "bp-model", handle.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )
    first = host.submit(enc, user.principal_id, "bp-model")
    # wait for the single worker to pick it up and park in the OCALL
    deadline = time.time() + 10
    while host.enclave.tcs_in_use < 1 and time.time() < deadline:
        time.sleep(0.01)
    second = host.submit(enc, user.principal_id, "bp-model")  # fills the queue
    with pytest.raises(QueueFull):
        host.submit(enc, user.principal_id, "bp-model")
    release.set()
    for ticket in (first, second):
        assert isinstance(host.result(ticket, timeout_s=30), bytes)
    host.destroy()


def test_crash_mid_batch_fails_only_in_flight(tiny_model):
    """A dying enclave fails in-flight tickets; the next request is cold."""
    env = SeSeMIEnvironment()
    config = default_semirt_config(tcs_count=2)
    handle = env.deploy(
        tiny_model, "crash-model", owner="owner",
        framework="tflm", config=config,
    )
    handle.grant("user")
    user = env.user("user")
    host = env.launch_semirt("tflm", config=config)
    release = threading.Event()

    def dying_load(model_id):
        release.wait(timeout=30)
        raise TransportError("invoker died mid-load")

    host.enclave.register_ocall("OC_LOAD_MODEL", dying_load)
    enc = user.encrypt_request(
        "crash-model", handle.measurement,
        np.zeros(tiny_model.input_spec.shape, dtype=np.float32),
    )
    in_flight = [host.submit(enc, user.principal_id, "crash-model")
                 for _ in range(2)]
    deadline = time.time() + 10
    while host.enclave.tcs_in_use < 1 and time.time() < deadline:
        time.sleep(0.01)
    queued = host.submit(enc, user.principal_id, "crash-model")
    host.destroy()
    release.set()
    # the queued-but-unserved ticket dies with the enclave...
    with pytest.raises(EnclaveError, match="destroyed"):
        queued.result(timeout_s=30)
    # ...the in-flight ones surface their own failure
    for ticket in in_flight:
        with pytest.raises((TransportError, EnclaveError)):
            ticket.result(timeout_s=30)
    with pytest.raises(EnclaveError, match="destroyed"):
        host.submit(enc, user.principal_id, "crash-model")
    # a session attached to the dead host relaunches its own, cold
    session = env.session(
        "user", "crash-model", framework="tflm", config=config, semirt=host
    )
    x = np.zeros(tiny_model.input_spec.shape, dtype=np.float32)
    out = session.infer(x)
    assert np.allclose(out, tiny_model.run_reference(x).ravel(), atol=1e-5)
    assert session.semirt is not host and session.semirt.enclave.alive
    session.close()
