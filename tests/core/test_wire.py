"""Wire codecs: roundtrips, version dispatch, codec equivalence."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.core.wire import BINARY, JSON, WireCodec, WireError

BOTH = pytest.mark.parametrize("codec", [JSON, BINARY], ids=["json", "binary"])


@BOTH
def test_roundtrip_simple(codec):
    message = {"op": "register", "count": 3, "flag": True, "nothing": None}
    assert wire.loads(codec.dumps(message)) == message


@BOTH
def test_roundtrip_bytes(codec):
    message = {"key": b"\x00\x01\xff", "nested": {"blob": b"abc"}}
    assert wire.loads(codec.dumps(message)) == message


@BOTH
def test_roundtrip_lists(codec):
    message = {"items": [1, "two", b"three", {"four": 4}]}
    assert wire.loads(codec.dumps(message)) == message


@BOTH
def test_tuples_become_lists(codec):
    assert wire.loads(codec.dumps({"t": (1, 2)})) == {"t": [1, 2]}


@BOTH
def test_deterministic_encoding(codec):
    assert codec.dumps({"b": 1, "a": 2}) == codec.dumps({"a": 2, "b": 1})


@BOTH
def test_non_dict_rejected(codec):
    with pytest.raises(WireError):
        codec.dumps([1, 2, 3])  # type: ignore[arg-type]


@BOTH
def test_unencodable_value_rejected(codec):
    with pytest.raises(WireError):
        codec.dumps({"bad": object()})


@BOTH
def test_non_finite_floats_rejected(codec):
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(WireError):
            codec.dumps({"x": bad})
        with pytest.raises(WireError):
            codec.dumps({"deep": [{"x": bad}]})


@BOTH
def test_reserved_tags_rejected(codec):
    # Both tags are reserved in both codecs: a payload dict carrying one
    # would be re-decoded as bytes (type confusion) on some path.
    for tag in ("__bytes_hex__", "__bytes_seg__"):
        with pytest.raises(WireError):
            codec.dumps({"k": {tag: "00"}})
        with pytest.raises(WireError):
            codec.dumps({"k": {tag: "00", "other": 1}})


def test_malformed_bytes_rejected():
    with pytest.raises(WireError):
        wire.loads(b"\xff\xfe not json")
    with pytest.raises(WireError):
        wire.loads(b"[1,2,3]")


def test_bad_hex_tag_rejected():
    with pytest.raises(WireError):
        wire.loads(b'{"k": {"__bytes_hex__": "zz"}}')


# -- version dispatch ---------------------------------------------------------


def test_dispatch_selects_codec_by_first_byte():
    message = {"blob": b"\x01\x02", "n": 7}
    json_frame = JSON.dumps(message)
    binary_frame = BINARY.dumps(message)
    assert json_frame[0] == ord("{")
    assert binary_frame[0] == wire.BINARY_VERSION
    assert wire.loads(json_frame) == message
    assert wire.loads(binary_frame) == message


def test_old_json_frames_still_decode():
    # A frame captured before the binary codec existed decodes unchanged
    # through the versioned dispatcher (backwards wire compatibility).
    old_frame = b'{"op": "register", "key": {"__bytes_hex__": "00ff"}}'
    assert wire.loads(old_frame) == {"op": "register", "key": b"\x00\xff"}


def test_empty_frame_rejected():
    with pytest.raises(WireError, match="empty"):
        wire.loads(b"")


def test_unknown_version_rejected():
    with pytest.raises(WireError, match="unknown wire frame version"):
        wire.loads(b"\x7f whatever")


def test_dumps_defaults_to_json():
    assert wire.dumps({"a": 1})[0] == ord("{")
    assert wire.dumps({"a": 1}, codec=BINARY)[0] == wire.BINARY_VERSION


def test_codecs_satisfy_protocol():
    assert isinstance(JSON, WireCodec)
    assert isinstance(BINARY, WireCodec)


# -- binary frame robustness --------------------------------------------------


def test_binary_ciphertext_is_not_hex_doubled():
    blob = bytes(range(256)) * 8
    frame = BINARY.dumps({"enc": blob})
    assert blob in frame  # raw segment, no hex expansion
    assert len(frame) < len(blob) + 128


def test_binary_truncated_frames_rejected():
    frame = BINARY.dumps({"blob": b"x" * 64, "n": 1})
    for cut in (1, 4, len(frame) // 2, len(frame) - 1):
        with pytest.raises(WireError):
            BINARY.loads(frame[:cut])


def test_binary_trailing_bytes_rejected():
    frame = BINARY.dumps({"blob": b"abc"})
    with pytest.raises(WireError, match="trailing"):
        BINARY.loads(frame + b"\x00")


def test_binary_bad_segment_reference_rejected():
    # A forged field table pointing outside the segment list must fail,
    # not crash or alias another request's bytes.
    import json as json_mod
    import struct

    header = json_mod.dumps({"blob": {"__bytes_seg__": 5}}).encode()
    frame = (
        bytes((wire.BINARY_VERSION,))
        + struct.pack(">I", len(header))
        + header
        + struct.pack(">I", 0)
    )
    with pytest.raises(WireError, match="segment"):
        BINARY.loads(frame)


def test_binary_empty_bytes_and_duplicate_blobs():
    message = {"a": b"", "b": b"same", "c": b"same", "d": [b"", b"x"]}
    assert wire.loads(BINARY.dumps(message)) == message


# -- property tests: codec equivalence ---------------------------------------

simple_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**9), 10**9)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=15,
)

messages = st.dictionaries(st.text(max_size=10), simple_values, max_size=6)


def normalise(value):
    if isinstance(value, (tuple, list)):
        return [normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: normalise(v) for k, v in value.items()}
    return value


@settings(max_examples=60, deadline=None)
@given(message=messages)
def test_roundtrip_property_json(message):
    assert wire.loads(JSON.dumps(message)) == normalise(message)


@settings(max_examples=60, deadline=None)
@given(message=messages)
def test_roundtrip_property_binary(message):
    assert wire.loads(BINARY.dumps(message)) == normalise(message)


@settings(max_examples=60, deadline=None)
@given(message=messages)
def test_codecs_semantically_equivalent(message):
    # Same value domain, same decoded message -- only the framing differs.
    assert wire.loads(JSON.dumps(message)) == wire.loads(BINARY.dumps(message))


@settings(max_examples=30, deadline=None)
@given(message=messages, junk=st.binary(min_size=1, max_size=8))
def test_binary_frame_extension_never_silently_accepted(message, junk):
    frame = BINARY.dumps(message)
    with pytest.raises(WireError):
        BINARY.loads(frame + junk)
