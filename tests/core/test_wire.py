"""Wire codec: roundtrips and malformed-input handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.core.wire import WireError


def test_roundtrip_simple():
    message = {"op": "register", "count": 3, "flag": True, "nothing": None}
    assert wire.decode(wire.encode(message)) == message


def test_roundtrip_bytes():
    message = {"key": b"\x00\x01\xff", "nested": {"blob": b"abc"}}
    assert wire.decode(wire.encode(message)) == message


def test_roundtrip_lists():
    message = {"items": [1, "two", b"three", {"four": 4}]}
    assert wire.decode(wire.encode(message)) == message


def test_tuples_become_lists():
    assert wire.decode(wire.encode({"t": (1, 2)})) == {"t": [1, 2]}


def test_deterministic_encoding():
    assert wire.encode({"b": 1, "a": 2}) == wire.encode({"a": 2, "b": 1})


def test_non_dict_rejected():
    with pytest.raises(WireError):
        wire.encode([1, 2, 3])  # type: ignore[arg-type]


def test_unencodable_value_rejected():
    with pytest.raises(WireError):
        wire.encode({"bad": object()})


def test_malformed_bytes_rejected():
    with pytest.raises(WireError):
        wire.decode(b"\xff\xfe not json")
    with pytest.raises(WireError):
        wire.decode(b"[1,2,3]")


def test_bad_hex_tag_rejected():
    with pytest.raises(WireError):
        wire.decode(b'{"k": {"__bytes_hex__": "zz"}}')


simple_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**9), 10**9)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=15,
)


@settings(max_examples=60, deadline=None)
@given(message=st.dictionaries(st.text(max_size=10), simple_values, max_size=6))
def test_roundtrip_property(message):
    decoded = wire.decode(wire.encode(message))

    def normalise(value):
        if isinstance(value, tuple):
            return [normalise(v) for v in value]
        if isinstance(value, list):
            return [normalise(v) for v in value]
        if isinstance(value, dict):
            return {k: normalise(v) for k, v in value.items()}
        return value

    assert decoded == normalise(message)
