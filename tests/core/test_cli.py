"""The `python -m repro` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "MBNET" in out and "finished in" in out


def test_run_multiple_experiments(capsys):
    assert main(["run", "table1", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "memory saving" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_report_command(tmp_path, capsys):
    # Only check wiring, not the full (slow) report: monkeypatching the
    # builder would hide integration bugs, so use the real one but make
    # sure it lands where asked.
    target = tmp_path / "EXP.md"
    assert main(["report", str(target)]) == 0
    content = target.read_text()
    assert content.startswith("# EXPERIMENTS")
    assert "Figure 12" in content


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
