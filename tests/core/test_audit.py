"""The hash-chained KeyService audit log (extension)."""

import numpy as np
import pytest

from repro.core.audit import (
    GENESIS,
    AuditEntry,
    AuditLog,
    attach_audit_log,
    fetch_audit_entries,
)
from repro.core.client import KeyServiceConnection
from repro.core.deployment import SeSeMIEnvironment
from repro.errors import SeSeMIError
from repro.mlrt.zoo import build_mobilenet


@pytest.fixture(scope="module")
def audited_world():
    env = SeSeMIEnvironment()
    log = attach_audit_log(env.keyservice.code)
    owner = env.connect_owner()
    user = env.connect_user()
    model = build_mobilenet()
    semirt = env.launch_semirt("tvm")
    env.deploy(model, "m", owner=owner).grant(user)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    enc = user.encrypt_request("m", semirt.measurement, x)
    semirt.infer(enc, user.principal_id, "m")
    return env, log, owner, user, semirt


def test_chain_starts_at_genesis():
    log = AuditLog()
    assert log.head_hash == GENESIS
    entry = log.append("grant_access", "owner", "m", "ok")
    assert entry.prev_hash == GENESIS
    assert log.head_hash == entry.entry_hash()


def test_chain_verification_detects_tampering():
    log = AuditLog()
    for i in range(5):
        log.append("grant_access", f"actor-{i}", "m", "ok")
    entries = log.entries()
    assert AuditLog.verify_chain(entries)
    forged = list(entries)
    forged[2] = AuditEntry(
        index=2, op="grant_access", actor="mallory", subject="m",
        outcome="ok", prev_hash=entries[2].prev_hash,
    )
    assert not AuditLog.verify_chain(forged)
    # Dropping an entry breaks the chain too.
    assert not AuditLog.verify_chain(entries[:2] + entries[3:])


def test_operations_are_recorded(audited_world):
    env, log, owner, user, semirt = audited_world
    ops = [entry.op for entry in log.entries()]
    assert "add_model_key" in ops
    assert "grant_access" in ops
    assert "add_req_key" in ops
    assert "provision" in ops


def test_provision_records_enclave_identity(audited_world):
    env, log, owner, user, semirt = audited_world
    provisions = [e for e in log.entries() if e.op == "provision"]
    assert provisions
    assert provisions[0].actor == semirt.measurement.value
    assert provisions[0].outcome == "ok"


def test_denied_operations_are_recorded(audited_world):
    env, log, owner, user, semirt = audited_world
    intruder = env.connect_user("intruder")
    intruder.add_request_key("m", semirt.measurement)
    x = np.zeros((1, 16, 16, 3), dtype=np.float32)
    enc = intruder.encrypt_request("m", semirt.measurement, x)
    with pytest.raises(Exception):
        semirt.infer(enc, intruder.principal_id, "m")
    denied = [e for e in log.entries() if e.outcome == "denied"]
    assert any(e.op == "provision" for e in denied)


def test_no_key_material_in_log(audited_world):
    env, log, owner, user, semirt = audited_world
    model_key = bytes(owner.model_key("m")).hex()
    serialized = str([e.to_wire() for e in log.entries()])
    assert model_key not in serialized


def test_owner_fetches_and_verifies_chain(audited_world):
    env, log, owner, user, semirt = audited_world
    connection = KeyServiceConnection(
        env.keyservice, env.attestation, env.keyservice.measurement, "auditor"
    )
    entries = fetch_audit_entries(connection)
    assert len(entries) == len(log)
    assert AuditLog.verify_chain(entries)


def test_double_attach_rejected(audited_world):
    env, log, *_ = audited_world
    with pytest.raises(SeSeMIError):
        attach_audit_log(env.keyservice.code)
