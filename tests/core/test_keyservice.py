"""KeyService (Algorithm 1): registration, key management, provisioning."""

import pytest

from repro.core import wire
from repro.core.client import KeyServiceConnection, OwnerClient, UserClient
from repro.core.keyservice import (
    KEYSERVICE_CONFIG,
    KeyServiceHost,
    expected_keyservice_measurement,
)
from repro.crypto.gcm import AESGCM
from repro.crypto.keys import SymmetricKey
from repro.errors import EnclaveError
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuildConfig
from repro.sgx.platform import SGX2, SgxPlatform


@pytest.fixture()
def ks():
    attestation = AttestationService()
    platform = SgxPlatform(SGX2, attestation_service=attestation)
    host = KeyServiceHost(platform, attestation)
    return attestation, host


def connect(host, attestation, name="client"):
    return KeyServiceConnection(host, attestation, host.measurement, name=name)


def test_expected_measurement_matches_deployment(ks):
    _, host = ks
    assert expected_keyservice_measurement(KEYSERVICE_CONFIG) == host.measurement


def test_expected_measurement_detects_config_change(ks):
    _, host = ks
    other = expected_keyservice_measurement(
        EnclaveBuildConfig(memory_bytes=64 * 1024 * 1024, tcs_count=8)
    )
    assert other != host.measurement


def test_registration_returns_key_hash(ks):
    attestation, host = ks
    connection = connect(host, attestation)
    key = SymmetricKey.generate()
    reply = connection.call_checked({"op": "register", "identity_key": bytes(key)})
    assert reply["id"] == key.fingerprint
    assert host.code.registered_principals == 1


def test_unknown_operation_refused(ks):
    attestation, host = ks
    connection = connect(host, attestation)
    reply = connection.call({"op": "frobnicate"})
    assert not reply["ok"]
    assert "unknown operation" in reply["error"]


def test_add_model_key_requires_registration(ks):
    attestation, host = ks
    connection = connect(host, attestation)
    reply = connection.call(
        {"op": "add_model_key", "oid": "f" * 64, "blob": b"anything"}
    )
    assert not reply["ok"]
    assert "not registered" in reply["error"]


def test_add_model_key_requires_authenticated_blob(ks):
    attestation, host = ks
    connection = connect(host, attestation)
    key = SymmetricKey.generate()
    oid = connection.call_checked(
        {"op": "register", "identity_key": bytes(key)}
    )["id"]
    # Blob sealed under a DIFFERENT key: the owner did not authorise this.
    forged = AESGCM(bytes(SymmetricKey.generate())).seal(
        wire.dumps({"model_id": "m", "model_key": b"k" * 16}),
        aad=b"add_model_key",
    )
    reply = connection.call({"op": "add_model_key", "oid": oid, "blob": forged})
    assert not reply["ok"]
    assert "not authenticated" in reply["error"]


def test_op_payload_cannot_be_replayed_as_other_op(ks):
    """AAD pins the operation: an add_req_key blob is not a grant_access."""
    attestation, host = ks
    connection = connect(host, attestation)
    key = SymmetricKey.generate()
    oid = connection.call_checked(
        {"op": "register", "identity_key": bytes(key)}
    )["id"]
    blob = AESGCM(bytes(key)).seal(
        wire.dumps({"model_id": "m", "enclave_id": "e" * 64, "uid": oid}),
        aad=b"add_req_key",
    )
    reply = connection.call({"op": "grant_access", "oid": oid, "blob": blob})
    assert not reply["ok"]


def test_provisioning_requires_attested_channel(ks):
    """An unattested client (no quote) can never draw keys out."""
    attestation, host = ks
    connection = connect(host, attestation)
    reply = connection.call({"op": "provision", "uid": "u" * 64, "model_id": "m"})
    assert not reply["ok"]
    assert "mutually attested" in reply["error"]


def test_unknown_channel_rejected(ks):
    _, host = ks
    with pytest.raises(EnclaveError):
        host.request(9999, b"ciphertext")


def test_clients_full_setup_flow(ks, tiny_model):
    """Owner + user complete the whole key-setup workflow of Section III."""
    attestation, host = ks
    owner, user = OwnerClient("owner"), UserClient("user")
    for principal in (owner, user):
        principal.connect(host, attestation, host.measurement)
        principal.register()
    from repro.serverless.storage import BlobStore
    from repro.sgx.measurement import EnclaveMeasurement

    storage = BlobStore()
    enclave = EnclaveMeasurement("ab" * 32)
    owner.deploy_model(tiny_model, "m1", storage)
    owner.add_model_key("m1")
    owner.grant_access("m1", enclave, user.principal_id)
    user.add_request_key("m1", enclave)
    # The uploaded artifact is ciphertext, not the plain model.
    blob = storage.get("models/m1")
    assert tiny_model.serialize() not in blob
    assert host.code.registered_principals == 2


def test_client_detects_wrong_keyservice_identity(ks):
    """A client refuses to talk to an enclave with the wrong E_K."""
    attestation, host = ks
    from repro.errors import AttestationError
    from repro.sgx.measurement import EnclaveMeasurement

    with pytest.raises(AttestationError):
        KeyServiceConnection(
            host, attestation, EnclaveMeasurement("ee" * 32), name="victim"
        )


def test_keyservice_ecall_surface_is_minimal(ks):
    """Only the network-facing pair plus the sealed-checkpoint pair export.

    EC_SEAL_STATE/EC_RESTORE_STATE expose no secrets to the host: they
    speak only sealed ciphertext bound to the enclave identity.
    """
    _, host = ks
    assert host.enclave.exported_ecalls == {
        "EC_HANDSHAKE",
        "EC_REQUEST",
        "EC_SEAL_STATE",
        "EC_RESTORE_STATE",
    }
