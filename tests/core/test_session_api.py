"""The session API: deploy/grant/session, traces, and shared instances."""

import numpy as np
import pytest

from repro.core.deployment import ModelHandle, SeSeMIEnvironment, UserSession
from repro.core.stages import InvocationKind, Stage
from repro.errors import AccessDenied, SeSeMIError
from repro.obs import analysis


@pytest.fixture(scope="module")
def fresh_env() -> SeSeMIEnvironment:
    """A private environment so span assertions see only this module."""
    return SeSeMIEnvironment()


@pytest.fixture(scope="module")
def handle(fresh_env, tiny_model) -> ModelHandle:
    return fresh_env.deploy(tiny_model, "sess-model", owner="sess-owner")


def test_deploy_uploads_and_returns_handle(fresh_env, handle):
    assert isinstance(handle, ModelHandle)
    assert handle.measurement == fresh_env.expected_semirt("tvm")
    assert fresh_env.storage.get("models/sess-model")  # ciphertext landed


def test_owner_and_user_names_are_cached(fresh_env):
    owner = fresh_env.owner("sess-owner")
    assert owner is fresh_env.owner("sess-owner")
    user = fresh_env.user("cache-check")
    assert user is fresh_env.user("cache-check")
    assert fresh_env.user(user) is user


def test_grant_then_infer_round_trip(fresh_env, handle, tiny_model, tiny_input):
    handle.grant("alice")
    with fresh_env.session("alice", "sess-model") as session:
        assert session.semirt is None  # launched lazily
        out = session.infer(tiny_input)
        assert session.semirt is not None
        reference = tiny_model.run_reference(tiny_input).ravel()
        assert np.allclose(out, reference, atol=1e-5)
    assert session.semirt is None  # context exit reclaimed the enclave


def test_ungranted_user_is_refused(fresh_env, handle, tiny_input):
    fresh_env.connect_user("mallory")
    with fresh_env.session("mallory", "sess-model") as session:
        with pytest.raises(AccessDenied):
            session.infer(tiny_input)


def test_revoke_blocks_future_sessions(fresh_env, handle, tiny_input):
    handle.grant("bob")
    with fresh_env.session("bob", "sess-model") as session:
        session.infer(tiny_input)
    handle.revoke("bob")
    with fresh_env.session("bob", "sess-model") as session:
        with pytest.raises(AccessDenied):
            session.infer(tiny_input)


def test_session_requires_registered_user(fresh_env):
    from repro.core.client import UserClient

    with pytest.raises(SeSeMIError):
        UserSession(fresh_env, UserClient("ghost"), "sess-model")


def test_cold_trace_covers_all_nine_stages(tiny_model, tiny_input):
    """Acceptance: one functional inference -> one nine-stage span tree."""
    env = SeSeMIEnvironment()
    env.deploy(tiny_model, "m", owner="o").grant("u")
    with env.session("u", "m") as session:
        session.infer(tiny_input)
        session.infer(tiny_input)
    spans = env.tracer.finished_spans()
    cold, hot = analysis.request_roots(spans)
    tree_stages = analysis.stage_seconds(spans, cold)
    assert set(tree_stages) == {stage.value for stage in Stage}
    assert len({s.trace_id for s in analysis.subtree(spans, cold)}) == 1
    assert cold.attributes["flavor"] == "cold"
    assert hot.attributes["flavor"] == "hot"
    hot_stages = analysis.stage_seconds(spans, hot)
    assert Stage.ENCLAVE_INIT.value not in hot_stages
    assert Stage.MODEL_INFERENCE.value in hot_stages


def test_handle_session_shortcut(fresh_env, handle, tiny_input):
    handle.grant("carol")
    with handle.session("carol") as session:
        out = session.infer(tiny_input)
    assert out is not None


def test_warm_path_after_runtime_reset(fresh_env, handle, tiny_input):
    handle.grant("dave")
    with fresh_env.session("dave", "sess-model") as session:
        session.infer(tiny_input)
        session.infer(tiny_input)
        assert session.semirt.code.last_plan.kind == InvocationKind.HOT


# -- shared (attached) instances -------------------------------------------------


def test_session_attaches_to_shared_instance(fresh_env, handle, tiny_input):
    """An explicitly launched host serves a session-API grant."""
    handle.grant("erin")
    semirt = fresh_env.launch_semirt("tvm")
    assert semirt.measurement == handle.measurement
    with fresh_env.session("erin", "sess-model", semirt=semirt) as session:
        out = session.infer(tiny_input)
        assert session.semirt is semirt
    assert out is not None
    # closing an attached session leaves the shared host running
    assert semirt.enclave.alive
    semirt.destroy()


def test_deprecated_shims_are_gone(fresh_env):
    """The PR-1 authorize/infer shims completed their deprecation cycle."""
    assert not hasattr(SeSeMIEnvironment, "authorize")
    assert not hasattr(SeSeMIEnvironment, "infer")
