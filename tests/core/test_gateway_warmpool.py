"""InferenceGateway with the warm pool armed, over scripted stub hosts.

Covers the four integration points: temperature/cold-start fields on
:class:`RouteDecision`, warm-hint reuse, :meth:`maintain`'s janitor
sweeps + pre-warm launches, and scale-from-zero regrowth after the
janitor empties the fleet.
"""

from repro.core.gateway import GatewayConfig, InferenceGateway
from repro.errors import QueueFull
from repro.obs.span import LogicalClock
from repro.obs.tracer import Tracer
from repro.routing import FnPool, ScaleOutPolicy
from repro.warmpool import PredictorPolicy, WarmPoolConfig

from tests.core.test_gateway import _FakeHost

MODELS = ("m0", "m1")


def make_warm_gateway(num_endpoints=2, models=MODELS, plans=None, **warm_kwargs):
    pool = FnPool(
        name="p", models=models, memory_budget=0, num_endpoints=num_endpoints
    )
    launched = []
    plans = dict(plans or {})

    def launcher(endpoint):
        launched.append(endpoint)
        return _FakeHost(endpoint, plans.pop(endpoint, None))

    gw = InferenceGateway(
        pool,
        launcher,
        config=GatewayConfig(warm_pool=WarmPoolConfig(**warm_kwargs)),
        tracer=Tracer(service="test", clock=LogicalClock()),
    )
    gw.launched = launched
    return gw


def test_decisions_carry_temperature_and_cold_start_latency():
    gw = make_warm_gateway()
    first = gw.dispatch(b"x", "u", "m0").decision
    assert first.cold and first.temperature == "cold"
    assert first.cold_start_s >= 0.0
    second = gw.dispatch(b"y", "u", "m0").decision
    assert not second.cold and second.temperature == "hot"
    assert second.cold_start_s == 0.0
    counters = gw.warm_pool.counters()
    assert counters["cold"] == 1 and counters["hot"] == 1


def test_warm_hint_reuses_the_pool_strategys_pick():
    gw = make_warm_gateway()
    gw.dispatch(b"x", "u", "m0")
    decision = gw.dispatch(b"y", "u", "m0").decision
    # the second request followed the warm pool back to the live
    # endpoint instead of letting the router fan out to a cold one
    assert decision.warm_hint
    assert gw.launched == ["p-ep0"]


def test_maintain_retires_idle_endpoints_to_the_floor():
    gw = make_warm_gateway(
        keep_alive_s=0.0,
        min_warm=1,
        sweep_interval_s=0.001,
        plans={"p-ep0": [b"a", QueueFull("full")]},
    )
    gw.dispatch(b"a", "u1", "m0")
    # ep0 rejects the second request, so it reroutes and ep1 goes live
    assert gw.dispatch(b"b", "u2", "m0").decision.endpoint == "p-ep1"
    assert gw.warm_pool.fleet_size == 2
    result = gw.maintain()
    assert len(result["retired"]) == 1
    assert gw.warm_pool.fleet_size == 1
    assert gw.warm_pool.counters()["janitor_retired"] == 1


def test_maintain_prewarms_up_to_the_min_warm_floor():
    gw = make_warm_gateway(
        predictive=True, min_warm=2, predictor=PredictorPolicy()
    )
    result = gw.maintain()
    assert result["prewarmed"] == ["p-ep0", "p-ep1"]
    assert gw.launched == ["p-ep0", "p-ep1"]
    stats = gw.warm_stats()
    assert all(ep["prewarmed"] for ep in stats["endpoints"].values())
    # a dispatch now lands on a pre-warmed endpoint: no cold start
    decision = gw.dispatch(b"x", "u", "m0").decision
    assert not decision.cold and decision.temperature == "warm"


def test_janitor_emptied_fleet_regrows_on_demand():
    gw = make_warm_gateway(
        num_endpoints=1,
        keep_alive_s=0.0,
        min_warm=0,
        sweep_interval_s=0.001,
        scale_out=ScaleOutPolicy(max_endpoints=4),
    )
    gw.dispatch(b"x", "u", "m0")
    assert gw.maintain()["retired"] == ["p-ep0"]
    assert gw.endpoint_count == 0  # true scale-to-zero
    reply = gw.dispatch(b"y", "u", "m0")
    assert reply.output == b"y"
    assert reply.decision.cold and reply.decision.temperature == "cold"
    assert gw.warm_pool.fleet_size == 1


def test_attached_hosts_are_pinned_against_the_janitor():
    gw = make_warm_gateway(keep_alive_s=0.0, min_warm=0, sweep_interval_s=0.001)
    shared = _FakeHost("p-ep0")
    gw.attach("p-ep0", shared)
    assert gw.maintain()["retired"] == []
    assert shared.enclave.alive
    assert gw.warm_stats()["endpoints"]["p-ep0"]["pinned"]


def test_warm_stats_is_none_when_the_pool_is_not_armed():
    pool = FnPool(name="p", models=MODELS, memory_budget=0, num_endpoints=1)
    gw = InferenceGateway(
        pool, lambda ep: _FakeHost(ep),
        tracer=Tracer(service="test", clock=LogicalClock()),
    )
    assert gw.warm_pool is None
    assert gw.warm_stats() is None
    assert gw.maintain() == {"retired": [], "prewarmed": []}
