"""Simulation actors: invocation paths, EPC accounting, baselines."""

import pytest

from repro.core.costs import CostModel
from repro.core.simbridge import (
    IsoReuseSimActor,
    NativeSimActor,
    SemirtSimActor,
    UntrustedSimActor,
    servable_map,
)
from repro.core.stages import Stage
from repro.errors import InvocationError
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival

MB = 1024 * 1024


def models_for(*names, framework="tvm"):
    return servable_map([(n.lower(), profile(n), framework) for n in names])


def run_sequence(factory, arrivals, budget=None, concurrency=1):
    bed = make_testbed(num_nodes=1)
    models = models_for("MBNET")
    budget = budget or action_budget(models["mbnet"], concurrency)
    spec = ActionSpec(name="ep", image="test", memory_budget=budget,
                      concurrency=concurrency)
    bed.platform.deploy(spec, factory(models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(arrivals)
    report = driver.run(until=2000)
    return bed, sorted(report.results, key=lambda r: r.submitted_at)


def spaced(count, gap=20.0, model="mbnet", user="u"):
    return [Arrival(time=i * gap, model_id=model, user_id=user) for i in range(count)]


def test_semirt_paths_cold_then_hot():
    factory = lambda m, c: (lambda: SemirtSimActor(m, c))
    bed, results = run_sequence(factory, spaced(3))
    assert [r.kind for r in results] == ["cold", "hot", "hot"]
    assert Stage.ENCLAVE_INIT.value in results[0].stage_seconds
    assert Stage.ENCLAVE_INIT.value not in results[1].stage_seconds
    assert Stage.KEY_RETRIEVAL.value not in results[1].stage_seconds


def test_semirt_user_switch_refetches_keys_cheaply():
    factory = lambda m, c: (lambda: SemirtSimActor(m, c))
    arrivals = [
        Arrival(time=0.0, model_id="mbnet", user_id="alice"),
        Arrival(time=30.0, model_id="mbnet", user_id="bob"),
    ]
    bed, results = run_sequence(factory, arrivals)
    assert results[1].kind == "warm"
    refetch = results[1].stage_seconds[Stage.KEY_RETRIEVAL.value]
    first = results[0].stage_seconds[Stage.KEY_RETRIEVAL.value]
    assert refetch < first / 3  # session reuse: one RPC, no re-attestation


def test_iso_reuse_reloads_model_every_request():
    factory = lambda m, c: (lambda: IsoReuseSimActor(m, c))
    bed, results = run_sequence(factory, spaced(3))
    for result in results:
        assert Stage.MODEL_LOADING.value in result.stage_seconds
        assert Stage.RUNTIME_INIT.value in result.stage_seconds
    # ... but keys are cached after the first request.
    assert Stage.KEY_RETRIEVAL.value not in results[2].stage_seconds


def test_native_launches_enclave_every_request():
    factory = lambda m, c: (lambda: NativeSimActor(m, c))
    bed, results = run_sequence(factory, spaced(3))
    for result in results:
        assert result.stage_seconds[Stage.ENCLAVE_INIT.value] > 0
        assert Stage.KEY_RETRIEVAL.value in result.stage_seconds
    # Native frees its per-request enclave: nothing stays committed.
    assert bed.platform.nodes[0].sgx.epc.committed_bytes == 0


def test_semirt_keeps_enclave_committed_until_reaped():
    bed = make_testbed(num_nodes=1)
    models = models_for("MBNET")
    spec = ActionSpec(
        name="ep", image="t",
        memory_budget=action_budget(models["mbnet"]), concurrency=1,
    )
    bed.platform.deploy(spec, lambda: SemirtSimActor(models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(spaced(2))
    driver.run(until=60)  # inside the keep-alive window
    assert bed.platform.nodes[0].sgx.epc.committed_bytes >= 0x4000000
    bed.sim.run()  # let the keep-alive reaper fire
    assert bed.platform.nodes[0].sgx.epc.committed_bytes == 0


def test_untrusted_has_no_sgx_stages():
    factory = lambda m, c: (lambda: UntrustedSimActor(m, c))
    bed, results = run_sequence(factory, spaced(2))
    for result in results:
        assert Stage.ENCLAVE_INIT.value not in result.stage_seconds
        assert Stage.KEY_RETRIEVAL.value not in result.stage_seconds
    assert Stage.MODEL_LOADING.value in results[0].stage_seconds
    assert Stage.MODEL_LOADING.value not in results[1].stage_seconds  # cached


def test_latency_ordering_between_systems():
    """Steady-state latency: SeSeMI < Iso-reuse < Native."""
    def steady(factory):
        _, results = run_sequence(factory, spaced(4))
        return results[-1].latency

    sesemi = steady(lambda m, c: (lambda: SemirtSimActor(m, c)))
    iso = steady(lambda m, c: (lambda: IsoReuseSimActor(m, c)))
    native = steady(lambda m, c: (lambda: NativeSimActor(m, c)))
    assert sesemi < iso < native


def test_enclave_sizing_with_threads():
    models = models_for("RSNET")
    actor1 = SemirtSimActor(models, CostModel(hardware=None, storage=None), tcs_count=1)  # type: ignore[arg-type]
    actor4 = SemirtSimActor(models, CostModel(hardware=None, storage=None), tcs_count=4)  # type: ignore[arg-type]
    prof = profile("RSNET")
    assert actor1.enclave_total_bytes() == prof.tvm_enclave_bytes
    assert (
        actor4.enclave_total_bytes()
        == prof.tvm_enclave_bytes + 3 * prof.tvm_buffer_bytes
    )


def test_actor_requires_models():
    with pytest.raises(InvocationError):
        SemirtSimActor({}, None)  # type: ignore[arg-type]


def test_unknown_model_request_fails():
    factory = lambda m, c: (lambda: SemirtSimActor(m, c))
    bed, results = run_sequence(
        factory, [Arrival(time=0.0, model_id="ghost", user_id="u")]
    )
    assert results == []  # the serve process died with InvocationError


def test_model_switch_in_pool():
    bed = make_testbed(num_nodes=1)
    models = servable_map(
        [("a", profile("MBNET"), "tvm"), ("b", profile("DSNET"), "tvm")]
    )
    budget = max(action_budget(m) for m in models.values())
    spec = ActionSpec(name="ep", image="t", memory_budget=budget, concurrency=1)
    bed.platform.deploy(spec, lambda: SemirtSimActor(models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="a", user_id="u"),
            Arrival(time=30.0, model_id="b", user_id="u"),
            Arrival(time=60.0, model_id="a", user_id="u"),
        ]
    )
    results = sorted(driver.run(until=2000).results, key=lambda r: r.submitted_at)
    assert [r.kind for r in results] == ["cold", "warm", "warm"]
    assert Stage.MODEL_LOADING.value in results[1].stage_seconds
    assert Stage.MODEL_LOADING.value in results[2].stage_seconds
