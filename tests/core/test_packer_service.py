"""FnPackerService: deployment, routing, and stats tracking in the sim."""

import pytest

from repro.core.fnpacker import FnPool
from repro.core.packer_service import FnPackerService, make_router
from repro.core.simbridge import servable_map
from repro.errors import ConfigError, RoutingError
from repro.experiments.common import make_testbed
from repro.mlrt.zoo import profile

MODELS = ("m0", "m1", "m2")


def build_service(strategy="fnpacker", tcs_count=1):
    bed = make_testbed(num_nodes=2)
    pool = FnPool(name="pool", models=MODELS, memory_budget=0)
    models = servable_map([(m, profile("MBNET"), "tvm") for m in MODELS])
    service = FnPackerService(
        bed.sim, bed.controller, pool, models, bed.cost,
        strategy=strategy, tcs_count=tcs_count,
    )
    return bed, service


def run_invocations(bed, service, specs):
    """specs: list of (delay_before, model_id) issued sequentially."""
    results = []

    def driver(sim):
        for delay, model_id in specs:
            if delay:
                yield sim.timeout(delay)
            done = service.invoke(model_id, "user")
            result = yield done
            results.append(result)

    bed.sim.process(driver(bed.sim))
    bed.sim.run(until=10_000)
    return results


def run_burst(bed, service, model_id, count):
    """Issue ``count`` simultaneous requests; await them all."""
    results = []

    def driver(sim):
        pending = [service.invoke(model_id, f"user-{i}") for i in range(count)]
        for event in pending:
            results.append((yield event))

    bed.sim.process(driver(bed.sim))
    bed.sim.run(until=10_000)
    return results


def test_multi_tcs_endpoint_absorbs_burst_in_one_container():
    """tcs_count > 1 => a same-model burst shares one enclave container."""
    bed, service = build_service(tcs_count=4)
    results = run_burst(bed, service, "m0", 4)
    assert len(results) == 4
    assert service.in_flight == 0
    # All four requests fit the container's concurrency (= TCS count):
    # exactly one cold start for the whole burst.
    assert bed.controller.cold_starts == 1


def test_single_tcs_burst_fans_out_containers():
    """tcs_count == 1 serialises per container, so a burst cold-starts more."""
    bed, service = build_service(tcs_count=1)
    results = run_burst(bed, service, "m0", 4)
    assert len(results) == 4
    assert bed.controller.cold_starts > 1


def test_strategy_validation():
    pool = FnPool(name="p", models=MODELS, memory_budget=0)
    with pytest.raises(ConfigError):
        make_router("round-robin", pool)


def test_unknown_pool_model_rejected():
    bed = make_testbed(num_nodes=1)
    pool = FnPool(name="p", models=("ghost",), memory_budget=0)
    with pytest.raises(ConfigError):
        FnPackerService(
            bed.sim, bed.controller, pool,
            servable_map([("m0", profile("MBNET"), "tvm")]), bed.cost,
        )


def test_endpoints_deployed_per_strategy():
    for strategy, expected in (("fnpacker", 3), ("one-to-one", 3), ("all-in-one", 1)):
        bed, service = build_service(strategy)
        assert len(service.router.endpoints()) == expected
        for endpoint, _ in service.router.endpoints():
            assert bed.controller.deployment(endpoint) is not None


def test_invoke_unknown_model_rejected():
    bed, service = build_service()
    with pytest.raises(RoutingError):
        service.invoke("ghost", "user")


def test_requests_complete_and_stats_track():
    bed, service = build_service()
    results = run_invocations(bed, service, [(0, "m0"), (5, "m0"), (5, "m1")])
    assert len(results) == 3
    assert service.stats["m0"].dispatched == 2
    assert service.stats["m0"].completed == 2
    assert service.stats["m1"].completed == 1
    assert service.in_flight == 0
    assert "cold" in service.stats["m0"].last_latency_by_kind


def test_hot_model_becomes_exclusive():
    bed, service = build_service()
    done_events = []

    def driver(sim):
        # Two overlapping requests to m0 pin an endpoint exclusively.
        done_events.append(service.invoke("m0", "user"))
        yield sim.timeout(0.5)
        done_events.append(service.invoke("m0", "user"))
        yield sim.timeout(0.0)

    bed.sim.process(driver(bed.sim))
    bed.sim.run(until=2.0)  # mid-flight
    exclusives = service.exclusive_endpoints()
    assert list(exclusives.values()) == ["m0"]
    bed.sim.run(until=10_000)


def test_sequential_session_reuses_warm_endpoint():
    bed, service = build_service()
    results = run_invocations(
        bed, service, [(0, "m1"), (2, "m2"), (2, "m1"), (2, "m2")]
    )
    # After the initial cold, subsequent alternating requests stay on the
    # endpoints that already hold the models (warm/hot paths).
    kinds = [r.kind for r in results]
    assert kinds[0] == "cold"
    assert kinds[2] in ("warm", "hot")
    assert kinds[3] in ("warm", "hot")


def test_all_in_one_shares_one_endpoint():
    bed, service = build_service("all-in-one")
    results = run_invocations(bed, service, [(0, "m0"), (5, "m1")])
    # Both models served; the second pays a model switch (warm) on the
    # shared endpoint (or a cold if a new container was spawned).
    assert len({r.container_id for r in results}) <= 2
    assert results[1].kind in ("warm", "cold")


def test_memory_budget_includes_thread_buffers():
    _, service1 = build_service(tcs_count=1)
    _, service4 = build_service(tcs_count=4)
    budget1 = service1._budget_for(MODELS)
    budget4 = service4._budget_for(MODELS)
    assert budget4 > budget1
