"""End-to-end adversarial scenarios (the threat model of Section III).

The adversary controls the untrusted software stack: it can read all
traffic and storage, load arbitrary enclaves, and invoke arbitrary
sequences of enclave functions.  Each test plays one concrete attack and
checks the defence the paper claims.
"""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.errors import AccessDenied, InvocationError, ReproError


@pytest.fixture(scope="module")
def world(tiny_model, tiny_input):
    env = SeSeMIEnvironment()
    owner = env.connect_owner("hospital")
    user = env.connect_user("patient")
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "ehr-model", owner=owner).grant(user)
    # Prime the deployment with one legitimate inference.
    enc = user.encrypt_request("ehr-model", semirt.measurement, tiny_input)
    semirt.infer(enc, user.principal_id, "ehr-model")
    return env, owner, user, semirt


def test_storage_never_sees_plaintext_model(world, tiny_model):
    """The cloud reads storage: the artifact must be indistinguishable junk."""
    env, *_ = world
    blob = env.storage.get("models/ehr-model")
    plain = tiny_model.serialize()
    assert plain not in blob
    # No 64-byte window of weight data survives in the ciphertext.
    assert plain[200:264] not in blob


def test_cloud_cannot_decrypt_request(world, tiny_input):
    """A captured request ciphertext is useless without the request key."""
    env, owner, user, semirt = world
    enc = user.encrypt_request("ehr-model", semirt.measurement, tiny_input)
    assert tiny_input.tobytes() not in enc


def test_rogue_enclave_cannot_obtain_keys(world):
    """The adversary loads its own (different) enclave code: KeyService
    must refuse it keys because its MRENCLAVE is not in AC_M."""
    env, owner, user, semirt = world
    rogue = env.launch_semirt("tflm", node_id="rogue-node")  # different E_S
    assert rogue.measurement != semirt.measurement
    enc = user.encrypt_request("ehr-model", semirt.measurement, np.zeros(1))
    with pytest.raises(AccessDenied):
        rogue.infer(enc, user.principal_id, "ehr-model")


def test_adversarial_ecall_sequences_leak_nothing(world):
    """Arbitrary ECALL orderings on a fresh enclave expose no state."""
    env, *_ , semirt = world
    fresh = env.launch_semirt("tvm", node_id="probe-node")
    from repro.errors import EnclaveError

    with pytest.raises(EnclaveError):
        fresh.enclave.ecall("EC_GET_OUTPUT", 1)  # nothing computed yet
    fresh.enclave.ecall("EC_CLEAR_EXEC_CTX", 1)  # harmless no-op
    with pytest.raises(EnclaveError):
        fresh.enclave.ecall("EC_GET_OUTPUT", 1)
    # guessing other tickets is equally fruitless
    with pytest.raises(EnclaveError):
        fresh.enclave.ecall("EC_GET_OUTPUT", 424242)


def test_forged_grant_rejected(world):
    """An attacker cannot grant itself access without the owner's key."""
    env, owner, user, semirt = world
    from repro.core import wire
    from repro.core.client import KeyServiceConnection
    from repro.crypto.gcm import AESGCM
    from repro.crypto.keys import SymmetricKey

    attacker_key = SymmetricKey.generate()
    connection = KeyServiceConnection(
        env.keyservice, env.attestation, env.keyservice.measurement, "attacker"
    )
    attacker_id = connection.call_checked(
        {"op": "register", "identity_key": bytes(attacker_key)}
    )["id"]
    forged_blob = AESGCM(bytes(attacker_key)).seal(
        wire.dumps(
            {
                "model_id": "ehr-model",
                "enclave_id": semirt.measurement.value,
                "uid": attacker_id,
            }
        ),
        aad=b"grant_access",
    )
    # Claiming to be the owner fails: the blob is not under the owner's key.
    reply = connection.call(
        {"op": "grant_access", "oid": owner.principal_id, "blob": forged_blob}
    )
    assert not reply["ok"]


def test_swapped_model_artifact_detected(world, tiny_input):
    """Substituting another (also encrypted) model fails authentication."""
    env, owner, user, semirt = world
    original = env.storage.get("models/ehr-model")
    # Adversary swaps in a blob of the right shape but wrong key/aad.
    from repro.crypto.gcm import AESGCM
    from repro.crypto.keys import SymmetricKey

    swap = AESGCM(bytes(SymmetricKey.generate())).seal(original, aad=b"x")
    env.storage.put("models/ehr-model", swap)
    fresh = env.launch_semirt("tvm", node_id="swap-node")
    user.add_request_key("ehr-model", fresh.measurement)
    owner.grant_access("ehr-model", fresh.measurement, user.principal_id)
    enc = user.encrypt_request("ehr-model", fresh.measurement, tiny_input)
    try:
        with pytest.raises(InvocationError):
            fresh.infer(enc, user.principal_id, "ehr-model")
    finally:
        env.storage.put("models/ehr-model", original)


def test_response_cannot_be_spoofed(world, tiny_input):
    """The host cannot substitute a fake result for the encrypted output."""
    env, owner, user, semirt = world
    with pytest.raises(ReproError):
        user.decrypt_response(
            "ehr-model", semirt.measurement, b"\x00" * 64
        )


def test_request_cannot_be_replayed_across_models(world, tiny_input, tiny_model):
    """AAD binds the ciphertext to one model id."""
    env, owner, user, semirt = world
    env.deploy(tiny_model, "other-model", owner=owner).grant(user)
    enc_for_a = user.encrypt_request("ehr-model", semirt.measurement, tiny_input)
    # Host redirects the same ciphertext at a different model id.
    with pytest.raises(ReproError):
        semirt.infer(enc_for_a, user.principal_id, "other-model")


def test_revocation_takes_effect_for_new_enclaves(world, tiny_input):
    env, owner, user, semirt = world
    owner.revoke_access("ehr-model", semirt.measurement, user.principal_id)
    try:
        fresh = env.launch_semirt("tvm", node_id="revoked-node")
        enc = user.encrypt_request("ehr-model", fresh.measurement, tiny_input)
        with pytest.raises(AccessDenied):
            fresh.infer(enc, user.principal_id, "ehr-model")
    finally:
        owner.grant_access("ehr-model", semirt.measurement, user.principal_id)


def test_keyservice_impersonation_detected(world):
    """A fake KeyService (non-enclave host) cannot fool a client."""
    env, *_ = world

    class FakeHost:
        def handshake(self, offer_wire):
            # Replays a genuine handshake response captured earlier? It
            # cannot: the response must carry a quote binding the fresh
            # DH key.  The best it can do is answer without a quote.
            from repro.crypto.dh import DHKeyPair
            from repro.sgx.ratls import HandshakeOffer

            keypair = DHKeyPair.generate()
            return {
                "channel_id": 1,
                "server_offer": HandshakeOffer(keypair.public).to_wire(),
            }

        def request(self, channel_id, ciphertext):  # pragma: no cover
            return b""

    from repro.core.client import KeyServiceConnection
    from repro.errors import AttestationError

    with pytest.raises(AttestationError):
        KeyServiceConnection(
            FakeHost(), env.attestation, env.keyservice.measurement, "victim"
        )
