"""Sharded KeyService fleet and model-key rotation."""

import numpy as np
import pytest

from repro.core.client import OwnerClient
from repro.core.deployment import SeSeMIEnvironment
from repro.core.keyfleet import KeyServiceFleet
from repro.core.stages import Stage
from repro.errors import ConfigError
from repro.sgx.attestation import AttestationService


@pytest.fixture(scope="module")
def fleet():
    attestation = AttestationService()
    return attestation, KeyServiceFleet(3, attestation)


def test_fleet_validation():
    with pytest.raises(ConfigError):
        KeyServiceFleet(0, AttestationService())


def test_all_shards_share_identity(fleet):
    _, ks_fleet = fleet
    assert ks_fleet.identical_identities()
    assert ks_fleet.measurement == ks_fleet.shards[0].measurement


def test_shard_placement_deterministic(fleet):
    _, ks_fleet = fleet
    pid = "ab" * 32
    assert ks_fleet.shard_for(pid) is ks_fleet.shard_for(pid)
    assert 0 <= ks_fleet.shard_index_for(pid) < 3


def test_shards_isolate_principals(fleet):
    """A principal registered on one shard is unknown to the others."""
    attestation, ks_fleet = fleet
    owner = OwnerClient("sharded-owner")
    # Register on the shard the fleet assigns for this identity.
    home = ks_fleet.shard_for(owner.identity_key.fingerprint)
    owner.connect(home, attestation, ks_fleet.measurement)
    owner.register()
    others = [s for s in ks_fleet.shards if s is not home]
    # The same op against a different shard fails: unknown identity.
    stranger = OwnerClient("sharded-owner")
    stranger.identity_key = owner.identity_key
    stranger.connect(others[0], attestation, ks_fleet.measurement)
    stranger.principal_id = owner.identity_key.fingerprint
    from repro.crypto.gcm import AESGCM
    from repro.core import wire

    blob = AESGCM(bytes(owner.identity_key)).seal(
        wire.dumps({"model_id": "m", "model_key": b"k" * 16}),
        aad=b"add_model_key",
    )
    reply = stranger.connection.call(
        {"op": "add_model_key", "oid": stranger.principal_id, "blob": blob}
    )
    assert not reply["ok"]


def test_key_rotation_invalidates_stale_keys(tiny_model, tiny_input):
    """After rotation, enclaves must re-fetch; old artifacts are gone."""
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "rotating", owner=owner).grant(user)

    def infer_on(host, model_id):
        enc = user.encrypt_request(model_id, host.measurement, tiny_input)
        return user.decrypt_response(
            model_id, host.measurement,
            host.infer(enc, user.principal_id, model_id),
        )

    before = infer_on(semirt, "rotating")

    owner.rotate_model_key("rotating", tiny_model, env.storage)

    # A fresh enclave fetches the NEW key and serves correctly.
    fresh = env.launch_semirt("tvm", node_id="post-rotation")
    user.add_request_key("rotating", fresh.measurement)
    owner.grant_access("rotating", fresh.measurement, user.principal_id)
    after = infer_on(fresh, "rotating")
    assert np.allclose(before, after, atol=1e-5)

    # The already-warm enclave keeps serving from its cached model copy
    # (hot path) -- rotation does not interrupt in-flight service ...
    still = infer_on(semirt, "rotating")
    assert np.allclose(still, before, atol=1e-5)

    # ... and because the single-pair key cache is evicted together with
    # the model, a reload can never pair the stale key with the new
    # artifact: the enclave re-fetches and decrypts the rotated artifact.
    env.deploy(tiny_model, "other", owner=owner).grant(user)
    infer_on(semirt, "other")  # evicts 'rotating' + keys
    reloaded = infer_on(semirt, "rotating")
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
    assert np.allclose(reloaded, before, atol=1e-5)


def test_shard_assignment_stable_across_fleet_instances():
    """Same fleet size => same placement, even on a different fleet."""
    first = KeyServiceFleet(3, AttestationService())
    second = KeyServiceFleet(3, AttestationService())
    for pid in ("ab" * 32, "01" * 32, "fe" * 32):
        assert first.shard_index_for(pid) == second.shard_index_for(pid)


def test_homes_are_primary_plus_next_shard(fleet):
    _, ks_fleet = fleet
    pid = "ab" * 32
    primary = ks_fleet.shard_index_for(pid)
    assert ks_fleet.homes_for(pid) == [primary, (primary + 1) % 3]


def test_single_shard_fleet_has_one_home():
    lone = KeyServiceFleet(1, AttestationService())
    assert lone.homes_for("ab" * 32) == [lone.shard_index_for("ab" * 32)]


def test_sealed_records_survive_shard_kill_and_restart():
    """Kill/restart of a shard round-trips its stores through sealing."""
    attestation = AttestationService()
    ks_fleet = KeyServiceFleet(2, attestation)
    owner = OwnerClient("sealed-owner")
    home_index = ks_fleet.shard_index_for(owner.identity_key.fingerprint)
    shard = ks_fleet.shards[home_index]
    owner.connect(shard, attestation, ks_fleet.measurement)
    owner.register()
    assert shard.code.registered_principals == 1

    ks_fleet.kill_shard(home_index)
    assert not shard.alive
    with pytest.raises(Exception):
        owner.connection.call({"op": "register", "identity_key": b"x" * 16})

    ks_fleet.restart_shard(home_index)
    assert shard.alive
    # the restarted enclave recovered the sealed stores...
    assert shard.code.registered_principals == 1
    # ...and the owner can re-attest and operate again (old channel died
    # with the enclave, so a fresh connection is required)
    owner.connect(shard, attestation, ks_fleet.measurement)
    reply = owner.connection.call(
        {"op": "register", "identity_key": bytes(owner.identity_key)}
    )
    assert reply["ok"] and reply["id"] == owner.identity_key.fingerprint


def test_sealed_checkpoint_rejected_on_foreign_platform():
    """A checkpoint sealed by shard A cannot restore into shard B."""
    from repro.errors import SealingError

    ks_fleet = KeyServiceFleet(2, AttestationService())
    sealed = ks_fleet.shards[0].snapshot()
    with pytest.raises(SealingError):
        ks_fleet.shards[1].enclave.ecall("EC_RESTORE_STATE", sealed)


def test_failover_endpoint_reroutes_after_primary_death(fleet):
    """Handshakes land on the replica once the primary shard dies."""
    from repro.core.keyfleet import FailoverEndpoint
    from repro.errors import TransportError

    attestation = AttestationService()
    ks_fleet = KeyServiceFleet(2, attestation)
    owner = OwnerClient("failover-owner")
    pid = owner.identity_key.fingerprint
    primary, replica = ks_fleet.homes_for(pid)
    endpoint = FailoverEndpoint(ks_fleet, pid)

    owner.connect(endpoint, attestation, ks_fleet.measurement)
    owner.register()
    assert ks_fleet.shards[primary].code.registered_principals == 1

    ks_fleet.kill_shard(primary)
    # the established channel lived inside the dead enclave
    with pytest.raises(TransportError):
        owner.connection.call({"op": "register", "identity_key": b"x" * 16})
    # a fresh handshake transparently lands on the replica
    owner.connect(endpoint, attestation, ks_fleet.measurement)
    owner.register()
    assert endpoint.failovers == 1
    assert ks_fleet.shards[replica].code.registered_principals == 1


def test_all_homes_down_is_a_transport_error():
    from repro.core.keyfleet import FailoverEndpoint
    from repro.errors import TransportError

    ks_fleet = KeyServiceFleet(2, AttestationService())
    pid = "ab" * 32
    for index in ks_fleet.homes_for(pid):
        ks_fleet.kill_shard(index)
    endpoint = FailoverEndpoint(ks_fleet, pid)
    with pytest.raises(TransportError):
        endpoint.handshake({})
