"""Sharded KeyService fleet and model-key rotation."""

import numpy as np
import pytest

from repro.core.client import OwnerClient
from repro.core.deployment import SeSeMIEnvironment
from repro.core.keyfleet import KeyServiceFleet
from repro.core.stages import Stage
from repro.errors import ConfigError
from repro.sgx.attestation import AttestationService


@pytest.fixture(scope="module")
def fleet():
    attestation = AttestationService()
    return attestation, KeyServiceFleet(3, attestation)


def test_fleet_validation():
    with pytest.raises(ConfigError):
        KeyServiceFleet(0, AttestationService())


def test_all_shards_share_identity(fleet):
    _, ks_fleet = fleet
    assert ks_fleet.identical_identities()
    assert ks_fleet.measurement == ks_fleet.shards[0].measurement


def test_shard_placement_deterministic(fleet):
    _, ks_fleet = fleet
    pid = "ab" * 32
    assert ks_fleet.shard_for(pid) is ks_fleet.shard_for(pid)
    assert 0 <= ks_fleet.shard_index_for(pid) < 3


def test_shards_isolate_principals(fleet):
    """A principal registered on one shard is unknown to the others."""
    attestation, ks_fleet = fleet
    owner = OwnerClient("sharded-owner")
    # Register on the shard the fleet assigns for this identity.
    home = ks_fleet.shard_for(owner.identity_key.fingerprint)
    owner.connect(home, attestation, ks_fleet.measurement)
    owner.register()
    others = [s for s in ks_fleet.shards if s is not home]
    # The same op against a different shard fails: unknown identity.
    stranger = OwnerClient("sharded-owner")
    stranger.identity_key = owner.identity_key
    stranger.connect(others[0], attestation, ks_fleet.measurement)
    stranger.principal_id = owner.identity_key.fingerprint
    from repro.crypto.gcm import AESGCM
    from repro.core import wire

    blob = AESGCM(bytes(owner.identity_key)).seal(
        wire.encode({"model_id": "m", "model_key": b"k" * 16}),
        aad=b"add_model_key",
    )
    reply = stranger.connection.call(
        {"op": "add_model_key", "oid": stranger.principal_id, "blob": blob}
    )
    assert not reply["ok"]


def test_key_rotation_invalidates_stale_keys(tiny_model, tiny_input):
    """After rotation, enclaves must re-fetch; old artifacts are gone."""
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.authorize(owner, user, tiny_model, "rotating", semirt.measurement)
    before = env.infer(user, semirt, "rotating", tiny_input)

    owner.rotate_model_key("rotating", tiny_model, env.storage)

    # A fresh enclave fetches the NEW key and serves correctly.
    fresh = env.launch_semirt("tvm", node_id="post-rotation")
    user.add_request_key("rotating", fresh.measurement)
    owner.grant_access("rotating", fresh.measurement, user.principal_id)
    after = env.infer(user, fresh, "rotating", tiny_input)
    assert np.allclose(before, after, atol=1e-5)

    # The already-warm enclave keeps serving from its cached model copy
    # (hot path) -- rotation does not interrupt in-flight service ...
    still = env.infer(user, semirt, "rotating", tiny_input)
    assert np.allclose(still, before, atol=1e-5)

    # ... and because the single-pair key cache is evicted together with
    # the model, a reload can never pair the stale key with the new
    # artifact: the enclave re-fetches and decrypts the rotated artifact.
    env.authorize(owner, user, tiny_model, "other", semirt.measurement)
    env.infer(user, semirt, "other", tiny_input)  # evicts 'rotating' + keys
    reloaded = env.infer(user, semirt, "rotating", tiny_input)
    assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
    assert np.allclose(reloaded, before, atol=1e-5)
