"""SeSeMIEnvironment wiring and client lifecycle edge cases."""

import numpy as np
import pytest

from repro.core.client import OwnerClient, UserClient
from repro.core.deployment import SeSeMIEnvironment
from repro.errors import SeSeMIError
from repro.mlrt.zoo import build_mobilenet
from repro.sgx.platform import SGX1


@pytest.fixture(scope="module")
def env():
    return SeSeMIEnvironment()


def test_connect_registers_principals(env):
    owner = env.connect_owner("o1")
    assert owner.principal_id == owner.identity_key.fingerprint


def test_worker_platforms_are_cached(env):
    assert env.worker_platform("n1") is env.worker_platform("n1")
    assert env.worker_platform("n1") is not env.worker_platform("n2")


def test_expected_semirt_matches_launched(env):
    semirt = env.launch_semirt("tflm", node_id="match-node")
    assert env.expected_semirt("tflm") == semirt.measurement


def test_sgx1_environment_buildable():
    env1 = SeSeMIEnvironment(hardware=SGX1)
    owner = env1.connect_owner()
    assert owner.principal_id is not None
    assert env1.keyservice_platform.profile is SGX1


def test_unregistered_principal_guards(env):
    owner = OwnerClient("loner")
    with pytest.raises(SeSeMIError):
        owner.register()  # not connected
    user = UserClient("loner")
    handle = env.deploy(build_mobilenet(), "guard-model", owner="o-guard")
    with pytest.raises(SeSeMIError):
        handle.grant(user)  # never registered with KeyService


def test_model_key_requires_deploy_first(env):
    owner = env.connect_owner("o2")
    with pytest.raises(SeSeMIError):
        owner.model_key("never-deployed")


def test_request_key_generated_once(env):
    user = env.connect_user("u2")
    enclave = env.keyservice.measurement  # any measurement works as a slot
    first = user.request_key("m", enclave)
    assert user.request_key("m", enclave) is first


def test_full_flow_on_two_frameworks(env):
    owner = env.connect_owner("o3")
    user = env.connect_user("u3")
    model = build_mobilenet()
    x = np.random.default_rng(0).standard_normal(model.input_spec.shape)
    x = x.astype(np.float32)
    expected = model.run_reference(x).ravel()
    for framework in ("tvm", "tflm"):
        env.deploy(
            model, f"m-{framework}", owner=owner, framework=framework
        ).grant(user)
        with env.session(
            user, f"m-{framework}", framework=framework,
            node_id=f"fw-{framework}",
        ) as session:
            out = session.infer(x)
        assert np.allclose(out, expected, atol=1e-5), framework
