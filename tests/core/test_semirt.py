"""SeMIRT enclave runtime: paths, ECALL surface, isolation builds."""

import numpy as np
import pytest

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import (
    IsolationSettings,
    default_semirt_config,
    expected_semirt_measurement,
)
from repro.core.stages import InvocationKind, Stage
from repro.errors import (
    AccessDenied,
    EnclaveError,
    InvocationError,
    ReproError,
)
from repro.mlrt.zoo import build_densenet


def run_infer(user, semirt, model_id, x):
    """Encrypt, invoke the host directly, decrypt -- the raw request path."""
    enc = user.encrypt_request(model_id, semirt.measurement, x)
    enc_response = semirt.infer(enc, user.principal_id, model_id)
    return user.decrypt_response(model_id, semirt.measurement, enc_response)


@pytest.fixture(scope="module")
def setup(tiny_model):
    env = SeSeMIEnvironment()
    owner = env.connect_owner()
    user = env.connect_user()
    semirt = env.launch_semirt("tvm")
    env.deploy(tiny_model, "model-a", owner=owner).grant(user)
    return env, owner, user, semirt


def make_input(model, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_spec.shape).astype(np.float32)


def test_first_invocation_is_warm_then_hot(setup, tiny_model):
    env, owner, user, semirt = setup
    x = make_input(tiny_model)
    out = run_infer(user, semirt, "model-a", x)
    first_kind = semirt.code.last_plan.kind
    out2 = run_infer(user, semirt, "model-a", x)
    assert semirt.code.last_plan.kind == InvocationKind.HOT
    assert np.allclose(out, out2)
    assert first_kind in (InvocationKind.WARM, InvocationKind.HOT)


def test_inference_matches_plaintext_reference(setup, tiny_model):
    env, owner, user, semirt = setup
    x = make_input(tiny_model, seed=5)
    out = run_infer(user, semirt, "model-a", x)
    assert np.allclose(out, tiny_model.run_reference(x).ravel(), atol=1e-5)


def test_model_switch_takes_warm_path(setup):
    env, owner, user, semirt = setup
    second_model = build_densenet()
    env.deploy(second_model, "model-b", owner=owner).grant(user)
    x = make_input(second_model)
    run_infer(user, semirt, "model-b", x)
    plan = semirt.code.last_plan
    assert plan.kind == InvocationKind.WARM
    assert plan.needs(Stage.MODEL_LOADING)


def test_ecall_surface_is_figure5(setup):
    # The Figure 5 surface plus the extensions: EC_MODEL_INF_BATCH
    # (micro-batching), EC_INVALIDATE_KEYS (revocation/re-grant push for
    # the key memo), and the streaming trio (docs/streaming.md) --
    # EC_MODEL_INF_STREAM / EC_STREAM_STEP / EC_STREAM_CLOSE.  Anything
    # else appearing here is a surface leak.
    _, _, _, semirt = setup
    assert semirt.enclave.exported_ecalls == {
        "EC_MODEL_INF",
        "EC_MODEL_INF_BATCH",
        "EC_MODEL_INF_STREAM",
        "EC_STREAM_STEP",
        "EC_STREAM_CLOSE",
        "EC_GET_OUTPUT",
        "EC_CLEAR_EXEC_CTX",
        "EC_INVALIDATE_KEYS",
    }


def test_output_cleared_after_fetch(setup, tiny_model):
    env, owner, user, semirt = setup
    run_infer(user, semirt, "model-a", make_input(tiny_model))
    # infer() already called EC_CLEAR_EXEC_CTX; no stale context remains
    # and released tickets cannot be replayed.
    assert semirt.code.pending_outputs == 0
    with pytest.raises(EnclaveError, match="no output pending"):
        semirt.enclave.ecall("EC_GET_OUTPUT", 1)


def test_unauthorized_user_denied(setup, tiny_model):
    env, owner, user, semirt = setup
    intruder = env.connect_user("intruder")
    intruder.add_request_key("model-a", semirt.measurement)
    enc = intruder.encrypt_request(
        "model-a", semirt.measurement, make_input(tiny_model)
    )
    with pytest.raises(AccessDenied):
        semirt.infer(enc, intruder.principal_id, "model-a")


def test_request_under_wrong_key_rejected(setup, tiny_model):
    env, owner, user, semirt = setup
    from repro.crypto.gcm import AESGCM
    from repro.crypto.keys import SymmetricKey

    forged = AESGCM(bytes(SymmetricKey.generate())).seal(
        b"whatever", aad=b"sesemi-requestmodel-a"
    )
    with pytest.raises((InvocationError, ReproError)):
        semirt.infer(forged, user.principal_id, "model-a")


def test_tampered_model_artifact_detected(setup, tiny_model):
    env, owner, user, semirt = setup
    blob = bytearray(env.storage.get("models/model-a"))
    blob[len(blob) // 2] ^= 0xFF
    env.storage.put("models/model-a", bytes(blob))
    fresh = env.launch_semirt("tvm", node_id="tamper-node")
    user.add_request_key("model-a", fresh.measurement)
    owner.grant_access("model-a", fresh.measurement, user.principal_id)
    enc = user.encrypt_request("model-a", fresh.measurement, make_input(tiny_model))
    with pytest.raises(InvocationError, match="tampered|authentication"):
        fresh.infer(enc, user.principal_id, "model-a")
    # restore for other tests
    owner.deploy_model(tiny_model, "model-a", env.storage)
    owner.add_model_key("model-a")


def test_measurement_derivable_independently(setup):
    env, _, _, semirt = setup
    derived = expected_semirt_measurement(
        "tvm", env.keyservice.measurement, default_semirt_config()
    )
    assert derived == semirt.measurement


def test_framework_changes_identity(setup):
    env, _, _, semirt = setup
    tflm = expected_semirt_measurement(
        "tflm", env.keyservice.measurement, default_semirt_config()
    )
    assert tflm != semirt.measurement


def test_isolation_settings_change_identity(setup):
    env, _, _, semirt = setup
    strong = expected_semirt_measurement(
        "tvm",
        env.keyservice.measurement,
        default_semirt_config(),
        IsolationSettings.strong(),
    )
    assert strong != semirt.measurement


class TestStrongIsolation:
    @pytest.fixture(scope="class")
    def strong_setup(self, tiny_model):
        env = SeSeMIEnvironment()
        owner = env.connect_owner()
        user = env.connect_user()
        isolation = IsolationSettings.strong(pinned_model="pinned")
        semirt = env.launch_semirt("tvm", isolation=isolation)
        env.deploy(
            tiny_model, "pinned", owner=owner, isolation=isolation
        ).grant(user)
        return env, owner, user, semirt

    def test_pinned_model_enforced(self, strong_setup, tiny_model):
        env, owner, user, semirt = strong_setup
        enc = user.encrypt_request(
            "other-model", semirt.measurement, make_input(tiny_model)
        )
        with pytest.raises(InvocationError, match="pinned"):
            semirt.infer(enc, user.principal_id, "other-model")

    def test_sequential_build_has_single_tcs(self, strong_setup):
        _, _, _, semirt = strong_setup
        assert semirt.enclave.config.tcs_count == 1

    def test_no_hot_path_under_strong_isolation(self, strong_setup, tiny_model):
        env, owner, user, semirt = strong_setup
        x = make_input(tiny_model)
        run_infer(user, semirt, "pinned", x)
        run_infer(user, semirt, "pinned", x)
        # With the key cache and runtime reuse off, there is no HOT path.
        assert semirt.code.last_plan.kind == InvocationKind.WARM
        assert semirt.code.last_plan.needs(Stage.KEY_RETRIEVAL)
        assert semirt.code.last_plan.needs(Stage.RUNTIME_INIT)

    def test_results_still_correct(self, strong_setup, tiny_model):
        env, owner, user, semirt = strong_setup
        x = make_input(tiny_model, seed=9)
        out = run_infer(user, semirt, "pinned", x)
        assert np.allclose(out, tiny_model.run_reference(x).ravel(), atol=1e-5)
