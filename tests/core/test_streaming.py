"""The in-enclave streaming plane: ECALLs, continuous batching, edges.

These tests drive the functional twin's stream plane end-to-end: the
``EC_MODEL_INF_STREAM`` / ``EC_STREAM_STEP`` / ``EC_STREAM_CLOSE``
surface, per-ticket stream contexts (KV caches in the enclave heap),
the continuous batcher (members join and leave a *running* group
between decode steps), the :class:`InferenceStream` cancellation
contract, and the leader-crash fault site (``semirt:batch``).
"""

import time

import pytest

from repro.core.batching import BatchPolicy
from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import (
    MAX_STREAM_TOKENS,
    IsolationSettings,
    SchedulerConfig,
    default_semirt_config,
)
from repro.errors import (
    EnclaveError,
    FaultInjected,
    InvocationError,
    RequestCancelled,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.mlrt.decoder import DecoderSession
from repro.mlrt.zoo import build_tinylm

MODEL_ID = "lm-model"


def _launch(
    model,
    *,
    users=("user",),
    policy=BatchPolicy(batch_window_s=0.05, max_batch=4),
    paced_s=None,
    tcs_count=4,
    injector=None,
):
    """One host serving the tiny decoder-only transformer."""
    env = SeSeMIEnvironment(injector=injector)
    config = default_semirt_config(tcs_count=tcs_count)
    handle = env.deploy(model, MODEL_ID, owner="owner", config=config)
    for name in users:
        handle.grant(name)
    scheduler = SchedulerConfig(
        queue_depth=64, paced_service_s=paced_s, batch=policy
    )
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    return env, host


def _uid(env, name):
    return env.user(name).principal_id


def _seal(env, host, name, prompt, max_new):
    return env.user(name).encrypt_stream_request(
        MODEL_ID, host.measurement, prompt, max_new
    )


def _tokens(env, host, name, frames):
    """Decrypt sealed frames and enforce the index ordering client-side."""
    out = []
    for index, frame in enumerate(frames):
        payload = env.user(name).decrypt_frame(
            MODEL_ID, host.measurement, frame
        )
        assert payload["index"] == index
        out.append(payload["token"])
    return out


def _wait_for(condition, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.01)
    return condition()


# -- correctness: streamed tokens == the reference decode ---------------------------


def test_solo_stream_matches_reference_decode():
    model = build_tinylm(seed=7)
    env, host = _launch(model, policy=None)
    prompt = [3, 1, 4]
    want = DecoderSession(model).generate(prompt, 12)
    stream = host.open_stream(
        _seal(env, host, "user", prompt, 12), _uid(env, "user"), MODEL_ID
    )
    got = _tokens(env, host, "user", stream.result(timeout_s=30))
    assert got == want
    assert stream.done() and not stream.cancelled()
    assert stream.ttft_s is not None and stream.ttft_s >= 0
    assert stream.tokens_per_s is not None and stream.tokens_per_s > 0
    assert _wait_for(lambda: host.code.open_streams == 0)
    host.destroy()


def test_concurrent_streams_share_step_ecalls_and_stay_correct():
    model = build_tinylm(seed=7)
    env, host = _launch(model, paced_s=0.01)
    prompts = [[i + 1, 2, 3] for i in range(4)]
    refs = [DecoderSession(model).generate(p, 10) for p in prompts]
    streams = [
        host.open_stream(
            _seal(env, host, "user", p, 10), _uid(env, "user"), MODEL_ID
        )
        for p in prompts
    ]
    got = [
        _tokens(env, host, "user", s.result(timeout_s=30)) for s in streams
    ]
    assert got == refs  # grouping never changes any stream's tokens
    assert any(size > 1 for _, _, size in host.code.stream_log), (
        "four concurrent same-pair streams never shared a step ECALL"
    )
    assert _wait_for(lambda: host.code.open_streams == 0)
    host.destroy()


def test_stream_joins_a_running_group_mid_decode():
    model = build_tinylm(seed=7)
    env, host = _launch(model, paced_s=0.02)
    first = host.open_stream(
        _seal(env, host, "user", [1, 2, 3], 24), _uid(env, "user"), MODEL_ID
    )
    # let the first stream decode alone for a few steps...
    assert _wait_for(
        lambda: sum(1 for _, _, n in host.code.stream_log if n == 1) >= 2
    )
    # ...then join: the running group must absorb the newcomer without
    # restarting -- subsequent steps advance both streams at once
    second = host.open_stream(
        _seal(env, host, "user", [5, 2, 3], 10), _uid(env, "user"), MODEL_ID
    )
    a = _tokens(env, host, "user", first.result(timeout_s=30))
    b = _tokens(env, host, "user", second.result(timeout_s=30))
    assert a == DecoderSession(model).generate([1, 2, 3], 24)
    assert b == DecoderSession(model).generate([5, 2, 3], 10)
    sizes = [n for _, _, n in host.code.stream_log]
    assert 1 in sizes and 2 in sizes, f"no mid-decode join observed: {sizes}"
    host.destroy()


# -- cancellation -------------------------------------------------------------------


def test_cancel_mid_decode_releases_the_stream_context():
    model = build_tinylm(seed=7)
    env, host = _launch(model, paced_s=0.05, policy=None)
    stream = host.open_stream(
        _seal(env, host, "user", [1, 2, 3], MAX_STREAM_TOKENS),
        _uid(env, "user"),
        MODEL_ID,
    )
    frames = iter(stream)
    next(frames)  # the stream is live: its KV cache pins enclave heap
    assert host.code.open_streams == 1
    assert stream.cancel() is True
    with pytest.raises(RequestCancelled):
        stream.result(timeout_s=30)
    assert stream.done() and stream.cancelled()
    assert stream.cancel() is False  # the outcome is sealed
    # the enclave context -- KV cache included -- must be gone promptly,
    # not at interpreter exit: an abandoned decode never pins the heap
    assert _wait_for(lambda: host.code.open_streams == 0)
    steps_at_cancel = len(host.code.stream_log)
    time.sleep(0.3)
    assert len(host.code.stream_log) <= steps_at_cancel + 2, (
        "the enclave kept decoding long after the cancel"
    )
    host.destroy()


def test_cancelled_member_leaves_the_group_others_finish():
    model = build_tinylm(seed=7)
    env, host = _launch(model, paced_s=0.02)
    keeper = host.open_stream(
        _seal(env, host, "user", [1, 2, 3], 16), _uid(env, "user"), MODEL_ID
    )
    victim = host.open_stream(
        _seal(env, host, "user", [4, 2, 3], 64), _uid(env, "user"), MODEL_ID
    )
    assert _wait_for(lambda: len(host.code.stream_log) >= 2)
    assert victim.cancel() is True
    with pytest.raises(RequestCancelled):
        victim.result(timeout_s=30)
    got = _tokens(env, host, "user", keeper.result(timeout_s=30))
    assert got == DecoderSession(model).generate([1, 2, 3], 16)
    assert _wait_for(lambda: host.code.open_streams == 0)
    host.destroy()


# -- the leader-crash fault site ----------------------------------------------------


class _BatchSiteCrasher(FaultInjector):
    """Crashes only at the ``semirt:batch`` site, never at open."""

    def __init__(self):
        super().__init__(FaultPlan(rates={FaultKind.ENCLAVE_CRASH: 1.0}))
        self.arm()

    def crash_enclave(self, site):
        if site != "semirt:batch":
            return False
        return super().crash_enclave(site)


def test_leader_crash_mid_stream_leaves_no_follower_hung():
    model = build_tinylm(seed=7)
    injector = _BatchSiteCrasher()
    env, host = _launch(model, injector=injector)
    streams = []
    for i in range(4):
        try:
            streams.append(
                host.open_stream(
                    _seal(env, host, "user", [i + 1, 2, 3], 16),
                    _uid(env, "user"),
                    MODEL_ID,
                )
            )
        except EnclaveError:
            break  # the leader already crashed and took the host down
    assert streams, "the crash fired before any stream was admitted"
    # every member and joiner must resolve promptly -- a follower
    # blocked on a dead leader is the bug this test exists for
    for stream in streams:
        with pytest.raises((FaultInjected, EnclaveError)):
            stream.result(timeout_s=30)
    assert all(stream.done() for stream in streams)
    assert not host.enclave.alive
    assert any(record.site == "semirt:batch" for record in injector.records)


# -- in-enclave refusals ------------------------------------------------------------


def test_sequential_build_refuses_co_executing_stream_steps():
    """A sequential build promises no co-execution: the check precedes
    ticket lookup, so even fabricated tickets are refused as a pair."""
    model = build_tinylm(seed=7)
    env = SeSeMIEnvironment()
    isolation = IsolationSettings.strong()
    config = default_semirt_config(tcs_count=1)
    env.deploy(
        model, MODEL_ID, owner="owner", config=config, isolation=isolation
    ).grant("user")
    host = env.launch_semirt("tvm", config=config, isolation=isolation)
    with pytest.raises(InvocationError, match="sequential"):
        host.enclave.ecall("EC_STREAM_STEP", [101, 102])
    with pytest.raises(InvocationError, match="empty stream step"):
        host.enclave.ecall("EC_STREAM_STEP", [])
    host.destroy()


def test_stream_step_refuses_mixed_user_tickets():
    """One step ECALL advances one ``<uid, model>`` pair, never a mix."""
    model = build_tinylm(seed=7)
    env, host = _launch(model, users=("user-a", "user-b"), policy=None)
    tickets = []
    for name in ("user-a", "user-b"):
        ticket, _, done = host.enclave.ecall(
            "EC_MODEL_INF_STREAM",
            _seal(env, host, name, [1, 2, 3], 8),
            _uid(env, name),
            MODEL_ID,
        )
        assert not done
        tickets.append(ticket)
    with pytest.raises(InvocationError, match="single <uid, model_id>"):
        host.enclave.ecall("EC_STREAM_STEP", tickets)
    with pytest.raises(EnclaveError, match="no stream open"):
        host.enclave.ecall("EC_STREAM_STEP", [999])
    for ticket in tickets:
        host.enclave.ecall("EC_STREAM_CLOSE", ticket)
    assert host.code.open_streams == 0
    host.destroy()


def test_stream_contexts_are_capacity_bounded():
    """Open streams pin enclave heap, so their count is bounded by the
    TCS plan; the overflow fails fast instead of thrashing the EPC."""
    model = build_tinylm(seed=7)
    env, host = _launch(model, policy=None, tcs_count=1)
    ticket, _, _ = host.enclave.ecall(
        "EC_MODEL_INF_STREAM",
        _seal(env, host, "user", [1, 2, 3], 8),
        _uid(env, "user"),
        MODEL_ID,
    )
    with pytest.raises(EnclaveError, match="stream contexts are in use"):
        host.enclave.ecall(
            "EC_MODEL_INF_STREAM",
            _seal(env, host, "user", [4, 2, 3], 8),
            _uid(env, "user"),
            MODEL_ID,
        )
    host.enclave.ecall("EC_STREAM_CLOSE", ticket)
    host.enclave.ecall("EC_STREAM_CLOSE", ticket)  # idempotent
    assert host.code.open_streams == 0
    host.destroy()


def test_stream_aad_separates_request_kinds():
    """A one-shot sealed request replayed at the stream ECALL fails AEAD:
    the stream surface has its own AAD, so kind confusion is caught in
    the enclave, not by parsing luck."""
    import numpy as np

    model = build_tinylm(seed=7)
    env, host = _launch(model, policy=None)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    one_shot = env.user("user").encrypt_request(MODEL_ID, host.measurement, x)
    with pytest.raises(InvocationError, match="does not authenticate"):
        host.enclave.ecall(
            "EC_MODEL_INF_STREAM", one_shot, _uid(env, "user"), MODEL_ID
        )
    host.destroy()


def test_token_budget_is_bounded():
    model = build_tinylm(seed=7)
    env, host = _launch(model, policy=None)
    for bad in (0, MAX_STREAM_TOKENS + 1):
        stream = host.open_stream(
            _seal(env, host, "user", [1, 2, 3], bad),
            _uid(env, "user"),
            MODEL_ID,
        )
        with pytest.raises(InvocationError, match="max_new_tokens"):
            stream.result(timeout_s=30)
    assert host.code.open_streams == 0
    host.destroy()


# -- the session tier ---------------------------------------------------------------


def test_session_stream_yields_decrypted_tokens_incrementally():
    model = build_tinylm(seed=7)
    env = SeSeMIEnvironment()
    config = default_semirt_config(tcs_count=2)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    host = env.launch_semirt("tvm", config=config)
    want = DecoderSession(model).generate([2, 7, 1], 9)
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        stream = session.stream([2, 7, 1], 9)
        assert list(stream) == want  # iterating decrypts frame by frame
        assert stream.result(timeout_s=30) == want  # the Future view
        assert stream.done()
    host.destroy()
