"""The Future protocol: one contract, every asynchronous handle.

Runs the structural check (``isinstance(x, Future)``) and the behaviour
contract -- ``result()`` repeatability, ``done()`` as a terminal check,
``cancel()`` returning ``False`` once terminal, ``DeadlineExceeded`` on
expiry -- against live handles from every tier that produces one: the
TCS scheduler (:class:`InferenceFuture`, :class:`InferenceStream`), the
gateway (:class:`GatewaySubmission`, :class:`GatewayStream`), and the
session tier (:class:`SessionFuture`, :class:`SessionStream`).  The
service tier's :class:`RemoteFuture`/:class:`RemoteStream` are checked
structurally here (their live behaviour needs an HTTP world; see
``tests/service``).
"""

import numpy as np
import pytest

from repro.core import Future
from repro.core.deployment import SeSeMIEnvironment, SessionFuture, SessionStream
from repro.core.gateway import GatewayStream, GatewaySubmission
from repro.core.semirt import (
    InferenceFuture,
    InferenceStream,
    SchedulerConfig,
    default_semirt_config,
)
from repro.errors import DeadlineExceeded, RequestCancelled
from repro.mlrt.decoder import DecoderSession
from repro.mlrt.zoo import build_tinylm

MODEL_ID = "m"


@pytest.fixture()
def world():
    """One 2-TCS tinylm host plus an open session over it."""
    env = SeSeMIEnvironment()
    model = build_tinylm(seed=7)
    config = default_semirt_config(tcs_count=2)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    host = env.launch_semirt(
        "tvm", config=config, scheduler=SchedulerConfig(queue_depth=16)
    )
    session = env.session("user", MODEL_ID, config=config, semirt=host)
    with session:
        yield env, model, host, session
    host.destroy()


def _x(model):
    return np.zeros(model.input_spec.shape, dtype=np.float32)


def _handles(env, model, host, session):
    """One live handle of every local tier, freshly submitted."""
    enc = env.user("user").encrypt_request(
        MODEL_ID, host.measurement, _x(model)
    )
    enc_stream = env.user("user").encrypt_stream_request(
        MODEL_ID, host.measurement, [1, 2, 3], 4
    )
    uid = env.user("user").principal_id
    return {
        InferenceFuture: host.submit(enc, uid, MODEL_ID),
        InferenceStream: host.open_stream(enc_stream, uid, MODEL_ID),
        GatewaySubmission: session.gateway.submit(enc, uid, MODEL_ID),
        GatewayStream: session.gateway.open_stream(enc_stream, uid, MODEL_ID),
        SessionFuture: session.submit(_x(model)),
        SessionStream: session.stream([1, 2, 3], 4),
    }


def test_every_handle_satisfies_the_protocol(world):
    handles = _handles(*world)
    for cls, handle in handles.items():
        assert isinstance(handle, cls)
        assert isinstance(handle, Future), cls.__name__
        handle.result(timeout_s=30)


def test_remote_handles_satisfy_the_protocol_structurally():
    from repro.service.client import RemoteFuture, RemoteStream

    for cls in (RemoteFuture, RemoteStream):
        for method in ("result", "done", "cancel", "cancelled"):
            assert callable(getattr(cls, method)), f"{cls.__name__}.{method}"


def test_result_is_repeatable_and_done_is_terminal(world):
    env, model, host, session = world
    for handle in _handles(env, model, host, session).values():
        first = handle.result(timeout_s=30)
        assert handle.done()
        second = handle.result(timeout_s=30)  # the outcome is sealed
        if isinstance(first, np.ndarray):
            assert np.array_equal(first, second)
        else:
            assert first == second
        assert handle.cancel() is False  # too late: already terminal


def test_stream_results_agree_with_the_reference(world):
    env, model, host, session = world
    want = DecoderSession(model).generate([1, 2, 3], 4)
    assert session.stream([1, 2, 3], 4).result(timeout_s=30) == want
    frames = session.gateway.open_stream(
        env.user("user").encrypt_stream_request(
            MODEL_ID, host.measurement, [1, 2, 3], 4
        ),
        env.user("user").principal_id,
        MODEL_ID,
    ).result(timeout_s=30)
    assert len(frames) == 4  # sealed frames; decryption is the session's job


def test_timeout_raises_without_sealing_the_outcome(world):
    env, model, host, session = world
    # a paced solo host makes the deadline deterministic: nothing can
    # finish in 1ms, and the handle must still resolve afterwards
    config = default_semirt_config(tcs_count=1)
    env.deploy(model, "m-slow", owner="owner", config=config).grant("user")
    slow = env.launch_semirt(
        "tvm",
        config=config,
        scheduler=SchedulerConfig(queue_depth=4, paced_service_s=0.2),
    )
    enc = env.user("user").encrypt_request("m-slow", slow.measurement, _x(model))
    future = slow.submit(enc, env.user("user").principal_id, "m-slow")
    with pytest.raises(DeadlineExceeded):
        future.result(timeout_s=0.001)
    assert not future.done()  # expiry is the caller's problem, not the handle's
    future.result(timeout_s=30)
    slow.destroy()


def test_cancelled_handles_raise_request_cancelled(world):
    env, model, host, session = world
    stream = session.stream([1, 2, 3], 256)
    assert stream.cancel() is True
    with pytest.raises(RequestCancelled):
        stream.result(timeout_s=30)
    assert stream.done() and stream.cancelled()
