"""Cost-model calibration anchors (DESIGN.md section 6)."""

import pytest

from repro.core.costs import CostModel
from repro.mlrt.zoo import profile
from repro.serverless.storage import NFS
from repro.sgx.platform import SGX1, SGX2

MB = 1024 * 1024


@pytest.fixture()
def cost():
    return CostModel(hardware=SGX2, storage=NFS)


def test_hot_path_anchor(cost):
    """Hot TVM latencies are the Table II 'Without' row."""
    hot = (
        cost.request_decrypt_s
        + cost.model_exec_s(profile("MBNET"), "tvm")
        + cost.result_encrypt_s
    )
    assert hot == pytest.approx(0.06579 + 0.004, rel=0.01)


def test_cold_to_hot_ratio_anchor(cost):
    """TVM-MBNET cold is ~21x hot (Section VI-A)."""
    prof = profile("MBNET")
    cold = (
        cost.enclave_init_s(prof.tvm_enclave_bytes)
        + cost.key_retrieval_s()
        + cost.model_load_s(prof.model_bytes)
        + cost.model_decrypt_s(prof.model_bytes)
        + cost.runtime_init_s(prof, "tvm")
        + cost.request_decrypt_s
        + cost.model_exec_s(prof, "tvm")
        + cost.result_encrypt_s
    )
    hot = cost.request_decrypt_s + cost.model_exec_s(prof, "tvm") + cost.result_encrypt_s
    assert cold / hot == pytest.approx(21.0, rel=0.15)


def test_cold_to_warm_ratio_anchor(cost):
    """TVM-MBNET warm is ~11x faster than cold (Section VI-A)."""
    prof = profile("MBNET")
    cold = (
        cost.enclave_init_s(prof.tvm_enclave_bytes)
        + cost.key_retrieval_s()
        + cost.model_load_s(prof.model_bytes)
        + cost.model_decrypt_s(prof.model_bytes)
        + cost.runtime_init_s(prof, "tvm")
        + cost.request_decrypt_s
        + cost.model_exec_s(prof, "tvm")
        + cost.result_encrypt_s
    )
    warm = (
        cost.model_load_s(prof.model_bytes)
        + cost.model_decrypt_s(prof.model_bytes)
        + cost.runtime_init_s(prof, "tvm")
        + cost.request_decrypt_s
        + cost.model_exec_s(prof, "tvm")
        + cost.result_encrypt_s
    )
    assert cold / warm == pytest.approx(11.0, rel=0.2)


def test_key_refetch_cheaper_than_full_attestation(cost):
    assert cost.key_retrieval_session_reused_s() < cost.key_retrieval_s() / 4


def test_key_retrieval_grows_with_quote_contention(cost):
    assert cost.key_retrieval_s(16) > cost.key_retrieval_s(1)


def test_epc_slowdown_scales_stage_costs(cost):
    prof = profile("RSNET")
    assert cost.model_exec_s(prof, "tvm", epc_slowdown=2.0) == pytest.approx(
        2 * cost.model_exec_s(prof, "tvm")
    )
    assert cost.model_decrypt_s(prof.model_bytes, 3.0) == pytest.approx(
        3 * cost.model_decrypt_s(prof.model_bytes)
    )


def test_untrusted_paths_skip_sgx_costs(cost):
    prof = profile("DSNET")
    assert cost.untrusted_exec_s(prof, "tvm") == prof.tvm_exec_s
    assert cost.untrusted_model_load_s(prof.model_bytes) == pytest.approx(
        NFS.download_time(prof.model_bytes)
    )


def test_sgx1_key_retrieval_slower(cost):
    sgx1_cost = CostModel(hardware=SGX1, storage=NFS)
    assert sgx1_cost.key_retrieval_s() > cost.key_retrieval_s()
