"""InferenceGateway unit behaviour, driven over scripted stub hosts.

The stubs implement just the host surface the gateway touches
(``submit``/ticket ``result``, ``enclave.alive``, ``destroy``), so each
test scripts exact endpoint behaviour -- full queues, crashes at
admission, crashes mid-serve -- and asserts the routing consequence.
"""

import pytest

from repro.core.gateway import GatewayConfig, InferenceGateway
from repro.errors import EnclaveError, QueueFull, RoutingError
from repro.faults.resilience import BreakerPolicy
from repro.obs.span import LogicalClock
from repro.obs.tracer import Tracer
from repro.routing import FnPool, ScaleOutPolicy

MODELS = ("m0", "m1")


class _FakeEnclave:
    def __init__(self):
        self.alive = True


class _FakeTicket:
    def __init__(self, outcome):
        self._outcome = outcome

    def result(self, timeout_s=None):
        if isinstance(self._outcome, Exception):
            raise self._outcome
        return self._outcome


class _FakeHost:
    """Scripted host: ``plan`` is a list of per-submit behaviours.

    Each entry is ``bytes`` (the reply), an exception instance to raise
    at submit, or ``("result", exc)`` to fail at result time.  When the
    plan runs out the host echoes the request.
    """

    def __init__(self, name, plan=None):
        self.name = name
        self.enclave = _FakeEnclave()
        self.plan = list(plan or [])
        self.submits = 0

    def submit(self, enc_request, uid, model_id):
        self.submits += 1
        step = self.plan.pop(0) if self.plan else enc_request
        if isinstance(step, Exception):
            if isinstance(step, EnclaveError):
                self.enclave.alive = False
            raise step
        if isinstance(step, tuple) and step[0] == "result":
            exc = step[1]
            if isinstance(exc, EnclaveError):
                self.enclave.alive = False
            return _FakeTicket(exc)
        return _FakeTicket(step)

    def destroy(self):
        self.enclave.alive = False


def make_gateway(plans, num_endpoints=2, models=MODELS, **config_kwargs):
    """A gateway over fake hosts; ``plans`` maps endpoint -> script."""
    pool = FnPool(
        name="p", models=models, memory_budget=0, num_endpoints=num_endpoints
    )
    launched = []

    def launcher(endpoint):
        # pop: a relaunched endpoint starts fresh (plan already consumed)
        host = _FakeHost(endpoint, plans.pop(endpoint, None))
        launched.append(endpoint)
        return host

    tracer = Tracer(service="test", clock=LogicalClock())
    gw = InferenceGateway(
        pool, launcher, config=GatewayConfig(**config_kwargs), tracer=tracer
    )
    gw.launched = launched
    return gw


def test_dispatch_launches_lazily_and_serves():
    gw = make_gateway({})
    reply = gw.dispatch(b"x", "u", "m0")
    assert reply.output == b"x"
    assert reply.decision.cold and reply.decision.reroutes == 0
    assert gw.launched == ["p-ep0"]
    # a second request reuses the warm endpoint: no new launch
    reply = gw.dispatch(b"y", "u", "m0")
    assert not reply.decision.cold
    assert gw.launched == ["p-ep0"]
    assert gw.in_flight == 0


def test_queue_full_reroutes_instead_of_retrying():
    """Backpressure excludes the endpoint; the queue is never re-entered."""
    gw = make_gateway({"p-ep0": [b"ok", QueueFull("full")]})
    gw.dispatch(b"warm", "u", "m0")  # pins m0's warm endpoint to ep0
    reply = gw.dispatch(b"x", "u", "m0")
    assert reply.output == b"x"
    assert reply.decision.endpoint == "p-ep1"
    assert reply.decision.reroutes == 1
    # ep0 saw exactly two submits (warm + the rejected one) -- the
    # gateway did not hammer the full queue.
    assert gw.host("p-ep0").submits == 2


def test_queue_full_everywhere_surfaces_to_caller():
    gw = make_gateway(
        {"p-ep0": [QueueFull("full")], "p-ep1": [QueueFull("full")]}
    )
    with pytest.raises(QueueFull):
        gw.dispatch(b"x", "u", "m0")
    assert gw.in_flight == 0


def test_crash_at_admission_redispatches():
    gw = make_gateway({"p-ep0": [EnclaveError("boom")]})
    reply = gw.dispatch(b"x", "u", "m0")
    assert reply.output == b"x"
    assert reply.decision.redispatches == 1
    assert reply.decision.endpoint == "p-ep1"
    # the dead endpoint is out of rotation for the next request
    reply = gw.dispatch(b"y", "u", "m1")
    assert reply.decision.endpoint == "p-ep1"


def test_crash_mid_serve_redispatches_and_frees_slots():
    gw = make_gateway({"p-ep0": [("result", EnclaveError("died"))]})
    reply = gw.dispatch(b"x", "u", "m0")
    assert reply.output == b"x"
    assert reply.decision.redispatches == 1
    assert gw.in_flight == 0  # the failed attempt's slot was released


def test_degenerate_single_endpoint_surfaces_crash_then_relaunches():
    """The session contract: no redispatch, relaunch cold next time."""
    gw = make_gateway(
        {"p-ep0": [("result", EnclaveError("died"))]},
        num_endpoints=1,
        redispatch_on_crash=False,
    )
    with pytest.raises(EnclaveError):
        gw.dispatch(b"x", "u", "m0")
    # next dispatch relaunches the endpoint in place (cold)
    reply = gw.dispatch(b"y", "u", "m0")
    assert reply.output == b"y"
    assert reply.decision.cold
    assert gw.launched == ["p-ep0", "p-ep0"]


def test_sustained_pressure_scales_out():
    gw = make_gateway(
        {
            "p-ep0": [QueueFull("full")] * 9,
            "p-ep1": [QueueFull("full")] * 9,
        },
        scale_out=ScaleOutPolicy(threshold=2, max_endpoints=3),
    )
    with pytest.raises(QueueFull):
        gw.dispatch(b"a", "u", "m0")  # pressure 1: no growth yet
    reply = gw.dispatch(b"b", "u", "m0")  # pressure 2: spawns p-ep2
    assert reply.output == b"b"
    assert reply.decision.endpoint == "p-ep2"
    assert gw.endpoint_count == 3


def test_breaker_opens_and_excludes_endpoint():
    gw = make_gateway(
        {"p-ep0": [("result", ValueError("bad")), ("result", ValueError("bad"))]},
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=1000.0),
        redispatch_on_crash=False,
    )
    for _ in range(2):  # ValueError is not redispatchable: it surfaces
        with pytest.raises(ValueError):
            gw.dispatch(b"x", "u", "m0")
    # two failures opened ep0's breaker; traffic silently avoids it
    reply = gw.dispatch(b"y", "u", "m0")
    assert reply.decision.endpoint == "p-ep1"
    assert reply.decision.reroutes == 1


def test_drain_then_retire_destroys_owned_host():
    gw = make_gateway({})
    gw.dispatch(b"x", "u", "m0")
    victim = "p-ep0"
    host = gw.host(victim)
    gw.retire(victim, timeout_s=1.0)
    assert not host.enclave.alive
    assert victim not in dict(gw.router.endpoints())
    # traffic continues on the remaining endpoint
    assert gw.dispatch(b"y", "u", "m0").decision.endpoint == "p-ep1"


def test_attached_host_is_used_but_never_destroyed():
    gw = make_gateway({}, num_endpoints=1)
    shared = _FakeHost("external")
    gw.attach("p-ep0", shared)
    reply = gw.dispatch(b"x", "u", "m0")
    assert not reply.decision.cold
    assert shared.submits == 1
    gw.close()
    assert shared.enclave.alive  # attached, not owned
    with pytest.raises(RoutingError):
        gw.attach("nope", shared)


def test_route_spans_carry_decision_attributes():
    gw = make_gateway({"p-ep0": [QueueFull("full")]})
    gw.dispatch(b"w", "u", "m0")  # ep0 full on arrival: rerouted to ep1
    gw.dispatch(b"x", "u", "m0")  # warm path, no reroute
    spans = [s for s in gw.tracer.finished_spans() if s.name == "route"]
    assert len(spans) == 2
    attrs = spans[0].attributes
    assert attrs["endpoint"] == "p-ep1"
    assert attrs["reroutes"] == 1 and attrs["cold"]
    assert "exclusive" in attrs and "model_id" in attrs
    assert spans[1].attributes["reroutes"] == 0
