"""FnPacker routing logic and the One-to-one / All-in-one baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fnpacker import (
    AllInOneRouter,
    FnPackerRouter,
    FnPool,
    OneToOneRouter,
)
from repro.errors import ConfigError, RoutingError

MODELS = ("m0", "m1", "m2")


def make_pool(**kwargs):
    return FnPool(name="pool", models=MODELS, memory_budget=256, **kwargs)


def test_pool_validation():
    with pytest.raises(ConfigError):
        FnPool(name="p", models=(), memory_budget=1)
    with pytest.raises(ConfigError):
        FnPool(name="p", models=("a", "a"), memory_budget=1)


def test_pool_default_endpoint_count():
    assert make_pool().endpoint_count == len(MODELS)
    assert make_pool(num_endpoints=2).endpoint_count == 2


def test_fnpacker_deploys_shared_endpoints():
    router = FnPackerRouter(make_pool())
    endpoints = router.endpoints()
    assert len(endpoints) == 3
    for _, servable in endpoints:
        assert servable == MODELS


def test_unknown_model_rejected():
    router = FnPackerRouter(make_pool())
    with pytest.raises(RoutingError):
        router.route("ghost", now=0.0)


def test_pending_model_pins_endpoint():
    """Rule 1: a model with pending responses keeps its endpoint, exclusively."""
    router = FnPackerRouter(make_pool())
    ep = router.route("m0", now=0.0)
    router.on_dispatch(ep, "m0", now=0.0)
    assert router.route("m0", now=0.1) == ep
    assert router.exclusive_assignments()[ep] == "m0"


def test_other_model_avoids_exclusive_endpoint():
    router = FnPackerRouter(make_pool())
    ep0 = router.route("m0", now=0.0)
    router.on_dispatch(ep0, "m0", now=0.0)
    router.route("m0", now=0.1)  # marks exclusive
    ep1 = router.route("m1", now=0.2)
    assert ep1 != ep0


def test_idle_exclusive_endpoint_reclaimed():
    """Rule 2b: exclusivity lapses after the idle interval."""
    router = FnPackerRouter(make_pool(num_endpoints=1), idle_interval_s=5.0)
    only = router.endpoints()[0][0]
    router.on_dispatch(only, "m0", now=0.0)
    router.route("m0", now=0.1)
    router.on_complete(only, "m0", now=1.0)
    # Before the interval another model falls back to least-pending.
    assert router.route("m1", now=2.0) == only  # fallback (single endpoint)
    # After the interval the endpoint is legitimately not-busy.
    assert router.route("m1", now=10.0) == only


def test_infrequent_models_share_one_endpoint():
    """The packing effect: session models reuse the same warm endpoint."""
    router = FnPackerRouter(make_pool(), idle_interval_s=10.0)
    # m0 and m1 are busy on their endpoints.
    for model in ("m0", "m1"):
        ep = router.route(model, now=0.0)
        router.on_dispatch(ep, model, now=0.0)
    # A sequential session over m2 then (after completion) m2 again:
    first = router.route("m2", now=1.0)
    router.on_dispatch(first, "m2", now=1.0)
    router.on_complete(first, "m2", now=2.0)
    again = router.route("m2", now=3.0)
    assert again == first  # warm endpoint reused


def test_multi_slot_burst_stays_on_one_endpoint():
    """A same-model burst packs onto one multi-slot endpoint (Rule 1)."""
    router = FnPackerRouter(make_pool(), slots_per_endpoint=4)
    first = router.route("m0", now=0.0)
    router.on_dispatch(first, "m0", now=0.0)
    for _ in range(3):
        ep = router.route("m0", now=0.1)
        assert ep == first
        router.on_dispatch(ep, "m0", now=0.1)


def test_slots_per_endpoint_validated():
    with pytest.raises(ConfigError):
        FnPackerRouter(make_pool(), slots_per_endpoint=0)


def test_completion_without_dispatch_rejected():
    router = FnPackerRouter(make_pool())
    ep = router.endpoints()[0][0]
    with pytest.raises(RoutingError):
        router.on_complete(ep, "m0", now=0.0)


def test_one_to_one_router():
    router = OneToOneRouter(make_pool())
    endpoints = dict(router.endpoints())
    assert len(endpoints) == 3
    assert router.route("m0", 0.0) != router.route("m1", 0.0)
    assert router.route("m0", 0.0) == router.route("m0", 99.0)
    with pytest.raises(RoutingError):
        router.route("ghost", 0.0)


def test_all_in_one_router():
    router = AllInOneRouter(make_pool())
    assert len(router.endpoints()) == 1
    assert router.route("m0", 0.0) == router.route("m1", 0.0)
    with pytest.raises(RoutingError):
        router.route("ghost", 0.0)


@settings(max_examples=50, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.sampled_from(MODELS), st.floats(0.0, 100.0)),
        max_size=40,
    )
)
def test_dispatch_complete_conservation_property(events):
    """Pending counters stay consistent under any dispatch/complete trace."""
    router = FnPackerRouter(make_pool())
    in_flight = []
    now = 0.0
    for model, delay in events:
        now += delay
        endpoint = router.route(model, now)
        router.on_dispatch(endpoint, model, now)
        in_flight.append((endpoint, model))
        if len(in_flight) >= 3:
            done_ep, done_model = in_flight.pop(0)
            router.on_complete(done_ep, done_model, now)
    # Drain everything; counters must return to zero without error.
    for endpoint, model in in_flight:
        router.on_complete(endpoint, model, now)
    for state in router._endpoints.values():
        assert state.pending == 0
    assert all(v == 0 for v in router._model_pending.values())


def test_dead_endpoint_receives_no_traffic():
    """Routing skips unhealthy invokers, even for pinned models."""
    router = FnPackerRouter(make_pool())
    first = router.route("m0", now=0.0)
    router.on_dispatch(first, "m0", now=0.0)
    router.mark_endpoint_down(first)
    rerouted = router.route("m0", now=1.0)
    assert rerouted != first
    # the pin died with the invoker: pending/exclusivity were cleared
    assert first not in router.exclusive_assignments()


def test_recovered_endpoint_returns_to_rotation():
    router = FnPackerRouter(make_pool(num_endpoints=1))
    (only,) = [name for name, _ in router.endpoints()]
    router.mark_endpoint_down(only)
    with pytest.raises(RoutingError):
        router.route("m0", now=0.0)
    router.mark_endpoint_up(only)
    assert router.route("m0", now=0.0) == only


def test_all_endpoints_down_is_a_routing_error():
    router = FnPackerRouter(make_pool())
    for name, _ in router.endpoints():
        router.mark_endpoint_down(name)
    with pytest.raises(RoutingError):
        router.route("m1", now=0.0)
