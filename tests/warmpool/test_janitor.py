"""The scale-to-zero janitor: expiry, the min_warm floor, debounce."""

import pytest

from repro.errors import ConfigError
from repro.warmpool import Janitor, JanitorPolicy, WarmEndpoint


def ep(name, idle_since):
    return WarmEndpoint(name=name, idle_since=idle_since, launched_at=0.0)


def test_policy_validates():
    with pytest.raises(ConfigError):
        JanitorPolicy(keep_alive_s=-1.0)
    with pytest.raises(ConfigError):
        JanitorPolicy(min_warm=-1)
    with pytest.raises(ConfigError):
        JanitorPolicy(sweep_interval_s=0.0)


def test_due_debounces_sweeps():
    janitor = Janitor(JanitorPolicy(sweep_interval_s=5.0))
    assert janitor.due(0.0)  # first sweep is always due
    janitor.sweep(0.0, [], fleet_size=0)
    assert not janitor.due(4.9)
    assert janitor.due(5.0)


def test_sweep_retires_idle_past_keep_alive_oldest_first():
    janitor = Janitor(JanitorPolicy(keep_alive_s=30.0, min_warm=0))
    idle = [ep("young", 80.0), ep("old", 10.0), ep("mid", 50.0)]
    # at t=100: old idle 90s, mid idle 50s, young idle 20s (survives)
    assert janitor.sweep(100.0, idle, fleet_size=3) == ["old", "mid"]


def test_min_warm_floor_counts_the_whole_fleet():
    janitor = Janitor(JanitorPolicy(keep_alive_s=0.0, min_warm=2))
    idle = [ep("a", 0.0), ep("b", 0.0)]
    # two idle + two busy endpoints: the busy pair already covers the
    # floor, so both idle ones are retirable
    assert janitor.sweep(100.0, idle, fleet_size=4) == ["a", "b"]
    # fleet of exactly min_warm: nothing retirable however idle
    assert janitor.sweep(200.0, idle, fleet_size=2) == []


def test_zero_keep_alive_retires_on_the_first_sweep():
    janitor = Janitor(JanitorPolicy(keep_alive_s=0.0, min_warm=0))
    assert janitor.sweep(5.0, [ep("a", 5.0)], fleet_size=1) == ["a"]


def test_sweep_counter_tracks_every_sweep():
    janitor = Janitor(JanitorPolicy())
    for t in (0.0, 1.0, 2.0):
        janitor.sweep(t, [], fleet_size=0)
    assert janitor.sweeps == 3
