"""The determinism gate: seeded traces produce byte-identical logs."""

from repro.experiments import warmpool
from repro.warmpool import PredictorPolicy, WarmPoolConfig, WarmPoolManager


def drive(manager):
    """A fixed event trace exercising every decision-log line kind."""
    manager.on_launch("ep0", 0.0, cold_start_s=1.5)
    manager.on_dispatch("ep0", "m0", 0.0, launched=True)
    manager.on_complete("ep0", "m0", 1.0)
    manager.on_dispatch("ep0", "m0", 2.0)
    manager.on_complete("ep0", "m0", 2.5)
    manager.on_launch("ep1", 3.0, prewarmed=True)
    manager.on_dispatch("ep1", "m1", 3.5)
    manager.on_failure("ep1", "m1", 4.0)
    manager.prewarm_count(5.0)
    for victim in manager.sweep(60.0):
        manager.on_retire(victim, 60.0)
    manager.on_down("ep0", 70.0)
    return manager.log_text()


def test_replayed_trace_produces_an_identical_log():
    config = WarmPoolConfig(
        keep_alive_s=10.0, min_warm=0, predictive=True,
        predictor=PredictorPolicy(service_time_s=0.5),
    )
    first = drive(WarmPoolManager(config))
    second = drive(WarmPoolManager(config))
    assert first == second
    assert first  # the trace actually logged something


def test_seeded_simulation_log_is_byte_identical():
    # the same check CI's cmp gate runs, on a short trace
    first = warmpool.decision_log_for(duration_s=20.0, seed=11)
    second = warmpool.decision_log_for(duration_s=20.0, seed=11)
    assert first == second
    assert first.count("\n") > 10
    # a different seed must actually change the trace
    assert warmpool.decision_log_for(duration_s=20.0, seed=12) != first
