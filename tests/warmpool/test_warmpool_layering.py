"""The layering gate: repro.warmpool stays twin-agnostic."""

import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "check_layering.py"
WARMPOOL = REPO / "src" / "repro" / "warmpool"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_warmpool_is_a_checked_package():
    checker = _load_checker()
    assert "warmpool" in checker.PACKAGES
    assert "repro.routing" in checker.PACKAGES["warmpool"]


def test_warmpool_package_passes_its_gate():
    checker = _load_checker()
    assert checker.check(WARMPOOL, checker.PACKAGES["warmpool"]) == []


def test_gate_rejects_a_core_import_from_warmpool(tmp_path):
    # simulate a warmpool module reaching into the functional twin
    bad = tmp_path / "warmpool" / "hooks.py"
    bad.parent.mkdir()
    bad.write_text(
        "from repro.core.gateway import InferenceGateway\n"
        "from repro.routing import ScaleOutPolicy\n"
    )
    checker = _load_checker()
    violations = checker.check(
        tmp_path / "warmpool", checker.PACKAGES["warmpool"]
    )
    assert len(violations) == 1
    assert "repro.core.gateway" in violations[0]


def test_gate_allows_routing_types_in_warmpool(tmp_path):
    good = tmp_path / "warmpool" / "ok.py"
    good.parent.mkdir()
    good.write_text(
        "import threading\n"
        "from repro.errors import ConfigError\n"
        "from repro.routing import PressureTracker\n"
        "from repro.warmpool.strategy import WarmEndpoint\n"
        "from . import janitor\n"
    )
    checker = _load_checker()
    assert checker.check(tmp_path / "warmpool", checker.PACKAGES["warmpool"]) == []
