"""EWMA rate estimation and the Little's-law warm-fleet target."""

import pytest

from repro.errors import ConfigError
from repro.warmpool import EwmaRate, PredictorPolicy, Prewarmer


def test_policy_validates():
    with pytest.raises(ConfigError):
        PredictorPolicy(alpha=0.0)
    with pytest.raises(ConfigError):
        PredictorPolicy(alpha=1.5)
    with pytest.raises(ConfigError):
        PredictorPolicy(service_time_s=0.0)
    with pytest.raises(ConfigError):
        PredictorPolicy(slots_per_endpoint=0)
    with pytest.raises(ConfigError):
        PredictorPolicy(headroom=0.0)
    with pytest.raises(ConfigError):
        PredictorPolicy(min_samples=0)
    with pytest.raises(ConfigError):
        PredictorPolicy(floor_concurrency=-0.1)


def test_rate_is_zero_before_two_arrivals():
    estimator = EwmaRate(alpha=0.3)
    assert estimator.rate(0.0) == 0.0
    estimator.observe(0.0)
    assert estimator.rate(0.0) == 0.0  # one arrival: no gap yet


def test_steady_stream_converges_to_its_rate():
    estimator = EwmaRate(alpha=0.3)
    for i in range(20):
        estimator.observe(i * 0.5)  # 2 arrivals/s
    assert estimator.rate(9.5) == pytest.approx(2.0)


def test_rate_decays_while_the_stream_is_quiet():
    estimator = EwmaRate(alpha=0.3)
    for i in range(20):
        estimator.observe(i * 0.5)
    at_peak = estimator.rate(9.5)
    # 100 quiet seconds: the current gap dominates the learned interval
    assert estimator.rate(109.5) == pytest.approx(0.01)
    assert estimator.rate(109.5) < at_peak


def test_rates_hides_models_below_min_samples():
    prewarmer = Prewarmer(PredictorPolicy(min_samples=2))
    prewarmer.on_dispatch("m0", 0.0)
    assert prewarmer.rates(1.0) == {}
    prewarmer.on_dispatch("m0", 1.0)
    assert "m0" in prewarmer.rates(1.0)


def test_desired_warm_applies_littles_law():
    policy = PredictorPolicy(
        service_time_s=1.0, headroom=1.0, slots_per_endpoint=1, min_samples=2
    )
    prewarmer = Prewarmer(policy)
    for i in range(40):
        prewarmer.on_dispatch("m0", i * 0.25)  # 4 arrivals/s
    # rate 4/s x 1s service = concurrency 4 -> 4 endpoints
    assert prewarmer.desired_warm(39 * 0.25) == 4


def test_desired_warm_decays_to_zero_when_quiet():
    # floor_concurrency turns a ceil-to-1-forever tail into true
    # scale-to-zero once the predicted concurrency is negligible
    policy = PredictorPolicy(service_time_s=0.1, headroom=1.0)
    prewarmer = Prewarmer(policy)
    for i in range(20):
        prewarmer.on_dispatch("m0", i * 0.1)  # 10/s x 0.1s = 1 slot busy
    assert prewarmer.desired_warm(1.9) >= 1
    assert prewarmer.desired_warm(1.9 + 3600.0) == 0


def test_measured_service_time_overrides_the_seed():
    prewarmer = Prewarmer(PredictorPolicy(service_time_s=0.5))
    assert prewarmer.service_time_s == 0.5
    prewarmer.on_service_time(2.0)
    assert prewarmer.service_time_s == 2.0
    prewarmer.on_service_time(-1.0)  # ignored
    assert prewarmer.service_time_s == 2.0
