"""Warm-instance strategies: deterministic picks over idle snapshots."""

import pytest

from repro.errors import ConfigError
from repro.warmpool import (
    AffinityStrategy,
    LCSStrategy,
    MRUStrategy,
    STRATEGIES,
    WarmEndpoint,
    make_strategy,
)


def ep(name, idle_since, last_model=None):
    return WarmEndpoint(
        name=name, idle_since=idle_since, launched_at=0.0, last_model=last_model
    )


def test_empty_candidates_select_nothing():
    for name in STRATEGIES:
        assert make_strategy(name).select((), "m0", now=10.0) is None


def test_lcs_reuses_the_oldest_idle():
    pool = (ep("a", 5.0), ep("b", 1.0), ep("c", 3.0))
    assert LCSStrategy().select(pool, "m0", now=10.0).name == "b"


def test_mru_reuses_the_newest_idle():
    pool = (ep("a", 5.0), ep("b", 1.0), ep("c", 3.0))
    assert MRUStrategy().select(pool, "m0", now=10.0).name == "a"


def test_ties_break_on_name_for_both_orders():
    # same idle_since everywhere: both strategies must pick the
    # lexicographically first name, so replays are deterministic
    pool = (ep("z", 2.0), ep("a", 2.0), ep("m", 2.0))
    assert LCSStrategy().select(pool, "m0", now=10.0).name == "a"
    assert MRUStrategy().select(pool, "m0", now=10.0).name == "a"


def test_affinity_prefers_the_models_warm_subpool():
    pool = (
        ep("cold-runtime", 0.0, last_model="m1"),
        ep("hot-old", 1.0, last_model="m0"),
        ep("hot-new", 5.0, last_model="m0"),
    )
    choice = AffinityStrategy().select(pool, "m0", now=10.0)
    # affine sub-pool first, LCS (oldest-idle) within it
    assert choice.name == "hot-old"


def test_affinity_spends_used_before_fresh():
    # a fresh pre-warmed endpoint (last_model None) is kept in reserve:
    # switching a used endpoint's runtime costs the same, and the fresh
    # one stays free for the model the predictor launched it for
    pool = (ep("fresh", 0.0, last_model=None), ep("used", 5.0, last_model="m1"))
    assert AffinityStrategy().select(pool, "m0", now=10.0).name == "used"
    # only fresh endpoints left: use one
    pool = (ep("fresh", 0.0, last_model=None),)
    assert AffinityStrategy().select(pool, "m0", now=10.0).name == "fresh"


def test_affinity_base_strategy_orders_the_subpool():
    pool = (ep("old", 1.0, last_model="m0"), ep("new", 5.0, last_model="m0"))
    mru_affinity = make_strategy("affinity", base="mru")
    assert mru_affinity.select(pool, "m0", now=10.0).name == "new"


def test_make_strategy_rejects_unknown_names():
    with pytest.raises(ConfigError):
        make_strategy("fifo")
    with pytest.raises(ConfigError):
        make_strategy("affinity", base="affinity")
