"""WarmPoolManager: classification, pooling, sweeps, pre-warm sizing."""

import pytest

from repro.errors import ConfigError
from repro.routing import ScaleOutPolicy
from repro.warmpool import WarmPoolConfig, WarmPoolManager


def make_manager(**kwargs):
    return WarmPoolManager(WarmPoolConfig(**kwargs))


def test_config_validates():
    with pytest.raises(ConfigError):
        WarmPoolConfig(max_endpoints=0)
    with pytest.raises(ConfigError):
        WarmPoolConfig(min_warm=9, max_endpoints=8)
    with pytest.raises(ConfigError):
        WarmPoolConfig(log_capacity=0)
    with pytest.raises(ConfigError):
        WarmPoolConfig(strategy="fifo")


def test_dispatch_temperatures_cold_then_hot_then_warm():
    manager = make_manager()
    manager.on_launch("ep0", 0.0, cold_start_s=1.5)
    assert manager.on_dispatch("ep0", "m0", 0.0, launched=True) == "cold"
    manager.on_complete("ep0", "m0", 1.0)
    # same model on a live runtime: hot
    assert manager.on_dispatch("ep0", "m0", 2.0) == "hot"
    manager.on_complete("ep0", "m0", 3.0)
    # model switch on a live runtime: warm
    assert manager.on_dispatch("ep0", "m1", 4.0) == "warm"
    manager.on_complete("ep0", "m1", 5.0)
    counters = manager.counters()
    assert (counters["cold"], counters["warm"], counters["hot"]) == (1, 1, 1)
    assert manager.cold_start_ratio() == pytest.approx(1 / 3)


def test_dispatch_auto_registers_unknown_endpoints():
    manager = make_manager()
    assert manager.on_dispatch("stray", "m0", 1.0) == "warm"
    assert manager.fleet_size == 1


def test_suggest_skips_busy_endpoints():
    manager = make_manager()
    manager.on_launch("ep0", 0.0)
    manager.on_launch("ep1", 1.0)
    manager.on_dispatch("ep0", "m0", 2.0)  # ep0 now busy
    assert manager.suggest("m0", 3.0) == "ep1"
    manager.on_dispatch("ep1", "m0", 3.0)
    assert manager.suggest("m0", 4.0) is None


def test_failure_releases_the_slot_without_a_service_sample():
    manager = make_manager(predictive=True)
    manager.on_launch("ep0", 0.0)
    manager.on_dispatch("ep0", "m0", 1.0)
    manager.on_failure("ep0", "m0", 2.0)
    assert manager.suggest("m0", 3.0) == "ep0"  # idle again
    # a failed request must not pollute the measured service time
    assert manager.prewarmer.service_time_s == (
        manager.config.predictor.service_time_s
    )


def test_sweep_spares_pinned_and_busy_endpoints():
    manager = make_manager(keep_alive_s=0.0, min_warm=0, sweep_interval_s=1.0)
    manager.on_launch("idle", 0.0)
    manager.on_launch("busy", 0.0)
    manager.on_launch("attached", 0.0, pinned=True)
    manager.on_dispatch("busy", "m0", 0.5)
    assert manager.sweep(100.0) == ["idle"]
    manager.on_retire("idle", 100.0)
    assert manager.counters()["janitor_retired"] == 1
    # unpinning makes the attached endpoint retirable after all
    manager.unpin("attached")
    assert manager.sweep(200.0) == ["attached"]


def test_prewarm_count_respects_floor_cap_and_live_fleet():
    manager = make_manager(predictive=True, min_warm=2, max_endpoints=3)
    # no traffic: the predictor wants 0 but min_warm floors it at 2
    assert manager.prewarm_count(0.0) == 2
    manager.on_launch("ep0", 0.0)
    assert manager.prewarm_count(1.0) == 1
    # heavy traffic: the Little's-law target is capped at max_endpoints
    for i in range(100):
        manager.on_dispatch("ep0", "m0", 1.0 + i * 0.01)
    assert manager.prewarm_count(2.0) == 2  # 3 cap - 1 live
    assert manager.prewarm_count(2.0) <= manager.config.max_endpoints


def test_prewarm_count_is_zero_without_the_predictor():
    manager = make_manager(predictive=False)
    assert manager.prewarm_count(0.0) == 0


def test_reactive_scale_out_shares_the_decision_log():
    manager = make_manager(scale_out=ScaleOutPolicy(threshold=2))
    assert not manager.on_pressure(True, fleet_size=1)
    assert manager.on_pressure(True, fleet_size=1)  # threshold reached
    assert manager.counters()["scale_out"] == 1
    assert any(line.startswith("scale_out") for line in manager.decision_log())


def test_on_pressure_is_inert_without_a_policy():
    manager = make_manager()
    assert not manager.on_pressure(True, fleet_size=1)


def test_stats_reports_the_pool_shape():
    manager = make_manager(predictive=True)
    manager.on_launch("ep0", 0.0, cold_start_s=2.0, prewarmed=True)
    manager.on_dispatch("ep0", "m0", 1.0)
    manager.on_complete("ep0", "m0", 2.0)
    stats = manager.stats(now=5.0)
    assert stats["strategy"] == "lcs"
    assert stats["predictive"] is True
    ep0 = stats["endpoints"]["ep0"]
    assert ep0["idle_s"] == pytest.approx(3.0)
    assert ep0["prewarmed"] and ep0["dispatches"] == 1
    assert ep0["cold_start_s"] == pytest.approx(2.0)
    assert stats["counters"]["launches"] == 1
    assert stats["predicted_service_s"] == pytest.approx(1.0)


def test_decision_log_is_bounded():
    manager = make_manager(log_capacity=3)
    for i in range(10):
        manager.on_dispatch("ep0", "m0", float(i))
    log = manager.decision_log()
    assert len(log) == 3
    assert "t=9.000000" in log[-1]
