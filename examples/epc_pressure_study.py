"""Ablation: where does the bottleneck move as the EPC grows?

The paper observes (Section VII) that with SGX2's large EPC "the
performance bottleneck has shifted from memory to CPU".  This study
sweeps the configured EPC size between the SGX1 limit (128 MB) and the
SGX2 default (64 GB) while serving MBNET at a fixed rate, and reports
where latency stops being paging-bound -- an ablation of the hardware
assumption behind the paper's framework comparison.

Run with:  python examples/epc_pressure_study.py
"""

from repro.core.simbridge import semirt_factory, servable_map
from repro.experiments.common import action_budget, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.sgx.epc import GB, MB
from repro.sgx.platform import SGX2, profile_with_epc
from repro.workloads.arrival import fixed_rate
from repro.workloads.metrics import LatencyStats

EPC_SIZES = (128 * MB, 256 * MB, 512 * MB, 2 * GB, 64 * GB)
RATE_RPS = 10.0


def run_point(epc_bytes: int, framework: str) -> float:
    hardware = profile_with_epc(SGX2, epc_bytes)
    bed = make_testbed(num_nodes=1, hardware=hardware)
    models = servable_map([("m", profile("MBNET"), framework)])
    spec = ActionSpec(
        name="ep", image="semirt",
        memory_budget=action_budget(models["m"], tcs_count=4), concurrency=4,
    )
    bed.platform.deploy(spec, semirt_factory(models, bed.cost, tcs_count=4))
    driver = make_driver(bed)
    # gentle ramp, then measure the steady window
    ramp = fixed_rate(2.0, 40.0, "m", "u")
    steady = [
        type(a)(time=a.time + 40.0, model_id="m", user_id="u")
        for a in fixed_rate(RATE_RPS, 120.0, "m", "u")
    ]
    driver.submit_arrivals(ramp + steady)
    report = driver.run(until=1200.0)
    measured = [r for r in report.results if r.submitted_at >= 100.0]
    return LatencyStats.of(measured).mean


def main() -> None:
    print(f"MBNET at {RATE_RPS:.0f} rps, 4-thread SeMIRT enclaves, one node\n")
    print(f"{'EPC size':>10s}  {'TVM mean (s)':>13s}  {'TFLM mean (s)':>14s}")
    for epc in EPC_SIZES:
        tvm = run_point(epc, "tvm")
        tflm = run_point(epc, "tflm")
        label = f"{epc // MB}MB" if epc < GB else f"{epc // GB}GB"
        print(f"{label:>10s}  {tvm:13.3f}  {tflm:14.3f}")
    print(
        "\nreading: at 128MB both frameworks are paging-bound and TFLM's"
        "\nsmall buffers win; by a few hundred MB the EPC stops mattering"
        "\nand TVM's faster kernels win -- the bottleneck moved to the CPU,"
        "\nexactly the paper's SGX1 -> SGX2 observation."
    )


if __name__ == "__main__":
    main()
