"""Multi-model serving with FnPacker (the Section VI-D scenario).

Five TVM-RSNET models share a cluster.  Two receive steady Poisson
traffic; an analyst occasionally tries all five on one sample.  The
example runs the same workload under the three deployment strategies and
prints latency and cold-start/cost comparisons -- the phenomenon behind
Tables III and IV.

Run with:  python examples/multi_model_serving.py
"""

from repro.experiments.table34 import MODEL_IDS, STRATEGIES, run_strategy


def main() -> None:
    print("workload: m0/m1 Poisson @ 2 rps for 8 min + 2 interactive")
    print("sessions (m0..m4 sequentially) at ~4 and ~6 minutes\n")

    results = {}
    for strategy in STRATEGIES:
        results[strategy] = run_strategy(strategy, duration_s=480.0)

    print("=== steady traffic to the popular models (Table III) ===")
    for strategy, data in results.items():
        stats = data["poisson_stats"]
        print(
            f"  {strategy:11s} avg {stats.mean * 1000:8.1f} ms   "
            f"p95 {stats.p95 * 1000:8.1f} ms   "
            f"cold starts {data['cold_starts']}"
        )

    print("\n=== interactive sessions (Table IV) ===")
    for session in (1, 2):
        print(f"  session {session}:")
        header = "    model  " + "  ".join(f"{s:>11s}" for s in STRATEGIES)
        print(header)
        for model in MODEL_IDS:
            cells = []
            for strategy in STRATEGIES:
                latency = results[strategy]["sessions"].get((session, model))
                cells.append(f"{latency * 1000:9.0f}ms" if latency else "      -  ")
            print(f"    {model:5s}  " + "  ".join(f"{c:>11s}" for c in cells))

    print(
        "\ntakeaway: FnPacker gives the popular models exclusive endpoints"
        "\n(no interference, unlike All-in-one) while packing the analyst's"
        "\ninfrequent models onto one shared warm endpoint (one cold start"
        "\ninstead of One-to-one's three)."
    )


if __name__ == "__main__":
    main()
