"""Quickstart: one encrypted inference, end to end.

Walks the three workflow stages of the paper (Section III) with real
cryptography on a small runnable MobileNet, using the session API:

1. key setup      -- ``env.deploy`` registers the owner, encrypts and
                     uploads the model, and hands its key to KeyService;
2. deployment     -- ``handle.grant`` authorises the user for the exact
                     SeMIRT enclave identity the deployment targets;
3. request serving -- ``session.infer`` encrypts the request, cold-starts
                     a SeMIRT enclave (which fetches keys over mutual
                     RA-TLS), executes, and decrypts the result.

Every request is traced: the cold call's span tree covers all nine
serving stages of the paper's Figure 4.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import SeSeMIEnvironment
from repro.core.stages import InvocationKind
from repro.mlrt import build_mobilenet
from repro.obs import analysis


def main() -> None:
    # --- the cluster: attestation service, storage, KeyService enclave ---
    env = SeSeMIEnvironment()
    print(f"KeyService enclave identity E_K = {env.keyservice.measurement}")

    # --- stages 1 + 2: key setup and service deployment ---
    model = build_mobilenet()
    handle = env.deploy(model, "quickstart-model", owner="model-owner")
    handle.grant("model-user")
    print(f"target SeMIRT enclave identity E_S = {handle.measurement}")
    artifact = env.storage.get("models/quickstart-model")
    print(f"uploaded encrypted artifact: {len(artifact)} bytes (ciphertext)")

    # --- stage 3: request serving ---
    x = np.random.default_rng(0).standard_normal(model.input_spec.shape)
    x = x.astype(np.float32)
    with env.session("model-user", "quickstart-model") as session:
        prediction = session.infer(x)
        # The session launched exactly the enclave the handle promised:
        assert session.semirt.measurement == handle.measurement
        print("prediction (first invocation, cold path):")
        print(f"  {np.round(prediction, 4)}")

        prediction2 = session.infer(x)
        assert session.semirt.code.last_plan.kind == InvocationKind.HOT
        print("second invocation took the HOT path (keys + model + runtime cached)")
        assert np.allclose(prediction, prediction2)

    # Every request produced a span tree; the cold one covers all nine
    # Figure-4 serving stages.
    spans = env.tracer.finished_spans()
    cold = analysis.request_roots(spans)[0]
    stages = analysis.stage_seconds(spans, cold)
    print(f"cold request traced {len(stages)} serving stages:")
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<20} {seconds * 1e3:8.2f} ms")

    # Cross-check against a plaintext run of the same model.
    reference = model.run_reference(x).ravel()
    assert np.allclose(prediction, reference, atol=1e-5)
    print("result matches the plaintext reference -- confidential inference works")


if __name__ == "__main__":
    main()
