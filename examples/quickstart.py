"""Quickstart: one encrypted inference, end to end.

Walks the three workflow stages of the paper (Section III) with real
cryptography on a small runnable MobileNet:

1. key setup      -- owner and user attest KeyService and register;
2. deployment     -- the owner encrypts + uploads the model, authorises
                     the user for one specific SeMIRT enclave identity;
3. request serving -- the user's encrypted request flows through the
                     SeMIRT enclave, which fetches keys over mutual
                     RA-TLS, decrypts, executes, and encrypts the result.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import SeSeMIEnvironment
from repro.core.stages import InvocationKind
from repro.mlrt import build_mobilenet


def main() -> None:
    # --- the cluster: attestation service, storage, KeyService enclave ---
    env = SeSeMIEnvironment()
    print(f"KeyService enclave identity E_K = {env.keyservice.measurement}")

    # --- stage 1: key setup ---
    owner = env.connect_owner("model-owner")
    user = env.connect_user("model-user")
    print(f"owner registered as {owner.principal_id[:16]}...")
    print(f"user registered as  {user.principal_id[:16]}...")

    # --- stage 2: service deployment ---
    model = build_mobilenet()
    semirt = env.launch_semirt("tvm")
    print(f"SeMIRT enclave identity E_S = {semirt.measurement}")
    # The owner can derive E_S independently before trusting it:
    assert env.expected_semirt("tvm") == semirt.measurement

    env.authorize(owner, user, model, "quickstart-model", semirt.measurement)
    artifact = env.storage.get("models/quickstart-model")
    print(f"uploaded encrypted artifact: {len(artifact)} bytes (ciphertext)")

    # --- stage 3: request serving ---
    x = np.random.default_rng(0).standard_normal(model.input_spec.shape)
    x = x.astype(np.float32)
    prediction = env.infer(user, semirt, "quickstart-model", x)
    print(f"prediction (first invocation, {semirt.code.last_plan.kind.value} path):")
    print(f"  {np.round(prediction, 4)}")

    prediction2 = env.infer(user, semirt, "quickstart-model", x)
    assert semirt.code.last_plan.kind == InvocationKind.HOT
    print("second invocation took the HOT path (keys + model + runtime cached)")
    assert np.allclose(prediction, prediction2)

    # Cross-check against a plaintext run of the same model.
    reference = model.run_reference(x).ravel()
    assert np.allclose(prediction, reference, atol=1e-5)
    print("result matches the plaintext reference -- confidential inference works")


if __name__ == "__main__":
    main()
