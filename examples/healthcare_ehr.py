"""The paper's motivating scenario (Figure 1): hospital EHR models.

A hospital trains a disease-prediction model on sensitive electronic
health records and serves it from an untrusted cloud.  This example
exercises the access-control story end to end:

- two patients and a doctor use the model with *separate* request keys;
- the cloud provider (who sees storage and all traffic) learns nothing;
- an unauthorised user is refused keys by KeyService;
- a modified (rogue) runtime build has a different enclave identity and
  cannot obtain the model key;
- the hospital revokes a patient's access, which takes effect for every
  newly attested enclave.

Run with:  python examples/healthcare_ehr.py
"""

import numpy as np

from repro import SeSeMIEnvironment
from repro.core.semirt import IsolationSettings
from repro.errors import AccessDenied
from repro.mlrt import build_densenet


def patient_record(seed: int, shape) -> np.ndarray:
    """A synthetic 'imaging study' standing in for a real EHR record."""
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def main() -> None:
    env = SeSeMIEnvironment()
    hospital = env.connect_owner("hospital")

    # The hospital deploys its diagnostic model, encrypted.
    model = build_densenet()
    semirt = env.launch_semirt("tvm")
    hospital.deploy_model(model, "diagnosis-v1", env.storage)
    hospital.add_model_key("diagnosis-v1")
    print("hospital deployed encrypted model 'diagnosis-v1'")

    # Three authorised principals, each with their own request key.
    principals = {
        name: env.connect_user(name) for name in ("patient-ana", "patient-bo", "dr-lee")
    }
    for name, principal in principals.items():
        hospital.grant_access("diagnosis-v1", semirt.measurement, principal.principal_id)
        principal.add_request_key("diagnosis-v1", semirt.measurement)
        print(f"  granted {name} access (request key released for E_S only)")

    # Each principal runs inference on their own confidential record.
    for seed, (name, principal) in enumerate(principals.items()):
        record = patient_record(seed, model.input_spec.shape)
        scores = env.infer(principal, semirt, "diagnosis-v1", record)
        print(f"{name}: diagnosis scores {np.round(scores[:3], 3)}...")

    # --- threat 1: an unauthorised user ---
    mallory = env.connect_user("mallory")
    mallory.add_request_key("diagnosis-v1", semirt.measurement)
    record = patient_record(99, model.input_spec.shape)
    try:
        env.infer(mallory, semirt, "diagnosis-v1", record)
    except AccessDenied as exc:
        print(f"mallory denied: {exc}")

    # --- threat 2: a rogue runtime build (different enclave identity) ---
    rogue = env.launch_semirt(
        "tvm",
        node_id="rogue-node",
        isolation=IsolationSettings(key_cache=False),  # different build!
    )
    assert rogue.measurement != semirt.measurement
    enc = principals["patient-ana"].encrypt_request(
        "diagnosis-v1", semirt.measurement, record
    )
    try:
        rogue.infer(enc, principals["patient-ana"].principal_id, "diagnosis-v1")
    except AccessDenied as exc:
        print(f"rogue enclave build denied: {exc}")

    # --- threat 3: the cloud inspects storage and traffic ---
    artifact = env.storage.get("models/diagnosis-v1")
    assert model.serialize() not in artifact
    assert record.tobytes() not in enc
    print("cloud-visible artifact and request are ciphertext only")

    # --- revocation ---
    hospital.revoke_access(
        "diagnosis-v1", semirt.measurement, principals["patient-bo"].principal_id
    )
    fresh = env.launch_semirt("tvm", node_id="scale-out-node")
    principals["patient-bo"].add_request_key("diagnosis-v1", fresh.measurement)
    try:
        env.infer(principals["patient-bo"], fresh, "diagnosis-v1", record)
    except AccessDenied:
        print("patient-bo's access revoked: new enclaves refuse to serve them")


if __name__ == "__main__":
    main()
