"""The paper's motivating scenario (Figure 1): hospital EHR models.

A hospital trains a disease-prediction model on sensitive electronic
health records and serves it from an untrusted cloud.  This example
exercises the access-control story end to end:

- two patients and a doctor use the model with *separate* request keys;
- the cloud provider (who sees storage and all traffic) learns nothing;
- an unauthorised user is refused keys by KeyService;
- a modified (rogue) runtime build has a different enclave identity and
  cannot obtain the model key;
- the hospital revokes a patient's access, which takes effect for every
  newly attested enclave.

Run with:  python examples/healthcare_ehr.py
"""

import numpy as np

from repro import SeSeMIEnvironment
from repro.core.semirt import IsolationSettings
from repro.errors import AccessDenied
from repro.mlrt import build_densenet


def patient_record(seed: int, shape) -> np.ndarray:
    """A synthetic 'imaging study' standing in for a real EHR record."""
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def main() -> None:
    env = SeSeMIEnvironment()

    # The hospital deploys its diagnostic model, encrypted.
    model = build_densenet()
    handle = env.deploy(model, "diagnosis-v1", owner="hospital")
    print("hospital deployed encrypted model 'diagnosis-v1'")

    # One warm runtime instance serves every session below.
    semirt = env.launch_semirt("tvm")

    # Three authorised principals, each with their own request key.
    names = ("patient-ana", "patient-bo", "dr-lee")
    for name in names:
        handle.grant(name)
        print(f"  granted {name} access (request key released for E_S only)")

    # Each principal runs inference on their own confidential record.
    for seed, name in enumerate(names):
        record = patient_record(seed, model.input_spec.shape)
        with env.session(name, "diagnosis-v1", semirt=semirt) as session:
            scores = session.infer(record)
        print(f"{name}: diagnosis scores {np.round(scores[:3], 3)}...")

    # The doctor reviews a whole batch in one session; the scheduler
    # pipelines the requests across the enclave's TCS slots.
    batch = [patient_record(10 + i, model.input_spec.shape) for i in range(4)]
    with env.session("dr-lee", "diagnosis-v1", semirt=semirt) as session:
        results = session.infer_many(batch)
    print(f"dr-lee: reviewed a batch of {len(results)} studies")

    # --- threat 1: an unauthorised user ---
    env.connect_user("mallory")
    record = patient_record(99, model.input_spec.shape)
    try:
        with env.session("mallory", "diagnosis-v1", semirt=semirt) as session:
            session.infer(record)
    except AccessDenied as exc:
        print(f"mallory denied: {exc}")

    # --- threat 2: a rogue runtime build (different enclave identity) ---
    rogue = env.launch_semirt(
        "tvm",
        node_id="rogue-node",
        isolation=IsolationSettings(key_cache=False),  # different build!
    )
    assert rogue.measurement != semirt.measurement
    ana = env.user("patient-ana")
    enc = ana.encrypt_request("diagnosis-v1", semirt.measurement, record)
    try:
        rogue.infer(enc, ana.principal_id, "diagnosis-v1")
    except AccessDenied as exc:
        print(f"rogue enclave build denied: {exc}")

    # --- threat 3: the cloud inspects storage and traffic ---
    artifact = env.storage.get("models/diagnosis-v1")
    assert model.serialize() not in artifact
    assert record.tobytes() not in enc
    print("cloud-visible artifact and request are ciphertext only")

    # --- revocation ---
    handle.revoke("patient-bo")
    fresh = env.launch_semirt("tvm", node_id="scale-out-node")
    try:
        with env.session("patient-bo", "diagnosis-v1", semirt=fresh) as session:
            session.infer(record)
    except AccessDenied:
        print("patient-bo's access revoked: new enclaves refuse to serve them")


if __name__ == "__main__":
    main()
