"""Replay a production-style trace through FnPacker, with telemetry.

Serverless traffic in the wild is heavily skewed: a few hot functions
and a long tail of rarely-invoked ones (the Azure traces the paper cites
for its workload characterisation).  This example synthesises such a
trace over ten DSNET variants, replays it through the FnPackerService
front end, and scrapes the Prometheus-style metrics afterwards --
comparing against the one-endpoint-per-model baseline.

Run with:  python examples/trace_replay.py
"""

from repro.core.fnpacker import FnPool
from repro.core.packer_service import FnPackerService
from repro.core.costs import CostModel
from repro.core.simbridge import servable_map
from repro.mlrt.zoo import profile
from repro.serverless.controller import PlatformConfig
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.storage import NFS
from repro.serverless.telemetry import MetricsRegistry
from repro.sim.core import Simulation
from repro.sgx.epc import GB
from repro.workloads.metrics import LatencyStats
from repro.workloads.trace import synthesize_skewed_trace

MODEL_IDS = tuple(f"variant-{i}" for i in range(20))
DURATION_S = 900.0
TOTAL_RATE_RPS = 1.5
ZIPF_SKEW = 1.6


def replay(strategy: str):
    sim = Simulation()
    metrics = MetricsRegistry()
    platform = ServerlessPlatform(
        sim, num_nodes=4, node_memory=8 * GB, metrics=metrics,
        config=PlatformConfig(),
    )
    cost = CostModel(hardware=platform.hardware, storage=NFS)
    pool = FnPool(name="zoo", models=MODEL_IDS, memory_budget=0)
    models = servable_map([(m, profile("DSNET"), "tvm") for m in MODEL_IDS])
    service = FnPackerService(
        sim, platform.controller, pool, models, cost, strategy=strategy
    )
    trace = synthesize_skewed_trace(
        MODEL_IDS, duration_s=DURATION_S, total_rate_rps=TOTAL_RATE_RPS,
        skew=ZIPF_SKEW, seed=42,
    )
    results = []

    def driver(sim):
        for arrival in trace:
            delay = arrival.time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            done = service.invoke(arrival.model_id, arrival.user_id)
            done.callbacks.append(lambda event: results.append(event.value))

    sim.process(driver(sim))
    sim.run(until=DURATION_S + 2000.0)
    return results, metrics, len(trace)


def main() -> None:
    print(f"trace: Zipf-skewed traffic over {len(MODEL_IDS)} DSNET variants\n")
    for strategy in ("fnpacker", "one-to-one"):
        results, metrics, submitted = replay(strategy)
        stats = LatencyStats.of(results)
        snap = metrics.snapshot()
        latency_hist = metrics.histogram("latency.seconds")
        print(f"=== {strategy} ===")
        print(f"  completed          {len(results)}/{submitted}")
        print(f"  mean latency       {stats.mean:.2f}s   p95 {stats.p95:.2f}s")
        print(f"  cold starts        {int(snap['containers.cold_starts'])}")
        print(f"  p90 (histogram)    <= {latency_hist.quantile(0.9):.2f}s")
        print(f"  peak containers    {metrics.time_series('containers.active').peak:.0f}")
        gb_s = metrics.time_series("memory.reserved.bytes").integral(DURATION_S) / GB
        print(f"  memory cost        {gb_s:.0f} GB-s\n")
    print(
        "takeaway: on long-tail traffic FnPacker needs far fewer cold"
        "\nstarts and containers -- the tail shares warm endpoints -- which"
        "\nis exactly the cost argument of the paper's Section IV-C."
    )


if __name__ == "__main__":
    main()
