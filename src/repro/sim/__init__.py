"""Discrete-event simulation substrate (virtual time, processes, resources)."""

from repro.sim.core import Event, Process, Simulation, Timeout
from repro.sim.rand import RandomStreams
from repro.sim.resources import Resource, ResourceRequest, Store

__all__ = [
    "Event",
    "Process",
    "RandomStreams",
    "Resource",
    "ResourceRequest",
    "Simulation",
    "Store",
    "Timeout",
]
