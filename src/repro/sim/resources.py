"""Shared resources for simulation processes.

- :class:`Resource` -- a counted resource (CPU cores of an invoker node);
  requests queue FIFO when the capacity is exhausted.
- :class:`Store` -- an unbounded FIFO message queue (request inboxes);
  ``get`` events fire in arrival order as items are put.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.core import Event, Simulation


class ResourceRequest(Event):
    """A pending or granted claim on one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulation, resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A counted resource with FIFO admission.

    Usage from a process::

        req = cores.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            cores.release(req)
    """

    def __init__(self, sim: Simulation, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> ResourceRequest:
        """Claim one unit; the returned event fires when granted."""
        req = ResourceRequest(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, req: ResourceRequest) -> None:
        """Return the unit held by ``req`` and admit the next waiter."""
        if req.resource is not self:
            raise SimulationError("request belongs to a different resource")
        if self._waiting:
            successor = self._waiting.popleft()
            successor.succeed()
        else:
            if self._in_use == 0:
                raise SimulationError(f"{self.name}: release without request")
            self._in_use -= 1


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, sim: Simulation, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
