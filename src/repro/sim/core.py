"""Deterministic discrete-event simulation core.

A small SimPy-style engine: processes are Python generators that yield
*events* (timeouts, resource requests, store gets, or plain events) and
are resumed when those events fire.  The event heap is ordered by
``(time, sequence)`` so runs are fully deterministic, which the
experiment harness relies on for reproducible tables.

The serverless platform, SeMIRT actors, and workload drivers are all
built as processes on this core; virtual time lets the eight-minute MMPP
experiments of Figures 13/14 run in milliseconds of wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "processed")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with ``value`` after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exc`` in waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self


class Timeout(Event):
    """Fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator; itself an event that fires when it returns."""

    __slots__ = ("generator", "name")

    def __init__(
        self, sim: "Simulation", generator: Generator, name: str = ""
    ) -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, fired: Event) -> None:
        try:
            if fired._exc is not None:
                target = self.generator.throw(fired._exc)
            else:
                target = self.generator.send(fired._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (timeout, request, get, ...)"
            )
        if target.processed:
            raise SimulationError(
                f"process {self.name!r} waited on an already-processed event"
            )
        target.callbacks.append(self._resume)


class Simulation:
    """The event loop: clock, heap, and process factory."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after ``delay`` seconds of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        gate = self.event()
        remaining = len(events)
        if remaining == 0:
            return gate.succeed([])
        state = {"left": remaining}

        def _one_done(fired: Event) -> None:
            state["left"] -= 1
            if state["left"] == 0 and not gate.triggered:
                gate.succeed([e._value for e in events])

        for e in events:
            if e.processed:
                _one_done(e)
            else:
                e.callbacks.append(_one_done)
        return gate

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), event))

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached."""
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = at
            event.processed = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` to completion and return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or missing event)"
            )
        return proc.value
