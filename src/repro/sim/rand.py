"""Seeded random streams for reproducible experiments.

Every stochastic component (arrival process, jitter source) draws from
its own named stream so adding a new component never perturbs the draws
of existing ones -- experiment outputs stay bit-identical across runs and
refactorings.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A family of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int = 2025) -> None:
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            generator = np.random.default_rng(int.from_bytes(digest[:8], "big"))
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from stream ``name``."""
        return float(self.stream(name).uniform(low, high))
