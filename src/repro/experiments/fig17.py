"""Figures 17 & 18 (appendix): execution-time breakdown with / without SGX.

One cold request per (model, framework) on SGX2 hardware, once through
SeSeMI (Figure 17) and once through the untrusted runtime (Figure 18).
The paper's observation: the overhead of TEE protection comes almost
entirely from enclave initialisation and attestation; the stages the two
paths share (loading, runtime init, inference) barely differ because the
64 GB EPC removes memory pressure.

Both breakdowns are read from the request span trees produced by a
virtual-time :class:`~repro.obs.tracer.Tracer` (see
:mod:`repro.obs.analysis`), not from the invocation results.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stages import Stage
from repro.experiments.common import format_table
from repro.experiments.fig8 import traced_cold_request
from repro.mlrt.zoo import FRAMEWORKS, PROFILES
from repro.obs import analysis

SHARED_STAGES = (
    Stage.MODEL_LOADING.value,
    Stage.RUNTIME_INIT.value,
    Stage.MODEL_INFERENCE.value,
)
SGX_ONLY_STAGES = (
    Stage.ENCLAVE_INIT.value,
    Stage.KEY_RETRIEVAL.value,
    Stage.MODEL_DECRYPT.value,
    Stage.REQUEST_DECRYPT.value,
    Stage.RESULT_ENCRYPT.value,
)


def _cold_stages(system: str, model_name: str, framework: str) -> Dict[str, float]:
    """One traced cold request; stage seconds from the span tree."""
    spans, _ = traced_cold_request(model_name, framework, system=system)
    (root,) = analysis.request_roots(spans)
    return analysis.stage_seconds(spans, root)


def run() -> dict:
    """Run one cold request per config with and without SGX."""
    rows: List[tuple] = []
    details = {}
    for framework in FRAMEWORKS:
        for model_name in PROFILES:
            sgx = _cold_stages("SeSeMI", model_name, framework)
            plain = _cold_stages("Untrusted", model_name, framework)
            label = f"{framework.upper()}-{model_name}"
            details[label] = {"sgx": sgx, "plain": plain}
            shared_sgx = sum(sgx.get(s, 0.0) for s in SHARED_STAGES)
            shared_plain = sum(plain.get(s, 0.0) for s in SHARED_STAGES)
            overhead = sum(sgx.get(s, 0.0) for s in SGX_ONLY_STAGES)
            rows.append((label, shared_sgx, shared_plain, overhead))
    return {"rows": rows, "details": details}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = [
        "config",
        "shared stages w/ SGX (s)",
        "shared stages w/o SGX (s)",
        "SGX-only overhead (s)",
    ]
    lines = [
        "Figures 17/18 -- cold-request breakdown with vs without SGX (SGX2).",
        "Paper: the three shared stages have minimal differences; the",
        "overhead is enclave init + attestation (+ small crypto).",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
