"""Wall-clock benchmark for secure streaming inference.

The streaming plane decodes autoregressively inside the enclave
(``EC_MODEL_INF_STREAM`` / ``EC_STREAM_STEP``) with the KV cache pinned
in enclave memory, and the host's continuous batcher merges concurrent
same-``<uid, model>`` streams into one running group between decode
steps.  This experiment measures the claim that continuous batching
raises aggregate decode throughput without wrecking time-to-first-token:

- **solo lane**: N streams with no batch policy -- every stream decodes
  on its own TCS slot, one full busy-paced service floor per token;
- **grouped lane**: the same N streams with the continuous batcher
  armed -- one ``EC_STREAM_STEP`` advances the whole group for a
  sub-linear :meth:`~repro.core.batching.BatchPolicy.batch_cost_s`
  floor.

Pacing is **busy** (:attr:`SchedulerConfig.paced_busy`), the
compute-bound regime where amortisation pays (same rationale as
``repro batching``).  Every decoded sequence is verified token-for-token
against an out-of-enclave :class:`~repro.mlrt.decoder.DecoderSession`
reference, so the speedup is measured on provably correct output.

Reported per lane: aggregate tokens/sec, TTFT mean/max (measured
host-side from stream admission to the first sealed frame), and the
``ecall:EC_STREAM_STEP`` span evidence (step count and batch-size
histogram).  The acceptance gate is grouped >= :data:`SPEEDUP_GATE` x
solo tokens/sec with the grouped TTFT max under
:data:`TTFT_CEILING_S` (``repro streaming`` exits 1 on either miss).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.batching import BatchPolicy
from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.mlrt.decoder import DecoderSession
from repro.mlrt.zoo import build_tinylm

MODEL_ID = "stream-model"

#: the CI ``streaming-bench`` job fails below this grouped-vs-solo ratio
SPEEDUP_GATE = 1.5

#: ... or above this grouped-lane time-to-first-token (seconds).  The
#: prefills of a joining group serialise on the busy pacer, so TTFT can
#: approach ``streams * paced_s``; the ceiling catches regressions an
#: aggregate-throughput gate would hide (e.g. batching prefills so hard
#: the first token stalls).
TTFT_CEILING_S = 1.0


def _prompts(streams: int) -> List[List[int]]:
    """Distinct short prompts, one per stream (same user, same model)."""
    return [[(i % 7) + 1, (i % 5) + 2, 3] for i in range(streams)]


def _lane(
    policy: Optional[BatchPolicy],
    streams: int,
    tokens: int,
    paced_s: float,
    tcs_count: int,
    model_seed: int,
) -> dict:
    """Decode ``streams`` concurrent streams on a fresh host."""
    env = SeSeMIEnvironment()
    model = build_tinylm(seed=model_seed)
    config = default_semirt_config(tcs_count=tcs_count)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    scheduler = SchedulerConfig(
        queue_depth=max(16, streams),
        paced_service_s=paced_s,
        paced_busy=True,
        batch=policy,
    )
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    prompts = _prompts(streams)
    refs = [DecoderSession(model).generate(p, tokens) for p in prompts]
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        # cold start off the clock: model load + key provisioning
        session.stream(prompts[0], 1).result()
        env.tracer.clear()
        started = time.perf_counter()
        handles = [session.stream(p, tokens) for p in prompts]
        sequences = [h.result() for h in handles]
        elapsed = time.perf_counter() - started
        verified = sequences == refs
        step_spans = [
            s for s in env.tracer.finished_spans()
            if s.name == "ecall:EC_STREAM_STEP"
        ]
        sizes: Dict[str, int] = {}
        for span in step_spans:
            key = str(span.attributes.get("batch_size", 1))
            sizes[key] = sizes.get(key, 0) + 1
        ttfts = [h.ttft_s for h in handles if h.ttft_s is not None]
        total = streams * tokens
        row = {
            "max_batch": policy.max_batch if policy is not None else 1,
            "streams": streams,
            "tokens_per_stream": tokens,
            "total_tokens": total,
            "elapsed_s": elapsed,
            "tokens_per_s": total / elapsed,
            "ttft_mean_s": sum(ttfts) / len(ttfts) if ttfts else 0.0,
            "ttft_max_s": max(ttfts) if ttfts else 0.0,
            "step_ecalls": len(step_spans),
            "step_sizes": sizes,
            "verified": verified,
        }
    host.destroy()
    return row


def run(
    streams: int = 4,
    tokens: int = 32,
    paced_ms: float = 25.0,
    max_batch: int = 0,
    window_ms: float = 10.0,
    tcs_count: int = 4,
    model_seed: int = 7,
    alpha: float = 0.6,
) -> dict:
    """Continuous batching vs per-request decoding, same host shape.

    Both lanes use the same ``tcs_count`` build and busy pacing floor;
    only ``SchedulerConfig.batch`` differs.  ``max_batch`` 0 sizes the
    group to ``streams``.  Returns the two rows plus ``speedup``
    (grouped over solo aggregate tokens/sec) and the grouped lane's
    ``ttft_max_s`` -- the two numbers the CI gate checks.
    """
    max_batch = max_batch or streams
    paced_s = paced_ms / 1e3
    solo = _lane(None, streams, tokens, paced_s, tcs_count, model_seed)
    policy = BatchPolicy(
        batch_window_s=window_ms / 1e3, max_batch=max_batch, alpha=alpha
    )
    grouped = _lane(policy, streams, tokens, paced_s, tcs_count, model_seed)
    speedup = grouped["tokens_per_s"] / solo["tokens_per_s"]
    verified = solo["verified"] and grouped["verified"]
    return {
        "streams": streams,
        "tokens_per_stream": tokens,
        "paced_ms": paced_ms,
        "tcs_count": tcs_count,
        "window_ms": window_ms,
        "solo": solo,
        "grouped": grouped,
        "speedup": speedup,
        "ttft_max_s": grouped["ttft_max_s"],
        "verified": verified,
        "gate": SPEEDUP_GATE,
        "ttft_ceiling_s": TTFT_CEILING_S,
        "pass": (
            speedup >= SPEEDUP_GATE
            and grouped["ttft_max_s"] <= TTFT_CEILING_S
            and verified
        ),
    }


def format_report(result: dict) -> str:
    """Render the two lanes plus the speedup/TTFT lines."""
    lines = [
        f"secure streaming inference, {result['streams']} streams x "
        f"{result['tokens_per_stream']} tokens, busy-paced to "
        f"{result['paced_ms']:.0f} ms/step, {result['tcs_count']} TCS",
        f"{'group':>6} {'tok/s':>8} {'elapsed':>9} {'ttft mean':>10} "
        f"{'ttft max':>9} {'steps':>6} {'sizes':>16}",
    ]
    for row in (result["solo"], result["grouped"]):
        sizes = ",".join(
            f"{size}x{count}"
            for size, count in sorted(row["step_sizes"].items())
        ) or "-"
        lines.append(
            f"{row['max_batch']:>6} {row['tokens_per_s']:>8.1f} "
            f"{row['elapsed_s']:>8.2f}s {row['ttft_mean_s'] * 1e3:>7.0f} ms "
            f"{row['ttft_max_s'] * 1e3:>6.0f} ms {row['step_ecalls']:>6} "
            f"{sizes:>16}"
        )
    lines.append(
        f"speedup (continuous batch {result['grouped']['max_batch']} vs "
        f"per-request): {result['speedup']:.2f}x "
        f"(gate >= {result['gate']:.1f}x), grouped TTFT max "
        f"{result['ttft_max_s'] * 1e3:.0f} ms "
        f"(ceiling {result['ttft_ceiling_s'] * 1e3:.0f} ms), sequences "
        f"{'verified' if result['verified'] else 'MISMATCHED'}"
    )
    return "\n".join(lines)
