"""Wall-clock benchmark for the per-request hot-path overhead work.

PR 5 amortised the ECALL with micro-batching; this experiment measures
what a single hot request still paid afterwards -- wire codec, AEAD
cipher construction, and the per-request key validation round trip --
and what the three coordinated caches recover:

- the **binary wire codec** (``wire.BINARY``) moves ciphertext as raw
  segments instead of hex-doubled JSON strings;
- the **session key cache** (:meth:`~repro.crypto.gcm.AESGCM.derive`)
  reuses the expanded AES key schedule + GHASH tables across a hot
  session instead of rebuilding them per call;
- the **SeMIRT key memo** (``SchedulerConfig.key_cache_entries``)
  skips the KeyService round trip for every memoised ``(uid, model)``
  pair, not just the most recent one.

The workload is the multi-tenant hot path: **two users alternating on
one shared host**.  The legacy lane reproduces the seed behaviour --
canonical-JSON request frames, a fresh :class:`AESGCM` per client call,
and a single-entry key cache (the paper's single-pair semantics), which
thrashes on every user switch.  The fast lane is the shipped default.
Both lanes serve the same model, the same inputs, and real crypto end
to end; ``speedup`` is legacy p50 over fast p50 and the CI
``hotpath-bench`` job gates it at :data:`SPEEDUP_GATE`.

Micro-sections decompose the win: codec encode+decode p50 (JSON vs
binary on a representative sealed-request payload) and seal p50 (fresh
construction vs derived session cipher).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from repro.core import wire
from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import REQUEST_AAD, RESPONSE_AAD, SchedulerConfig
from repro.crypto.gcm import AESGCM
from repro.crypto.keys import SymmetricKey

MODEL_ID = "hotpath-model"

#: CI floor for the end-to-end single-request p50 improvement
SPEEDUP_GATE = 1.4


def _p50(samples: List[float]) -> float:
    return float(np.percentile(np.asarray(samples), 50))


def _legacy_encrypt(user, model_id: str, measurement, x: np.ndarray) -> bytes:
    """The seed's client request path: JSON frame, fresh cipher."""
    payload = wire.dumps({"input": x.astype(np.float32).tobytes()})
    key = user.request_key(model_id, measurement)
    return AESGCM(bytes(key)).seal(payload, aad=REQUEST_AAD + model_id.encode())


def _legacy_decrypt(user, model_id: str, measurement, blob: bytes) -> np.ndarray:
    """The seed's client response path: fresh cipher per call."""
    key = user.request_key(model_id, measurement)
    raw = AESGCM(bytes(key)).open(blob, aad=RESPONSE_AAD + model_id.encode())
    return np.frombuffer(wire.loads(raw)["output"], dtype=np.float32)


def _lane(
    scheduler: SchedulerConfig,
    requests: int,
    model_seed: int,
    serve: Callable,
) -> dict:
    """Serve one alternating-user burst on a fresh host; p50/p95 per request."""
    from repro.mlrt.zoo import build_mobilenet

    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    handle = env.deploy(model, MODEL_ID, owner="owner")
    users = [env.connect_user("user-a"), env.connect_user("user-b")]
    for user in users:
        handle.grant(user)
    host = env.launch_semirt("tvm", scheduler=scheduler)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    # Warm-up off the clock: cold start, model load, first key fetches.
    for user in users:
        serve(user, host, x)
    latencies: List[float] = []
    for index in range(requests):
        user = users[index % 2]
        started = time.perf_counter()
        serve(user, host, x)
        latencies.append(time.perf_counter() - started)
    host.destroy()
    return {
        "requests": requests,
        "p50_ms": _p50(latencies) * 1e3,
        "p95_ms": float(np.percentile(np.asarray(latencies), 95)) * 1e3,
        "total_s": float(np.sum(latencies)),
    }


def _fast_serve(user, host, x: np.ndarray) -> np.ndarray:
    enc = user.encrypt_request(MODEL_ID, host.measurement, x)
    out = host.infer(enc, user.principal_id, MODEL_ID)
    return user.decrypt_response(MODEL_ID, host.measurement, out)


def _legacy_serve(user, host, x: np.ndarray) -> np.ndarray:
    enc = _legacy_encrypt(user, MODEL_ID, host.measurement, x)
    out = host.infer(enc, user.principal_id, MODEL_ID)
    return _legacy_decrypt(user, MODEL_ID, host.measurement, out)


def _codec_micro(payload_bytes: int, rounds: int) -> dict:
    """Encode+decode p50 for one sealed-ciphertext-sized payload."""
    blob = bytes(range(256)) * (payload_bytes // 256 + 1)
    message = {"enc_request": blob[:payload_bytes], "model_id": MODEL_ID}
    result = {}
    for name, codec in (("json", wire.JSON), ("binary", wire.BINARY)):
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            frame = codec.dumps(message)
            wire.loads(frame)
            samples.append(time.perf_counter() - started)
        result[name] = {
            "p50_us": _p50(samples) * 1e6,
            "frame_bytes": len(codec.dumps(message)),
        }
    result["speedup"] = result["json"]["p50_us"] / result["binary"]["p50_us"]
    return result


def _crypto_micro(payload_bytes: int, rounds: int) -> dict:
    """Seal p50: fresh AESGCM per call vs the derived session cipher."""
    key = SymmetricKey.generate()
    plaintext = b"\x5a" * payload_bytes
    fresh = []
    for _ in range(rounds):
        started = time.perf_counter()
        AESGCM(bytes(key)).seal(plaintext, aad=b"bench")
        fresh.append(time.perf_counter() - started)
    cipher = AESGCM.derive(key)  # first derivation pays the build
    derived = []
    for _ in range(rounds):
        started = time.perf_counter()
        cipher.seal(plaintext, aad=b"bench")
        derived.append(time.perf_counter() - started)
    return {
        "fresh_p50_us": _p50(fresh) * 1e6,
        "derived_p50_us": _p50(derived) * 1e6,
        "speedup": _p50(fresh) / _p50(derived),
    }


def run(
    requests: int = 60,
    model_seed: int = 7,
    micro_payload: int = 4096,
    micro_rounds: int = 200,
    fast_scheduler: Optional[SchedulerConfig] = None,
) -> dict:
    """End-to-end legacy vs fast lanes plus the codec/crypto micro-sections.

    Returns the two lane rows, ``speedup`` (legacy p50 over fast p50;
    the CI gate is :data:`SPEEDUP_GATE`), and the micro decompositions.
    ``fast_scheduler`` overrides the fast lane's scheduler so scenario
    specs can size the key memo or arm micro-batching; the legacy lane
    always runs the seed's single-entry configuration.
    """
    legacy = _lane(
        SchedulerConfig(key_cache_entries=1), requests, model_seed,
        _legacy_serve,
    )
    fast = _lane(
        fast_scheduler or SchedulerConfig(), requests, model_seed, _fast_serve
    )
    return {
        "requests": requests,
        "legacy": legacy,
        "fast": fast,
        "speedup": legacy["p50_ms"] / fast["p50_ms"],
        "gate": SPEEDUP_GATE,
        "codec_micro": _codec_micro(micro_payload, micro_rounds),
        "crypto_micro": _crypto_micro(micro_payload, micro_rounds),
    }


def format_report(result: dict) -> str:
    """Render the lane table, the speedup line, and the micro-sections."""
    lines = [
        f"hot-path per-request overhead, {result['requests']} requests, "
        "two users alternating on one host",
        f"{'lane':>8} {'p50':>9} {'p95':>9} {'total':>8}",
    ]
    for name in ("legacy", "fast"):
        row = result[name]
        lines.append(
            f"{name:>8} {row['p50_ms']:>7.2f}ms {row['p95_ms']:>7.2f}ms "
            f"{row['total_s']:>7.2f}s"
        )
    lines.append(
        f"single-request p50 speedup: {result['speedup']:.2f}x "
        f"(gate >= {result['gate']:.1f}x)"
    )
    codec = result["codec_micro"]
    lines.append(
        f"codec micro ({codec['json']['frame_bytes']}B json vs "
        f"{codec['binary']['frame_bytes']}B binary frame): "
        f"{codec['json']['p50_us']:.0f}us -> {codec['binary']['p50_us']:.0f}us "
        f"({codec['speedup']:.1f}x)"
    )
    crypto = result["crypto_micro"]
    lines.append(
        f"crypto micro (seal): fresh {crypto['fresh_p50_us']:.0f}us -> "
        f"derived {crypto['derived_p50_us']:.0f}us ({crypto['speedup']:.1f}x)"
    )
    return "\n".join(lines)
