"""Table I: the evaluation models and their runtime buffer sizes.

Reproduced two ways: the published profile numbers used by the
simulator, and the *measured* buffer relationship on the scaled-down
runnable models (TFLM buffer << TVM buffer because TVM copies weights).
"""

from __future__ import annotations


from repro.experiments.common import format_table
from repro.mlrt.framework import get_framework
from repro.mlrt.zoo import MB, PROFILES


def run() -> dict:
    """Produce Table I rows plus a measured cross-check on the tiny models."""
    rows = []
    measured = []
    for name, prof in PROFILES.items():
        rows.append(
            (
                name,
                f"{prof.model_bytes // MB}MB",
                f"{prof.tvm_buffer_bytes // MB}MB",
                f"{prof.tflm_buffer_bytes // MB}MB",
            )
        )
        model = prof.builder()
        tvm_rt = get_framework("tvm").create_runtime(model)
        tflm_rt = get_framework("tflm").create_runtime(model)
        measured.append(
            (
                name,
                model.weight_bytes,
                tvm_rt.buffer_bytes,
                tflm_rt.buffer_bytes,
            )
        )
    return {"paper_rows": rows, "measured_rows": measured}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    lines = ["Table I -- models for the evaluation (paper profile values)", ""]
    lines.append(
        format_table(
            ["Name", "Model size", "TVM buffer", "TFLM buffer"], result["paper_rows"]
        )
    )
    lines += ["", "Measured on the runnable scaled-down models (bytes):", ""]
    lines.append(
        format_table(
            ["Name", "weights", "TVM buffer", "TFLM buffer"],
            result["measured_rows"],
        )
    )
    return "\n".join(lines)
