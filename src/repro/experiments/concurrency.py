"""Wall-clock concurrency benchmark for the TCS-slot scheduler (fig14-style).

The paper's Figure 14 argument is that one multi-threaded SeMIRT enclave
serves concurrent requests nearly as fast as several single-threaded
ones at a fraction of the memory.  This experiment measures the
*functional* (real-crypto) half of that claim on the hot path:

- throughput of one enclave at ``tcs_count=1`` vs ``tcs_count=4``,
  serving a batch through :meth:`UserSession.infer_many`;
- a queue-depth sweep showing the admission queue's backpressure
  (:class:`~repro.errors.QueueFull`) under a submit burst.

Requests are *paced* to a fixed per-request service-time floor
(:attr:`SchedulerConfig.paced_service_s`): the functional twin executes
tiny stand-in models in microseconds-to-milliseconds, so an unpaced run
on one core would measure the Python GIL, not the scheduler.  The floor
models the on-hardware execution time (cf. ``docs/calibration.md``:
TVM hot execution is ~66 ms on real SGX hardware) and -- because the
pacing sleep releases the GIL -- paced requests genuinely overlap
across TCS slots the way enclave threads do on real cores.  The
overlap is verified from the trace itself: the run reports the maximum
number of simultaneously-open ``ecall:EC_MODEL_INF`` spans and the
distinct ``tcs_slot`` attributes that served them.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.errors import QueueFull
from repro.mlrt.zoo import build_mobilenet

MODEL_ID = "conc-model"


def _max_overlap(spans: Iterable) -> int:
    """Peak number of simultaneously-open spans (sweep line)."""
    edges: List[tuple] = []
    for span in spans:
        if span.end_time is None:
            continue
        edges.append((span.start, 1))
        edges.append((span.end_time, -1))
    edges.sort()
    peak = current = 0
    for _, delta in edges:
        current += delta
        peak = max(peak, current)
    return peak


def _throughput_run(
    tcs_count: int,
    requests: int,
    paced_s: Optional[float],
    model_seed: int,
) -> dict:
    """Serve one paced batch on a fresh ``tcs_count``-TCS enclave."""
    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    config = default_semirt_config(tcs_count=tcs_count)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    scheduler = SchedulerConfig(
        queue_depth=max(16, requests), paced_service_s=paced_s
    )
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        session.infer(x)  # cold start: load + key fetch, off the clock
        env.tracer.clear()
        started = time.perf_counter()
        session.infer_many([x] * requests)
        elapsed = time.perf_counter() - started
        inf_spans = [
            s for s in env.tracer.finished_spans()
            if s.name == "ecall:EC_MODEL_INF"
        ]
        waits = [
            s.attributes["queue_wait"]
            for s in inf_spans
            if s.attributes.get("queue_wait") is not None
        ]
        result = {
            "tcs_count": tcs_count,
            "requests": requests,
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed,
            "max_overlap": _max_overlap(inf_spans),
            "tcs_slots": sorted(
                {s.attributes.get("tcs_slot") for s in inf_spans}
            ),
            "mean_queue_wait_ms": (
                1e3 * sum(waits) / len(waits) if waits else 0.0
            ),
        }
    host.destroy()
    return result


def _queue_sweep(
    tcs_count: int,
    queue_depths: Sequence[int],
    paced_s: Optional[float],
    model_seed: int,
) -> List[dict]:
    """Burst-submit against bounded queues, counting rejections."""
    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    config = default_semirt_config(tcs_count=tcs_count)
    handle = env.deploy(model, MODEL_ID, owner="owner", config=config)
    handle.grant("user")
    user = env.user("user")
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    enc = user.encrypt_request(MODEL_ID, handle.measurement, x)
    rows = []
    for depth in queue_depths:
        host = env.launch_semirt(
            "tvm",
            config=config,
            scheduler=SchedulerConfig(queue_depth=depth, paced_service_s=paced_s),
        )
        host.infer(enc, user.principal_id, MODEL_ID)  # cold start off the burst
        burst = 2 * (depth + tcs_count) + 4
        accepted, rejected, tickets = 0, 0, []
        for _ in range(burst):
            try:
                tickets.append(host.submit(enc, user.principal_id, MODEL_ID))
                accepted += 1
            except QueueFull:
                rejected += 1
        for ticket in tickets:
            host.result(ticket)
        host.destroy()
        rows.append(
            {
                "queue_depth": depth,
                "burst": burst,
                "accepted": accepted,
                "rejected": rejected,
            }
        )
    return rows


def run(
    requests: int = 24,
    paced_ms: float = 50.0,
    tcs_counts: Sequence[int] = (1, 4),
    queue_depths: Sequence[int] = (1, 4, 16),
    model_seed: int = 7,
) -> dict:
    """Measure hot-path throughput vs ``tcs_count`` plus the queue sweep.

    Returns a result dict with one throughput row per entry of
    ``tcs_counts``, the end-to-end ``speedup`` of the last entry over the
    first, and the backpressure sweep at the highest TCS count.
    """
    paced_s = paced_ms / 1e3 if paced_ms > 0 else None
    throughput = [
        _throughput_run(tcs, requests, paced_s, model_seed)
        for tcs in tcs_counts
    ]
    speedup = (
        throughput[-1]["throughput_rps"] / throughput[0]["throughput_rps"]
        if len(throughput) > 1
        else 1.0
    )
    sweep = _queue_sweep(max(tcs_counts), queue_depths, paced_s, model_seed)
    return {
        "requests": requests,
        "paced_ms": paced_ms,
        "throughput": throughput,
        "speedup": speedup,
        "queue_sweep": sweep,
    }


def format_report(result: dict) -> str:
    """Render the result dict as the two paper-style tables."""
    lines = [
        f"hot-path throughput, {result['requests']} requests, "
        f"paced to {result['paced_ms']:.0f} ms/request",
        f"{'tcs':>4} {'rps':>8} {'elapsed':>9} {'overlap':>8} "
        f"{'slots':>12} {'q-wait':>9}",
    ]
    for row in result["throughput"]:
        slots = ",".join(str(s) for s in row["tcs_slots"])
        lines.append(
            f"{row['tcs_count']:>4} {row['throughput_rps']:>8.1f} "
            f"{row['elapsed_s']:>8.2f}s {row['max_overlap']:>8} "
            f"{slots:>12} {row['mean_queue_wait_ms']:>7.1f}ms"
        )
    lines.append(f"speedup ({result['throughput'][-1]['tcs_count']} vs "
                 f"{result['throughput'][0]['tcs_count']} TCS): "
                 f"{result['speedup']:.2f}x")
    lines.append("")
    lines.append("admission-queue backpressure (submit burst, QueueFull counts)")
    lines.append(f"{'depth':>6} {'burst':>6} {'accepted':>9} {'rejected':>9}")
    for row in result["queue_sweep"]:
        lines.append(
            f"{row['queue_depth']:>6} {row['burst']:>6} "
            f"{row['accepted']:>9} {row['rejected']:>9}"
        )
    return "\n".join(lines)


def collect_trace(requests: int = 8, paced_ms: float = 50.0) -> list:
    """Spans of one small 4-TCS batch (for ``repro trace concurrency``)."""
    env = SeSeMIEnvironment()
    model = build_mobilenet()
    config = default_semirt_config(tcs_count=4)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    scheduler = SchedulerConfig(
        queue_depth=requests, paced_service_s=paced_ms / 1e3
    )
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        session.infer(x)
        session.infer_many([x] * requests)
    host.destroy()
    return env.tracer.finished_spans()
