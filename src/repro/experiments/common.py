"""Shared experiment scaffolding: testbeds, deployment, sweep helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.costs import CostModel
from repro.errors import RoutingError
from repro.routing import Router
from repro.scenarios.table import _fmt, format_table  # noqa: F401 (re-export)
from repro.core.simbridge import (
    ServableModel,
    iso_reuse_factory,
    native_factory,
    semirt_factory,
    servable_map,
    untrusted_factory,
)
from repro.mlrt.zoo import profile
from repro.obs.span import SimClock
from repro.obs.tracer import Tracer
from repro.serverless.action import ActionSpec, round_memory_budget
from repro.serverless.controller import PlatformConfig
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.storage import NFS, StorageProfile
from repro.sgx.epc import GB, MB
from repro.sgx.platform import SGX1, SGX2, HardwareProfile
from repro.sim.core import Simulation
from repro.workloads.driver import WorkloadDriver

SYSTEMS = ("Native", "Iso-reuse", "SeSeMI")


@dataclass
class Testbed:
    """One simulated cluster ready to run an experiment."""

    sim: Simulation
    platform: ServerlessPlatform
    cost: CostModel
    tracer: Optional[Tracer] = None

    @property
    def controller(self):
        return self.platform.controller


def make_testbed(
    num_nodes: int = 1,
    node_memory: int = 64 * GB,
    cores_per_node: int = 12,
    hardware: HardwareProfile = SGX2,
    storage: StorageProfile = NFS,
    config: Optional[PlatformConfig] = None,
    traced: bool = False,
) -> Testbed:
    """A cluster mirroring the paper's testbed defaults.

    With ``traced=True`` a :class:`~repro.obs.tracer.Tracer` on the
    simulation clock is attached to the controller, so every request
    produces a span tree in virtual time (``bed.tracer``).
    """
    sim = Simulation()
    tracer = Tracer(clock=SimClock(sim)) if traced else None
    platform = ServerlessPlatform(
        sim,
        num_nodes=num_nodes,
        node_memory=node_memory,
        cores_per_node=cores_per_node,
        hardware=hardware,
        storage_profile=storage,
        config=config,
        tracer=tracer,
    )
    cost = CostModel(hardware=hardware, storage=storage)
    return Testbed(sim=sim, platform=platform, cost=cost, tracer=tracer)


def sgx1_testbed(
    num_nodes: int = 1,
    cores_per_node: int = 10,
    node_memory: int = 12 * GB + 512 * MB,  # the 12.5 GB of Table V
    storage: StorageProfile = NFS,
) -> Testbed:
    """The EPC-limited SGX1 configuration (128 MB EPC, Xeon W-1290P)."""
    return make_testbed(
        num_nodes=num_nodes,
        node_memory=node_memory,
        cores_per_node=cores_per_node,
        hardware=SGX1,
        storage=storage,
    )


def system_factory(
    system: str,
    models: Dict[str, ServableModel],
    cost: CostModel,
    tcs_count: int = 1,
):
    """Runtime factory for one of the paper's three systems."""
    if system == "SeSeMI":
        return semirt_factory(models, cost, tcs_count=tcs_count)
    if system == "Iso-reuse":
        return iso_reuse_factory(models, cost)
    if system == "Native":
        return native_factory(models, cost)
    if system == "Untrusted":
        return untrusted_factory(models, cost)
    raise ValueError(f"unknown system {system!r}")


def action_budget(servable: ServableModel, tcs_count: int = 1) -> int:
    """The container memory budget for a model (smallest 128 MB multiple)."""
    total = servable.enclave_bytes + (tcs_count - 1) * servable.buffer_bytes
    return round_memory_budget(total)


def deploy_single_model(
    bed: Testbed,
    system: str,
    model_name: str,
    framework: str,
    tcs_count: int = 1,
    endpoint: str = "ep",
    model_id: str = "m",
) -> Dict[str, ServableModel]:
    """Deploy one model behind one endpoint for ``system``."""
    models = servable_map([(model_id, profile(model_name), framework)])
    spec = ActionSpec(
        name=endpoint,
        image=f"{system.lower()}-{framework}",
        memory_budget=action_budget(models[model_id], tcs_count),
        concurrency=tcs_count if system == "SeSeMI" else 1,
    )
    bed.platform.deploy(spec, system_factory(system, models, bed.cost, tcs_count))
    return models


class DirectRouter(Router):
    """Trivial router mapping every model id to a fixed endpoint."""

    def __init__(self, endpoint: str) -> None:
        self._endpoint = endpoint

    def endpoints(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """The single fixed endpoint."""
        return [(self._endpoint, ())]

    def route(self, model_id: str, now: float, exclude=frozenset()) -> str:
        """The fixed endpoint -- unless the caller has excluded it.

        ``exclude`` is the retry contract of :class:`~repro.routing.Router`:
        the caller already knows those endpoints cannot take the request,
        so returning one anyway would send the retry straight back into
        the failure.  With a single endpoint there is nowhere else to go.
        """
        if self._endpoint in exclude:
            raise RoutingError(
                f"endpoint {self._endpoint!r} is excluded and "
                "DirectRouter has no alternative"
            )
        return self._endpoint


def make_driver(bed: Testbed, router: Optional[Router] = None,
                endpoint: str = "ep") -> WorkloadDriver:
    """A workload driver bound to the testbed's controller."""
    return WorkloadDriver(bed.sim, bed.controller, router or DirectRouter(endpoint))


# format_table/_fmt live in repro.scenarios.table (stdlib-only, shared with
# the scenario compare/report CLI); re-exported above for the experiments.
