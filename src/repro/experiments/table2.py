"""Table II: the price of stronger isolation on hot invocations.

The strong-isolation build (single inference, key cache disabled,
sequential processing, runtime buffer cleared per request, Section V)
cannot take the hot path: every request re-fetches keys over the live
KeyService session and re-initialises the model runtime.  We measure
steady-state request latency (SeMIRT-managed stages) with and without
the restrictions.  Paper: 65.79 -> 268.36 ms (MBNET), 982.96 -> 1265.00
(RSNET), 388.81 -> 587.79 (DSNET) under TVM.
"""

from __future__ import annotations

from typing import List

from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import (
    action_budget,
    format_table,
    make_driver,
    make_testbed,
)
from repro.mlrt.zoo import PROFILES, profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival

PAPER_MS = {
    "TVM-MBNET": (65.79, 268.36),
    "TVM-RSNET": (982.96, 1265.00),
    "TVM-DSNET": (388.81, 587.79),
}


def _steady_state_seconds(model_name: str, strong_isolation: bool) -> float:
    bed = make_testbed(num_nodes=1)
    models = servable_map([("m", profile(model_name), "tvm")])
    factory = semirt_factory(
        models,
        bed.cost,
        tcs_count=1,
        key_cache=not strong_isolation,
        reuse_runtime=not strong_isolation,
    )
    spec = ActionSpec(
        name="ep", image="semirt",
        memory_budget=action_budget(models["m"]), concurrency=1,
    )
    bed.platform.deploy(spec, factory)
    driver = make_driver(bed)
    # Serve a few requests; the last one is steady state (hot, or the
    # strong-isolation equivalent of hot).
    driver.submit_arrivals(
        [Arrival(time=20.0 * i, model_id="m", user_id="u") for i in range(4)]
    )
    report = driver.run(until=600)
    last = max(report.results, key=lambda r: r.submitted_at)
    return sum(v for k, v in last.stage_seconds.items() if k != "sandbox_init")


def run() -> dict:
    """Measure steady-state latency with and without strong isolation."""
    rows: List[tuple] = []
    for model_name in PROFILES:
        without = _steady_state_seconds(model_name, strong_isolation=False)
        with_iso = _steady_state_seconds(model_name, strong_isolation=True)
        label = f"TVM-{model_name}"
        paper_without, paper_with = PAPER_MS[label]
        rows.append(
            (
                label,
                without * 1000,
                with_iso * 1000,
                with_iso / without,
                paper_without,
                paper_with,
            )
        )
    return {"rows": rows}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = [
        "config", "without (ms)", "with isolation (ms)", "slowdown",
        "paper without (ms)", "paper with (ms)",
    ]
    lines = [
        "Table II -- overhead of stronger isolation on hot invocations (TVM).",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
