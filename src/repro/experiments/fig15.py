"""Figures 15 & 16 (appendix): enclave launch and attestation overhead.

Figure 15: average enclave initialisation time as a function of the
number of enclaves launched concurrently, for several enclave sizes, on
SGX2 and SGX1.  Anchor: 16 concurrent 256 MB enclaves average ~4.06 s
each on SGX2; SGX1 grows faster because the combined launch set exceeds
its 128 MB EPC.

Figure 16: quote-generation latency under concurrent requests (quotes
serialise on the per-machine quoting enclave) -- <0.1 s at 1 enclave to
~1 s at 16 on SGX2 (DCAP); EPID on SGX1 is slower still because each
verification pays the Intel Attestation Service round trip.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sgx.epc import MB
from repro.sgx.platform import SGX1, SGX2
from repro.experiments.common import format_table

CONCURRENCY = (1, 2, 4, 8, 16)
SIZES_MB = (64, 128, 256)


def run() -> dict:
    """Evaluate the launch/attestation timing curves on both platforms."""
    init: Dict[str, List[tuple]] = {}
    quote: Dict[str, List[tuple]] = {}
    for hardware in (SGX2, SGX1):
        init_rows = []
        for size_mb in SIZES_MB:
            for n in CONCURRENCY:
                init_rows.append(
                    (size_mb, n, hardware.enclave_init_time(size_mb * MB, n))
                )
        init[hardware.name] = init_rows
        quote[hardware.name] = [
            (n, hardware.quote_time(n), hardware.attestation_round_time(n))
            for n in CONCURRENCY
        ]
    return {"init": init, "quote": quote}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    lines = [
        "Figure 15 -- enclave initialisation overhead vs concurrent launches.",
        "Anchor: 16x 256MB on SGX2 ~ 4.06s each (paper Appendix C).",
        "",
    ]
    for hw, rows in result["init"].items():
        lines.append(f"{hw}:")
        lines.append(format_table(["size (MB)", "concurrent", "init (s)"], rows))
        lines.append("")
    lines += [
        "Figure 16 -- remote attestation overhead vs concurrent quotes.",
        "Paper: <0.1s at 1 enclave to ~1s at 16 (SGX2/DCAP); EPID slower.",
        "",
    ]
    for hw, rows in result["quote"].items():
        lines.append(f"{hw}:")
        lines.append(
            format_table(["concurrent", "quote (s)", "quote+verify (s)"], rows)
        )
        lines.append("")
    return "\n".join(lines)
