"""Routed-throughput benchmark: one gateway, 1 vs 3 live endpoints.

The simulated twin's Tables III/IV measure FnPacker against baselines
in virtual time; this experiment measures the *functional* routing
plane: a three-model :class:`~repro.routing.FnPool` served through
:class:`~repro.core.gateway.InferenceGateway` by real SeMIRT enclaves,
first on a single endpoint, then on three.

A single hot model never spreads -- FnPacker Rule 1 pins it to its
pending endpoint on purpose -- so the fleet win comes from *packing*:
with three models in flight, exclusivity parks each model on its own
endpoint and the fleet serves them in parallel.  Requests are paced to
a fixed service-time floor for the same reason as the concurrency
benchmark (the stand-in models execute in microseconds; the floor
models on-hardware execution and its sleep releases the GIL, so routed
requests genuinely overlap).  Endpoints run ``tcs_count=1`` so that
every bit of parallelism in the numbers is the router's doing, not the
TCS scheduler's.  The default floor is higher than the concurrency
benchmark's because the *client* side here -- request encryption and
response decryption for six concurrent callers -- is GIL-bound Python;
the floor must dominate it for fleet width to show up in throughput.

Routing behaviour is verified from the trace: each run reports the
distinct endpoints that actually served traffic, how many requests ran
under an exclusive assignment, and how many were rerouted.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

import numpy as np

from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.mlrt.zoo import build_mobilenet
from repro.routing import FnPool

MODEL_IDS = ("gw-m0", "gw-m1", "gw-m2")


def _build_world(num_endpoints: int, requests: int, paced_s: Optional[float],
                 model_seed: int):
    """A deployed environment plus one gateway session per model."""
    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    config = default_semirt_config(tcs_count=1)
    for model_id in MODEL_IDS:
        env.deploy(model, model_id, owner="owner", config=config).grant("user")
    pool = FnPool(
        name="gw-bench", models=MODEL_IDS, memory_budget=0,
        num_endpoints=num_endpoints,
    )
    gateway = env.gateway(
        pool,
        config=config,
        scheduler=SchedulerConfig(
            queue_depth=max(16, requests), paced_service_s=paced_s
        ),
    )
    sessions = [
        env.session("user", model_id, config=config, gateway=gateway)
        for model_id in MODEL_IDS
    ]
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    return env, gateway, sessions, x


def _drive(sessions, x, requests: int, client_width: int) -> List[Exception]:
    """Serve ``requests`` round-robin over the models, ``client_width`` wide."""
    indices = iter(range(requests))
    guard = threading.Lock()
    errors: List[Exception] = []

    def worker() -> None:
        while True:
            with guard:
                index = next(indices, None)
            if index is None:
                return
            try:
                sessions[index % len(sessions)].infer(x)
            except Exception as exc:  # pragma: no cover - reported by caller
                errors.append(exc)
                return

    threads = [threading.Thread(target=worker) for _ in range(client_width)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def _routed_run(num_endpoints: int, requests: int, paced_s: Optional[float],
                client_width: int, model_seed: int) -> dict:
    """One timed batch through a fresh ``num_endpoints``-wide gateway."""
    env, gateway, sessions, x = _build_world(
        num_endpoints, requests, paced_s, model_seed
    )
    # Pre-launch every endpoint off the clock.  Pending counts only rise
    # at dispatch (after admission), so concurrent *cold* first requests
    # would all route to endpoint 0 while its enclave is still starting,
    # and the fleet would never spread.
    for endpoint, _ in gateway.router.endpoints():
        gateway.ensure_host(endpoint)
    # Concurrent warm-up over live hosts: overlapping first requests
    # spread the models across the fleet and prefetch their keys.
    errors = _drive(sessions, x, len(sessions), client_width=len(sessions))
    env.tracer.clear()
    started = time.perf_counter()
    errors += _drive(sessions, x, requests, client_width)
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    route_spans = [
        s for s in env.tracer.finished_spans() if s.name == "route"
    ]
    row = {
        "endpoints": num_endpoints,
        "requests": requests,
        "elapsed_s": elapsed,
        "throughput_rps": requests / elapsed,
        "endpoints_used": sorted(
            {s.attributes["endpoint"] for s in route_spans}
        ),
        "exclusive_requests": sum(
            1 for s in route_spans if s.attributes["exclusive"]
        ),
        "reroutes": sum(s.attributes["reroutes"] for s in route_spans),
    }
    gateway.close()
    return row


def run(
    requests: int = 24,
    paced_ms: float = 150.0,
    endpoint_counts=(1, 3),
    client_width: int = 6,
    model_seed: int = 7,
) -> dict:
    """Measure routed throughput for each fleet width in ``endpoint_counts``.

    Returns one row per width plus the ``speedup`` of the widest fleet
    over the narrowest -- the routed analogue of the concurrency
    benchmark's TCS speedup.
    """
    paced_s = paced_ms / 1e3 if paced_ms > 0 else None
    rows = [
        _routed_run(count, requests, paced_s, client_width, model_seed)
        for count in endpoint_counts
    ]
    speedup = (
        rows[-1]["throughput_rps"] / rows[0]["throughput_rps"]
        if len(rows) > 1
        else 1.0
    )
    return {
        "requests": requests,
        "paced_ms": paced_ms,
        "models": len(MODEL_IDS),
        "client_width": client_width,
        "runs": rows,
        "speedup": speedup,
    }


def format_report(result: dict) -> str:
    """Render the result dict as a small fleet-width table."""
    lines = [
        f"routed throughput, {result['requests']} requests over "
        f"{result['models']} models, paced to {result['paced_ms']:.0f} ms, "
        f"{result['client_width']} concurrent clients",
        f"{'fleet':>6} {'rps':>8} {'elapsed':>9} {'used':>5} "
        f"{'exclusive':>10} {'reroutes':>9}",
    ]
    for row in result["runs"]:
        lines.append(
            f"{row['endpoints']:>6} {row['throughput_rps']:>8.1f} "
            f"{row['elapsed_s']:>8.2f}s {len(row['endpoints_used']):>5} "
            f"{row['exclusive_requests']:>10} {row['reroutes']:>9}"
        )
    lines.append(
        f"speedup ({result['runs'][-1]['endpoints']} vs "
        f"{result['runs'][0]['endpoints']} endpoints): "
        f"{result['speedup']:.2f}x"
    )
    return "\n".join(lines)


def collect_trace(requests: int = 9, paced_ms: float = 50.0) -> list:
    """Spans of one routed batch on two endpoints (``repro trace gateway``)."""
    env, gateway, sessions, x = _build_world(
        2, requests, paced_ms / 1e3, model_seed=7
    )
    errors = _drive(sessions, x, requests, client_width=4)
    if errors:
        raise errors[0]
    gateway.close()
    return env.tracer.finished_spans()
