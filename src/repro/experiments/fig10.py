"""Figure 10: enclave memory saving from concurrent execution.

Serving *n* concurrent requests from one enclave needs the model once
plus one runtime buffer per thread; serving them from *n* single-thread
enclaves replicates the whole enclave.  The saving therefore depends on
λ = runtime-buffer-size / model-size: TFLM (small intermediate-only
buffers, λ << 1) saves far more than TVM (buffers embed weight copies,
λ > 1).  Paper headline: 86.2 % peak-memory saving for TFLM-RSNET at 8
threads.
"""

from __future__ import annotations

from typing import List

from repro.core.simbridge import ServableModel
from repro.experiments.common import format_table
from repro.mlrt.zoo import FRAMEWORKS, PROFILES

THREAD_COUNTS = (1, 2, 4, 8)


def memory_saving(servable: ServableModel, threads: int) -> float:
    """1 - shared-enclave memory / replicated-enclave memory."""
    shared = servable.enclave_bytes + (threads - 1) * servable.buffer_bytes
    replicated = threads * servable.enclave_bytes
    return 1.0 - shared / replicated


def run() -> dict:
    """Run the experiment; returns per-config saving rows and the peak."""
    rows: List[tuple] = []
    peak = ("", 0.0)
    for framework in FRAMEWORKS:
        for model_name, prof in PROFILES.items():
            servable = ServableModel(profile=prof, framework=framework)
            lam = prof.lam[framework]
            savings = [memory_saving(servable, n) for n in THREAD_COUNTS]
            label = f"{framework.upper()}-{model_name}"
            if savings[-1] > peak[1]:
                peak = (label, savings[-1])
            rows.append((label, lam, *savings))
    return {"rows": rows, "thread_counts": THREAD_COUNTS, "peak": peak}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = ["config", "lambda"] + [
        f"{n} threads" for n in result["thread_counts"]
    ]
    label, saving = result["peak"]
    lines = [
        "Figure 10 -- enclave memory saving vs concurrency",
        "(lambda = runtime buffer size / model size).",
        f"Peak saving: {label} at {saving:.1%} with 8 threads "
        "(paper: 86.2% for TFLM-RSNET).",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
