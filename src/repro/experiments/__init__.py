"""Experiment harnesses: one module per table/figure of the evaluation.

Each module exposes ``run()`` returning structured results and
``format_report(result)`` rendering paper-style rows.  The benchmark
suite under ``benchmarks/`` and the EXPERIMENTS.md generator both build
on these.

| paper artifact | module |
|---|---|
| Table I        | :mod:`repro.experiments.table1` |
| Figure 8       | :mod:`repro.experiments.fig8` |
| Figure 9       | :mod:`repro.experiments.fig9` |
| Figure 10      | :mod:`repro.experiments.fig10` |
| Figure 11a/b   | :mod:`repro.experiments.fig11` |
| Figure 12a-d   | :mod:`repro.experiments.fig12` |
| Figures 13/14  | :mod:`repro.experiments.fig13` |
| Table II       | :mod:`repro.experiments.table2` |
| Tables III/IV  | :mod:`repro.experiments.table34` |
| Figures 15/16  | :mod:`repro.experiments.fig15` |
| Figures 17/18  | :mod:`repro.experiments.fig17` |
"""
