"""Figure 12: single-node serving with hot invocations.

(a)/(b): fixed-rate sweeps of MBNET and RSNET under TVM on SGX2,
comparing Native / Iso-reuse / SeSeMI.  Expected shape: Native saturates
below 15 rps (per-request enclave launch + attestation), Iso-reuse and
SeSeMI coincide for MBNET (~46 rps, the platform ceiling) but diverge
for RSNET, whose expensive runtime init Iso-reuse repeats per request.

(c)/(d): the same sweep for SeSeMI on EPC-limited SGX1 hardware with
TVM vs TFLM and 1 vs 4 threads per enclave: TFLM sustains a higher rate
because its working set stays closer to the 128 MB EPC.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    deploy_single_model,
    format_table,
    make_driver,
    make_testbed,
    sgx1_testbed,
)
from repro.workloads.arrival import fixed_rate
from repro.workloads.metrics import LatencyStats, throughput_rps

#: the paper warms the sandbox instances up before measuring so that no
#: cold invocation is included (Section VI-B); we ramp the rate up in
#: steps so capacity is provisioned without a cold-start stampede, then
#: measure the final steady window.
RAMP_STEPS = (0.1, 0.25, 0.5)
RAMP_STEP_S = 40.0
STEADY_S = 120.0
MEASURE_S = 60.0


def _ramped_arrivals(rate: float):
    arrivals = []
    offset = 0.0
    for fraction in RAMP_STEPS:
        step_rate = max(rate * fraction, 0.2)
        step = fixed_rate(step_rate, RAMP_STEP_S, "m", "u")
        arrivals += [
            type(a)(time=a.time + offset, model_id=a.model_id, user_id=a.user_id)
            for a in step
        ]
        offset += RAMP_STEP_S
    steady = fixed_rate(rate, STEADY_S, "m", "u")
    arrivals += [
        type(a)(time=a.time + offset, model_id=a.model_id, user_id=a.user_id)
        for a in steady
    ]
    measure_from = offset + STEADY_S - MEASURE_S
    return arrivals, measure_from, offset + STEADY_S


def _sweep_point(bed, rate: float) -> tuple:
    driver = make_driver(bed)
    arrivals, measure_from, duration = _ramped_arrivals(rate)
    driver.submit_arrivals(arrivals)
    report = driver.run(until=duration + 900.0)
    measured = [r for r in report.results if r.submitted_at >= measure_from]
    stats = LatencyStats.of(measured)
    return throughput_rps(measured), stats.mean, stats.p95


def run_sgx2(
    model_name: str,
    rates=(5, 10, 15, 20, 30, 40, 46),
    systems=("Native", "Iso-reuse", "SeSeMI"),
) -> List[tuple]:
    """Rate sweep for one model on SGX2 across the three systems."""
    rows = []
    for system in systems:
        for rate in rates:
            bed = make_testbed(num_nodes=1)
            deploy_single_model(bed, system, model_name, "tvm")
            tput, mean, p95 = _sweep_point(bed, rate)
            rows.append((system, rate, tput, mean, p95))
    return rows


def run_sgx1(
    model_name: str = "MBNET",
    rates=(2, 5, 10, 14, 18, 22),
) -> List[tuple]:
    """Rate sweep on EPC-limited SGX1 across framework/thread variants."""
    rows = []
    for framework in ("tvm", "tflm"):
        for threads in (1, 4):
            label = f"{framework.upper()}-{threads}"
            for rate in rates:
                bed = sgx1_testbed(num_nodes=1)
                deploy_single_model(
                    bed, "SeSeMI", model_name, framework, tcs_count=threads
                )
                tput, mean, p95 = _sweep_point(bed, rate)
                rows.append((label, rate, tput, mean, p95))
    return rows


def run(quick: bool = False) -> dict:
    """Run the full figure (12a-d); ``quick`` shrinks the rate grids."""
    rates = (5, 20, 40) if quick else (5, 10, 15, 20, 30, 40, 46)
    sgx1_rates = (2, 10, 18) if quick else (2, 5, 10, 14, 18, 22)
    return {
        "mbnet": run_sgx2("MBNET", rates=rates),
        "rsnet": run_sgx2("RSNET", rates=(1, 2, 3, 5, 8) if quick else (1, 2, 3, 4, 5, 8, 12)),
        "sgx1": run_sgx1(rates=sgx1_rates),
    }


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = ["system", "offered rps", "tput rps", "mean (s)", "p95 (s)"]
    lines = [
        "Figure 12a -- MBNET (TVM, SGX2): Native saturates first; Iso-reuse",
        "and SeSeMI are close (the platform is the ceiling).",
        "",
        format_table(headers, result["mbnet"]),
        "",
        "Figure 12b -- RSNET (TVM, SGX2): Iso-reuse peaks below SeSeMI",
        "(it repeats model loading + runtime init per request).",
        "",
        format_table(headers, result["rsnet"]),
        "",
        "Figure 12c/d -- MBNET on SGX1 (128MB EPC): TFLM sustains higher",
        "rates than TVM; 4-thread enclaves beat 1-thread on memory.",
        "",
        format_table(["config", *headers[1:]], result["sgx1"]),
    ]
    return "\n".join(lines)
