"""Wall-clock benchmark for live hot-path micro-batching.

The simulation twin (``bench_ext_batching.py``) shows batching raising
saturation throughput above the unbatched CPU ceiling.  This experiment
measures the *functional* (real-crypto) half of the same claim: one
4-TCS :class:`~repro.core.semirt.SemirtHost` serving a hot batch via
``UserSession.infer_many``, with and without the scheduler's batch
accumulator (``SchedulerConfig.batch``).

Pacing here is **busy** (:attr:`SchedulerConfig.paced_busy`): the
worker holds the CPU for the service-time floor instead of sleeping it
off.  That models the compute-bound regime -- fewer cores than TCS
threads -- which is exactly where micro-batching pays: unbatched
workers contend for the CPU and serialise, while a batch leader spends
one sub-linear :meth:`~repro.core.batching.BatchPolicy.batch_cost_s`
floor for the whole batch.  (With the GIL as the stand-in single core,
the functional twin reproduces the regime faithfully.)  A sleep-paced
host, by contrast, overlaps singles perfectly across slots and has
nothing for batching to amortise -- that regime is what
``repro concurrency`` measures.

The batching win is verified from the trace itself: the run reports the
``ecall:EC_MODEL_INF_BATCH`` spans' ``batch_size`` distribution and the
total ``amortised_s`` they claim, alongside the measured speedup.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.batching import BatchPolicy
from repro.core.deployment import SeSeMIEnvironment
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.mlrt.zoo import build_mobilenet

MODEL_ID = "batch-model"


def _throughput_run(
    policy: Optional[BatchPolicy],
    requests: int,
    paced_s: float,
    tcs_count: int,
    model_seed: int,
) -> dict:
    """Serve one hot burst on a fresh host, batched or not."""
    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    config = default_semirt_config(tcs_count=tcs_count)
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    scheduler = SchedulerConfig(
        queue_depth=max(16, requests),
        paced_service_s=paced_s,
        paced_busy=True,
        batch=policy,
    )
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        session.infer(x)  # cold start: load + key fetch, off the clock
        env.tracer.clear()
        started = time.perf_counter()
        session.infer_many([x] * requests)
        elapsed = time.perf_counter() - started
        batch_spans = [
            s for s in env.tracer.finished_spans()
            if s.name == "ecall:EC_MODEL_INF_BATCH"
        ]
        single_spans = [
            s for s in env.tracer.finished_spans()
            if s.name == "ecall:EC_MODEL_INF"
        ]
        sizes: List[int] = sorted(
            s.attributes["batch_size"] for s in batch_spans
        )
        result = {
            "max_batch": policy.max_batch if policy is not None else 1,
            "requests": requests,
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed,
            "batch_ecalls": len(batch_spans),
            "single_ecalls": len(single_spans),
            "batch_sizes": sizes,
            "amortised_s": sum(
                s.attributes.get("amortised_s") or 0.0 for s in batch_spans
            ),
        }
    host.destroy()
    return result


def run(
    requests: int = 24,
    paced_ms: float = 80.0,
    max_batch: int = 4,
    window_ms: float = 50.0,
    tcs_count: int = 4,
    model_seed: int = 7,
) -> dict:
    """Hot-path throughput at batch ``max_batch`` vs batch 1, same host shape.

    Both runs use the same 4-TCS build and the same busy pacing floor;
    only ``SchedulerConfig.batch`` differs.  Returns the two rows plus
    ``speedup`` (batched over unbatched) -- the acceptance target is
    >= 1.5x at batch 4.
    """
    paced_s = paced_ms / 1e3
    unbatched = _throughput_run(None, requests, paced_s, tcs_count, model_seed)
    policy = BatchPolicy(
        batch_window_s=window_ms / 1e3, max_batch=max_batch, alpha=0.6
    )
    batched = _throughput_run(policy, requests, paced_s, tcs_count, model_seed)
    return {
        "requests": requests,
        "paced_ms": paced_ms,
        "tcs_count": tcs_count,
        "window_ms": window_ms,
        "unbatched": unbatched,
        "batched": batched,
        "speedup": batched["throughput_rps"] / unbatched["throughput_rps"],
    }


def format_report(result: dict) -> str:
    """Render the two rows plus the speedup line."""
    lines = [
        f"live hot-path micro-batching, {result['requests']} requests, "
        f"busy-paced to {result['paced_ms']:.0f} ms/request, "
        f"{result['tcs_count']} TCS",
        f"{'batch':>6} {'rps':>8} {'elapsed':>9} {'batch ecalls':>13} "
        f"{'sizes':>12} {'amortised':>10}",
    ]
    for row in (result["unbatched"], result["batched"]):
        sizes = ",".join(str(s) for s in row["batch_sizes"]) or "-"
        lines.append(
            f"{row['max_batch']:>6} {row['throughput_rps']:>8.1f} "
            f"{row['elapsed_s']:>8.2f}s {row['batch_ecalls']:>13} "
            f"{sizes:>12} {row['amortised_s']:>9.3f}s"
        )
    lines.append(
        f"speedup (batch {result['batched']['max_batch']} vs 1): "
        f"{result['speedup']:.2f}x"
    )
    return "\n".join(lines)


def collect_trace(requests: int = 8, paced_ms: float = 80.0) -> list:
    """Spans of one small batched burst (for ``repro trace batching``)."""
    env = SeSeMIEnvironment()
    model = build_mobilenet()
    config = default_semirt_config(tcs_count=4)
    scheduler = SchedulerConfig(
        queue_depth=max(16, requests),
        paced_service_s=paced_ms / 1e3,
        paced_busy=True,
        batch=BatchPolicy(batch_window_s=0.05, max_batch=4),
    )
    env.deploy(model, MODEL_ID, owner="owner", config=config).grant("user")
    host = env.launch_semirt("tvm", config=config, scheduler=scheduler)
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", MODEL_ID, config=config, semirt=host) as session:
        session.infer(x)
        session.infer_many([x] * requests)
    host.destroy()
    return env.tracer.finished_spans()
