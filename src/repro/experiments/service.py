"""Service-tier saturation benchmark: fast sheds, flat admitted p99.

The HTTP tier's whole job under overload is captured by two numbers:

* a **shed** request (429 from the admission controller) must cost
  microseconds server-side -- the decision runs on the event loop
  before any executor thread, gateway walk, or enclave work -- so its
  client-observed latency stays in single-digit milliseconds; and
* an **admitted** request must not get slower just because the tier is
  refusing work around it: with ``max_inflight_total`` pinned to the
  fleet's TCS capacity, every admitted request lands on an idle worker
  and its p99 stays within a small factor of the unsaturated baseline.

The benchmark measures both with real traffic: a live SeMIRT endpoint
(paced to a fixed service-time floor so the numbers model on-hardware
execution, exactly like the concurrency/gateway benchmarks), the real
service tier in front of it, and :class:`~repro.workloads.driver.
LiveLoadDriver` closed loops over :class:`~repro.service.client.
RemoteSession` -- first unsaturated (clients <= capacity), then with
several times more clients than inflight slots so most arrivals shed.

``run()`` emits the gate fields CI asserts on (``BENCH_service.json``):
``shed_p99_ms`` < 10, ``admitted_p99_ms`` <= 1.5x ``baseline_p99_ms``,
``hung == 0``, ``shed_count`` > 0.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import from_wire
from repro.core.deployment import SeSeMIEnvironment
from repro.core.gateway import GatewayConfig
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.mlrt.zoo import build_mobilenet
from repro.routing import FnPool
from repro.service import (
    InferenceService,
    RemoteEnvironment,
    ServiceConfig,
)
from repro.workloads.driver import LiveLoadDriver, LiveReport

MODEL_ID = "svc-mbnet"

#: shed requests must come back this fast even under full saturation
SHED_P99_GATE_MS = 10.0
#: admitted p99 under saturation, as a multiple of the unsaturated p99
ADMITTED_SLOWDOWN_GATE = 1.5


def build_world(
    *,
    tcs_count: int = 4,
    num_endpoints: int = 1,
    paced_s: Optional[float] = 0.04,
    queue_depth: int = 32,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: Optional[int] = None,
    model_seed: int = 7,
    background: bool = True,
    keep_alive_s: Optional[float] = None,
    min_warm: int = 1,
    warm_strategy: str = "lcs",
    prewarm: bool = False,
) -> Tuple[SeSeMIEnvironment, InferenceService]:
    """A deployed environment with the service tier already listening.

    ``max_inflight`` defaults to the fleet's TCS capacity
    (``tcs_count * num_endpoints``): admission then never queues work
    behind a busy enclave, which is what keeps admitted latency flat
    while everything beyond capacity sheds.  Setting ``keep_alive_s``
    arms the gateway's warm pool (``docs/warmpool.md``): the service
    sweeper then retires idle endpoints down to ``min_warm``, reuses
    warm ones per ``warm_strategy``, and optionally pre-warms ahead of
    demand.  The caller owns teardown: ``service.close()`` then
    ``env.gateways`` via the returned env's gateway handle
    (``service.gateway.close()``).
    """
    capacity = tcs_count * num_endpoints
    if max_inflight is None:
        max_inflight = capacity
    env = SeSeMIEnvironment()
    model = build_mobilenet(seed=model_seed)
    config = default_semirt_config(tcs_count=tcs_count)
    handle = env.deploy(model, MODEL_ID, owner="owner", config=config)
    pool = FnPool(
        name="svc-bench", models=(MODEL_ID,), memory_budget=0,
        num_endpoints=num_endpoints,
    )
    scheduler = SchedulerConfig(
        queue_depth=queue_depth, paced_service_s=paced_s
    )
    service_config = ServiceConfig(
        host=host,
        port=port,
        max_inflight_total=max_inflight,
        max_inflight_per_tenant=max_inflight,
        keep_alive_s=keep_alive_s,
        min_warm=min_warm,
        warm_strategy=warm_strategy,
        prewarm=prewarm,
    )
    gateway_config = None
    warm_pool = service_config.warm_pool(
        slots_per_endpoint=tcs_count,
        max_endpoints=max(num_endpoints, 8),
    )
    if warm_pool is not None:
        gateway_config = GatewayConfig(
            slots_per_endpoint=tcs_count, warm_pool=warm_pool
        )
    gateway = env.gateway(
        pool, config=config, scheduler=scheduler,
        gateway_config=gateway_config,
    )
    service = InferenceService(
        env, gateway, [handle],
        config=service_config,
        scheduler=scheduler,
    )
    if background:
        service.start_background()
    return env, service


def _connect(env: SeSeMIEnvironment, service: InferenceService,
             tracer=None) -> RemoteEnvironment:
    """A remote client attested against the in-process trust root."""
    remote = RemoteEnvironment(
        service.base_url, env.attestation, tracer=tracer
    )
    user = remote.connect_user("bench-user")
    remote.model(MODEL_ID).grant(user)
    return remote


def run(
    duration_s: float = 3.0,
    paced_ms: float = 200.0,
    tcs_count: int = 2,
    baseline_clients: int = 2,
    saturated_clients: int = 8,
    model_seed: int = 7,
) -> dict:
    """Two closed-loop phases against one live service; gate the deltas.

    Phase one runs ``baseline_clients`` (< capacity: no shedding) for
    the unsaturated latency floor; phase two runs ``saturated_clients``
    (well beyond the inflight slots) so most arrivals shed at
    admission.  Both phases reuse the same warm service so the
    comparison isolates saturation, not cold starts.

    The loops replay one pre-sealed request through the raw
    :class:`~repro.service.client.ServiceClient`: the server path is
    unchanged (admission, gateway walk, in-enclave decrypt/infer/seal
    all run), but the *client* skips its pure-Python AEAD per request
    -- at 12 GIL-sharing threads that crypto would dominate every
    latency number and the gates would measure the client, not the
    tier.  End-to-end crypto is exercised during warm-up and by
    :func:`collect_trace`.
    """
    paced_s = paced_ms / 1e3 if paced_ms > 0 else None
    env, service = build_world(
        tcs_count=tcs_count, paced_s=paced_s, model_seed=model_seed
    )
    try:
        remote = _connect(env, service)
        session = remote.session("bench-user", MODEL_ID)
        x = np.zeros(
            build_mobilenet(seed=model_seed).input_spec.shape,
            dtype=np.float32,
        )
        # warm off the clock: enclave launch, key release, first ECALL
        # (full client crypto on these two)
        for _ in range(2):
            session.infer(x)

        payload = {
            "model_id": MODEL_ID,
            "uid": session.user.principal_id,
            "enc_request": session.user.encrypt_request(
                MODEL_ID, session.measurement, x
            ),
        }

        def issue(client: int, seq: int) -> None:
            status, reply, _ = remote.client.request(
                "POST", "/v1/infer", payload
            )
            if status >= 400:
                raise from_wire(reply, status)

        driver = LiveLoadDriver(issue)
        baseline = driver.closed_loop(baseline_clients, duration_s)
        saturated = driver.closed_loop(
            saturated_clients, duration_s, think_s=0.005
        )
        stats = remote.stats()
        remote.close()
    finally:
        gateway = service.gateway
        service.close()
        gateway.close()

    result = {
        "duration_s": duration_s,
        "paced_ms": paced_ms,
        "tcs_count": tcs_count,
        "max_inflight": service.config.max_inflight_total,
        "baseline_clients": baseline_clients,
        "saturated_clients": saturated_clients,
        "baseline": baseline.summary(),
        "saturated": saturated.summary(),
        "admission": stats["admission"],
    }
    result.update(_gates(baseline, saturated))
    return result


def _gates(baseline: LiveReport, saturated: LiveReport) -> dict:
    """The flat gate fields CI asserts on, plus the pass/fail verdicts."""
    baseline_p99_ms = 1e3 * baseline.percentile_s(0.99)
    admitted_p99_ms = 1e3 * saturated.percentile_s(0.99)
    shed_p99_ms = 1e3 * saturated.percentile_s(0.99, "sheds")
    shed_count = len(saturated.sheds())
    hung = baseline.hung + saturated.hung
    gates = {
        "sheds_happened": shed_count > 0,
        "sheds_fast": shed_p99_ms < SHED_P99_GATE_MS,
        "admitted_flat": (
            admitted_p99_ms <= ADMITTED_SLOWDOWN_GATE * baseline_p99_ms
        ),
        "no_hangs": hung == 0,
    }
    return {
        "baseline_p99_ms": baseline_p99_ms,
        "admitted_p99_ms": admitted_p99_ms,
        "shed_p99_ms": shed_p99_ms,
        "shed_count": shed_count,
        "hung": hung,
        "gates": gates,
        "pass": all(gates.values()),
    }


def format_report(result: dict) -> str:
    """Render the two phases and the gate verdicts as a small table."""
    lines = [
        f"service tier over 1 endpoint x {result['tcs_count']} TCS, "
        f"paced to {result['paced_ms']:.0f} ms, "
        f"max_inflight={result['max_inflight']}, "
        f"{result['duration_s']:.0f}s per phase",
        f"{'phase':>10} {'clients':>8} {'admitted':>9} {'shed':>6} "
        f"{'p50':>8} {'p99':>8} {'shed p99':>9}",
    ]
    for phase, clients in (
        ("baseline", result["baseline_clients"]),
        ("saturated", result["saturated_clients"]),
    ):
        row = result[phase]
        lines.append(
            f"{phase:>10} {clients:>8} {row['admitted']:>9} "
            f"{row['shed']:>6} {row['admitted_p50_ms']:>7.1f}m "
            f"{row['admitted_p99_ms']:>7.1f}m {row['shed_p99_ms']:>8.2f}m"
        )
    verdicts = ", ".join(
        f"{name}={'ok' if ok else 'FAIL'}"
        for name, ok in result["gates"].items()
    )
    lines.append(
        f"gates: {verdicts} -> {'PASS' if result['pass'] else 'FAIL'}"
    )
    return "\n".join(lines)


def collect_trace(paced_ms: float = 40.0) -> list:
    """Spans of one HTTP inference, client and server trees in one dump.

    The client span (``request``, ``transport=http``) carries
    ``server_trace_id`` pointing at the server's ``http:infer`` root,
    under which the route and ECALL spans parent -- the CI smoke job
    asserts exactly this client -> service -> gateway -> ECALL chain.
    """
    env, service = build_world(paced_s=paced_ms / 1e3)
    try:
        # share the tracer so client and server spans land in one dump
        remote = _connect(env, service, tracer=env.tracer)
        session = remote.session("bench-user", MODEL_ID)
        x = np.zeros(
            build_mobilenet(seed=7).input_spec.shape, dtype=np.float32
        )
        session.infer(x)
        session.infer(x)
        remote.close()
    finally:
        gateway = service.gateway
        service.close()
        gateway.close()
    return env.tracer.finished_spans()
