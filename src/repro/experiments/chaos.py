"""Chaos experiment: fault rate vs availability and tail latency.

For each sweep point we run the *same* deterministic fault schedule
(seeded :class:`~repro.faults.plan.FaultPlan`: wire drop/corrupt/delay,
SeMIRT enclave crashes, one KeyService shard crash/restart cycle)
against two configurations of the functional twin:

- **resilient** -- a two-shard :class:`~repro.core.keyfleet.KeyServiceFleet`
  behind a :class:`~repro.core.keyfleet.FailoverEndpoint`, with the
  retry/deadline/breaker machinery of :mod:`repro.faults.resilience`
  enabled on :meth:`~repro.core.deployment.UserSession.infer`;
- **baseline** -- the same fleet, but requests pinned to the user's
  primary shard and every failure surfaced to the caller (the paper's
  implicit deployment model).

Latency is measured on a :class:`~repro.obs.span.LogicalClock`: every
timed operation advances one tick, so retries, re-attestations, and
cold relaunches lengthen a request by a deterministic number of ticks
and the whole report -- availability, percentiles, fault counts -- is a
pure function of the seed.  That is what lets CI assert byte-identical
JSON across runs (the ``chaos-smoke`` job).

The key cache is disabled (`IsolationSettings(key_cache=False)`) so
every request performs KEY_PROVISIONING: a KeyService shard outage is
on the critical path of the whole workload, not just the first request.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.client import OwnerClient, UserClient
from repro.core.deployment import SeSeMIEnvironment
from repro.core.keyfleet import FailoverEndpoint, KeyServiceFleet
from repro.core.semirt import IsolationSettings
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.mlrt.zoo import build_mobilenet
from repro.obs.span import LogicalClock
from repro.obs.tracer import Tracer
from repro.sgx.attestation import AttestationService

#: the two models the workload alternates between (same input shape)
MODEL_IDS = ("chaos-m1", "chaos-m2")

#: sweep points: (wire fault rate, enclave crash rate, shard outages)
SWEEP = ((0.0, 0.0, 1), (0.06, 0.02, 1), (0.15, 0.04, 1))
QUICK_SWEEP = ((0.0, 0.0, 1), (0.15, 0.04, 1))


def _fixed_key(label: str) -> SymmetricKey:
    """A deterministic identity key (stable id => stable shard homes)."""
    return SymmetricKey(sha256(label.encode())[:16])


def _user_primary_shard(num_shards: int = 2) -> int:
    """The fixed chaos user's primary shard (hash placement, no fleet)."""
    uid = _fixed_key("user").fingerprint
    return int(uid[:8], 16) % num_shards


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def _count_events(spans, name: str) -> int:
    """Total occurrences of span event ``name`` across a span dump."""
    return sum(
        1
        for span in spans
        for event in span.events
        if event["name"] == name
    )


def _run_mode(
    seed: int,
    requests: int,
    plan: FaultPlan,
    resilient: bool,
    warmup: int = 2,
):
    """One chaos run: fixed plan, one resilience configuration.

    Builds a fresh two-shard fleet + environment, replicates the
    principals' registrations and key releases onto every home shard of
    the user, then serves ``requests`` alternating-model inferences
    while the injector executes the plan.  Returns ``(metrics, spans)``.
    """
    tracer = Tracer(service="chaos", clock=LogicalClock())
    attestation = AttestationService()
    fleet = KeyServiceFleet(2, attestation)
    injector = FaultInjector(plan, tracer=tracer)
    injector.on(
        FaultKind.SHARD_CRASH,
        lambda event: fleet.kill_shard(event.params["shard"]),
    )
    injector.on(
        FaultKind.SHARD_RESTART,
        lambda event: fleet.restart_shard(event.params["shard"]),
    )

    owner = OwnerClient("chaos-owner", tracer=tracer, identity_key=_fixed_key("owner"))
    user = UserClient("chaos-user", tracer=tracer, identity_key=_fixed_key("user"))
    uid = user.identity_key.fingerprint
    if resilient:
        endpoint = FailoverEndpoint(fleet, uid, tracer=tracer)
        policy: Optional[ResiliencePolicy] = ResiliencePolicy(seed=seed)
    else:
        endpoint = fleet.shard_for(uid)  # pinned to the primary, no failover
        policy = None
    env = SeSeMIEnvironment(
        tracer=tracer,
        attestation=attestation,
        keyservice=endpoint,
        injector=injector,
        resilience=policy,
    )

    # fault-free setup (the injector is not armed yet): deploy both
    # models once, then replicate registration + key release onto every
    # home shard of the user -- RA-TLS terminates inside the enclave, so
    # replication is necessarily client-side.
    isolation = IsolationSettings(key_cache=False)
    models = {
        MODEL_IDS[0]: build_mobilenet(seed=7),
        MODEL_IDS[1]: build_mobilenet(seed=8),
    }
    for model_id, model in models.items():
        owner.deploy_model(model, model_id, env.storage)
    enclave_id = env.expected_semirt("tvm", None, isolation)
    for shard_index in fleet.homes_for(uid):
        shard = fleet.shards[shard_index]
        owner.connect(shard, attestation, fleet.measurement)
        owner.register()
        user.connect(shard, attestation, fleet.measurement)
        user.register()
        for model_id in MODEL_IDS:
            owner.add_model_key(model_id)
            owner.grant_access(model_id, enclave_id, uid)
            user.add_request_key(model_id, enclave_id)
    env.adopt_user(user)

    sessions = [
        env.session(user, model_id, isolation=isolation)
        for model_id in MODEL_IDS
    ]
    x = np.zeros(models[MODEL_IDS[0]].input_spec.shape, dtype=np.float32)
    clock = tracer.clock
    ok = 0
    failed = 0
    durations: List[float] = []
    for index in range(requests):
        if index == warmup:
            injector.arm()
        injector.step()
        session = sessions[index % len(sessions)]
        started = clock.now()
        try:
            session.infer(x)
        except ReproError:
            failed += 1
        else:
            ok += 1
            durations.append(clock.now() - started)
    for session in sessions:
        session.close()

    spans = tracer.finished_spans()
    durations.sort()
    metrics = {
        "availability": ok / requests,
        "ok": ok,
        "failed": failed,
        "p50_ticks": _percentile(durations, 0.50),
        "p99_ticks": _percentile(durations, 0.99),
        "retries": _count_events(spans, "retry"),
        "reattests": _count_events(spans, "keyservice_reattest"),
        "failovers": getattr(endpoint, "failovers", 0),
        "faults": injector.counts(),
        "spans": len(spans),
    }
    return metrics, spans


def run(
    seed: int = 2025,
    requests: int = 40,
    quick: bool = False,
) -> dict:
    """Sweep fault rate against availability/latency, both modes.

    Every number in the result is a pure function of ``seed`` and the
    arguments -- run it twice and the JSON matches byte for byte.  The
    sweep is declared as a :class:`~repro.scenarios.ScenarioSpec`
    (``chaos_spec``) whose fault grid is data; the scenario runner
    executes it through :func:`_run_mode` above.
    """
    from repro.scenarios import chaos_spec, run_scenario

    spec = chaos_spec(seed=seed, requests=requests, quick=quick)
    result = run_scenario(spec)
    return {
        "seed": seed,
        "requests": spec.workload.requests,
        "points": result.metrics["points"],
    }


def collect_trace(seed: int = 2025, requests: int = 24) -> list:
    """Span dump of one resilient chaos run (for ``repro trace chaos``).

    The trace shows fault events (``fault:*``), re-attestations, retries
    and failovers inline on the request spans -- the recovery story of
    one deterministic outage, in chrome://tracing form.
    """
    plan = FaultPlan.from_seed(
        seed, requests, wire_rate=0.1, crash_rate=0.04,
        shard_outages=1, num_shards=2, target_shard=_user_primary_shard(),
    )
    _, spans = _run_mode(seed, requests, plan, resilient=True)
    return spans


def format_report(result: dict) -> str:
    """Render the sweep as a paper-style text table."""
    from repro.experiments.common import format_table

    headers = [
        "wire rate", "crash rate", "mode", "avail", "ok/failed",
        "p50 ticks", "p99 ticks", "retries", "reattests", "failovers",
    ]
    rows = []
    for point in result["points"]:
        for mode in ("resilient", "baseline"):
            metrics = point["modes"][mode]
            rows.append(
                (
                    point["wire_rate"],
                    point["crash_rate"],
                    mode,
                    f"{metrics['availability']:.3f}",
                    f"{metrics['ok']}/{metrics['failed']}",
                    metrics["p50_ticks"],
                    metrics["p99_ticks"],
                    metrics["retries"],
                    metrics["reattests"],
                    metrics["failovers"],
                )
            )
    lines = [
        "Chaos sweep -- deterministic fault injection vs the resilience",
        f"layer (seed {result['seed']}, {result['requests']} requests per run,",
        "one KeyService shard outage per point; key cache disabled so every",
        "request crosses KeyService).",
        "",
        format_table(headers, rows),
    ]
    return "\n".join(lines)
