"""Tables III & IV: FnPacker under infrequent, unpredictable traffic.

The workload (Section VI-D, MLPerf-style) mixes Poisson streams to two
popular models (``m0``, ``m1`` at 2 rps for 8 minutes) with two
interactive sessions (~minutes 4 and 6) that query ``m0``..``m4``
sequentially.  All five models are TVM-RSNET instances with different
ids.  Three deployment strategies are compared:

- **All-in-one**: one endpoint serves every model -> the Poisson streams
  interfere and sandboxes keep swapping models;
- **One-to-one**: one endpoint per model -> the first session pays a
  full cold start for each of ``m2``..``m4``;
- **FnPacker**: popular models get exclusive endpoints; the session's
  infrequent models share one warm endpoint, so only the first of them
  cold-starts.

Table III reports the average latency of the Poisson requests; Table IV
the per-model latency inside each session.
"""

from __future__ import annotations


from repro.experiments.common import format_table
from repro.scenarios import run_scenario, table34_spec
from repro.workloads.metrics import LatencyStats

MODEL_IDS = ("m0", "m1", "m2", "m3", "m4")
STRATEGIES = ("All-in-one", "One-to-one", "FnPacker")


def _reshape(metrics: dict) -> dict:
    """One strategy's runner metrics in the report's historical form."""
    poisson = metrics["poisson"]
    return {
        "poisson_stats": LatencyStats(
            count=poisson["count"],
            mean=poisson["mean_s"],
            p50=poisson["p50_s"],
            p95=poisson["p95_s"],
            p99=poisson["p99_s"],
            max=poisson["max_s"],
        ),
        "sessions": {
            (int(key.split(":", 1)[0]), key.split(":", 1)[1]): latency
            for key, latency in metrics["sessions"].items()
        },
        "cold_starts": metrics["cold_starts"],
    }


def run_strategy(strategy: str, duration_s: float = 480.0, seed: int = 2025,
                 idle_interval_s: float = 10.0) -> dict:
    """Run the mixed workload under one deployment strategy.

    Declared as a single-router :class:`~repro.scenarios.ScenarioSpec`
    (``table34_spec``) and executed by the scenario runner.
    """
    spec = table34_spec(
        duration_s=duration_s, seed=seed, strategies=(strategy,),
        idle_interval_s=idle_interval_s,
    )
    result = run_scenario(spec)
    return _reshape(result.metrics["strategies"][strategy])


def run(duration_s: float = 480.0) -> dict:
    """Run the workload under all three strategies (one spec, one sweep)."""
    spec = table34_spec(duration_s=duration_s, strategies=STRATEGIES)
    result = run_scenario(spec)
    return {
        strategy: _reshape(result.metrics["strategies"][strategy])
        for strategy in STRATEGIES
    }


def format_report(result: dict) -> str:
    """Render Tables III and IV as paper-style text tables."""
    table3_rows = [
        (
            strategy,
            data["poisson_stats"].mean * 1000,
            data["poisson_stats"].p95 * 1000,
            data["cold_starts"],
        )
        for strategy, data in result.items()
    ]
    lines = [
        "Table III -- average latency of Poisson traffic to m0/m1 (ms).",
        "Paper: All-in-one 1700.50, One-to-one 1456.01, FnPacker 1465.79.",
        "",
        format_table(
            ["strategy", "avg latency (ms)", "p95 (ms)", "cold starts"], table3_rows
        ),
        "",
        "Table IV -- interactive session latency per model (ms).",
        "Paper: One-to-one pays ~9.4-9.9s colds for m2-m4 in session 1;",
        "FnPacker cold-starts only m2; session 2 is warm everywhere.",
        "",
    ]
    for session_index in (1, 2):
        rows = []
        for model_id in MODEL_IDS:
            row = [model_id]
            for strategy in STRATEGIES:
                latency = result[strategy]["sessions"].get((session_index, model_id))
                row.append(latency * 1000 if latency is not None else float("nan"))
            rows.append(tuple(row))
        lines.append(f"Session {session_index}:")
        lines.append(format_table(["model", *STRATEGIES], rows))
        lines.append("")
    return "\n".join(lines)
