"""Tables III & IV: FnPacker under infrequent, unpredictable traffic.

The workload (Section VI-D, MLPerf-style) mixes Poisson streams to two
popular models (``m0``, ``m1`` at 2 rps for 8 minutes) with two
interactive sessions (~minutes 4 and 6) that query ``m0``..``m4``
sequentially.  All five models are TVM-RSNET instances with different
ids.  Three deployment strategies are compared:

- **All-in-one**: one endpoint serves every model -> the Poisson streams
  interfere and sandboxes keep swapping models;
- **One-to-one**: one endpoint per model -> the first session pays a
  full cold start for each of ``m2``..``m4``;
- **FnPacker**: popular models get exclusive endpoints; the session's
  infrequent models share one warm endpoint, so only the first of them
  cold-starts.

Table III reports the average latency of the Poisson requests; Table IV
the per-model latency inside each session.
"""

from __future__ import annotations


from repro.routing import AllInOneRouter, FnPackerRouter, FnPool, OneToOneRouter
from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import action_budget, format_table, make_testbed
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.driver import WorkloadDriver
from repro.workloads.metrics import LatencyStats
from repro.workloads.mlperf import build_fnpacker_workload

MODEL_IDS = ("m0", "m1", "m2", "m3", "m4")
STRATEGIES = ("All-in-one", "One-to-one", "FnPacker")


def _make_router(strategy: str, pool: FnPool, idle_interval_s: float = 10.0):
    if strategy == "FnPacker":
        return FnPackerRouter(pool, idle_interval_s=idle_interval_s)
    if strategy == "One-to-one":
        return OneToOneRouter(pool)
    if strategy == "All-in-one":
        return AllInOneRouter(pool)
    raise ValueError(strategy)


def run_strategy(strategy: str, duration_s: float = 480.0, seed: int = 2025,
                 idle_interval_s: float = 10.0) -> dict:
    """Run the mixed workload under one deployment strategy."""
    bed = make_testbed(num_nodes=8)
    prof = profile("RSNET")
    pool = FnPool(name="pool", models=MODEL_IDS, memory_budget=0)
    router = _make_router(strategy, pool, idle_interval_s)
    models = servable_map([(m, prof, "tvm") for m in MODEL_IDS])
    for endpoint, servable_ids in router.endpoints():
        subset = {m: models[m] for m in servable_ids} if servable_ids else models
        spec = ActionSpec(
            name=endpoint,
            image="semirt",
            memory_budget=action_budget(next(iter(subset.values()))),
            concurrency=1,
        )
        bed.platform.deploy(spec, semirt_factory(subset, bed.cost))
    workload = build_fnpacker_workload(duration_s=duration_s, seed=seed)
    driver = WorkloadDriver(bed.sim, bed.controller, router)
    driver.submit_arrivals(workload.arrivals)
    for index, session in enumerate(workload.sessions, start=1):
        driver.submit_session(session, index=index)
    report = driver.run(until=duration_s + 3000.0)
    poisson_results = [
        r for r in report.results if r.request.user_id in ("alice", "bob")
    ]
    return {
        "poisson_stats": LatencyStats.of(poisson_results),
        "sessions": {
            key: result.latency for key, result in report.session_results.items()
        },
        "cold_starts": bed.controller.cold_starts,
    }


def run(duration_s: float = 480.0) -> dict:
    """Run the workload under all three strategies."""
    return {
        strategy: run_strategy(strategy, duration_s=duration_s)
        for strategy in STRATEGIES
    }


def format_report(result: dict) -> str:
    """Render Tables III and IV as paper-style text tables."""
    table3_rows = [
        (
            strategy,
            data["poisson_stats"].mean * 1000,
            data["poisson_stats"].p95 * 1000,
            data["cold_starts"],
        )
        for strategy, data in result.items()
    ]
    lines = [
        "Table III -- average latency of Poisson traffic to m0/m1 (ms).",
        "Paper: All-in-one 1700.50, One-to-one 1456.01, FnPacker 1465.79.",
        "",
        format_table(
            ["strategy", "avg latency (ms)", "p95 (ms)", "cold starts"], table3_rows
        ),
        "",
        "Table IV -- interactive session latency per model (ms).",
        "Paper: One-to-one pays ~9.4-9.9s colds for m2-m4 in session 1;",
        "FnPacker cold-starts only m2; session 2 is warm everywhere.",
        "",
    ]
    for session_index in (1, 2):
        rows = []
        for model_id in MODEL_IDS:
            row = [model_id]
            for strategy in STRATEGIES:
                latency = result[strategy]["sessions"].get((session_index, model_id))
                row.append(latency * 1000 if latency is not None else float("nan"))
            rows.append(tuple(row))
        lines.append(f"Session {session_index}:")
        lines.append(format_table(["model", *STRATEGIES], rows))
        lines.append("")
    return "\n".join(lines)
