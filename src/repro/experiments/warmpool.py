"""Warm-pool benchmark: cold-start elimination across reuse policies.

Four fleet policies serve the same seeded workloads through the *real*
:class:`~repro.warmpool.WarmPoolManager` in pure virtual time:

- **none** -- no keep-alive: every endpoint is torn down the moment its
  request completes, so every arrival that finds no concurrent sibling
  pays the full enclave cold start (the serverless default SeSeMI's
  FnPacker exists to beat);
- **lcs** -- keep-alive with oldest-idle reuse: every reuse refreshes
  the endpoint closest to its keep-alive deadline, maximising the warm
  pool;
- **mru** -- keep-alive with newest-idle reuse: the idle tail ages out
  and the janitor retires it, trading warm hits for a smaller fleet;
- **lcs+predictive** -- LCS plus the EWMA pre-warmer launching
  endpoints ahead of predicted demand, so even fleet growth lands warm.

Two workloads: the Table III/IV FnPacker mix's Poisson streams (two
2 rps streams to two models) and the Figure 13 MMPP trace (mean rate
flipping 20 <-> 40 rps), both seeded.  Latencies come from the shared
:class:`~repro.core.costs.CostModel`: a cold dispatch pays enclave
init + key retrieval + runtime init, a warm one runtime init only, a
hot one just the execution -- so the cold/warm/hot split the manager
reports *is* the latency story.

The simulator is deterministic end to end (event heap ordered by time
then kind, the manager never reads a clock), so the same seed produces
a byte-identical warm-pool decision log -- ``decision_log_digest`` in
the result, gated in CI, plus ``repro warmpool`` writing
``BENCH_warmpool.json`` with the >= 3x cold-start-reduction floor.

A third scenario demonstrates scale-to-zero: a burst grows the fleet,
traffic stops, and janitor sweeps shrink it to the ``min_warm`` floor
(the fleet-size timeline is in the result).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.costs import CostModel
from repro.mlrt.zoo import profile
from repro.serverless.storage import NFS
from repro.sgx.platform import SGX2
from repro.routing import ScaleOutPolicy
from repro.warmpool import PredictorPolicy, WarmPoolConfig, WarmPoolManager
from repro.workloads.arrival import Arrival, merge_arrivals, mmpp, poisson
from repro.workloads.mlperf import build_fnpacker_workload

POLICIES = ("none", "lcs", "mru", "lcs+predictive")
WORKLOADS = ("poisson", "mmpp")

#: event-kind priorities: completions free endpoints before the
#: maintenance tick sees them, and both run before same-time arrivals
_COMPLETE, _MAINTAIN, _ARRIVAL = 0, 1, 2

#: cold-start reduction the CI gate asserts (predictive LCS vs none)
REDUCTION_GATE = 3.0


@dataclass
class _Endpoint:
    """The simulator's view of one live single-slot endpoint."""

    name: str
    busy: bool = False


class FleetSim:
    """A virtual-time fleet driven by one :class:`WarmPoolManager`.

    Endpoints are single-slot (one request at a time); requests that
    find the fleet saturated at ``max_endpoints`` queue FIFO.  All
    policy decisions -- which warm endpoint to reuse, when to retire,
    when to pre-warm -- come from the manager; the simulator only
    models time.
    """

    def __init__(
        self,
        manager: WarmPoolManager,
        cost: "LatencyTable",
        *,
        teardown_on_complete: bool = False,
        maintenance_s: float = 1.0,
    ) -> None:
        self.manager = manager
        self.cost = cost
        self.teardown_on_complete = teardown_on_complete
        self.maintenance_s = maintenance_s
        self.endpoints: Dict[str, _Endpoint] = {}
        self.queue: List[Tuple[str, str, float]] = []  # (model, user, t_arrive)
        self.latencies: List[float] = []
        self.temperatures: Dict[str, int] = {"cold": 0, "warm": 0, "hot": 0}
        self.fleet_timeline: List[Tuple[float, int]] = []
        self._seq = 0
        self._launch_seq = 0

    # -- driving -------------------------------------------------------------------

    def run(self, arrivals: List[Arrival], until: float) -> None:
        """Serve ``arrivals`` with maintenance ticks up to ``until``."""
        heap: List[Tuple[float, int, int, str, object]] = []
        for a in arrivals:
            self._push(heap, a.time, _ARRIVAL, (a.model_id, a.user_id))
        t = 0.0
        while t < until:
            self._push(heap, t, _MAINTAIN, None)
            t += self.maintenance_s
        while heap:
            now, kind, payload = self._pop(heap)
            if kind == _COMPLETE:
                self._complete(now, payload, heap)
            elif kind == _MAINTAIN:
                self._maintain(now)
            else:
                self._arrive(now, payload, heap)

    def _push(self, heap, time_s: float, kind: int, payload) -> None:
        self._seq += 1
        heapq.heappush(heap, (time_s, kind, self._seq, payload))

    def _pop(self, heap):
        time_s, kind, seq, payload = heapq.heappop(heap)
        return time_s, kind, payload

    # -- event handlers -------------------------------------------------------------

    def _arrive(self, now: float, payload, heap) -> None:
        model_id, user_id = payload
        endpoint = self.manager.suggest(model_id, now)
        if endpoint is not None and not self.endpoints[endpoint].busy:
            self._dispatch(now, endpoint, model_id, now, launched=False, heap=heap)
            return
        if len(self.endpoints) < self.manager.config.max_endpoints:
            endpoint = self._launch(now, prewarmed=False)
            self._dispatch(now, endpoint, model_id, now, launched=True, heap=heap)
            return
        self.queue.append((model_id, user_id, now))

    def _dispatch(
        self,
        now: float,
        endpoint: str,
        model_id: str,
        arrived_at: float,
        launched: bool,
        heap,
    ) -> None:
        temperature = self.manager.on_dispatch(
            endpoint, model_id, now, launched=launched
        )
        self.temperatures[temperature] += 1
        service_s = self.cost.service_s(temperature)
        self.endpoints[endpoint].busy = True
        done = now + service_s
        self.latencies.append(done - arrived_at)
        self._push(heap, done, _COMPLETE, (endpoint, model_id))

    def _complete(self, now: float, payload, heap) -> None:
        endpoint, model_id = payload
        self.manager.on_complete(endpoint, model_id, now)
        self.endpoints[endpoint].busy = False
        if self.teardown_on_complete:
            self._retire(now, endpoint, reason="baseline")
        if self.queue:
            model_id, _user, arrived_at = self.queue.pop(0)
            target = self.manager.suggest(model_id, now)
            if target is None or self.endpoints[target].busy:
                if len(self.endpoints) < self.manager.config.max_endpoints:
                    target = self._launch(now, prewarmed=False)
                    self._dispatch(
                        now, target, model_id, arrived_at, launched=True, heap=heap
                    )
                else:
                    self.queue.insert(0, (model_id, _user, arrived_at))
                return
            self._dispatch(
                now, target, model_id, arrived_at, launched=False, heap=heap
            )

    def _maintain(self, now: float) -> None:
        self.fleet_timeline.append((now, len(self.endpoints)))
        if self.teardown_on_complete:
            return
        if self.manager.sweep_due(now):
            for victim in self.manager.sweep(now):
                if not self.endpoints[victim].busy:
                    self._retire(now, victim, reason="janitor")
        for _ in range(self.manager.prewarm_count(now)):
            if len(self.endpoints) >= self.manager.config.max_endpoints:
                break
            self._launch(now, prewarmed=True)

    # -- fleet ---------------------------------------------------------------------

    def _launch(self, now: float, prewarmed: bool) -> str:
        name = f"ep{self._launch_seq}"
        self._launch_seq += 1
        self.endpoints[name] = _Endpoint(name=name)
        self.manager.on_launch(
            name, now, cold_start_s=self.cost.cold_start_s, prewarmed=prewarmed
        )
        return name

    def _retire(self, now: float, endpoint: str, reason: str) -> None:
        del self.endpoints[endpoint]
        self.manager.on_retire(endpoint, now, reason=reason)


class LatencyTable:
    """Cold/warm/hot service times anchored in the shared cost model."""

    def __init__(self, model_name: str = "MBNET", framework: str = "tvm") -> None:
        prof = profile(model_name)
        cost = CostModel(hardware=SGX2, storage=NFS)
        self.exec_s = prof.exec_s(framework)
        self.switch_s = cost.runtime_init_s(prof, framework)
        self.cold_start_s = cost.enclave_init_s(
            prof.enclave_bytes(framework)
        ) + cost.key_retrieval_s()

    def service_s(self, temperature: str) -> float:
        """End-to-end service time for one dispatch at ``temperature``."""
        if temperature == "cold":
            return self.cold_start_s + self.switch_s + self.exec_s
        if temperature == "warm":
            return self.switch_s + self.exec_s
        return self.exec_s


def _poisson_arrivals(duration_s: float, seed: int) -> List[Arrival]:
    """The Table III Poisson mix: two 2 rps streams to two models."""
    workload = build_fnpacker_workload(duration_s=duration_s, seed=seed)
    return [a for a in workload.arrivals if a.user_id in ("alice", "bob")]


def _mmpp_arrivals(duration_s: float, seed: int) -> List[Arrival]:
    """The Figure 13 flash-crowd trace: MMPP flipping 20 <-> 40 rps."""
    rng = np.random.default_rng(seed)
    warm = poisson(20.0, 30.0, "m0", user_id="u", rng=rng)
    burst = mmpp((20.0, 40.0), 60.0, duration_s, "m0", user_id="u", rng=rng)
    shifted = [
        Arrival(time=a.time + 30.0, model_id=a.model_id, user_id=a.user_id)
        for a in burst
    ]
    return merge_arrivals(warm, shifted)


def _manager_for(policy: str, *, keep_alive_s: float, min_warm: int,
                 max_endpoints: int, service_time_s: float) -> WarmPoolManager:
    if policy == "none":
        # strategy is irrelevant: endpoints never survive a request
        return WarmPoolManager(WarmPoolConfig(
            strategy="lcs", keep_alive_s=0.0, min_warm=0,
            max_endpoints=max_endpoints,
        ))
    strategy = "mru" if policy == "mru" else "lcs"
    return WarmPoolManager(WarmPoolConfig(
        strategy=strategy,
        keep_alive_s=keep_alive_s,
        min_warm=min_warm,
        max_endpoints=max_endpoints,
        predictive=policy == "lcs+predictive",
        predictor=PredictorPolicy(service_time_s=service_time_s),
        scale_out=ScaleOutPolicy(max_endpoints=max_endpoints),
    ))


def run_policy(
    policy: str,
    arrivals: List[Arrival],
    *,
    keep_alive_s: float = 30.0,
    min_warm: int = 0,
    max_endpoints: int = 64,
    until: float = 600.0,
) -> dict:
    """Serve ``arrivals`` under one warm-pool policy; report the split."""
    cost = LatencyTable()
    manager = _manager_for(
        policy,
        keep_alive_s=keep_alive_s,
        min_warm=min_warm,
        max_endpoints=max_endpoints,
        service_time_s=cost.exec_s,
    )
    sim = FleetSim(manager, cost, teardown_on_complete=policy == "none")
    sim.run(arrivals, until=until)
    latencies = np.array(sim.latencies, dtype=float)
    total = max(1, sum(sim.temperatures.values()))
    counters = manager.counters()
    log_text = manager.log_text()
    return {
        "policy": policy,
        "requests": int(latencies.size),
        "cold": sim.temperatures["cold"],
        "warm": sim.temperatures["warm"],
        "hot": sim.temperatures["hot"],
        "cold_ratio": sim.temperatures["cold"] / total,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "mean_ms": float(latencies.mean()) * 1e3,
        "launches": counters["launches"],
        "prewarm_launches": counters["prewarm_launches"],
        "janitor_retired": counters["janitor_retired"],
        "peak_fleet": max(n for _, n in sim.fleet_timeline),
        "decision_log_digest": hashlib.sha256(
            log_text.encode()
        ).hexdigest(),
        "decision_log_lines": len(manager.decision_log()),
    }


def run_scale_to_zero(
    *,
    burst_rps: float = 8.0,
    burst_s: float = 20.0,
    idle_s: float = 120.0,
    keep_alive_s: float = 30.0,
    min_warm: int = 1,
    seed: int = 7,
) -> dict:
    """Janitor demo: a burst grows the fleet, idleness shrinks it.

    Returns the fleet-size timeline; the benchmark gate asserts the
    fleet ends at exactly ``min_warm``.
    """
    rng = np.random.default_rng(seed)
    arrivals = poisson(burst_rps, burst_s, "m0", user_id="u", rng=rng)
    cost = LatencyTable()
    manager = _manager_for(
        "lcs", keep_alive_s=keep_alive_s, min_warm=min_warm,
        max_endpoints=64, service_time_s=cost.exec_s,
    )
    sim = FleetSim(manager, cost)
    sim.run(arrivals, until=burst_s + idle_s)
    peak = max(n for _, n in sim.fleet_timeline)
    final = sim.fleet_timeline[-1][1]
    return {
        "burst_rps": burst_rps,
        "keep_alive_s": keep_alive_s,
        "min_warm": min_warm,
        "peak_fleet": peak,
        "final_fleet": final,
        "janitor_retired": manager.counters()["janitor_retired"],
        "scaled_to_floor": final == min_warm,
        "timeline": [
            (t, n) for t, n in sim.fleet_timeline if t == int(t) and int(t) % 10 == 0
        ],
    }


def run(
    duration_s: float = 240.0,
    seed: int = 2025,
    keep_alive_s: float = 30.0,
) -> dict:
    """The full sweep: four policies x two workloads + the janitor demo.

    The result carries the gate fields CI asserts on
    (``BENCH_warmpool.json``): ``reduction`` (no-keep-alive cold ratio
    over predictive-LCS cold ratio on the Poisson workload) >=
    ``REDUCTION_GATE``, and ``scale_to_zero.scaled_to_floor``.

    Each workload's policy sweep is declared as a
    :class:`~repro.scenarios.ScenarioSpec` (``warmpool_poisson_spec`` /
    ``warmpool_mmpp_spec``) and executed by the scenario runner, which
    drives :func:`run_policy` above.
    """
    from repro.scenarios import (
        run_scenario,
        warmpool_mmpp_spec,
        warmpool_poisson_spec,
    )

    until = duration_s + 3600.0
    specs = {
        "poisson": warmpool_poisson_spec(
            duration_s=duration_s, seed=seed, keep_alive_s=keep_alive_s,
            horizon_s=until,
        ),
        "mmpp": warmpool_mmpp_spec(
            duration_s=min(duration_s, 120.0), seed=seed,
            keep_alive_s=keep_alive_s, horizon_s=until,
        ),
    }
    sweep: Dict[str, Dict[str, dict]] = {
        workload_name: run_scenario(spec).metrics["policies"]
        for workload_name, spec in specs.items()
    }
    baseline = sweep["poisson"]["none"]["cold_ratio"]
    predictive = sweep["poisson"]["lcs+predictive"]["cold_ratio"]
    reduction = baseline / predictive if predictive > 0 else float("inf")
    scale_demo = run_scale_to_zero(keep_alive_s=keep_alive_s)
    gates = {
        "cold_start_reduced": reduction >= REDUCTION_GATE,
        "janitor_scales_to_floor": scale_demo["scaled_to_floor"],
    }
    return {
        "duration_s": duration_s,
        "seed": seed,
        "keep_alive_s": keep_alive_s,
        "workloads": sweep,
        "scale_to_zero": scale_demo,
        "baseline_cold_ratio": baseline,
        "predictive_cold_ratio": predictive,
        "reduction": reduction,
        "reduction_gate": REDUCTION_GATE,
        "gates": gates,
        "pass": all(gates.values()),
    }


def decision_log_for(
    policy: str = "lcs+predictive",
    duration_s: float = 120.0,
    seed: int = 2025,
) -> str:
    """The manager's full decision log for one seeded MMPP run.

    Two calls with the same arguments must return byte-identical text
    -- the CI determinism gate writes it twice and ``cmp``s the files.
    """
    arrivals = _mmpp_arrivals(duration_s, seed)
    cost = LatencyTable()
    manager = _manager_for(
        policy, keep_alive_s=30.0, min_warm=0, max_endpoints=64,
        service_time_s=cost.exec_s,
    )
    sim = FleetSim(manager, cost, teardown_on_complete=policy == "none")
    sim.run(arrivals, until=duration_s + 3600.0)
    return manager.log_text()


def format_report(result: dict) -> str:
    """Render the sweep and the gate verdicts as text tables."""
    from repro.experiments.common import format_table

    lines = [
        f"warm-pool policy sweep, keep_alive={result['keep_alive_s']:.0f}s, "
        f"seed={result['seed']}",
    ]
    for workload_name in WORKLOADS:
        rows = []
        for policy in POLICIES:
            row = result["workloads"][workload_name][policy]
            rows.append((
                policy, row["requests"], row["cold"], row["warm"], row["hot"],
                f"{100 * row['cold_ratio']:.1f}%",
                row["p50_ms"], row["p99_ms"],
                row["launches"], row["janitor_retired"],
            ))
        lines += [
            "",
            f"workload: {workload_name}",
            format_table(
                ["policy", "reqs", "cold", "warm", "hot", "cold%",
                 "p50 (ms)", "p99 (ms)", "launches", "retired"],
                rows,
            ),
        ]
    demo = result["scale_to_zero"]
    lines += [
        "",
        f"scale-to-zero: burst peak {demo['peak_fleet']} endpoints -> "
        f"{demo['final_fleet']} after idling past keep-alive "
        f"(min_warm={demo['min_warm']}, janitor retired "
        f"{demo['janitor_retired']})",
        f"cold-start reduction (none vs lcs+predictive, poisson): "
        f"{result['reduction']:.1f}x (gate >= {result['reduction_gate']:.0f}x)",
        f"gates: " + ", ".join(
            f"{k}={'ok' if v else 'FAIL'}" for k, v in result["gates"].items()
        ) + f" -> {'PASS' if result['pass'] else 'FAIL'}",
    ]
    return "\n".join(lines)


__all__ = [
    "FleetSim",
    "LatencyTable",
    "POLICIES",
    "REDUCTION_GATE",
    "WORKLOADS",
    "decision_log_for",
    "format_report",
    "run",
    "run_policy",
    "run_scale_to_zero",
]
