"""Figure 8: latency ratio of the serving stages for a cold invocation.

For each (model, framework) pair we cold-start one SeSeMI instance,
serve one request, and break its latency into the SeMIRT-managed stages
(sandbox initialisation excluded, as in the paper's figure).  The paper's
headline observation -- enclave initialisation + key fetching contribute
over 60 % of cold latency for TVM models -- is the property to check.

The breakdown is derived **from the request's span tree** via
:mod:`repro.obs.analysis`: the testbed runs with a virtual-time tracer
attached, and per-stage seconds are read off the stage spans (following
the cold-start adoption link into the container-startup trace) rather
than off the invocation result.  The result's own ``stage_seconds`` is
kept as a cross-check only.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stages import Stage
from repro.errors import SeSeMIError
from repro.experiments.common import (
    deploy_single_model,
    format_table,
    make_driver,
    make_testbed,
)
from repro.mlrt.zoo import FRAMEWORKS, PROFILES
from repro.obs import analysis
from repro.workloads.arrival import Arrival

#: the stage order of the figure's stacked bars
STAGE_ORDER = (
    Stage.ENCLAVE_INIT.value,
    Stage.KEY_RETRIEVAL.value,
    Stage.MODEL_LOADING.value,
    Stage.MODEL_DECRYPT.value,
    Stage.RUNTIME_INIT.value,
    Stage.REQUEST_DECRYPT.value,
    Stage.MODEL_INFERENCE.value,
    Stage.RESULT_ENCRYPT.value,
)


def traced_cold_request(model_name: str, framework: str, system: str = "SeSeMI"):
    """Serve one cold request on a traced testbed.

    Returns ``(spans, result)``: the full virtual-time span dump and the
    invocation result.  Shared by Figure 8, Figures 17/18, and the
    ``python -m repro trace`` subcommand.
    """
    bed = make_testbed(num_nodes=1, traced=True)
    deploy_single_model(bed, system, model_name, framework)
    driver = make_driver(bed)
    driver.submit_arrivals([Arrival(time=0.0, model_id="m", user_id="u")])
    report = driver.run(until=400)
    (result,) = report.results
    return bed.tracer.finished_spans(), result


def cold_stage_seconds(model_name: str, framework: str) -> Dict[str, float]:
    """Stage durations of one cold SeSeMI invocation, read from spans."""
    spans, result = traced_cold_request(model_name, framework)
    (root,) = analysis.request_roots(spans)
    stages = analysis.stage_seconds(spans, root)
    stages.pop(Stage.SANDBOX_INIT.value, None)
    _check_against_result(stages, result.stage_seconds)
    return stages


def _check_against_result(stages: Dict[str, float], recorded: Dict[str, float]) -> None:
    """Cross-check span-derived stage times against the result record.

    The span tree is the source of truth for the figure; the invocation
    result's ``stage_seconds`` (the pre-tracing bookkeeping) must agree
    to float noise, or the trace instrumentation has drifted.
    """
    for stage, seconds in stages.items():
        if abs(recorded.get(stage, 0.0) - seconds) > 1e-6:
            raise SeSeMIError(
                f"span-derived {stage} = {seconds} disagrees with "
                f"recorded {recorded.get(stage, 0.0)}"
            )


def run() -> dict:
    """Run the experiment; returns structured rows and per-config details."""
    rows: List[tuple] = []
    details = {}
    for framework in FRAMEWORKS:
        for model_name in PROFILES:
            stages = cold_stage_seconds(model_name, framework)
            total = sum(stages.values())
            fractions = {k: v / total for k, v in stages.items()}
            trust_share = fractions.get(Stage.ENCLAVE_INIT.value, 0.0) + fractions.get(
                Stage.KEY_RETRIEVAL.value, 0.0
            )
            label = f"{framework.upper()}-{model_name}"
            details[label] = {"seconds": stages, "fractions": fractions, "total": total}
            rows.append(
                (
                    label,
                    total,
                    *(fractions.get(stage, 0.0) for stage in STAGE_ORDER),
                    trust_share,
                )
            )
    return {"rows": rows, "details": details, "stage_order": STAGE_ORDER}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = ["config", "cold total (s)"] + [
        s.replace("model_", "").replace("_", " ") for s in result["stage_order"]
    ] + ["encl+key share"]
    lines = [
        "Figure 8 -- latency ratio of serving stages (cold invocation,",
        "sandbox init excluded). Paper: enclave init + key fetching > 60%",
        "of latency for TVM models.",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
