"""Figure 8: latency ratio of the serving stages for a cold invocation.

For each (model, framework) pair we cold-start one SeSeMI instance,
serve one request, and break its latency into the SeMIRT-managed stages
(sandbox initialisation excluded, as in the paper's figure).  The paper's
headline observation -- enclave initialisation + key fetching contribute
over 60 % of cold latency for TVM models -- is the property to check.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stages import Stage
from repro.experiments.common import (
    deploy_single_model,
    format_table,
    make_driver,
    make_testbed,
)
from repro.mlrt.zoo import FRAMEWORKS, PROFILES
from repro.workloads.arrival import Arrival

#: the stage order of the figure's stacked bars
STAGE_ORDER = (
    Stage.ENCLAVE_INIT.value,
    Stage.KEY_RETRIEVAL.value,
    Stage.MODEL_LOADING.value,
    Stage.MODEL_DECRYPT.value,
    Stage.RUNTIME_INIT.value,
    Stage.REQUEST_DECRYPT.value,
    Stage.MODEL_INFERENCE.value,
    Stage.RESULT_ENCRYPT.value,
)


def cold_stage_seconds(model_name: str, framework: str) -> Dict[str, float]:
    """Stage durations of one cold SeSeMI invocation."""
    bed = make_testbed(num_nodes=1)
    deploy_single_model(bed, "SeSeMI", model_name, framework)
    driver = make_driver(bed)
    driver.submit_arrivals([Arrival(time=0.0, model_id="m", user_id="u")])
    report = driver.run(until=400)
    (result,) = report.results
    return {k: v for k, v in result.stage_seconds.items() if k != "sandbox_init"}


def run() -> dict:
    """Run the experiment; returns structured rows and per-config details."""
    rows: List[tuple] = []
    details = {}
    for framework in FRAMEWORKS:
        for model_name in PROFILES:
            stages = cold_stage_seconds(model_name, framework)
            total = sum(stages.values())
            fractions = {k: v / total for k, v in stages.items()}
            trust_share = fractions.get(Stage.ENCLAVE_INIT.value, 0.0) + fractions.get(
                Stage.KEY_RETRIEVAL.value, 0.0
            )
            label = f"{framework.upper()}-{model_name}"
            details[label] = {"seconds": stages, "fractions": fractions, "total": total}
            rows.append(
                (
                    label,
                    total,
                    *(fractions.get(stage, 0.0) for stage in STAGE_ORDER),
                    trust_share,
                )
            )
    return {"rows": rows, "details": details, "stage_order": STAGE_ORDER}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = ["config", "cold total (s)"] + [
        s.replace("model_", "").replace("_", " ") for s in result["stage_order"]
    ] + ["encl+key share"]
    lines = [
        "Figure 8 -- latency ratio of serving stages (cold invocation,",
        "sandbox init excluded). Paper: enclave init + key fetching > 60%",
        "of latency for TVM models.",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
