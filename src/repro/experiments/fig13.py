"""Figures 13 & 14: multi-node MMPP serving -- latency and memory cost.

The cluster runs 8 invoker nodes; the workload is a Markov-modulated
Poisson process alternating between 20 and 40 rps (Section VI-C), with a
20 rps warm-up phase before measurement.

Figure 13 compares Native / Iso-reuse / SeSeMI on TVM-DSNET and
TVM-RSNET (paper: DSNET Iso-reuse 3.35 s vs SeSeMI 0.64 s -- an 81%
improvement; RSNET 12.54 s vs 8.28 s under heavy contention; Native is
off the chart).

Figure 14 runs the same workload on SeSeMI with 1- vs 4-thread enclaves
and integrates reserved container memory over time into GB-seconds
(paper: DSNET 3543 -> 1459 GB-s, a 59 % cost cut; RSNET 2273 -> 1179,
48 %).  Memory budgets follow the paper: 256/384 MB for DSNET-1/-4 and
768/1536 MB for RSNET-1/-4.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import format_table, make_driver, make_testbed
from repro.mlrt.zoo import profile
from repro.scenarios import fig13_latency_spec, run_scenario
from repro.serverless.action import ActionSpec
from repro.sgx.epc import MB
from repro.workloads.arrival import merge_arrivals, mmpp, poisson
from repro.workloads.metrics import LatencyStats, gb_seconds

NUM_NODES = 8
WARMUP_S = 60.0
PHASE_S = 60.0

#: Figure 14's per-container memory budgets (Section VI-C)
FIG14_BUDGETS_MB = {
    ("DSNET", 1): 256,
    ("DSNET", 4): 384,
    ("RSNET", 1): 768,
    ("RSNET", 4): 1536,
}


def _mmpp_arrivals(duration_s: float, seed: int = 11):
    rng = np.random.default_rng(seed)
    warm = poisson(20.0, WARMUP_S, "m", user_id="u", rng=rng)
    burst = mmpp((20.0, 40.0), PHASE_S, duration_s, "m", user_id="u", rng=rng)
    shifted = [
        type(a)(time=a.time + WARMUP_S, model_id=a.model_id, user_id=a.user_id)
        for a in burst
    ]
    return merge_arrivals(warm, shifted)


def run_latency(
    model_name: str,
    systems=("Native", "Iso-reuse", "SeSeMI"),
    duration_s: float = 240.0,
) -> Dict[str, dict]:
    """Figure 13: per-system mean latency + timeline under MMPP.

    The experiment is declared as a :class:`~repro.scenarios.ScenarioSpec`
    (``fig13_latency_spec``) and executed by the scenario runner; this
    wrapper only reshapes the metrics into the report's historical form.
    """
    spec = fig13_latency_spec(
        model_name, systems=systems, duration_s=duration_s
    )
    result = run_scenario(spec)
    out: Dict[str, dict] = {}
    for system in systems:
        metrics = result.metrics["systems"][system]
        out[system] = {
            "stats": LatencyStats(
                count=metrics["count"],
                mean=metrics["mean_s"],
                p50=metrics["p50_s"],
                p95=metrics["p95_s"],
                p99=metrics["p99_s"],
                max=metrics["max_s"],
            ),
            "timeline": [(t, v) for t, v in metrics["timeline"]],
            "completed": metrics["completed"],
        }
    return out


def run_memory_cost(
    model_name: str,
    duration_s: float = 240.0,
) -> Dict[int, dict]:
    """Figure 14: GB-seconds with 1- vs 4-thread SeSeMI enclaves."""
    out: Dict[int, dict] = {}
    for threads in (1, 4):
        models = servable_map([("m", profile(model_name), "tvm")])
        budget = FIG14_BUDGETS_MB[(model_name, threads)] * MB
        # threads-per-node capped at the 12 physical cores (Section VI-C)
        node_memory = (12 // threads) * budget
        bed = make_testbed(num_nodes=NUM_NODES, node_memory=node_memory)
        spec = ActionSpec(
            name="ep", image="semirt", memory_budget=budget, concurrency=threads
        )
        bed.platform.deploy(spec, semirt_factory(models, bed.cost, tcs_count=threads))
        driver = make_driver(bed)
        driver.submit_arrivals(_mmpp_arrivals(duration_s))
        report = driver.run(until=WARMUP_S + duration_s + 3000.0)
        horizon = WARMUP_S + duration_s
        out[threads] = {
            "gb_seconds": gb_seconds(bed.controller.memory_timeline, horizon),
            "stats": LatencyStats.of(
                [r for r in report.results if r.submitted_at >= WARMUP_S]
            ),
        }
    return out


def run(duration_s: float = 240.0) -> dict:
    """Run Figures 13 and 14 for both models."""
    return {
        "latency": {
            name: run_latency(name, duration_s=duration_s)
            for name in ("DSNET", "RSNET")
        },
        "memory": {
            name: run_memory_cost(name, duration_s=duration_s)
            for name in ("DSNET", "RSNET")
        },
        "duration_s": duration_s,
    }


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    lines = [
        "Figure 13 -- MMPP (20<->40 rps) on 8 nodes, TVM models.",
        "Paper: DSNET Iso-reuse 3.35s vs SeSeMI 0.64s; RSNET 12.54s vs 8.28s;",
        "Native is far worse on both.",
        "",
    ]
    from repro.workloads.sparkline import labelled_sparkline

    for model_name, systems in result["latency"].items():
        rows = [
            (system, data["stats"].mean, data["stats"].p95, data["completed"])
            for system, data in systems.items()
        ]
        lines.append(f"TVM-{model_name}:")
        lines.append(
            format_table(["system", "mean (s)", "p95 (s)", "completed"], rows)
        )
        for system, data in systems.items():
            series = [v for _, v in data["timeline"]]
            lines.append("  " + labelled_sparkline(system, series))
        lines.append("")
    lines += [
        "Figure 14 -- memory cost (GB-seconds) under the same MMPP workload.",
        "Paper: DSNET 3543 (TVM-1) -> 1459 (TVM-4); RSNET 2273 -> 1179.",
        "",
    ]
    for model_name, threads in result["memory"].items():
        rows = [
            (f"TVM-{model_name}-{t}", data["gb_seconds"], data["stats"].mean)
            for t, data in threads.items()
        ]
        lines.append(
            format_table(["config", "GB-seconds", "mean latency (s)"], rows)
        )
        reduction = 1 - threads[4]["gb_seconds"] / max(threads[1]["gb_seconds"], 1e-9)
        lines.append(f"cost reduction with 4 threads: {reduction:.0%}")
        lines.append("")
    return "\n".join(lines)
