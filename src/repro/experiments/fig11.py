"""Figure 11: latency versus the number of concurrent executions.

(a) **CPU bound** (SGX2, 64 GB EPC): one SeMIRT enclave with enough TCSs
    serves N simultaneous hot requests; latency is flat until N exceeds
    the node's 12 physical cores, then climbs as requests queue on cores.

(b) **EPC bound** (SGX1, 128 MB EPC): N concurrent requests served either
    by N single-thread enclaves (``*-1``) or by four-thread enclaves
    (``*-4``).  Committed enclave pages scale with the number of enclaves
    and their buffer sizes, so TVM (big buffers with weight copies) hits
    the paging knee before TFLM, and ``-4`` variants grow slower than
    ``-1`` -- the paper's Figure 11b ordering.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.simbridge import servable_map, semirt_factory
from repro.experiments.common import (
    action_budget,
    format_table,
    make_driver,
    make_testbed,
    sgx1_testbed,
)
from repro.mlrt.zoo import profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival


def _burst_latency(bed, endpoint: str, n: int, warmup_gap: float = 120.0) -> float:
    """Mean latency of N simultaneous requests against warm capacity.

    The warm-up burst provisions the containers; the measured burst fires
    well inside the 3-minute keep-alive so every request takes the hot path.
    """
    driver = make_driver(bed, endpoint=endpoint)
    warmup = [Arrival(time=0.0, model_id="m", user_id="u") for _ in range(n)]
    burst = [Arrival(time=warmup_gap, model_id="m", user_id="u") for _ in range(n)]
    driver.submit_arrivals(warmup + burst)
    report = driver.run(until=warmup_gap + 2000.0)
    measured = [r for r in report.results if r.submitted_at >= warmup_gap]
    if len(measured) != n:
        raise RuntimeError(f"expected {n} measured results, got {len(measured)}")
    return sum(r.latency for r in measured) / n


def run_cpu_bound(
    model_name: str = "RSNET",
    framework: str = "tvm",
    concurrency_levels=(1, 2, 4, 8, 12, 16),
) -> List[tuple]:
    """Figure 11a: single enclave, N threads, SGX2."""
    rows = []
    for n in concurrency_levels:
        bed = make_testbed(num_nodes=1)
        models = servable_map([("m", profile(model_name), framework)])
        spec = ActionSpec(
            name="ep",
            image="semirt",
            memory_budget=action_budget(models["m"], tcs_count=16),
            concurrency=n,
        )
        bed.platform.deploy(
            spec, semirt_factory(models, bed.cost, tcs_count=n)
        )
        rows.append((n, _burst_latency(bed, "ep", n)))
    return rows


def run_epc_bound(
    model_name: str = "MBNET",
    concurrency_levels=(1, 2, 4, 8, 12),
) -> Dict[str, List[tuple]]:
    """Figure 11b: SGX1 (128 MB EPC), 1- vs 4-thread enclaves, TVM vs TFLM."""
    series: Dict[str, List[tuple]] = {}
    for framework in ("tvm", "tflm"):
        for threads in (1, 4):
            label = f"{framework.upper()}-{threads}"
            rows = []
            for n in concurrency_levels:
                bed = sgx1_testbed(num_nodes=1)
                models = servable_map([("m", profile(model_name), framework)])
                spec = ActionSpec(
                    name="ep",
                    image="semirt",
                    memory_budget=action_budget(models["m"], tcs_count=threads),
                    concurrency=threads,
                )
                bed.platform.deploy(
                    spec, semirt_factory(models, bed.cost, tcs_count=threads)
                )
                rows.append((n, _burst_latency(bed, "ep", n)))
            series[label] = rows
    return series


def run() -> dict:
    """Run both sub-experiments (CPU-bound and EPC-bound)."""
    return {"cpu_bound": run_cpu_bound(), "epc_bound": run_epc_bound()}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    lines = [
        "Figure 11a -- latency vs concurrent executions (TVM-RSNET, SGX2;",
        "knee expected past 12 physical cores):",
        "",
        format_table(["concurrency", "mean latency (s)"], result["cpu_bound"]),
        "",
        "Figure 11b -- latency under EPC pressure (MBNET, SGX1 128MB EPC).",
        "Paper: TVM hits the EPC limit before TFLM; -4 grows slower than -1.",
        "",
    ]
    for label, rows in result["epc_bound"].items():
        lines.append(
            format_table([f"{label} concurrency", "mean latency (s)"], rows)
        )
        lines.append("")
    return "\n".join(lines)
