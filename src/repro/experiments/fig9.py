"""Figure 9: execution time under different invocation paths.

For each (model, framework) we measure the SeMIRT-managed execution time
(sandbox init excluded, as in the paper) of:

- **cold**: new enclave, full pipeline;
- **warm**: enclave alive, wrong model loaded -> reload + runtime init;
- **hot**: model + runtime + keys cached -> decrypt/execute/encrypt only;
- **untrusted**: no SGX, model loaded from storage each time;
- **untrusted-cached**: no SGX, model resident.

Headline check: for TVM-MBNET, hot is ~21x and warm ~11x faster than cold.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.simbridge import servable_map
from repro.core.stages import Stage
from repro.experiments.common import (
    action_budget,
    format_table,
    make_driver,
    make_testbed,
    system_factory,
)
from repro.mlrt.zoo import FRAMEWORKS, PROFILES, profile
from repro.serverless.action import ActionSpec
from repro.workloads.arrival import Arrival


def _managed_seconds(result) -> float:
    return sum(v for k, v in result.stage_seconds.items() if k != "sandbox_init")


def _run_sesemi_paths(model_name: str, framework: str) -> Dict[str, float]:
    """cold / warm / hot for SeSeMI by loading a decoy model in between."""
    bed = make_testbed(num_nodes=1)
    models = servable_map(
        [("m", profile(model_name), framework), ("decoy", profile("MBNET"), framework)]
    )
    budget = max(action_budget(m) for m in models.values())
    spec = ActionSpec(name="ep", image="semirt", memory_budget=budget, concurrency=1)
    bed.platform.deploy(spec, system_factory("SeSeMI", models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="m", user_id="u"),      # cold
            Arrival(time=100.0, model_id="decoy", user_id="u"),  # evicts the model
            Arrival(time=120.0, model_id="m", user_id="u"),    # warm: reload model
            Arrival(time=140.0, model_id="m", user_id="u"),    # hot
        ]
    )
    report = driver.run(until=600)
    by_time = sorted(report.results, key=lambda r: r.submitted_at)
    # The decoy eviction also evicted the user's cached key pair (the
    # cache holds a single <uid, M_oid> entry); the paper's *warm* path
    # keeps the same user's request key, so subtract the key re-fetch.
    warm_result = by_time[2]
    warm = _managed_seconds(warm_result) - warm_result.stage_seconds.get(
        Stage.KEY_RETRIEVAL.value, 0.0
    )
    return {
        "cold": _managed_seconds(by_time[0]),
        "warm": warm,
        "hot": _managed_seconds(by_time[3]),
    }


def _run_untrusted(model_name: str, framework: str) -> Dict[str, float]:
    bed = make_testbed(num_nodes=1)
    models = servable_map([("m", profile(model_name), framework)])
    spec = ActionSpec(
        name="ep", image="untrusted", memory_budget=action_budget(models["m"]),
        concurrency=1,
    )
    bed.platform.deploy(spec, system_factory("Untrusted", models, bed.cost))
    driver = make_driver(bed)
    driver.submit_arrivals(
        [
            Arrival(time=0.0, model_id="m", user_id="u"),   # loads the model
            Arrival(time=100.0, model_id="m", user_id="u"),  # cached
        ]
    )
    report = driver.run(until=400)
    by_time = sorted(report.results, key=lambda r: r.submitted_at)
    return {
        "untrusted": _managed_seconds(by_time[0]),
        "untrusted_cached": _managed_seconds(by_time[1]),
    }


def run() -> dict:
    """Run the experiment; returns structured rows and per-config details."""
    rows: List[tuple] = []
    details = {}
    for framework in FRAMEWORKS:
        for model_name in PROFILES:
            paths = _run_sesemi_paths(model_name, framework)
            paths.update(_run_untrusted(model_name, framework))
            label = f"{framework.upper()}-{model_name}"
            details[label] = paths
            rows.append(
                (
                    label,
                    paths["cold"],
                    paths["warm"],
                    paths["hot"],
                    paths["untrusted"],
                    paths["untrusted_cached"],
                    paths["cold"] / paths["hot"],
                    paths["cold"] / paths["warm"],
                )
            )
    return {"rows": rows, "details": details}


def format_report(result: dict) -> str:
    """Render the experiment result as a paper-style text table."""
    headers = [
        "config", "cold (s)", "warm (s)", "hot (s)",
        "untrusted (s)", "untrusted cached (s)", "cold/hot", "cold/warm",
    ]
    lines = [
        "Figure 9 -- execution time under different invocation paths",
        "(sandbox init excluded). Paper: TVM-MBNET hot ~21x / warm ~11x",
        "speedup over cold; warm ~ untrusted, hot ~ untrusted-cached.",
        "",
        format_table(headers, result["rows"]),
    ]
    return "\n".join(lines)
