"""Exception hierarchy for the SeSeMI reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: crypto, SGX, simulation, serverless platform,
model runtime, transport, and the SeSeMI core (which includes the
resilience-layer errors :class:`DeadlineExceeded` and
:class:`CircuitOpen`).

The module also owns the **canonical error<->wire mapping** used at the
HTTP service boundary (:mod:`repro.service`): :func:`to_wire` turns an
exception into ``(status, payload)`` and :func:`from_wire` rebuilds the
same exception *type* on the client side, so errors round-trip the
network with their meaning intact (``docs/service.md``).
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# crypto
# --------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidTag(CryptoError):
    """AEAD authentication failed: the ciphertext or AAD was tampered with."""


class InvalidKey(CryptoError):
    """A key has the wrong length, type, or value for the operation."""


class InvalidSignature(CryptoError):
    """A digital signature failed verification."""


# --------------------------------------------------------------------------
# SGX functional model
# --------------------------------------------------------------------------


class SgxError(ReproError):
    """Base class for failures of the functional SGX model."""


class EnclaveError(SgxError):
    """Illegal enclave operation (bad lifecycle transition, unknown ECALL)."""


class TcsExhausted(SgxError):
    """All thread control structures of the enclave are in use."""


class EpcError(SgxError):
    """Enclave page cache accounting failure (e.g. over-commit)."""


class AttestationError(SgxError):
    """Remote attestation failed: bad quote, signature, or identity."""


class SealingError(SgxError):
    """Sealed data could not be unsealed by this enclave identity."""


# --------------------------------------------------------------------------
# SeSeMI core
# --------------------------------------------------------------------------


class SeSeMIError(ReproError):
    """Base class for SeSeMI component failures."""


class AccessDenied(SeSeMIError):
    """KeyService refused to release keys: the access policy does not allow it."""


class UnknownIdentity(SeSeMIError):
    """An owner/user/model identity is not registered with KeyService."""


class InvocationError(SeSeMIError):
    """A SeMIRT invocation could not be completed."""


class RoutingError(SeSeMIError):
    """FnPacker could not route a request (unknown model, no endpoint)."""


class QueueFull(SeSeMIError):
    """The SeMIRT admission queue is at its configured depth.

    Raised synchronously by :meth:`SemirtHost.submit` as backpressure:
    the caller should shed load, retry later, or route the request to
    another instance.  Deliberately *not* a :class:`TransportError` --
    the request never left the caller, so the resilience layer must not
    blindly retry into the same full queue.
    """


class DeadlineExceeded(SeSeMIError):
    """A request ran out of its per-request time budget.

    Raised by the resilience layer (:mod:`repro.faults.resilience`) when
    retries and failovers could not produce a response before the
    deadline.  Catching :class:`SeSeMIError` (or :class:`ReproError`)
    at an API boundary therefore also covers deadline expiry.
    """


class RequestCancelled(SeSeMIError):
    """A submitted request was cancelled before its output was delivered.

    Raised from :meth:`~repro.core.semirt.InferenceFuture.result` after a
    successful :meth:`~repro.core.semirt.InferenceFuture.cancel`.  The
    scheduler guarantees the request's enclave execution context was
    released (``EC_CLEAR_EXEC_CTX``) before this surfaces.
    """


class CircuitOpen(SeSeMIError):
    """A circuit breaker is open: the endpoint is failing, fail fast.

    Raised instead of attempting a call while an endpoint's breaker is
    in the *open* state; after the cooldown one probe request is let
    through (*half-open*) and success closes the circuit again.
    """


# --------------------------------------------------------------------------
# substrates
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation core."""


class PlatformError(ReproError):
    """Serverless platform failure (deployment, scheduling, capacity)."""


class StorageError(PlatformError):
    """Cloud storage object missing or unreadable."""


class TransportError(ReproError):
    """A network-level failure: dead host, dropped connection, lost message.

    This is the error the resilience layer treats as *retryable*: the
    operation may never have reached the peer, so retrying (possibly
    against a replica) is safe for the idempotent SeSeMI protocol ops.
    """


class FaultInjected(TransportError):
    """A fault deliberately injected by :mod:`repro.faults`.

    Subclasses :class:`TransportError` so injected faults exercise
    exactly the production recovery paths; the distinct type lets tests
    assert that a failure was scheduled rather than accidental.
    """


class ModelError(ReproError):
    """Model definition, serialisation, or execution failure."""


class ConfigError(ReproError):
    """Invalid configuration value."""


# --------------------------------------------------------------------------
# the canonical error <-> wire mapping (HTTP service boundary)
# --------------------------------------------------------------------------

#: most-specific-first HTTP status per error class.  :func:`wire_status`
#: walks an exception's MRO, so subclasses inherit their parent's status
#: unless listed here themselves (e.g. :class:`QueueFull` beats the
#: generic :class:`SeSeMIError` 500).
WIRE_STATUS = {
    QueueFull: 429,           # backpressure: shed, slow down, retry later
    RequestCancelled: 409,    # terminal: the caller cancelled it
    DeadlineExceeded: 504,    # the per-request time budget ran out
    CircuitOpen: 503,         # failing endpoint, fail fast
    RoutingError: 503,        # no endpoint can take the request
    TransportError: 502,      # network-level failure (retryable)
    AccessDenied: 403,        # the access policy refused keys
    UnknownIdentity: 403,     # unregistered owner/user/model
    AttestationError: 403,    # the enclave identity did not verify
    InvalidSignature: 403,    # authentication failure
    InvocationError: 400,     # malformed or unauthenticated request
    ConfigError: 400,
    StorageError: 404,
    ReproError: 500,
}

#: fallback class per status for peers sending unknown error names
_STATUS_FALLBACK = {
    400: InvocationError,
    403: AccessDenied,
    404: StorageError,
    409: RequestCancelled,
    429: QueueFull,
    502: TransportError,
    503: CircuitOpen,
    504: DeadlineExceeded,
}

#: error name -> class, for :func:`from_wire` type reconstruction
_WIRE_REGISTRY = {
    cls.__name__: cls
    for cls in list(globals().values())
    if isinstance(cls, type) and issubclass(cls, ReproError)
}


def wire_status(exc: BaseException) -> int:
    """The HTTP status the service boundary maps ``exc`` to."""
    for klass in type(exc).__mro__:
        status = WIRE_STATUS.get(klass)
        if status is not None:
            return status
    return 500


def to_wire(exc: BaseException) -> Tuple[int, dict]:
    """Encode an exception as ``(status, payload)`` for the wire.

    The payload names the concrete error type so :func:`from_wire` can
    rebuild it; the status carries the coarse retry semantics (429 shed,
    5xx server-side, 4xx caller-side) for clients that only read codes.
    """
    return wire_status(exc), {
        "error": type(exc).__name__,
        "message": str(exc),
    }


def from_wire(payload: Mapping, status: Optional[int] = None) -> ReproError:
    """Rebuild the exception :func:`to_wire` encoded.

    Known error names round-trip to their exact class; unknown names
    fall back to a representative class for the status, and failing
    that to :class:`ReproError` -- a client never crashes on a newer
    server's vocabulary.
    """
    name = payload.get("error", "")
    message = payload.get("message", name or "remote error")
    klass = _WIRE_REGISTRY.get(name)
    if klass is None and status is not None:
        klass = _STATUS_FALLBACK.get(status)
    if klass is None:
        klass = ReproError
    return klass(message)
