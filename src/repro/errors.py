"""Exception hierarchy for the SeSeMI reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: crypto, SGX, simulation, serverless platform,
model runtime, and the SeSeMI core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# crypto
# --------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidTag(CryptoError):
    """AEAD authentication failed: the ciphertext or AAD was tampered with."""


class InvalidKey(CryptoError):
    """A key has the wrong length, type, or value for the operation."""


class InvalidSignature(CryptoError):
    """A digital signature failed verification."""


# --------------------------------------------------------------------------
# SGX functional model
# --------------------------------------------------------------------------


class SgxError(ReproError):
    """Base class for failures of the functional SGX model."""


class EnclaveError(SgxError):
    """Illegal enclave operation (bad lifecycle transition, unknown ECALL)."""


class TcsExhausted(SgxError):
    """All thread control structures of the enclave are in use."""


class EpcError(SgxError):
    """Enclave page cache accounting failure (e.g. over-commit)."""


class AttestationError(SgxError):
    """Remote attestation failed: bad quote, signature, or identity."""


class SealingError(SgxError):
    """Sealed data could not be unsealed by this enclave identity."""


# --------------------------------------------------------------------------
# SeSeMI core
# --------------------------------------------------------------------------


class SeSeMIError(ReproError):
    """Base class for SeSeMI component failures."""


class AccessDenied(SeSeMIError):
    """KeyService refused to release keys: the access policy does not allow it."""


class UnknownIdentity(SeSeMIError):
    """An owner/user/model identity is not registered with KeyService."""


class InvocationError(SeSeMIError):
    """A SeMIRT invocation could not be completed."""


class RoutingError(SeSeMIError):
    """FnPacker could not route a request (unknown model, no endpoint)."""


# --------------------------------------------------------------------------
# substrates
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation core."""


class PlatformError(ReproError):
    """Serverless platform failure (deployment, scheduling, capacity)."""


class StorageError(PlatformError):
    """Cloud storage object missing or unreadable."""


class ModelError(ReproError):
    """Model definition, serialisation, or execution failure."""


class ConfigError(ReproError):
    """Invalid configuration value."""
