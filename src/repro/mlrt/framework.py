"""Common inference-framework interface (SeMIRT's integration surface).

SeMIRT integrates a framework through four calls -- ``MODEL_LOAD``,
``RUNTIME_INIT``, ``MODEL_EXEC``, ``PREPARE_OUTPUT`` (Figure 5) -- and
that is exactly the surface expressed here: a framework deserialises a
model artifact, creates per-thread runtimes, executes, and serialises
outputs.  Frameworks differ in *memory behaviour*: the property
``runtime_buffer_bytes`` reports how much working memory a runtime pins
inside the enclave, which drives every memory experiment in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.errors import ModelError
from repro.mlrt.model import Model


class ModelRuntime(ABC):
    """A per-thread execution context bound to one loaded model."""

    def __init__(self, model: Model) -> None:
        self.model = model
        self._last_output: np.ndarray | None = None

    @abstractmethod
    def execute(self, x: np.ndarray) -> np.ndarray:
        """Run inference on a single input batch."""

    @property
    @abstractmethod
    def buffer_bytes(self) -> int:
        """Working memory this runtime pins (excludes the loaded model)."""

    def prepare_output(self) -> bytes:
        """Serialise the last output to bytes (Figure 5's PREPARE_OUTPUT)."""
        if self._last_output is None:
            raise ModelError("no output available; call execute() first")
        return self._last_output.astype(np.float32).tobytes()

    def clear(self) -> None:
        """Drop per-request state (the strong-isolation reset of Section V)."""
        self._last_output = None


class InferenceFramework(ABC):
    """A model inference framework integrated with SeMIRT."""

    name: str

    @abstractmethod
    def create_runtime(self, model: Model) -> ModelRuntime:
        """RUNTIME_INIT: build a fresh per-thread runtime for ``model``."""

    def load_model(self, artifact: bytes) -> Model:
        """MODEL_LOAD (plaintext half): deserialise a model artifact."""
        return Model.deserialize(artifact)


_REGISTRY: Dict[str, InferenceFramework] = {}


def register_framework(framework: InferenceFramework) -> InferenceFramework:
    """Register a framework instance under its name."""
    _REGISTRY[framework.name] = framework
    return framework


def get_framework(name: str) -> InferenceFramework:
    """Look up a registered framework (``"tvm"`` or ``"tflm"`` built in)."""
    # Built-ins register on import; import them lazily (cheap after the
    # first call) to avoid an import cycle with the runtime modules.
    from repro.mlrt import tflm_rt, tvm_rt  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown inference framework {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
