"""Post-training weight quantization (dynamic-range, TFLM style).

Model size drives everything in SeSeMI -- download time, decryption
time, enclave memory -- so shrinking artifacts is a first-order lever.
This module implements per-tensor affine int8 quantization of weights
("dynamic range quantization" in TFLite terms): weights are stored as
int8 plus one float scale per tensor and dequantized on load, cutting
the artifact roughly 4x while perturbing outputs only slightly.

The quantized artifact is a self-contained binary (magic-tagged like the
float format) that the owner encrypts and uploads exactly like a float
model.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ModelError
from repro.mlrt.model import GraphNode, Model
from repro.mlrt.tensor import TensorSpec

_QMAGIC = b"SESEMIQ1"
_INT8_MAX = 127


def quantize_array(array: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization; returns ``(q, scale)``."""
    array = np.asarray(array, dtype=np.float32)
    peak = float(np.abs(array).max()) if array.size else 0.0
    if peak == 0.0:
        return np.zeros(array.shape, dtype=np.int8), 1.0
    scale = peak / _INT8_MAX
    quantized = np.clip(np.round(array / scale), -_INT8_MAX, _INT8_MAX)
    return quantized.astype(np.int8), scale


def dequantize_array(quantized: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_array` (lossy)."""
    return (quantized.astype(np.float32)) * scale


def quantize_model(model: Model) -> bytes:
    """Serialise ``model`` with int8 weights; ~4x smaller than float32."""
    manifest = []
    blobs = []
    offset = 0
    for wname in sorted(model.weights):
        quantized, scale = quantize_array(model.weights[wname])
        raw = quantized.tobytes()
        manifest.append(
            {
                "name": wname,
                "shape": list(quantized.shape),
                "scale": scale,
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        blobs.append(raw)
        offset += len(raw)
    header = json.dumps(
        {
            "name": model.name,
            "input": {
                "shape": list(model.input_spec.shape),
                "dtype": model.input_spec.dtype,
            },
            "nodes": [
                {"name": n.name, "op": n.op, "inputs": list(n.inputs), "attrs": n.attrs}
                for n in model.nodes
            ],
            "weights": manifest,
        }
    ).encode()
    return b"".join([_QMAGIC, struct.pack(">I", len(header)), header, *blobs])


def load_quantized(raw: bytes) -> Model:
    """Load a quantized artifact, dequantizing weights to float32."""
    if raw[: len(_QMAGIC)] != _QMAGIC:
        raise ModelError("not a quantized model artifact (bad magic)")
    if len(raw) < 12:
        raise ModelError("truncated quantized artifact")
    (header_len,) = struct.unpack(">I", raw[8:12])
    try:
        header = json.loads(raw[12 : 12 + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise ModelError(f"corrupt quantized header: {exc}") from exc
    body = raw[12 + header_len :]
    weights: Dict[str, np.ndarray] = {}
    for item in header["weights"]:
        chunk = body[item["offset"] : item["offset"] + item["nbytes"]]
        if len(chunk) != item["nbytes"]:
            raise ModelError(f"truncated quantized weight {item['name']!r}")
        quantized = np.frombuffer(chunk, dtype=np.int8).reshape(item["shape"])
        weights[item["name"]] = dequantize_array(quantized, item["scale"])
    nodes = [
        GraphNode(name=n["name"], op=n["op"], inputs=tuple(n["inputs"]), attrs=n["attrs"])
        for n in header["nodes"]
    ]
    spec = TensorSpec(tuple(header["input"]["shape"]), header["input"]["dtype"])
    return Model(header["name"], spec, nodes, weights)


@dataclass(frozen=True)
class QuantizationReport:
    """Size and accuracy effect of quantizing one model."""

    float_bytes: int
    quantized_bytes: int
    max_output_error: float

    @property
    def compression(self) -> float:
        return self.float_bytes / max(self.quantized_bytes, 1)


def evaluate_quantization(model: Model, x: np.ndarray) -> QuantizationReport:
    """Quantize, reload, and compare outputs on one input batch."""
    float_blob = model.serialize()
    quant_blob = quantize_model(model)
    restored = load_quantized(quant_blob)
    error = float(
        np.abs(model.run_reference(x) - restored.run_reference(x)).max()
    )
    return QuantizationReport(
        float_bytes=len(float_blob),
        quantized_bytes=len(quant_blob),
        max_output_error=error,
    )
