"""Model graph IR and binary serialisation.

A :class:`Model` is a topologically-ordered operator graph plus its
weights.  :meth:`Model.serialize` packs it into a self-contained binary
artifact -- this is the plaintext the model owner encrypts with the model
key and uploads to cloud storage, and what ``MODEL_LOAD`` decrypts and
deserialises inside the enclave.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.mlrt.layers import WEIGHTED_OPS, infer_shape, run_op
from repro.mlrt.tensor import TensorSpec

_MAGIC = b"SESEMIM1"


@dataclass(frozen=True)
class GraphNode:
    """One operator application in the graph."""

    name: str
    op: str
    inputs: Tuple[str, ...]
    attrs: dict = field(default_factory=dict)


class Model:
    """An inference model: input spec, operator graph, weights."""

    def __init__(
        self,
        name: str,
        input_spec: TensorSpec,
        nodes: Sequence[GraphNode],
        weights: Dict[str, np.ndarray],
    ) -> None:
        self.name = name
        self.input_spec = input_spec
        self.nodes: List[GraphNode] = list(nodes)
        self.weights = weights
        self._shapes = self._infer_shapes()

    # -- structure ---------------------------------------------------------------

    def _infer_shapes(self) -> Dict[str, Tuple[int, ...]]:
        shapes: Dict[str, Tuple[int, ...]] = {"input": self.input_spec.shape}
        for node in self.nodes:
            missing = [i for i in node.inputs if i not in shapes]
            if missing:
                raise ModelError(
                    f"node {node.name!r} references unknown inputs {missing} "
                    "(graph must be topologically ordered)"
                )
            weight_shapes = {
                wname: self.weights[f"{node.name}.{wname}"].shape
                for wname in WEIGHTED_OPS.get(node.op, ())
            }
            shapes[node.name] = infer_shape(
                node.op, [shapes[i] for i in node.inputs], node.attrs, weight_shapes
            )
        return shapes

    def shape_of(self, node_name: str) -> Tuple[int, ...]:
        """Inferred output shape of ``node_name`` (or of ``"input"``)."""
        return self._shapes[node_name]

    @property
    def output_node(self) -> str:
        if not self.nodes:
            raise ModelError("model has no nodes")
        return self.nodes[-1].name

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return self._shapes[self.output_node]

    def node_weights(self, node: GraphNode) -> Dict[str, np.ndarray]:
        """The weight arrays a node consumes, keyed by weight name."""
        return {
            wname: self.weights[f"{node.name}.{wname}"]
            for wname in WEIGHTED_OPS.get(node.op, ())
        }

    @property
    def weight_bytes(self) -> int:
        """Total weight payload size (the bulk of the model artifact)."""
        return sum(w.nbytes for w in self.weights.values())

    # -- reference execution --------------------------------------------------------

    def run_reference(self, x: np.ndarray) -> np.ndarray:
        """Direct graph execution without any runtime (testing oracle)."""
        values: Dict[str, np.ndarray] = {"input": x}
        for node in self.nodes:
            values[node.name] = run_op(
                node.op,
                [values[i] for i in node.inputs],
                node.attrs,
                self.node_weights(node),
            )
        return values[self.output_node]

    # -- serialisation ----------------------------------------------------------------

    def serialize(self) -> bytes:
        """Pack the model into a self-contained binary artifact."""
        manifest = []
        blobs = []
        offset = 0
        for wname in sorted(self.weights):
            array = np.ascontiguousarray(self.weights[wname])
            raw = array.tobytes()
            manifest.append(
                {
                    "name": wname,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "offset": offset,
                    "nbytes": len(raw),
                }
            )
            blobs.append(raw)
            offset += len(raw)
        header = json.dumps(
            {
                "name": self.name,
                "input": {"shape": list(self.input_spec.shape), "dtype": self.input_spec.dtype},
                "nodes": [
                    {
                        "name": n.name,
                        "op": n.op,
                        "inputs": list(n.inputs),
                        "attrs": n.attrs,
                    }
                    for n in self.nodes
                ],
                "weights": manifest,
            }
        ).encode()
        return b"".join([_MAGIC, struct.pack(">I", len(header)), header, *blobs])

    @classmethod
    def deserialize(cls, raw: bytes) -> "Model":
        """Inverse of :meth:`serialize`."""
        if raw[: len(_MAGIC)] != _MAGIC:
            raise ModelError("not a serialised model (bad magic)")
        if len(raw) < 12:
            raise ModelError("truncated model artifact")
        (header_len,) = struct.unpack(">I", raw[8:12])
        try:
            header = json.loads(raw[12 : 12 + header_len])
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            raise ModelError(f"corrupt model header: {exc}") from exc
        body = raw[12 + header_len :]
        weights: Dict[str, np.ndarray] = {}
        for item in header["weights"]:
            chunk = body[item["offset"] : item["offset"] + item["nbytes"]]
            if len(chunk) != item["nbytes"]:
                raise ModelError(f"truncated weight payload for {item['name']!r}")
            weights[item["name"]] = np.frombuffer(chunk, dtype=item["dtype"]).reshape(
                item["shape"]
            )
        nodes = [
            GraphNode(
                name=n["name"], op=n["op"], inputs=tuple(n["inputs"]), attrs=n["attrs"]
            )
            for n in header["nodes"]
        ]
        spec = TensorSpec(tuple(header["input"]["shape"]), header["input"]["dtype"])
        return cls(header["name"], spec, nodes, weights)


class GraphBuilder:
    """Fluent builder that also initialises weights deterministically."""

    def __init__(self, name: str, input_spec: TensorSpec, seed: int = 7) -> None:
        self.name = name
        self.input_spec = input_spec
        self.nodes: List[GraphNode] = []
        self.weights: Dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(seed)
        self._shapes: Dict[str, Tuple[int, ...]] = {"input": input_spec.shape}
        self._counter = 0

    def _fresh_name(self, op: str) -> str:
        self._counter += 1
        return f"{op}_{self._counter}"

    def _weight(self, name: str, shape: Tuple[int, ...], scale: float = 0.1) -> None:
        self.weights[name] = (
            self._rng.standard_normal(shape).astype(np.float32) * scale
        )

    def _append(
        self, op: str, inputs: Tuple[str, ...], attrs: Optional[dict] = None,
        weight_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
    ) -> str:
        attrs = attrs or {}
        name = self._fresh_name(op)
        for wname, wshape in (weight_shapes or {}).items():
            if wname in ("bias", "shift"):
                self.weights[f"{name}.{wname}"] = np.zeros(wshape, dtype=np.float32)
            elif wname == "scale":
                self.weights[f"{name}.{wname}"] = np.ones(wshape, dtype=np.float32)
            else:
                self._weight(f"{name}.{wname}", wshape)
        node = GraphNode(name=name, op=op, inputs=inputs, attrs=attrs)
        self.nodes.append(node)
        wshapes = {
            w: self.weights[f"{name}.{w}"].shape for w in WEIGHTED_OPS.get(op, ())
        }
        self._shapes[name] = infer_shape(
            op, [self._shapes[i] for i in inputs], attrs, wshapes
        )
        return name

    def shape_of(self, name: str) -> Tuple[int, ...]:
        """Inferred output shape of a built node."""
        return self._shapes[name]

    # -- layer helpers -----------------------------------------------------------

    def conv(self, src: str, cout: int, k: int = 3, stride: int = 1, pad: int = 1) -> str:
        """Append a 2-D convolution producing ``cout`` channels."""
        cin = self._shapes[src][3]
        return self._append(
            "conv2d", (src,), {"stride": stride, "pad": pad},
            {"weight": (k, k, cin, cout), "bias": (cout,)},
        )

    def depthwise(self, src: str, k: int = 3, stride: int = 1, pad: int = 1) -> str:
        """Append a depthwise convolution."""
        c = self._shapes[src][3]
        return self._append(
            "depthwise_conv2d", (src,), {"stride": stride, "pad": pad},
            {"weight": (k, k, c), "bias": (c,)},
        )

    def dense(self, src: str, cout: int) -> str:
        """Append a fully-connected layer (flattens its input)."""
        shape = self._shapes[src]
        cin = int(np.prod(shape[1:]))
        return self._append("dense", (src,), {}, {"weight": (cin, cout), "bias": (cout,)})

    def batch_norm(self, src: str) -> str:
        """Append an inference-time batch norm (scale/shift)."""
        c = self._shapes[src][-1]
        return self._append("batch_norm", (src,), {}, {"scale": (c,), "shift": (c,)})

    def relu(self, src: str) -> str:
        """Append a ReLU activation."""
        return self._append("relu", (src,))

    def relu6(self, src: str) -> str:
        """Append a ReLU6 activation."""
        return self._append("relu6", (src,))

    def add(self, a: str, b: str) -> str:
        """Append an elementwise addition of two nodes."""
        return self._append("add", (a, b))

    def concat(self, a: str, b: str) -> str:
        """Append a channel concatenation of two nodes."""
        return self._append("concat", (a, b))

    def max_pool(self, src: str, size: int = 2, stride: int = 2) -> str:
        """Append a max-pooling layer."""
        return self._append("max_pool", (src,), {"size": size, "stride": stride})

    def avg_pool(self, src: str, size: int = 2, stride: int = 2) -> str:
        """Append an average-pooling layer."""
        return self._append("avg_pool", (src,), {"size": size, "stride": stride})

    def global_avg_pool(self, src: str) -> str:
        """Append a global average pool."""
        return self._append("global_avg_pool", (src,))

    def softmax(self, src: str) -> str:
        """Append a softmax over the last axis."""
        return self._append("softmax", (src,))

    def embedding(self, src: str, vocab: int, dim: int) -> str:
        """Append a token embedding (plus sinusoidal positions)."""
        return self._append("embedding", (src,), {}, {"weight": (vocab, dim)})

    def layer_norm(self, src: str) -> str:
        """Append a layer norm over the last axis (scale/shift)."""
        d = self._shapes[src][-1]
        return self._append("layer_norm", (src,), {}, {"scale": (d,), "shift": (d,)})

    def gelu(self, src: str) -> str:
        """Append a GELU activation."""
        return self._append("gelu", (src,))

    def linear(self, src: str, cout: int) -> str:
        """Append a position-wise affine map over the last axis."""
        cin = self._shapes[src][-1]
        return self._append(
            "linear", (src,), {}, {"weight": (cin, cout), "bias": (cout,)}
        )

    def attention(self, src: str, heads: int = 2) -> str:
        """Append causal multi-head self-attention."""
        d = self._shapes[src][-1]
        return self._append(
            "attention", (src,), {"heads": heads},
            {"wq": (d, d), "wk": (d, d), "wv": (d, d), "wo": (d, d)},
        )

    def take_last(self, src: str) -> str:
        """Append a slice of the last time position."""
        return self._append("take_last", (src,))

    def build(self) -> Model:
        """Finalise the graph into an immutable Model."""
        return Model(self.name, self.input_spec, self.nodes, self.weights)
