"""Full-depth versions of the paper's three architectures.

The default zoo builders are shallow for test speed; these build the
*complete* block structure of each network -- every layer the real
architecture has, at reduced width and input resolution so they remain
runnable in seconds:

- **MobileNetV1**: the conv stem plus all 13 depthwise-separable blocks
  with the original stride pattern (Howard et al., Table 1);
- **ResNet101-V2**: pre-activation bottleneck stages of [3, 4, 23, 3]
  blocks with projection shortcuts (He et al.);
- **DenseNet121**: four dense blocks of [6, 12, 24, 16] layers joined by
  averaging transition layers that halve the channels (Huang et al.).

They exist to back the claim that the runnable zoo is architecturally
faithful, and to provide heavier functional workloads when wanted.
"""

from __future__ import annotations

from repro.mlrt.model import GraphBuilder, Model
from repro.mlrt.tensor import TensorSpec

#: MobileNetV1's 13 separable blocks: (output-channel multiple, stride)
_MOBILENET_BLOCKS = (
    (2, 1), (4, 2), (4, 1), (8, 2), (8, 1), (16, 2),
    (16, 1), (16, 1), (16, 1), (16, 1), (16, 1), (32, 2), (32, 1),
)

#: ResNet101's stage depths (bottleneck blocks per stage)
_RESNET101_STAGES = (3, 4, 23, 3)

#: DenseNet121's dense-block depths
_DENSENET121_BLOCKS = (6, 12, 24, 16)


def build_mobilenet_full(num_classes: int = 10, width: int = 4, seed: int = 7) -> Model:
    """MobileNetV1 with the complete 13-block body (width-scaled)."""
    b = GraphBuilder("mbnet-v1-full", TensorSpec((1, 32, 32, 3)), seed=seed)
    x = b.relu6(b.batch_norm(b.conv("input", width, k=3, stride=2, pad=1)))
    for multiple, stride in _MOBILENET_BLOCKS:
        x = b.relu6(b.batch_norm(b.depthwise(x, k=3, stride=stride, pad=1)))
        x = b.relu6(b.batch_norm(b.conv(x, width * multiple, k=1, stride=1, pad=0)))
    x = b.global_avg_pool(x)
    return _classify(b, x, num_classes)


def build_resnet101_full(num_classes: int = 10, width: int = 4, seed: int = 7) -> Model:
    """ResNet101-V2: [3, 4, 23, 3] pre-activation bottleneck stages."""
    b = GraphBuilder("rsnet-101-full", TensorSpec((1, 32, 32, 3)), seed=seed)
    x = b.conv("input", width * 4, k=3, stride=1, pad=1)
    for stage_index, depth in enumerate(_RESNET101_STAGES):
        inner = width * (2 ** stage_index)
        outer = inner * 4
        for block_index in range(depth):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            pre = b.relu(b.batch_norm(x))
            # Projection shortcut when shape changes, identity otherwise.
            if stride != 1 or b.shape_of(x)[-1] != outer:
                shortcut = b.conv(pre, outer, k=1, stride=stride, pad=0)
            else:
                shortcut = x
            out = b.relu(b.batch_norm(b.conv(pre, inner, k=1, stride=1, pad=0)))
            out = b.relu(b.batch_norm(b.conv(out, inner, k=3, stride=stride, pad=1)))
            out = b.conv(out, outer, k=1, stride=1, pad=0)
            x = b.add(shortcut, out)
    x = b.relu(b.batch_norm(x))
    x = b.global_avg_pool(x)
    return _classify(b, x, num_classes)


def build_densenet121_full(num_classes: int = 10, growth: int = 2, seed: int = 7) -> Model:
    """DenseNet121: [6, 12, 24, 16] dense blocks + halving transitions."""
    b = GraphBuilder("dsnet-121-full", TensorSpec((1, 32, 32, 3)), seed=seed)
    x = b.conv("input", growth * 2, k=3, stride=1, pad=1)
    for block_index, depth in enumerate(_DENSENET121_BLOCKS):
        for _ in range(depth):
            fresh = b.relu(b.batch_norm(x))
            fresh = b.conv(fresh, growth, k=3, stride=1, pad=1)
            x = b.concat(x, fresh)
        if block_index < len(_DENSENET121_BLOCKS) - 1:
            # Transition: 1x1 conv halving channels, then 2x2 average pool.
            channels = b.shape_of(x)[-1]
            x = b.conv(b.relu(b.batch_norm(x)), max(channels // 2, 1),
                       k=1, stride=1, pad=0)
            x = b.avg_pool(x, size=2, stride=2)
    x = b.relu(b.batch_norm(x))
    x = b.global_avg_pool(x)
    return _classify(b, x, num_classes)


def _classify(b: GraphBuilder, x: str, num_classes: int) -> Model:
    x = b.softmax(b.dense(x, num_classes))
    return b.build()
