"""Tensor bookkeeping: shapes, dtype sizes, buffer arithmetic."""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Tuple

import numpy as np

from repro.errors import ModelError

DTYPE_SIZES = {"float32": 4, "int8": 1, "uint8": 1, "int32": 4}


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype of one tensor flowing through a model graph."""

    shape: Tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPE_SIZES:
            raise ModelError(f"unsupported dtype {self.dtype!r}")
        if any(dim <= 0 for dim in self.shape):
            raise ModelError(f"non-positive dimension in shape {self.shape}")

    @property
    def num_elements(self) -> int:
        return prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.num_elements * DTYPE_SIZES[self.dtype]

    def zeros(self) -> np.ndarray:
        """A zero-filled array of this spec's shape and dtype."""
        return np.zeros(self.shape, dtype=self.dtype)
