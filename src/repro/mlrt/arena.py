"""Static tensor-arena planning (the TFLM memory planner).

Given the size and live range of every intermediate tensor, assign each
an offset in a single arena so that tensors whose live ranges overlap
never share bytes, while tensors that are dead can be overwritten.  This
is the greedy-by-size planner TFLM ships, and it is why the TFLM runtime
buffers in Table I are so much smaller than the TVM ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ModelError

_ALIGN = 64


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class TensorLife:
    """One tensor's arena requirements: size and [first, last] node index."""

    name: str
    nbytes: int
    first_use: int
    last_use: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ModelError(f"tensor {self.name!r} has negative size")
        if self.last_use < self.first_use:
            raise ModelError(f"tensor {self.name!r} dies before it is defined")

    def overlaps(self, other: "TensorLife") -> bool:
        """True when the two live ranges intersect (cannot share bytes)."""
        return self.first_use <= other.last_use and other.first_use <= self.last_use


@dataclass(frozen=True)
class ArenaPlan:
    """Offsets for every tensor plus the total arena size."""

    offsets: Dict[str, int]
    total_bytes: int


def plan_arena(tensors: Sequence[TensorLife]) -> ArenaPlan:
    """Greedy-by-size offset assignment with live-range overlap checks.

    Tensors are placed largest-first at the lowest offset that does not
    collide with any already-placed tensor whose live range overlaps --
    the strategy of TFLM's ``GreedyMemoryPlanner``.
    """
    placed: List[Tuple[TensorLife, int]] = []
    offsets: Dict[str, int] = {}
    ordering = sorted(tensors, key=lambda t: (-t.nbytes, t.first_use, t.name))
    for tensor in ordering:
        size = _align(tensor.nbytes) or _ALIGN
        conflicts = sorted(
            ((off, off + (_align(p.nbytes) or _ALIGN)) for p, off in placed
             if p.overlaps(tensor)),
            key=lambda span: span[0],
        )
        candidate = 0
        for start, end in conflicts:
            if candidate + size <= start:
                break
            candidate = max(candidate, end)
        offsets[tensor.name] = candidate
        placed.append((tensor, candidate))
    total = max(
        (off + (_align(t.nbytes) or _ALIGN) for t, off in placed), default=0
    )
    return ArenaPlan(offsets=offsets, total_bytes=total)
