"""TVM-style graph executor.

TVM's graph runtime binds every weight into pre-allocated runtime storage
at initialisation and keeps all intermediate buffers allocated for the
lifetime of the executor.  Consequently its runtime buffer "also contains
copies of the model data" (Table I commentary), which is why TVM's
enclave memory footprint is so much larger than TFLM's -- the effect the
memory experiments measure.  Execution itself is fast: buffers are
pre-planned, no per-op allocation happens.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mlrt.framework import InferenceFramework, ModelRuntime, register_framework
from repro.mlrt.layers import run_op
from repro.mlrt.model import Model


class TvmGraphExecutor(ModelRuntime):
    """Graph executor with weight copies and fully-resident buffers."""

    def __init__(self, model: Model) -> None:
        super().__init__(model)
        # Bind parameters: TVM copies weights into runtime-owned storage.
        self._params: Dict[str, np.ndarray] = {
            name: array.copy() for name, array in model.weights.items()
        }
        # Pre-allocate every intermediate tensor for the whole graph.
        self._buffers: Dict[str, np.ndarray] = {
            node.name: np.zeros(model.shape_of(node.name), dtype=np.float32)
            for node in model.nodes
        }

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Run inference through the pre-planned buffers."""
        values: Dict[str, np.ndarray] = {"input": x}
        for node in self.model.nodes:
            weights = {
                wname: self._params[f"{node.name}.{wname}"]
                for wname in self._weight_names(node.op)
            }
            result = run_op(node.op, [values[i] for i in node.inputs], node.attrs, weights)
            self._buffers[node.name][...] = result
            values[node.name] = self._buffers[node.name]
        self._last_output = values[self.model.output_node].copy()
        return self._last_output

    @staticmethod
    def _weight_names(op: str) -> tuple:
        from repro.mlrt.layers import WEIGHTED_OPS

        return WEIGHTED_OPS.get(op, ())

    @property
    def buffer_bytes(self) -> int:
        """Weight copies + all intermediates (matches Table I's shape)."""
        params = sum(p.nbytes for p in self._params.values())
        intermediates = sum(b.nbytes for b in self._buffers.values())
        return params + intermediates


class TvmFramework(InferenceFramework):
    """The TVM integration (``name == "tvm"``)."""

    name = "tvm"

    def create_runtime(self, model: Model) -> TvmGraphExecutor:
        """RUNTIME_INIT: bind parameters and pre-allocate all buffers."""
        return TvmGraphExecutor(model)


register_framework(TvmFramework())
