"""Model inference substrate: graph IR, two runtimes, and the model zoo.

The two runtimes reproduce the memory behaviours the paper contrasts:
:mod:`repro.mlrt.tvm_rt` (graph executor whose buffers include weight
copies) and :mod:`repro.mlrt.tflm_rt` (interpreter with an
intermediates-only tensor arena).
"""

from repro.mlrt.arena import ArenaPlan, TensorLife, plan_arena
from repro.mlrt.flops import model_macs, node_macs, summarize
from repro.mlrt.quantize import (
    evaluate_quantization,
    load_quantized,
    quantize_model,
)
from repro.mlrt.framework import (
    InferenceFramework,
    ModelRuntime,
    get_framework,
    register_framework,
)
from repro.mlrt.model import GraphBuilder, GraphNode, Model
from repro.mlrt.tensor import TensorSpec
from repro.mlrt.zoo import (
    FRAMEWORKS,
    PROFILES,
    ModelProfile,
    build_densenet,
    build_mobilenet,
    build_resnet,
    profile,
)
from repro.mlrt.zoo_full import (
    build_densenet121_full,
    build_mobilenet_full,
    build_resnet101_full,
)

__all__ = [
    "FRAMEWORKS",
    "PROFILES",
    "ArenaPlan",
    "GraphBuilder",
    "GraphNode",
    "InferenceFramework",
    "Model",
    "ModelProfile",
    "ModelRuntime",
    "TensorLife",
    "TensorSpec",
    "build_densenet",
    "build_densenet121_full",
    "build_mobilenet",
    "build_mobilenet_full",
    "build_resnet",
    "build_resnet101_full",
    "evaluate_quantization",
    "get_framework",
    "load_quantized",
    "model_macs",
    "node_macs",
    "plan_arena",
    "profile",
    "quantize_model",
    "register_framework",
    "summarize",
]
