"""Compute-cost estimation: multiply-accumulate counts per model.

The paper's latency hierarchy (RSNET >> DSNET >> MBNET) follows from the
models' arithmetic intensity.  This estimator derives per-operator MAC
counts from the graph, which the tests use to check that the runnable
zoo preserves the paper's compute ordering, and which downstream users
can use to size their own cost models.
"""

from __future__ import annotations

from math import prod
from typing import Dict

from repro.errors import ModelError
from repro.mlrt.model import Model


def node_macs(model: Model, node_name: str) -> int:
    """Multiply-accumulate operations performed by one node."""
    node = next((n for n in model.nodes if n.name == node_name), None)
    if node is None:
        raise ModelError(f"no node named {node_name!r}")
    out_shape = model.shape_of(node.name)
    if node.op == "conv2d":
        kh, kw, cin, _ = model.weights[f"{node.name}.weight"].shape
        return prod(out_shape) * kh * kw * cin
    if node.op == "depthwise_conv2d":
        kh, kw, _ = model.weights[f"{node.name}.weight"].shape
        return prod(out_shape) * kh * kw
    if node.op == "dense":
        cin, cout = model.weights[f"{node.name}.weight"].shape
        return out_shape[0] * cin * cout
    if node.op in ("batch_norm", "relu", "relu6", "add", "softmax"):
        return prod(out_shape)  # elementwise
    if node.op in ("max_pool", "avg_pool"):
        size = node.attrs["size"]
        return prod(out_shape) * size * size
    if node.op in ("global_avg_pool", "concat"):
        return prod(out_shape)
    raise ModelError(f"no MAC formula for op {node.op!r}")


def model_macs(model: Model) -> int:
    """Total MACs for one inference."""
    return sum(node_macs(model, node.name) for node in model.nodes)


def summarize(model: Model) -> Dict[str, Dict[str, int]]:
    """Per-node summary: output elements, parameters, MACs."""
    summary: Dict[str, Dict[str, int]] = {}
    for node in model.nodes:
        params = sum(
            model.weights[f"{node.name}.{w}"].size
            for w in model.node_weights(node)
        )
        summary[node.name] = {
            "output_elements": prod(model.shape_of(node.name)),
            "parameters": params,
            "macs": node_macs(model, node.name),
        }
    return summary
