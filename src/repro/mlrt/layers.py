"""Neural-network operators implemented with numpy.

Each operator is a pure function plus a shape-inference helper; the graph
executors in :mod:`repro.mlrt.tvm_rt` and :mod:`repro.mlrt.tflm_rt` call
these through a single dispatch table, which is what guarantees the two
frameworks compute identical results (a cross-check the tests exploit).

Layout is NHWC, matching both TFLM and the paper's TVM builds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


def _pad_hw(x: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract (N, OH, OW, KH*KW*C) patches from an NHWC tensor."""
    n, h, w, c = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kh, kw, c),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return windows.reshape(n, oh, ow, kh * kw * c)


# ---------------------------------------------------------------------------
# forward implementations
# ---------------------------------------------------------------------------


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, *, stride: int, pad: int) -> np.ndarray:
    """2-D convolution; weight layout (KH, KW, CIN, COUT)."""
    kh, kw, cin, cout = weight.shape
    x = _pad_hw(x, pad)
    cols = _im2col(x, kh, kw, stride)
    out = cols @ weight.reshape(kh * kw * cin, cout)
    return (out + bias).astype(np.float32)


def depthwise_conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, *, stride: int, pad: int) -> np.ndarray:
    """Depthwise convolution; weight layout (KH, KW, C)."""
    kh, kw, c = weight.shape
    x = _pad_hw(x, pad)
    cols = _im2col(x, kh, kw, stride)  # (N, OH, OW, KH*KW*C)
    n, oh, ow, _ = cols.shape
    cols = cols.reshape(n, oh, ow, kh * kw, c)
    out = np.einsum("nhwkc,kc->nhwc", cols, weight.reshape(kh * kw, c))
    return (out + bias).astype(np.float32)


def dense(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fully-connected layer; weight layout (IN, OUT)."""
    return (x.reshape(x.shape[0], -1) @ weight + bias).astype(np.float32)


def batch_norm(x: np.ndarray, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Inference-time batch norm with folded scale/shift."""
    return (x * scale + shift).astype(np.float32)


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    """Elementwise clip(x, 0, 6) (MobileNet's activation)."""
    return np.clip(x, 0.0, 6.0)


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise addition (residual connections)."""
    return (a + b).astype(np.float32)


def concat(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Channel concatenation (DenseNet's connective tissue)."""
    return np.concatenate([a, b], axis=-1)


def max_pool(x: np.ndarray, *, size: int, stride: int) -> np.ndarray:
    """Max pooling over size x size windows."""
    cols = _im2col(x, size, size, stride)
    n, oh, ow, _ = cols.shape
    return cols.reshape(n, oh, ow, size * size, x.shape[3]).max(axis=3)


def avg_pool(x: np.ndarray, *, size: int, stride: int) -> np.ndarray:
    """Average pooling over size x size windows."""
    cols = _im2col(x, size, size, stride)
    n, oh, ow, _ = cols.shape
    return cols.reshape(n, oh, ow, size * size, x.shape[3]).mean(axis=3).astype(np.float32)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Mean over the spatial dimensions, (N,H,W,C) -> (N,C)."""
    return x.mean(axis=(1, 2)).astype(np.float32)


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return (e / e.sum(axis=-1, keepdims=True)).astype(np.float32)


def positional_encoding(length: int, dim: int, offset: int = 0) -> np.ndarray:
    """Sinusoidal positional encodings for ``length`` positions.

    Being a pure function of the absolute position (no learned table),
    the same values fall out whether a sequence is embedded whole or one
    token at a time with a running ``offset`` -- which is what lets the
    incremental decoder reproduce full-context execution exactly.
    """
    positions = np.arange(offset, offset + length, dtype=np.float32)[:, None]
    dims = np.arange(dim, dtype=np.float32)[None, :]
    angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
    enc = np.where(dims % 2 == 0, np.sin(angles), np.cos(angles))
    return enc.astype(np.float32)


def embedding(x: np.ndarray, weight: np.ndarray, *, offset: int = 0) -> np.ndarray:
    """Token embedding + sinusoidal positions; weight layout (VOCAB, DIM).

    ``x`` is an (N, T) float tensor carrying token ids (the wire format
    is float32 everywhere); ids are clipped into the vocabulary.
    """
    vocab, dim = weight.shape
    ids = np.clip(x.astype(np.int64), 0, vocab - 1)
    out = weight[ids] + positional_encoding(x.shape[1], dim, offset=offset)
    return out.astype(np.float32)


def layer_norm(x: np.ndarray, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Layer normalisation over the last axis with learned scale/shift."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return ((x - mean) / np.sqrt(var + 1e-5) * scale + shift).astype(np.float32)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation)."""
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(np.float32)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Position-wise affine map over the last axis; weight layout (IN, OUT).

    Unlike :func:`dense` this keeps the leading dimensions -- it is the
    per-token projection transformer blocks are made of.
    """
    return (x @ weight + bias).astype(np.float32)


def _split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """(N, T, D) -> (N, heads, T, D/heads)."""
    n, t, d = x.shape
    return x.reshape(n, t, heads, d // heads).transpose(0, 2, 1, 3)


def attention(
    x: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    *,
    heads: int,
) -> np.ndarray:
    """Causal multi-head self-attention; each weight is (D, D)."""
    n, t, d = x.shape
    dh = d // heads
    q = _split_heads(x @ wq, heads)
    k = _split_heads(x @ wk, heads)
    v = _split_heads(x @ wv, heads)
    scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(np.float32(dh))
    mask = np.triu(np.full((t, t), -np.inf, dtype=np.float32), k=1)
    probs = softmax(scores + mask)
    out = (probs @ v).transpose(0, 2, 1, 3).reshape(n, t, d)
    return (out @ wo).astype(np.float32)


def attention_step(
    x: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    k_cache: Optional[np.ndarray],
    v_cache: Optional[np.ndarray],
    *,
    heads: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One incremental attention step over an (N, 1, D) token.

    Appends the new key/value rows to the caches (layout
    ``(N, heads, T, D/heads)``) and attends the fresh query over every
    cached position -- the causal mask is implicit because the caches
    only ever hold the past.  Returns ``(output, k_cache, v_cache)``;
    the caches are what the enclave keeps in its heap between decode
    steps.
    """
    n, t, d = x.shape
    dh = d // heads
    q = _split_heads(x @ wq, heads)
    k_new = _split_heads(x @ wk, heads)
    v_new = _split_heads(x @ wv, heads)
    k = k_new if k_cache is None else np.concatenate([k_cache, k_new], axis=2)
    v = v_new if v_cache is None else np.concatenate([v_cache, v_new], axis=2)
    scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(np.float32(dh))
    probs = softmax(scores)
    out = (probs @ v).transpose(0, 2, 1, 3).reshape(n, t, d)
    return (out @ wo).astype(np.float32), k, v


def take_last(x: np.ndarray) -> np.ndarray:
    """Slice the last time position, (N, T, D) -> (N, D)."""
    return np.ascontiguousarray(x[:, -1, :])


# ---------------------------------------------------------------------------
# shape inference
# ---------------------------------------------------------------------------


def _conv_hw(h: int, w: int, k: int, stride: int, pad: int) -> Tuple[int, int]:
    return (h + 2 * pad - k) // stride + 1, (w + 2 * pad - k) // stride + 1


def infer_shape(
    op: str,
    input_shapes: Sequence[Tuple[int, ...]],
    attrs: Mapping,
    weight_shapes: Mapping[str, Tuple[int, ...]],
) -> Tuple[int, ...]:
    """Output shape of ``op`` given input shapes, attributes, weights."""
    first = input_shapes[0]
    if op == "conv2d":
        kh, kw, _, cout = weight_shapes["weight"]
        n, h, w, _ = first
        oh, ow = _conv_hw(h, w, kh, attrs["stride"], attrs["pad"])
        return (n, oh, ow, cout)
    if op == "depthwise_conv2d":
        kh, kw, c = weight_shapes["weight"]
        n, h, w, _ = first
        oh, ow = _conv_hw(h, w, kh, attrs["stride"], attrs["pad"])
        return (n, oh, ow, c)
    if op == "dense":
        _, cout = weight_shapes["weight"]
        return (first[0], cout)
    if op in ("batch_norm", "relu", "relu6", "softmax", "layer_norm", "gelu"):
        return tuple(first)
    if op == "embedding":
        _, dim = weight_shapes["weight"]
        return tuple(first) + (dim,)
    if op == "linear":
        _, cout = weight_shapes["weight"]
        return tuple(first[:-1]) + (cout,)
    if op == "attention":
        if len(first) != 3:
            raise ModelError("attention expects an (N, T, D) input")
        if first[-1] % attrs["heads"]:
            raise ModelError(
                f"attention dim {first[-1]} is not divisible by "
                f"{attrs['heads']} heads"
            )
        return tuple(first)
    if op == "take_last":
        if len(first) != 3:
            raise ModelError("take_last expects an (N, T, D) input")
        return (first[0], first[2])
    if op == "add":
        if tuple(input_shapes[0]) != tuple(input_shapes[1]):
            raise ModelError("add requires matching shapes")
        return tuple(first)
    if op == "concat":
        a, b = input_shapes
        if a[:-1] != b[:-1]:
            raise ModelError("concat requires matching leading dims")
        return tuple(a[:-1]) + (a[-1] + b[-1],)
    if op in ("max_pool", "avg_pool"):
        n, h, w, c = first
        oh, ow = _conv_hw(h, w, attrs["size"], attrs["stride"], 0)
        return (n, oh, ow, c)
    if op == "global_avg_pool":
        return (first[0], first[3])
    raise ModelError(f"unknown op {op!r}")


def run_op(
    op: str,
    inputs: List[np.ndarray],
    attrs: Mapping,
    weights: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Execute ``op`` on concrete tensors (the single dispatch point)."""
    if op == "conv2d":
        return conv2d(inputs[0], weights["weight"], weights["bias"],
                      stride=attrs["stride"], pad=attrs["pad"])
    if op == "depthwise_conv2d":
        return depthwise_conv2d(inputs[0], weights["weight"], weights["bias"],
                                stride=attrs["stride"], pad=attrs["pad"])
    if op == "dense":
        return dense(inputs[0], weights["weight"], weights["bias"])
    if op == "batch_norm":
        return batch_norm(inputs[0], weights["scale"], weights["shift"])
    if op == "relu":
        return relu(inputs[0])
    if op == "relu6":
        return relu6(inputs[0])
    if op == "add":
        return add(inputs[0], inputs[1])
    if op == "concat":
        return concat(inputs[0], inputs[1])
    if op == "max_pool":
        return max_pool(inputs[0], size=attrs["size"], stride=attrs["stride"])
    if op == "avg_pool":
        return avg_pool(inputs[0], size=attrs["size"], stride=attrs["stride"])
    if op == "global_avg_pool":
        return global_avg_pool(inputs[0])
    if op == "softmax":
        return softmax(inputs[0])
    if op == "embedding":
        return embedding(inputs[0], weights["weight"])
    if op == "layer_norm":
        return layer_norm(inputs[0], weights["scale"], weights["shift"])
    if op == "gelu":
        return gelu(inputs[0])
    if op == "linear":
        return linear(inputs[0], weights["weight"], weights["bias"])
    if op == "attention":
        return attention(
            inputs[0], weights["wq"], weights["wk"], weights["wv"],
            weights["wo"], heads=attrs["heads"],
        )
    if op == "take_last":
        return take_last(inputs[0])
    raise ModelError(f"unknown op {op!r}")


#: ops that carry weights, and the weight names they expect
WEIGHTED_OPS: Dict[str, Tuple[str, ...]] = {
    "conv2d": ("weight", "bias"),
    "depthwise_conv2d": ("weight", "bias"),
    "dense": ("weight", "bias"),
    "batch_norm": ("scale", "shift"),
    "embedding": ("weight",),
    "layer_norm": ("scale", "shift"),
    "linear": ("weight", "bias"),
    "attention": ("wq", "wk", "wv", "wo"),
}
