"""TFLM-style interpreter with a planned tensor arena.

TFLM executes op-by-op out of a single statically-planned arena that
holds only *intermediate* tensors -- weights are read in place from the
loaded model.  The arena planner reuses the bytes of dead tensors, so the
runtime buffer is a fraction of the model size (Table I: 5 MB vs a 17 MB
model for MBNET).  The price is interpreter overhead on every op.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ModelError
from repro.mlrt.arena import ArenaPlan, TensorLife, plan_arena
from repro.mlrt.framework import InferenceFramework, ModelRuntime, register_framework
from repro.mlrt.layers import run_op
from repro.mlrt.model import Model
from repro.mlrt.tensor import DTYPE_SIZES


def plan_model_arena(model: Model) -> ArenaPlan:
    """Compute arena offsets for every intermediate tensor of ``model``."""
    last_use: Dict[str, int] = {}
    for index, node in enumerate(model.nodes):
        for src in node.inputs:
            last_use[src] = index
    out = model.output_node
    last_use[out] = len(model.nodes)  # output survives the whole run
    lives: List[TensorLife] = []
    for index, node in enumerate(model.nodes):
        shape = model.shape_of(node.name)
        nbytes = int(np.prod(shape)) * DTYPE_SIZES["float32"]
        lives.append(
            TensorLife(
                name=node.name,
                nbytes=nbytes,
                first_use=index,
                last_use=last_use.get(node.name, index),
            )
        )
    return plan_arena(lives)


class TflmInterpreter(ModelRuntime):
    """Op-by-op interpreter executing out of a single tensor arena."""

    def __init__(self, model: Model) -> None:
        super().__init__(model)
        self._plan = plan_model_arena(model)
        self._arena = np.zeros(self._plan.total_bytes, dtype=np.uint8)

    def _view(self, name: str) -> np.ndarray:
        shape = self.model.shape_of(name)
        nbytes = int(np.prod(shape)) * DTYPE_SIZES["float32"]
        offset = self._plan.offsets[name]
        return (
            self._arena[offset : offset + nbytes]
            .view(np.float32)
            .reshape(shape)
        )

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Run inference op-by-op out of the planned arena."""
        if tuple(x.shape) != self.model.input_spec.shape:
            raise ModelError(
                f"input shape {x.shape} does not match model "
                f"{self.model.input_spec.shape}"
            )
        values: Dict[str, np.ndarray] = {"input": x}
        for node in self.model.nodes:
            # Weights are *not* copied -- referenced in place from the model.
            result = run_op(
                node.op,
                [values[i] for i in node.inputs],
                node.attrs,
                self.model.node_weights(node),
            )
            view = self._view(node.name)
            view[...] = result
            values[node.name] = view
        self._last_output = values[self.model.output_node].copy()
        return self._last_output

    @property
    def buffer_bytes(self) -> int:
        """Arena size only: intermediates, no weight copies."""
        return int(self._arena.nbytes)


class TflmFramework(InferenceFramework):
    """The TFLM integration (``name == "tflm"``)."""

    name = "tflm"

    def create_runtime(self, model: Model) -> TflmInterpreter:
        """RUNTIME_INIT: plan an arena and build an interpreter."""
        return TflmInterpreter(model)


register_framework(TflmFramework())
