"""Incremental (token-at-a-time) execution of decoder-only graphs.

A :class:`DecoderSession` walks the same operator graph the batch
runtimes execute, but one time position per call: position-wise ops run
unchanged on an ``(1, 1, D)`` activation, :func:`~repro.mlrt.layers.embedding`
is fed the running position offset, and every ``attention`` node keeps a
per-node key/value cache that grows by one row per step.  Because the
positional encodings are a pure function of absolute position and the
causal mask is implicit in the cache, a chain of :meth:`step` calls
reproduces full-context :meth:`~repro.mlrt.model.Model.run_reference`
execution exactly -- the property the parity tests pin down.

Inside SeMIRT this object *is* the per-stream execution context: the KV
caches live in the enclave heap for the lifetime of the stream and are
released by ``EC_STREAM_CLOSE`` (see ``docs/streaming.md`` for the
EPC-pressure consequences).  Decoding is greedy (argmax) so the token
sequence is a deterministic function of prompt and weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.mlrt import layers
from repro.mlrt.layers import run_op
from repro.mlrt.model import Model

#: ops safe to evaluate one time position at a time.  Everything here is
#: position-wise except the three that get special handling below.
_STREAMABLE_OPS = frozenset(
    {
        "embedding",
        "attention",
        "take_last",
        "layer_norm",
        "linear",
        "gelu",
        "add",
        "relu",
        "relu6",
        "softmax",
        "batch_norm",
    }
)


def streamable(model: Model) -> bool:
    """Whether every op in ``model`` supports incremental decoding."""
    return all(node.op in _STREAMABLE_OPS for node in model.nodes)


def greedy(logits: np.ndarray) -> int:
    """Greedy sampling: the argmax token id of a logits row."""
    return int(np.argmax(logits))


class DecoderSession:
    """One autoregressive decode in progress: position + KV caches.

    :meth:`step` consumes one token id and returns the next-token logits;
    :meth:`prefill` folds a whole prompt in (the time-to-first-token
    cost).  State is the running position and one ``(k, v)`` cache pair
    per attention node -- ``kv_bytes`` is what a stream pins in enclave
    memory.
    """

    def __init__(self, model: Model) -> None:
        unsupported = sorted(
            {n.op for n in model.nodes if n.op not in _STREAMABLE_OPS}
        )
        if unsupported:
            raise ModelError(
                f"model {model.name!r} is not streamable: "
                f"op(s) {unsupported} cannot run incrementally"
            )
        if not model.nodes:
            raise ModelError("cannot stream an empty model")
        self._model = model
        self._position = 0
        self._kv: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def position(self) -> int:
        """Tokens consumed so far (prompt + generated)."""
        return self._position

    @property
    def kv_bytes(self) -> int:
        """Bytes pinned by the KV caches (the stream's EPC footprint)."""
        return sum(k.nbytes + v.nbytes for k, v in self._kv.values())

    def step(self, token: int) -> np.ndarray:
        """Advance one position; returns the next-token logits row."""
        model = self._model
        values: Dict[str, np.ndarray] = {
            "input": np.array([[float(token)]], dtype=np.float32)
        }
        for node in model.nodes:
            inputs = [values[name] for name in node.inputs]
            weights = model.node_weights(node)
            if node.op == "embedding":
                out = layers.embedding(
                    inputs[0], weights["weight"], offset=self._position
                )
            elif node.op == "attention":
                k_cache, v_cache = self._kv.get(node.name, (None, None))
                out, k_cache, v_cache = layers.attention_step(
                    inputs[0],
                    weights["wq"], weights["wk"], weights["wv"], weights["wo"],
                    k_cache, v_cache, heads=node.attrs["heads"],
                )
                self._kv[node.name] = (k_cache, v_cache)
            else:
                # position-wise at T=1 (take_last included: the last
                # position of a single-position tensor is itself)
                out = run_op(node.op, inputs, node.attrs, weights)
            values[node.name] = out
        self._position += 1
        return values[model.output_node]

    def prefill(self, tokens: Iterable[int]) -> np.ndarray:
        """Consume a whole prompt; returns the last position's logits."""
        logits: Optional[np.ndarray] = None
        for token in tokens:
            logits = self.step(int(token))
        if logits is None:
            raise ModelError("cannot prefill an empty prompt")
        return logits

    def generate(self, prompt: Iterable[int], max_new_tokens: int) -> List[int]:
        """Greedy-decode ``max_new_tokens`` after ``prompt`` (reference/test)."""
        if max_new_tokens < 1:
            raise ModelError("max_new_tokens must be at least 1")
        token = greedy(self.prefill(prompt))
        produced = [token]
        while len(produced) < max_new_tokens:
            token = greedy(self.step(token))
            produced.append(token)
        return produced
