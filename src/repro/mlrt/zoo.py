"""The model zoo: the paper's three evaluation models.

Two artefacts per model:

- a **runnable scaled-down network** (``build_*``) that is architecturally
  faithful -- MobileNetV1's depthwise-separable blocks, ResNet-V2's
  pre-activation residual blocks, DenseNet's concatenative dense blocks --
  used by functional tests and examples where real bytes flow through
  encryption, enclaves, and both inference runtimes;
- a :class:`ModelProfile` carrying the paper's published sizes and
  latencies (Table I, Table II, Section VI-A, Appendix D), used by the
  performance simulator so memory/EPC crossovers land where the paper's do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ModelError
from repro.mlrt.model import GraphBuilder, Model
from repro.mlrt.tensor import TensorSpec

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# runnable scaled-down architectures
# ---------------------------------------------------------------------------


def build_mobilenet(num_classes: int = 10, width: int = 8, seed: int = 7) -> Model:
    """A small MobileNetV1: conv stem + depthwise-separable blocks."""
    b = GraphBuilder("mbnet", TensorSpec((1, 16, 16, 3)), seed=seed)
    x = b.relu6(b.batch_norm(b.conv("input", width, k=3, stride=2, pad=1)))
    for cout, stride in ((width * 2, 1), (width * 4, 2), (width * 4, 1)):
        x = b.relu6(b.batch_norm(b.depthwise(x, k=3, stride=stride, pad=1)))
        x = b.relu6(b.batch_norm(b.conv(x, cout, k=1, stride=1, pad=0)))
    x = b.global_avg_pool(x)
    x = b.softmax(b.dense(x, num_classes))
    return b.build()


def build_resnet(num_classes: int = 10, width: int = 8, blocks: int = 3, seed: int = 7) -> Model:
    """A small ResNet-V2: pre-activation residual blocks."""
    b = GraphBuilder("rsnet", TensorSpec((1, 16, 16, 3)), seed=seed)
    x = b.conv("input", width, k=3, stride=1, pad=1)
    for _ in range(blocks):
        inner = b.relu(b.batch_norm(x))
        inner = b.conv(inner, width, k=3, stride=1, pad=1)
        inner = b.relu(b.batch_norm(inner))
        inner = b.conv(inner, width, k=3, stride=1, pad=1)
        x = b.add(x, inner)
    x = b.relu(b.batch_norm(x))
    x = b.global_avg_pool(x)
    x = b.softmax(b.dense(x, num_classes))
    return b.build()


def build_tinylm(
    vocab: int = 32,
    dim: int = 16,
    heads: int = 2,
    blocks: int = 2,
    ctx: int = 16,
    seed: int = 7,
) -> Model:
    """A small decoder-only transformer (the streaming workload's model).

    Pre-norm blocks -- attention and a GELU MLP, each behind a residual
    -- over token + sinusoidal position embeddings, ending in a
    last-position logits head.  The input is a ``(1, ctx)`` float tensor
    of token ids; every op is position-wise or causal, so the model runs
    both whole (``run_reference``, the runtimes) and one token at a time
    through :class:`repro.mlrt.decoder.DecoderSession` with identical
    results.
    """
    b = GraphBuilder("tinylm", TensorSpec((1, ctx)), seed=seed)
    x = b.embedding("input", vocab, dim)
    for _ in range(blocks):
        x = b.add(x, b.attention(b.layer_norm(x), heads=heads))
        h = b.gelu(b.linear(b.layer_norm(x), dim * 4))
        x = b.add(x, b.linear(h, dim))
    x = b.linear(b.layer_norm(x), vocab)
    b.take_last(x)
    return b.build()


def build_densenet(num_classes: int = 10, growth: int = 4, layers: int = 4, seed: int = 7) -> Model:
    """A small DenseNet: each layer concatenates onto the running feature map."""
    b = GraphBuilder("dsnet", TensorSpec((1, 16, 16, 3)), seed=seed)
    x = b.conv("input", growth * 2, k=3, stride=1, pad=1)
    for _ in range(layers):
        fresh = b.relu(b.batch_norm(x))
        fresh = b.conv(fresh, growth, k=3, stride=1, pad=1)
        x = b.concat(x, fresh)
    x = b.relu(b.batch_norm(x))
    x = b.avg_pool(x, size=2, stride=2)
    x = b.global_avg_pool(x)
    x = b.softmax(b.dense(x, num_classes))
    return b.build()


# ---------------------------------------------------------------------------
# paper profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelProfile:
    """Published size and latency figures for one evaluation model.

    All times are in seconds; sizes in bytes.  ``tvm_exec_s`` comes from
    Table II (hot invocations); runtime-init ratios from Section VI-A;
    TFLM execution is modelled as interpreter overhead on top of the TVM
    kernels (TVM "optimizes for inference time", Section VI-A).
    """

    name: str
    model_bytes: int
    tvm_buffer_bytes: int
    tflm_buffer_bytes: int
    tvm_enclave_bytes: int
    tflm_enclave_bytes: int
    tvm_exec_s: float
    tflm_exec_s: float
    tvm_runtime_init_s: float
    tflm_runtime_init_s: float
    azure_download_s: float
    builder: Callable[[], Model]

    def buffer_bytes(self, framework: str) -> int:
        """Runtime buffer size for the given framework (Table I)."""
        if framework == "tvm":
            return self.tvm_buffer_bytes
        if framework == "tflm":
            return self.tflm_buffer_bytes
        raise ModelError(f"unknown framework {framework!r}")

    def enclave_bytes(self, framework: str) -> int:
        """Configured enclave size for the given framework (Appendix D)."""
        if framework == "tvm":
            return self.tvm_enclave_bytes
        if framework == "tflm":
            return self.tflm_enclave_bytes
        raise ModelError(f"unknown framework {framework!r}")

    def exec_s(self, framework: str) -> float:
        """Model-execution service time for the given framework."""
        if framework == "tvm":
            return self.tvm_exec_s
        if framework == "tflm":
            return self.tflm_exec_s
        raise ModelError(f"unknown framework {framework!r}")

    def runtime_init_s(self, framework: str) -> float:
        """Runtime-initialisation time for the given framework."""
        if framework == "tvm":
            return self.tvm_runtime_init_s
        if framework == "tflm":
            return self.tflm_runtime_init_s
        raise ModelError(f"unknown framework {framework!r}")

    @property
    def lam(self) -> dict:
        """λ = runtime-buffer-size / model-size per framework (Figure 10)."""
        return {
            "tvm": self.tvm_buffer_bytes / self.model_bytes,
            "tflm": self.tflm_buffer_bytes / self.model_bytes,
        }


#: Table I + Table II + Appendix D, verbatim where published.
PROFILES: Dict[str, ModelProfile] = {
    "MBNET": ModelProfile(
        name="MBNET",
        model_bytes=17 * MB,
        tvm_buffer_bytes=30 * MB,
        tflm_buffer_bytes=5 * MB,
        tvm_enclave_bytes=0x4000000,   # 64 MB
        tflm_enclave_bytes=0x3000000,  # 48 MB
        tvm_exec_s=0.06579,
        tflm_exec_s=0.10,              # interpreter overhead over TVM kernels
        tvm_runtime_init_s=0.06579 * 0.396,
        tflm_runtime_init_s=0.003,
        azure_download_s=0.180,
        builder=build_mobilenet,
    ),
    "RSNET": ModelProfile(
        name="RSNET",
        model_bytes=170 * MB,
        tvm_buffer_bytes=205 * MB,
        tflm_buffer_bytes=24 * MB,
        tvm_enclave_bytes=0x23000000,  # 560 MB
        tflm_enclave_bytes=0x16000000, # 352 MB
        tvm_exec_s=0.98296,
        tflm_exec_s=1.47,
        tvm_runtime_init_s=0.98296 * 0.213,
        tflm_runtime_init_s=0.012,
        azure_download_s=2.100,
        builder=build_resnet,
    ),
    "DSNET": ModelProfile(
        name="DSNET",
        model_bytes=44 * MB,
        tvm_buffer_bytes=55 * MB,
        tflm_buffer_bytes=12 * MB,
        tvm_enclave_bytes=0x8000000,   # 128 MB
        tflm_enclave_bytes=0x6000000,  # 96 MB
        tvm_exec_s=0.38881,
        tflm_exec_s=0.58,
        tvm_runtime_init_s=0.38881 * 0.150,
        tflm_runtime_init_s=0.006,
        azure_download_s=0.360,
        builder=build_densenet,
    ),
}

FRAMEWORKS = ("tvm", "tflm")


def profile(name: str) -> ModelProfile:
    """Look up a profile by its paper name (MBNET / RSNET / DSNET)."""
    try:
        return PROFILES[name.upper()]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {sorted(PROFILES)}"
        ) from None
