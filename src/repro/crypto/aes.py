"""AES block cipher (FIPS 197) implemented from scratch.

Two execution paths are provided:

- a scalar path (:meth:`AES.encrypt_block` / :meth:`AES.decrypt_block`)
  used for single blocks and for cross-checking, and
- a numpy-vectorised path (:meth:`AES.encrypt_blocks`) that runs all
  rounds over an ``(n, 16)`` batch of blocks at once, which is what makes
  CTR-mode bulk encryption of model files practical in pure Python.

Supported key sizes are 128, 192, and 256 bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidKey

_BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# S-box construction.  Rather than hard-coding the 256-entry table we derive
# it from the field inverse + affine map, which doubles as a self-check.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial 0x11b."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Field inverses via exponentiation by the group order minus one.
    inverse = [0] * 256
    for x in range(1, 256):
        y = x
        for _ in range(253):  # x^254 = x^-1 in GF(2^8)*
            y = _gf_mul(y, x)
        inverse[x] = y
    sbox = [0] * 256
    for x in range(256):
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        b = inverse[x]
        value = b
        for shift in (1, 2, 3, 4):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        value ^= 0x63
        sbox[x] = value
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_SBOX_NP = np.frombuffer(_SBOX, dtype=np.uint8)
_INV_SBOX_NP = np.frombuffer(_INV_SBOX, dtype=np.uint8)

# GF(2^8) multiply-by-constant tables used by (Inv)MixColumns.
_MUL_TABLES = {
    c: np.array([_gf_mul(x, c) for x in range(256)], dtype=np.uint8)
    for c in (2, 3, 9, 11, 13, 14)
}

# ShiftRows permutation on the 16-byte block laid out column-major
# (byte i of the block is state[row=i%4][col=i//4], as in FIPS 197).
_SHIFT_ROWS = np.array(
    [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp
)
_INV_SHIFT_ROWS = np.argsort(_SHIFT_ROWS)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


def _expand_key(key: bytes) -> list[bytes]:
    """Expand ``key`` into the per-round keys (FIPS 197 key schedule)."""
    nk = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]
    words = [key[4 * i : 4 * i + 4] for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            rotated = temp[1:] + temp[:1]
            temp = bytes(_SBOX[b] for b in rotated)
            temp = bytes([temp[0] ^ _RCON[i // nk - 1]]) + temp[1:]
        elif nk > 6 and i % nk == 4:
            temp = bytes(_SBOX[b] for b in temp)
        words.append(bytes(a ^ b for a, b in zip(words[i - nk], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(rounds + 1)]


class AES:
    """AES block cipher for a fixed key.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes of key material.
    """

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKey("AES key must be bytes")
        if len(key) not in (16, 24, 32):
            raise InvalidKey(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._round_keys = _expand_key(bytes(key))
        self._round_keys_np = np.stack(
            [np.frombuffer(rk, dtype=np.uint8) for rk in self._round_keys]
        )
        self.key_size = len(key)

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size (10, 12, or 14)."""
        return len(self._round_keys) - 1

    # -- scalar path --------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != _BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes")
        out = self.encrypt_blocks(
            np.frombuffer(block, dtype=np.uint8).reshape(1, _BLOCK_SIZE)
        )
        return out.tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != _BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes")
        state = np.frombuffer(block, dtype=np.uint8).reshape(1, _BLOCK_SIZE).copy()
        state ^= self._round_keys_np[-1]
        for rnd in range(self.rounds - 1, 0, -1):
            state = state[:, _INV_SHIFT_ROWS]
            state = _INV_SBOX_NP[state]
            state ^= self._round_keys_np[rnd]
            state = _inv_mix_columns(state)
        state = state[:, _INV_SHIFT_ROWS]
        state = _INV_SBOX_NP[state]
        state ^= self._round_keys_np[0]
        return state.tobytes()

    # -- vectorised path -----------------------------------------------------

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, 16)`` uint8 array of blocks in one batch."""
        if blocks.ndim != 2 or blocks.shape[1] != _BLOCK_SIZE:
            raise ValueError("blocks must have shape (n, 16)")
        state = blocks.astype(np.uint8, copy=True)
        state ^= self._round_keys_np[0]
        for rnd in range(1, self.rounds):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS]
            state = _mix_columns(state)
            state ^= self._round_keys_np[rnd]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys_np[-1]
        return state


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """Apply MixColumns to an (n, 16) state batch."""
    s = state.reshape(-1, 4, 4)  # (n, column, row)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    m2, m3 = _MUL_TABLES[2], _MUL_TABLES[3]
    out = np.empty_like(s)
    out[:, :, 0] = m2[a0] ^ m3[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
    out[:, :, 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]
    return out.reshape(-1, 16)


def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
    """Apply InvMixColumns to an (n, 16) state batch."""
    s = state.reshape(-1, 4, 4)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    m9, m11, m13, m14 = (
        _MUL_TABLES[9],
        _MUL_TABLES[11],
        _MUL_TABLES[13],
        _MUL_TABLES[14],
    )
    out = np.empty_like(s)
    out[:, :, 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
    out[:, :, 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
    out[:, :, 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
    out[:, :, 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
    return out.reshape(-1, 16)
