"""The shared algebraic group for key exchange and signatures.

We use the 2048-bit MODP group 14 from RFC 3526.  Its modulus ``P`` is a
safe prime (``P = 2Q + 1`` with ``Q`` prime), so the squares form a prime-
order subgroup of order ``Q`` -- suitable both for Diffie-Hellman key
exchange and for Schnorr signatures.  ``G = 4`` (= 2 squared) generates
that subgroup.
"""

from __future__ import annotations

import secrets

# RFC 3526, group 14 (2048-bit MODP).
P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
Q = (P - 1) // 2
G = 4  # generator of the order-Q subgroup of squares


def random_scalar() -> int:
    """A uniform random exponent in ``[1, Q)``."""
    return secrets.randbelow(Q - 1) + 1


def element_to_bytes(x: int) -> bytes:
    """Fixed-width big-endian encoding of a group element."""
    return x.to_bytes(256, "big")


def is_group_element(x: int) -> bool:
    """True when ``x`` is a non-identity element of the order-Q subgroup.

    The identity (1) is excluded: as a DH public key it would fix the
    shared secret regardless of the peer's contribution.
    """
    return 1 < x < P and pow(x, Q, P) == 1
