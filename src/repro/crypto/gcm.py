"""AES-GCM authenticated encryption (NIST SP 800-38D) from scratch.

The CTR keystream is produced with the numpy-vectorised AES batch path,
and GHASH uses Shoup's 8-bit tables so the per-block field multiplication
is sixteen table lookups on Python integers.  Correctness is pinned by the
NIST GCM test vectors in the test suite.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.crypto.aes import AES
from repro.crypto.keys import random_bytes
from repro.errors import InvalidTag

_R = 0xE1000000000000000000000000000000
NONCE_SIZE = 12
TAG_SIZE = 16


def _gf_mult(x: int, y: int) -> int:
    """Bitwise GF(2^128) multiplication per the GCM specification."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _build_ghash_tables(h: int) -> list[list[int]]:
    """Shoup 8-bit tables: ``tables[j][b] = (b << 8j) * H`` in GF(2^128)."""
    tables: list[list[int]] = []
    for j in range(16):
        table = [0] * 256
        # Fill the single-bit entries with true field multiplications, then
        # extend to all byte values by linearity (XOR of bit contributions).
        for k in range(8):
            table[1 << k] = _gf_mult((1 << k) << (8 * j), h)
        for b in range(1, 256):
            low = b & (-b)
            if b != low:
                table[b] = table[b ^ low] ^ table[low]
        tables.append(table)
    return tables


class _Ghash:
    """Incremental GHASH accumulator keyed by ``H = AES_K(0^128)``."""

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._y = 0
        self._buffer = b""

    def update(self, data: bytes) -> None:
        data = self._buffer + data
        full = len(data) - (len(data) % 16)
        self._buffer = data[full:]
        y = self._y
        tables = self._tables
        for offset in range(0, full, 16):
            y ^= int.from_bytes(data[offset : offset + 16], "big")
            acc = 0
            for j in range(16):
                acc ^= tables[j][(y >> (8 * j)) & 0xFF]
            y = acc
        self._y = y

    def update_padded(self, data: bytes) -> None:
        """Absorb ``data`` zero-padded to a 16-byte boundary."""
        self.update(data)
        if self._buffer:
            self.update(b"\x00" * (16 - len(self._buffer)))

    def digest(self) -> int:
        if self._buffer:
            raise ValueError("GHASH input not block aligned")
        return self._y


class AESGCM:
    """AES-GCM AEAD for a fixed key.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes of AES key material (or a
        :class:`~repro.crypto.keys.SymmetricKey`).
    """

    def __init__(self, key) -> None:
        material = bytes(key)
        self._aes = AES(material)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._ghash_tables = _build_ghash_tables(h)

    # -- keystream -----------------------------------------------------------

    def _counter_blocks(self, j0: bytes, count: int) -> np.ndarray:
        prefix = np.frombuffer(j0[:12], dtype=np.uint8)
        start = struct.unpack(">I", j0[12:])[0]
        counters = (np.arange(count, dtype=np.uint64) + start + 1) % (1 << 32)
        blocks = np.empty((count, 16), dtype=np.uint8)
        blocks[:, :12] = prefix
        blocks[:, 12:] = (
            counters.astype(">u4").view(np.uint8).reshape(count, 4)
        )
        return blocks

    def _ctr_xor(self, j0: bytes, data: bytes) -> bytes:
        if not data:
            return b""
        nblocks = (len(data) + 15) // 16
        keystream = self._aes.encrypt_blocks(self._counter_blocks(j0, nblocks))
        ks = keystream.reshape(-1)[: len(data)]
        buf = np.frombuffer(data, dtype=np.uint8)
        return (buf ^ ks).tobytes()

    def _tag(self, j0: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash = _Ghash(self._ghash_tables)
        ghash.update_padded(aad)
        ghash.update_padded(ciphertext)
        ghash.update(struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8))
        s = ghash.digest().to_bytes(16, "big")
        ek_j0 = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, ek_j0))

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == NONCE_SIZE:
            return nonce + b"\x00\x00\x00\x01"
        ghash = _Ghash(self._ghash_tables)
        ghash.update_padded(nonce)
        ghash.update(struct.pack(">QQ", 0, len(nonce) * 8))
        return ghash.digest().to_bytes(16, "big")

    # -- public AEAD API -----------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext``; returns ``ciphertext || 16-byte tag``."""
        j0 = self._j0(nonce)
        ciphertext = self._ctr_xor(j0, plaintext)
        return ciphertext + self._tag(j0, ciphertext, aad)

    def decrypt(self, nonce: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt ``ciphertext || tag``; raises :class:`InvalidTag`."""
        if len(ciphertext) < TAG_SIZE:
            raise InvalidTag("ciphertext shorter than the authentication tag")
        body, tag = ciphertext[:-TAG_SIZE], ciphertext[-TAG_SIZE:]
        j0 = self._j0(nonce)
        expected = self._tag(j0, body, aad)
        if not _constant_time_eq(tag, expected):
            raise InvalidTag("AES-GCM tag mismatch")
        return self._ctr_xor(j0, body)

    # -- sealed-blob convenience ----------------------------------------------

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt with a fresh random nonce; returns ``nonce || ct || tag``."""
        nonce = random_bytes(NONCE_SIZE)
        return nonce + self.encrypt(nonce, plaintext, aad)

    def open(self, blob: bytes, aad: bytes = b"") -> bytes:
        """Inverse of :meth:`seal`."""
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise InvalidTag("sealed blob too short")
        return self.decrypt(blob[:NONCE_SIZE], blob[NONCE_SIZE:], aad)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
