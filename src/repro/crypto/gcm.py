"""AES-GCM authenticated encryption (NIST SP 800-38D) from scratch.

The CTR keystream is produced with the numpy-vectorised AES batch path,
and GHASH uses Shoup's 8-bit tables so the per-block field multiplication
is sixteen table lookups on Python integers.  Correctness is pinned by the
NIST GCM test vectors in the test suite.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict

import numpy as np

from repro.crypto.aes import AES
from repro.crypto.keys import random_bytes
from repro.errors import InvalidTag

_R = 0xE1000000000000000000000000000000
NONCE_SIZE = 12
TAG_SIZE = 16


def _gf_mult(x: int, y: int) -> int:
    """Bitwise GF(2^128) multiplication per the GCM specification."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _build_ghash_tables(h: int) -> list[list[int]]:
    """Shoup 8-bit tables: ``tables[j][b] = (b << 8j) * H`` in GF(2^128)."""
    tables: list[list[int]] = []
    for j in range(16):
        table = [0] * 256
        # Fill the single-bit entries with true field multiplications, then
        # extend to all byte values by linearity (XOR of bit contributions).
        for k in range(8):
            table[1 << k] = _gf_mult((1 << k) << (8 * j), h)
        for b in range(1, 256):
            low = b & (-b)
            if b != low:
                table[b] = table[b ^ low] ^ table[low]
        tables.append(table)
    return tables


class _Ghash:
    """Incremental GHASH accumulator keyed by ``H = AES_K(0^128)``."""

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._y = 0
        self._buffer = b""

    def update(self, data: bytes) -> None:
        data = self._buffer + data
        full = len(data) - (len(data) % 16)
        self._buffer = data[full:]
        y = self._y
        tables = self._tables
        for offset in range(0, full, 16):
            y ^= int.from_bytes(data[offset : offset + 16], "big")
            acc = 0
            for j in range(16):
                acc ^= tables[j][(y >> (8 * j)) & 0xFF]
            y = acc
        self._y = y

    def update_padded(self, data: bytes) -> None:
        """Absorb ``data`` zero-padded to a 16-byte boundary."""
        self.update(data)
        if self._buffer:
            self.update(b"\x00" * (16 - len(self._buffer)))

    def digest(self) -> int:
        if self._buffer:
            raise ValueError("GHASH input not block aligned")
        return self._y


class AESGCM:
    """AES-GCM AEAD for a fixed key.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes of AES key material (or a
        :class:`~repro.crypto.keys.SymmetricKey`).

    Constructing an ``AESGCM`` is the expensive step: it runs the AES
    key-schedule expansion and builds Shoup's 8-bit GHASH tables (16
    tables x 256 entries).  On the hot path, prefer
    :meth:`AESGCM.derive`, which returns a cached
    :class:`SessionCipher` wrapping that state so repeat requests under
    the same key skip the rebuild; per-call construction is deprecated
    there (cold-path and one-shot uses are fine).
    """

    def __init__(self, key) -> None:
        material = bytes(key)
        self._aes = AES(material)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._ghash_tables = _build_ghash_tables(h)

    # -- keystream -----------------------------------------------------------

    def _counter_blocks(self, j0: bytes, count: int) -> np.ndarray:
        prefix = np.frombuffer(j0[:12], dtype=np.uint8)
        start = struct.unpack(">I", j0[12:])[0]
        counters = (np.arange(count, dtype=np.uint64) + start + 1) % (1 << 32)
        blocks = np.empty((count, 16), dtype=np.uint8)
        blocks[:, :12] = prefix
        blocks[:, 12:] = (
            counters.astype(">u4").view(np.uint8).reshape(count, 4)
        )
        return blocks

    def _ctr_xor(self, j0: bytes, data: bytes) -> bytes:
        if not data:
            return b""
        nblocks = (len(data) + 15) // 16
        keystream = self._aes.encrypt_blocks(self._counter_blocks(j0, nblocks))
        ks = keystream.reshape(-1)[: len(data)]
        buf = np.frombuffer(data, dtype=np.uint8)
        return (buf ^ ks).tobytes()

    def _tag(self, j0: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash = _Ghash(self._ghash_tables)
        ghash.update_padded(aad)
        ghash.update_padded(ciphertext)
        ghash.update(struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8))
        s = ghash.digest().to_bytes(16, "big")
        ek_j0 = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, ek_j0))

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == NONCE_SIZE:
            return nonce + b"\x00\x00\x00\x01"
        ghash = _Ghash(self._ghash_tables)
        ghash.update_padded(nonce)
        ghash.update(struct.pack(">QQ", 0, len(nonce) * 8))
        return ghash.digest().to_bytes(16, "big")

    # -- public AEAD API -----------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext``; returns ``ciphertext || 16-byte tag``."""
        j0 = self._j0(nonce)
        ciphertext = self._ctr_xor(j0, plaintext)
        return ciphertext + self._tag(j0, ciphertext, aad)

    def decrypt(self, nonce: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt ``ciphertext || tag``; raises :class:`InvalidTag`."""
        if len(ciphertext) < TAG_SIZE:
            raise InvalidTag("ciphertext shorter than the authentication tag")
        body, tag = ciphertext[:-TAG_SIZE], ciphertext[-TAG_SIZE:]
        j0 = self._j0(nonce)
        expected = self._tag(j0, body, aad)
        if not _constant_time_eq(tag, expected):
            raise InvalidTag("AES-GCM tag mismatch")
        return self._ctr_xor(j0, body)

    # -- sealed-blob convenience ----------------------------------------------

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt with a fresh random nonce; returns ``nonce || ct || tag``."""
        nonce = random_bytes(NONCE_SIZE)
        return nonce + self.encrypt(nonce, plaintext, aad)

    def open(self, blob: bytes, aad: bytes = b"") -> bytes:
        """Inverse of :meth:`seal`."""
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise InvalidTag("sealed blob too short")
        return self.decrypt(blob[:NONCE_SIZE], blob[NONCE_SIZE:], aad)

    # -- session contexts ------------------------------------------------------

    @classmethod
    def derive(cls, key) -> "SessionCipher":
        """A cached :class:`SessionCipher` for ``key``.

        The first derivation per key pays the key-schedule + GHASH
        table build; later calls return the same immutable context from
        a bounded process-wide LRU.  Sharing is sound because
        :class:`AESGCM` is stateless after construction (every
        ``seal``/``open`` draws a fresh nonce), so one context can
        serve any number of threads and sessions.

        Invalidation: the cache is keyed on the key *material*, so a
        rotated or re-granted key derives a new context automatically;
        callers that must drop a retired key's state promptly (re-grant,
        rotation, key-shard failover) call :func:`evict_session` /
        :func:`clear_session_cache`.
        """
        material = bytes(key)
        with _SESSION_LOCK:
            cached = _SESSION_CACHE.get(material)
            if cached is not None:
                _SESSION_CACHE.move_to_end(material)
                return cached
        # build outside the lock: table construction is the slow part
        cipher = SessionCipher(cls(material))
        with _SESSION_LOCK:
            existing = _SESSION_CACHE.get(material)
            if existing is not None:
                return existing
            _SESSION_CACHE[material] = cipher
            while len(_SESSION_CACHE) > SESSION_CACHE_CAPACITY:
                _SESSION_CACHE.popitem(last=False)
        return cipher


class SessionCipher:
    """A reusable sealed-context handle over one derived :class:`AESGCM`.

    Obtained from :meth:`AESGCM.derive`; carries the expanded key
    schedule and GHASH tables across a hot session so only the first
    request under a key pays their construction.  Immutable and
    thread-safe.  ``seal``/``unseal`` are the random-nonce blob API the
    hot path uses; ``encrypt``/``decrypt`` expose the explicit-nonce
    primitives for callers that manage nonces themselves.
    """

    __slots__ = ("_gcm",)

    def __init__(self, gcm: AESGCM) -> None:
        self._gcm = gcm

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt with a fresh random nonce; returns ``nonce || ct || tag``."""
        return self._gcm.seal(plaintext, aad)

    def unseal(self, blob: bytes, aad: bytes = b"") -> bytes:
        """Inverse of :meth:`seal`; raises :class:`InvalidTag`."""
        return self._gcm.open(blob, aad)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Explicit-nonce :meth:`AESGCM.encrypt` on the derived state."""
        return self._gcm.encrypt(nonce, plaintext, aad)

    def decrypt(self, nonce: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
        """Explicit-nonce :meth:`AESGCM.decrypt` on the derived state."""
        return self._gcm.decrypt(nonce, ciphertext, aad)


#: process-wide derived-context LRU; key material -> SessionCipher
SESSION_CACHE_CAPACITY = 128
_SESSION_CACHE: "OrderedDict[bytes, SessionCipher]" = OrderedDict()
_SESSION_LOCK = threading.Lock()


def evict_session(key) -> bool:
    """Drop the cached session context for ``key`` (if any).

    The explicit-invalidation hook for re-grant, key rotation, and
    key-shard failover: the retired key's expanded state is released
    immediately instead of aging out of the LRU.  Returns whether an
    entry was present.
    """
    material = bytes(key)
    with _SESSION_LOCK:
        return _SESSION_CACHE.pop(material, None) is not None


def clear_session_cache() -> int:
    """Drop every cached session context; returns how many were held."""
    with _SESSION_LOCK:
        count = len(_SESSION_CACHE)
        _SESSION_CACHE.clear()
    return count


def session_cache_size() -> int:
    """How many derived contexts the process-wide cache currently holds."""
    with _SESSION_LOCK:
        return len(_SESSION_CACHE)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
