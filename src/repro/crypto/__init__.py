"""From-scratch cryptography substrate.

SeSeMI encrypts models and requests with AES-GCM, establishes secure
channels with an ephemeral Diffie-Hellman handshake, and authenticates
attestation quotes with digital signatures.  This package implements all
of those primitives from scratch (no external crypto dependency):

- :mod:`repro.crypto.aes` -- AES block cipher, numpy-vectorised for bulk.
- :mod:`repro.crypto.gcm` -- AES-GCM AEAD validated against NIST vectors.
- :mod:`repro.crypto.hashes` -- SHA-256 / HMAC / HKDF helpers.
- :mod:`repro.crypto.dh` -- finite-field Diffie-Hellman (RFC 3526 group 14).
- :mod:`repro.crypto.signature` -- Schnorr signatures over the same group.
- :mod:`repro.crypto.keys` -- symmetric key material and fingerprints.
- :mod:`repro.crypto.stream` -- chunked AEAD (STREAM) for large models.
"""

from repro.crypto.aes import AES
from repro.crypto.gcm import AESGCM
from repro.crypto.hashes import hkdf, hmac_sha256, sha256
from repro.crypto.dh import DHKeyPair, derive_session_key
from repro.crypto.signature import SigningKey, VerifyKey
from repro.crypto.keys import SymmetricKey, random_bytes
from repro.crypto.stream import iter_open_stream, open_stream, seal_stream

__all__ = [
    "AES",
    "AESGCM",
    "DHKeyPair",
    "SigningKey",
    "SymmetricKey",
    "VerifyKey",
    "derive_session_key",
    "hkdf",
    "hmac_sha256",
    "iter_open_stream",
    "open_stream",
    "random_bytes",
    "seal_stream",
    "sha256",
]
