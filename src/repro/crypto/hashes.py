"""Hashing, MAC, and key-derivation helpers.

SHA-256 and HMAC come from the Python standard library (they are part of
the language runtime, not an external dependency); HKDF (RFC 5869) is
implemented here on top of them and is used to derive session keys from
Diffie-Hellman shared secrets during RA-TLS handshakes.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

_HASH_LEN = 32


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def hkdf(
    input_key_material: bytes,
    length: int = 32,
    salt: bytes = b"",
    info: bytes = b"",
) -> bytes:
    """HKDF-SHA256 (RFC 5869): extract-then-expand key derivation."""
    if length <= 0 or length > 255 * _HASH_LEN:
        raise ValueError("invalid HKDF output length")
    prk = hmac_sha256(salt or b"\x00" * _HASH_LEN, input_key_material)
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]
