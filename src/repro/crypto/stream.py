"""Chunked authenticated encryption for large artifacts (STREAM).

Sealing a 170 MB model as one AES-GCM message forces the enclave to
stage the whole ciphertext *and* plaintext at once -- the memory
overhead Appendix D calls out.  Production enclave runtimes instead
decrypt large objects chunk by chunk.  Naive per-chunk AEAD is unsafe
(an attacker can reorder, duplicate, or truncate chunks), so this module
implements the STREAM construction (Hoang, Reyhanitabar, Vaudenay,
Vizár): every chunk's nonce encodes its index plus a final-chunk flag,
making the sequence of chunks as tamper-evident as a single message.

The format is ``header || chunk_0 || chunk_1 || ...`` where the header
carries a random 8-byte stream id and the chunk size, and each chunk is
an AES-GCM message under nonce ``stream_id || index || final_flag``.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.crypto.gcm import AESGCM, TAG_SIZE
from repro.crypto.keys import random_bytes
from repro.errors import CryptoError, InvalidTag

_MAGIC = b"STRM1"
DEFAULT_CHUNK_SIZE = 1 << 20  # 1 MiB

_HEADER = struct.Struct(">5s8sI")  # magic, stream id, chunk size


def _nonce(stream_id: bytes, index: int, final: bool) -> bytes:
    """96-bit STREAM nonce: 8-byte stream id, 3-byte counter, final flag."""
    if index >= 1 << 24:
        raise CryptoError("stream too long (more than 2^24 chunks)")
    return stream_id + index.to_bytes(3, "big") + (b"\x01" if final else b"\x00")


def seal_stream(key, plaintext: bytes, aad: bytes = b"",
                chunk_size: int = DEFAULT_CHUNK_SIZE) -> bytes:
    """Encrypt ``plaintext`` as an ordered, truncation-proof chunk stream."""
    if chunk_size <= 0:
        raise CryptoError("chunk size must be positive")
    cipher = AESGCM(key)
    stream_id = random_bytes(8)
    out = [_HEADER.pack(_MAGIC, stream_id, chunk_size)]
    total_chunks = max(1, (len(plaintext) + chunk_size - 1) // chunk_size)
    for index in range(total_chunks):
        chunk = plaintext[index * chunk_size : (index + 1) * chunk_size]
        final = index == total_chunks - 1
        out.append(cipher.encrypt(_nonce(stream_id, index, final), chunk, aad))
    return b"".join(out)


def open_stream(key, sealed: bytes, aad: bytes = b"") -> bytes:
    """Authenticate and decrypt a sealed stream in one call."""
    return b"".join(iter_open_stream(key, sealed, aad))


def iter_open_stream(key, sealed: bytes, aad: bytes = b"") -> Iterator[bytes]:
    """Decrypt chunk by chunk (constant staging memory per chunk).

    Raises :class:`InvalidTag` on any tampering, including chunk
    reordering, duplication, or removal of the final chunk (truncation):
    the index and final flag live in the nonce, so a displaced chunk
    fails authentication.
    """
    if len(sealed) < _HEADER.size:
        raise InvalidTag("sealed stream shorter than its header")
    magic, stream_id, chunk_size = _HEADER.unpack_from(sealed)
    if magic != _MAGIC:
        raise InvalidTag("not a sealed stream (bad magic)")
    if chunk_size <= 0:
        raise InvalidTag("corrupt stream header")
    cipher = AESGCM(key)
    offset = _HEADER.size
    wire_chunk = chunk_size + TAG_SIZE
    index = 0
    saw_final = False
    while offset < len(sealed):
        remaining = len(sealed) - offset
        body = sealed[offset : offset + min(wire_chunk, remaining)]
        final = remaining <= wire_chunk
        try:
            plaintext = cipher.decrypt(_nonce(stream_id, index, final), body, aad)
        except InvalidTag:
            raise InvalidTag(
                f"stream chunk {index} failed authentication "
                "(tampered, reordered, or truncated)"
            ) from None
        yield plaintext
        saw_final = saw_final or final
        offset += len(body)
        index += 1
    if not saw_final:
        raise InvalidTag("stream ended without an authenticated final chunk")
