"""Symmetric key material.

SeSeMI distinguishes *identity keys* (long-term, registered with
KeyService), *model keys* (encrypt a model artifact), and *request keys*
(encrypt one user's requests and responses).  All three are AES keys; this
module provides a small value type with a stable fingerprint used as the
owner/user identity (``id = SHA256(K_id)`` in Algorithm 1).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.errors import InvalidKey

VALID_KEY_SIZES = (16, 24, 32)


def random_bytes(count: int) -> bytes:
    """Cryptographically secure random bytes."""
    return secrets.token_bytes(count)


@dataclass(frozen=True)
class SymmetricKey:
    """An AES key with a stable SHA-256 fingerprint.

    The fingerprint doubles as the principal identity in KeyService
    (Algorithm 1 line 6 computes ``id = SHA256(K_id)``).
    """

    material: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.material) not in VALID_KEY_SIZES:
            raise InvalidKey(
                f"symmetric key must be one of {VALID_KEY_SIZES} bytes, "
                f"got {len(self.material)}"
            )

    @classmethod
    def generate(cls, size: int = 16) -> "SymmetricKey":
        """Generate a fresh random key of ``size`` bytes."""
        if size not in VALID_KEY_SIZES:
            raise InvalidKey(f"key size must be one of {VALID_KEY_SIZES}")
        return cls(random_bytes(size))

    @property
    def fingerprint(self) -> str:
        """Hex SHA-256 of the key material (the principal identity)."""
        return sha256(self.material).hex()

    def __bytes__(self) -> bytes:
        return self.material

    def __len__(self) -> int:
        return len(self.material)
