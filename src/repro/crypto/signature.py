"""Schnorr signatures over the RFC 3526 group.

These stand in for the ECDSA signatures that Intel's quoting
infrastructure applies to attestation quotes.  The construction is
standard Schnorr in a prime-order subgroup: the signature is ``(e, s)``
with ``e = H(g^k || m)`` and ``s = k + x*e mod Q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import group
from repro.crypto.hashes import sha256
from repro.errors import InvalidSignature


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(e, s)``."""

    e: int
    s: int

    def to_bytes(self) -> bytes:
        """Fixed-width encoding ``e || s``."""
        return self.e.to_bytes(32, "big") + self.s.to_bytes(256, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Signature":
        if len(raw) != 32 + 256:
            raise InvalidSignature("malformed signature encoding")
        return cls(
            e=int.from_bytes(raw[:32], "big"),
            s=int.from_bytes(raw[32:], "big"),
        )


def _challenge(commitment: int, message: bytes) -> int:
    digest = sha256(group.element_to_bytes(commitment) + message)
    return int.from_bytes(digest, "big") % group.Q


@dataclass(frozen=True)
class VerifyKey:
    """A Schnorr public key."""

    value: int

    def verify(self, message: bytes, signature: Signature) -> None:
        """Raise :class:`InvalidSignature` unless ``signature`` is valid."""
        if not group.is_group_element(self.value):
            raise InvalidSignature("verify key is not a valid group element")
        if not (0 <= signature.e < group.Q and 0 <= signature.s < group.Q):
            raise InvalidSignature("signature scalars out of range")
        # r' = g^s * y^{-e};  valid iff H(r' || m) == e.
        y_inv_e = pow(self.value, group.Q - signature.e, group.P)
        commitment = (pow(group.G, signature.s, group.P) * y_inv_e) % group.P
        if _challenge(commitment, message) != signature.e:
            raise InvalidSignature("Schnorr verification failed")

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian encoding of the public value."""
        return group.element_to_bytes(self.value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "VerifyKey":
        return cls(int.from_bytes(raw, "big"))


@dataclass(frozen=True)
class SigningKey:
    """A Schnorr private key."""

    scalar: int = field(repr=False)

    @classmethod
    def generate(cls) -> "SigningKey":
        return cls(group.random_scalar())

    @property
    def verify_key(self) -> VerifyKey:
        return VerifyKey(pow(group.G, self.scalar, group.P))

    def sign(self, message: bytes) -> Signature:
        """Produce a Schnorr signature over ``message``."""
        k = group.random_scalar()
        commitment = pow(group.G, k, group.P)
        e = _challenge(commitment, message)
        s = (k + self.scalar * e) % group.Q
        return Signature(e=e, s=s)
