"""Finite-field Diffie-Hellman key exchange.

RA-TLS channels in SeSeMI start with an ephemeral DH handshake; the
attestation quote binds the enclave identity to the handshake public key
so that the channel terminates *inside* the attested enclave.  This module
provides the handshake primitive and session-key derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import group
from repro.crypto.hashes import hkdf
from repro.errors import CryptoError


@dataclass(frozen=True)
class DHPublicKey:
    """A public DH value (element of the order-Q subgroup)."""

    value: int

    def __post_init__(self) -> None:
        if not group.is_group_element(self.value):
            raise CryptoError("DH public key is not a valid group element")

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian encoding of the public value."""
        return group.element_to_bytes(self.value)


@dataclass(frozen=True)
class DHKeyPair:
    """An ephemeral DH key pair."""

    private: int = field(repr=False)
    public: DHPublicKey

    @classmethod
    def generate(cls) -> "DHKeyPair":
        private = group.random_scalar()
        return cls(private=private, public=DHPublicKey(pow(group.G, private, group.P)))

    def shared_secret(self, peer: DHPublicKey) -> bytes:
        """Raw shared secret ``peer^private`` (validated peer element)."""
        return group.element_to_bytes(pow(peer.value, self.private, group.P))


def derive_session_key(
    shared_secret: bytes, transcript: bytes, size: int = 16
) -> bytes:
    """Derive an AES session key from the DH secret and handshake transcript.

    Binding the transcript (both public keys plus the quotes exchanged)
    into the KDF gives the usual protection against mix-and-match attacks
    on handshake messages.
    """
    return hkdf(shared_secret, length=size, info=b"repro-ratls-v1" + transcript)
