"""WarmPoolManager: strategy + janitor + predictor behind one facade.

The manager is the warm pool's single source of truth.  It observes the
fleet lifecycle (``on_launch`` / ``on_retire`` / ``on_down``) and the
traffic (``on_dispatch`` / ``on_complete`` / ``on_failure``), and from
those events answers the three questions its host asks:

- :meth:`suggest` -- which idle warm endpoint should this request
  reuse?  (the configured :class:`~repro.warmpool.strategy.WarmStrategy`)
- :meth:`sweep` -- which endpoints should be drained and retired now?
  (the :class:`~repro.warmpool.janitor.Janitor`)
- :meth:`prewarm_count` -- how many endpoints should be launched ahead
  of predicted demand?  (the
  :class:`~repro.warmpool.predictor.Prewarmer`)

Every dispatch is classified by temperature:

- **cold** -- the endpoint's host was launched for this request (the
  full ``EC_INIT`` + attestation price);
- **hot** -- the endpoint's runtime is already initialised for this
  model (``last_model`` matches): execution only;
- **warm** -- the endpoint is alive but must switch models (runtime
  re-init, no enclave launch).

Classification counters, per-endpoint idle ages, janitor retire counts,
and predictor rates surface through :meth:`stats` (the service tier's
``/v1/stats`` section).  Every decision is appended to a bounded
**decision log** of plain strings -- a seeded trace replayed against a
fresh manager produces a byte-identical log, which CI gates on.

Reactive scale-out (:class:`~repro.routing.ScaleOutPolicy`) is folded
in as one fleet-shape strategy among several: arm ``scale_out`` in the
config and the manager owns the
:class:`~repro.routing.PressureTracker`, so reactive growth shares the
decision log with the janitor's shrinks and the predictor's pre-warms.

Thread-safe: the live gateway dispatches from many threads; one lock
guards all mutable state.  Determinism holds for any single-threaded
(or externally serialised) event sequence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.routing import PressureTracker, ScaleOutPolicy
from repro.warmpool.janitor import Janitor, JanitorPolicy
from repro.warmpool.predictor import PredictorPolicy, Prewarmer
from repro.warmpool.strategy import (
    STRATEGIES,
    WarmEndpoint,
    WarmStrategy,
    make_strategy,
)

#: dispatch temperatures, coldest first
TEMPERATURES = ("cold", "warm", "hot")


@dataclass(frozen=True)
class WarmPoolConfig:
    """Every warm-pool knob in one place.

    ``strategy`` picks the warm-instance reuse policy (``lcs`` /
    ``mru`` / ``affinity``); ``keep_alive_s`` / ``min_warm`` /
    ``sweep_interval_s`` drive the janitor; ``max_endpoints`` caps the
    fleet whatever the predictor wants; ``predictive`` arms the
    pre-warmer with ``predictor`` as its policy; ``scale_out`` folds
    reactive pressure growth into the manager's decision log.
    """

    strategy: str = "lcs"
    keep_alive_s: float = 30.0
    min_warm: int = 1
    sweep_interval_s: float = 1.0
    max_endpoints: int = 8
    predictive: bool = False
    predictor: PredictorPolicy = field(default_factory=PredictorPolicy)
    scale_out: Optional[ScaleOutPolicy] = None
    log_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown warm strategy {self.strategy!r}; "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        if self.max_endpoints < 1:
            raise ConfigError("max_endpoints must be >= 1")
        if self.min_warm > self.max_endpoints:
            raise ConfigError("min_warm cannot exceed max_endpoints")
        if self.log_capacity < 1:
            raise ConfigError("log_capacity must be >= 1")

    def janitor_policy(self) -> JanitorPolicy:
        """The janitor's slice of this config."""
        return JanitorPolicy(
            keep_alive_s=self.keep_alive_s,
            min_warm=self.min_warm,
            sweep_interval_s=self.sweep_interval_s,
        )


@dataclass
class EndpointRecord:
    """The manager's view of one live endpoint."""

    name: str
    launched_at: float
    cold_start_s: float = 0.0
    prewarmed: bool = False
    in_flight: int = 0
    last_model: Optional[str] = None
    last_dispatch_at: Optional[float] = None
    idle_since: float = 0.0       # meaningful only while in_flight == 0
    pinned: bool = False          # attached/shared host: never retire
    dispatches: int = 0


class WarmPoolManager:
    """Compose strategy, janitor, and pre-warmer over one fleet."""

    def __init__(self, config: Optional[WarmPoolConfig] = None) -> None:
        self.config = config if config is not None else WarmPoolConfig()
        self.strategy: WarmStrategy = make_strategy(self.config.strategy)
        self.janitor = Janitor(self.config.janitor_policy())
        self.prewarmer: Optional[Prewarmer] = (
            Prewarmer(self.config.predictor) if self.config.predictive else None
        )
        self.reactive: Optional[PressureTracker] = (
            PressureTracker(self.config.scale_out)
            if self.config.scale_out is not None
            else None
        )
        self._records: Dict[str, EndpointRecord] = {}
        self._counters: Dict[str, int] = {
            "cold": 0, "warm": 0, "hot": 0,
            "launches": 0, "prewarm_launches": 0,
            "janitor_retired": 0, "retired": 0,
            "scale_out": 0,
        }
        self._log: List[str] = []
        self._lock = threading.Lock()

    # -- fleet lifecycle ---------------------------------------------------------

    def on_launch(
        self,
        endpoint: str,
        now: float,
        cold_start_s: float = 0.0,
        prewarmed: bool = False,
        pinned: bool = False,
    ) -> None:
        """Register a live endpoint (lazy, pre-warm, or relaunch)."""
        with self._lock:
            self._records[endpoint] = EndpointRecord(
                name=endpoint,
                launched_at=now,
                cold_start_s=cold_start_s,
                prewarmed=prewarmed,
                idle_since=now,
                pinned=pinned,
            )
            self._counters["launches"] += 1
            if prewarmed:
                self._counters["prewarm_launches"] += 1
            self._append(
                f"launch ep={endpoint} t={now:.6f} "
                f"cold_start_s={cold_start_s:.6f} "
                f"kind={'prewarm' if prewarmed else 'demand'}"
            )

    def on_retire(self, endpoint: str, now: float, reason: str = "janitor") -> None:
        """Drop a retired endpoint from the pool accounting."""
        with self._lock:
            if self._records.pop(endpoint, None) is None:
                return
            self._counters["retired"] += 1
            if reason == "janitor":
                self._counters["janitor_retired"] += 1
            self._append(f"retire ep={endpoint} t={now:.6f} reason={reason}")

    def on_down(self, endpoint: str, now: float) -> None:
        """An endpoint's host died; it re-registers when relaunched."""
        with self._lock:
            if self._records.pop(endpoint, None) is None:
                return
            self._append(f"down ep={endpoint} t={now:.6f}")

    def pin(self, endpoint: str) -> None:
        """Protect ``endpoint`` from the janitor (attached/shared host)."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is not None:
                record.pinned = True

    def unpin(self, endpoint: str) -> None:
        """Make ``endpoint`` retirable again."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is not None:
                record.pinned = False

    # -- traffic -----------------------------------------------------------------

    def classify(self, endpoint: str, model_id: str, launched: bool) -> str:
        """The temperature a dispatch to ``endpoint`` would have now."""
        if launched:
            return "cold"
        with self._lock:
            record = self._records.get(endpoint)
        if record is not None and record.last_model == model_id:
            return "hot"
        return "warm"

    def on_dispatch(
        self, endpoint: str, model_id: str, now: float, launched: bool = False
    ) -> str:
        """Record one dispatch; returns its temperature."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is None:
                # a dispatch to an endpoint the lifecycle hooks missed
                # (e.g. attached before the manager was armed): register
                # it so the accounting stays consistent.
                record = EndpointRecord(
                    name=endpoint, launched_at=now, idle_since=now
                )
                self._records[endpoint] = record
            if launched:
                temperature = "cold"
            elif record.last_model == model_id:
                temperature = "hot"
            else:
                temperature = "warm"
            record.in_flight += 1
            record.last_model = model_id
            record.last_dispatch_at = now
            record.dispatches += 1
            self._counters[temperature] += 1
            self._append(
                f"dispatch ep={endpoint} model={model_id} t={now:.6f} "
                f"temp={temperature}"
            )
        if self.prewarmer is not None:
            self.prewarmer.on_dispatch(model_id, now)
        return temperature

    def on_complete(self, endpoint: str, model_id: str, now: float) -> None:
        """Record one response; the endpoint may become idle."""
        self._settle(endpoint, now, feed_service_time=True)

    def on_failure(self, endpoint: str, model_id: str, now: float) -> None:
        """Release the slot of a request that died mid-flight."""
        self._settle(endpoint, now, feed_service_time=False)

    def _settle(self, endpoint: str, now: float, feed_service_time: bool) -> None:
        service_s = None
        with self._lock:
            record = self._records.get(endpoint)
            if record is None:
                return
            if record.in_flight > 0:
                record.in_flight -= 1
            if record.in_flight == 0:
                record.idle_since = now
                if (
                    feed_service_time
                    and record.last_dispatch_at is not None
                    and now >= record.last_dispatch_at
                ):
                    service_s = now - record.last_dispatch_at
        if service_s is not None and self.prewarmer is not None:
            self.prewarmer.on_service_time(service_s)

    # -- warm-instance selection ---------------------------------------------------

    def suggest(self, model_id: str, now: float) -> Optional[str]:
        """The idle endpoint the strategy would reuse for ``model_id``."""
        with self._lock:
            candidates = tuple(
                WarmEndpoint(
                    name=record.name,
                    idle_since=record.idle_since,
                    launched_at=record.launched_at,
                    last_model=record.last_model,
                )
                for record in self._records.values()
                if record.in_flight == 0
            )
        choice = self.strategy.select(candidates, model_id, now)
        return choice.name if choice is not None else None

    # -- janitor -----------------------------------------------------------------

    def sweep_due(self, now: float) -> bool:
        """Whether the janitor's debounce interval has elapsed."""
        return self.janitor.due(now)

    def sweep(self, now: float) -> List[str]:
        """Endpoints the janitor retires now (oldest-idle first).

        Pure nomination: call :meth:`on_retire` for each endpoint once
        it has actually been drained and retired.
        """
        with self._lock:
            idle = [
                WarmEndpoint(
                    name=record.name,
                    idle_since=record.idle_since,
                    launched_at=record.launched_at,
                    last_model=record.last_model,
                )
                for record in self._records.values()
                if record.in_flight == 0 and not record.pinned
            ]
            fleet_size = len(self._records)
        victims = self.janitor.sweep(now, idle, fleet_size)
        if victims:
            with self._lock:
                self._append(
                    f"sweep t={now:.6f} victims={','.join(victims)}"
                )
        return victims

    # -- predictive pre-warming -----------------------------------------------------

    def prewarm_count(self, now: float) -> int:
        """Endpoints to launch ahead of demand (0 when not predictive)."""
        if self.prewarmer is None:
            return 0
        desired = min(
            max(self.prewarmer.desired_warm(now), self.config.min_warm),
            self.config.max_endpoints,
        )
        with self._lock:
            live = len(self._records)
        count = max(0, desired - live)
        if count:
            with self._lock:
                self._append(
                    f"prewarm t={now:.6f} desired={desired} live={live} "
                    f"launching={count}"
                )
        return count

    # -- reactive scale-out ----------------------------------------------------------

    def on_pressure(self, saw_pressure: bool, fleet_size: int) -> bool:
        """Debounced reactive growth; ``True`` means grow the fleet now.

        Only meaningful when ``config.scale_out`` is armed -- the
        manager then owns the :class:`~repro.routing.PressureTracker`
        and reactive spawns share the decision log.
        """
        if self.reactive is None:
            return False
        grow = self.reactive.observe(
            saw_pressure, min(fleet_size, self.config.max_endpoints)
        )
        if grow:
            with self._lock:
                self._counters["scale_out"] += 1
                self._append(f"scale_out fleet={fleet_size}")
        return grow

    # -- observability ----------------------------------------------------------------

    @property
    def fleet_size(self) -> int:
        with self._lock:
            return len(self._records)

    def counters(self) -> Dict[str, int]:
        """A snapshot of the classification and lifecycle counters."""
        with self._lock:
            return dict(self._counters)

    def cold_start_ratio(self) -> float:
        """Cold dispatches over all dispatches (0.0 before traffic)."""
        with self._lock:
            total = (
                self._counters["cold"]
                + self._counters["warm"]
                + self._counters["hot"]
            )
            return self._counters["cold"] / total if total else 0.0

    def stats(self, now: float) -> dict:
        """The ``/v1/stats`` warm-pool section (JSON-ready)."""
        with self._lock:
            endpoints = {
                name: {
                    "idle_s": (
                        max(0.0, now - record.idle_since)
                        if record.in_flight == 0
                        else 0.0
                    ),
                    "in_flight": record.in_flight,
                    "last_model": record.last_model,
                    "prewarmed": record.prewarmed,
                    "pinned": record.pinned,
                    "dispatches": record.dispatches,
                    "cold_start_s": record.cold_start_s,
                }
                for name, record in sorted(self._records.items())
            }
            counters = dict(self._counters)
        total = counters["cold"] + counters["warm"] + counters["hot"]
        return {
            "strategy": self.strategy.name,
            "keep_alive_s": self.config.keep_alive_s,
            "min_warm": self.config.min_warm,
            "predictive": self.config.predictive,
            "endpoints": endpoints,
            "counters": counters,
            "cold_start_ratio": counters["cold"] / total if total else 0.0,
            "janitor_sweeps": self.janitor.sweeps,
            "predictor_rates": (
                self.prewarmer.rates(now) if self.prewarmer is not None else {}
            ),
            "predicted_service_s": (
                self.prewarmer.service_time_s
                if self.prewarmer is not None
                else None
            ),
        }

    # -- decision log -------------------------------------------------------------------

    def _append(self, line: str) -> None:
        # caller holds the lock
        self._log.append(line)
        if len(self._log) > self.config.log_capacity:
            del self._log[: len(self._log) - self.config.log_capacity]

    def decision_log(self) -> List[str]:
        """A snapshot of the decision log (newest last)."""
        with self._lock:
            return list(self._log)

    def log_text(self) -> str:
        """The decision log as one string (the determinism gate input)."""
        return "\n".join(self.decision_log())


__all__ = [
    "EndpointRecord",
    "TEMPERATURES",
    "WarmPoolConfig",
    "WarmPoolManager",
]
