"""Pluggable warm-instance strategies: which idle endpoint to reuse.

A strategy sees only :class:`WarmEndpoint` snapshots -- the idle
members of the fleet at one instant -- and picks the one a new request
should land on.  The choice shapes the pool over time:

- :class:`LCSStrategy` reuses the **oldest-idle** endpoint (the LCS
  paper's LRU-warm-container policy): every reuse refreshes the
  endpoint that was closest to its keep-alive deadline, so the whole
  pool stays warm and total cold-start latency is minimised.
- :class:`MRUStrategy` reuses the **newest-idle** endpoint: the idle
  tail is never refreshed, ages past ``keep_alive_s``, and the janitor
  retires it -- fewer warm endpoints, lower memory cost.
- :class:`AffinityStrategy` layers per-model warm sub-pools over a base
  strategy: an endpoint whose runtime is already initialised for the
  requested model (``last_model`` matches) is preferred, so reuse is
  *hot*, not merely warm -- the warm-pool face of the gateway's
  :class:`~repro.routing.BatchAffinity` hint.

Every strategy is deterministic: ties break on the endpoint name, so a
replayed trace makes identical picks (the determinism CI gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError

#: strategy names accepted by :func:`make_strategy`
STRATEGIES = ("lcs", "mru", "affinity")


@dataclass(frozen=True)
class WarmEndpoint:
    """A strategy's view of one idle warm endpoint at one instant."""

    name: str
    idle_since: float            # when its in-flight count last hit zero
    launched_at: float
    last_model: Optional[str] = None  # model its runtime is initialised for


class WarmStrategy:
    """Common interface: pick the idle endpoint a request should reuse."""

    name = "?"

    def select(
        self,
        candidates: Sequence[WarmEndpoint],
        model_id: str,
        now: float,
    ) -> Optional[WarmEndpoint]:
        """The endpoint to reuse, or ``None`` when ``candidates`` is empty."""
        raise NotImplementedError


class LCSStrategy(WarmStrategy):
    """Reuse the oldest-idle endpoint; maximises the warm pool."""

    name = "lcs"

    def select(self, candidates, model_id, now):
        """The endpoint idle the longest (ties break on name)."""
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.idle_since, c.name))


class MRUStrategy(WarmStrategy):
    """Reuse the newest-idle endpoint; maximises the retirable tail."""

    name = "mru"

    def select(self, candidates, model_id, now):
        """The endpoint idle the shortest time (ties break on name)."""
        if not candidates:
            return None
        return max(candidates, key=lambda c: (c.idle_since, _NameDesc(c.name)))


class AffinityStrategy(WarmStrategy):
    """Per-model warm sub-pools layered over a base strategy.

    Endpoints already initialised for ``model_id`` form the preferred
    sub-pool; the base strategy orders within it (and within the rest
    when no affine endpoint is idle).  A fresh pre-warmed endpoint
    (``last_model is None``) counts as affine to nothing, so it is only
    used once the per-model sub-pools are exhausted -- keeping it free
    for the model the predictor launched it for.
    """

    name = "affinity"

    def __init__(self, base: Optional[WarmStrategy] = None) -> None:
        self.base = base if base is not None else LCSStrategy()

    def select(self, candidates, model_id, now):
        """Prefer the model's warm sub-pool, then any used, then fresh."""
        if not candidates:
            return None
        affine = [c for c in candidates if c.last_model == model_id]
        if affine:
            return self.base.select(affine, model_id, now)
        used = [c for c in candidates if c.last_model is not None]
        if used:
            return self.base.select(used, model_id, now)
        return self.base.select(candidates, model_id, now)


class _NameDesc:
    """Inverts string ordering so ``max`` still tie-breaks ascending."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_NameDesc") -> bool:
        return self.value > other.value


def make_strategy(name: str, base: Optional[str] = None) -> WarmStrategy:
    """Build a warm-instance strategy by name.

    ``base`` only applies to ``affinity`` and names the strategy used
    inside each sub-pool (default ``lcs``).
    """
    if name == "lcs":
        return LCSStrategy()
    if name == "mru":
        return MRUStrategy()
    if name == "affinity":
        if base is not None and base == "affinity":
            raise ConfigError("affinity cannot be its own base strategy")
        inner = make_strategy(base) if base is not None else LCSStrategy()
        return AffinityStrategy(inner)
    raise ConfigError(
        f"unknown warm strategy {name!r}; expected one of {', '.join(STRATEGIES)}"
    )


__all__ = [
    "AffinityStrategy",
    "LCSStrategy",
    "MRUStrategy",
    "STRATEGIES",
    "WarmEndpoint",
    "WarmStrategy",
    "make_strategy",
]
