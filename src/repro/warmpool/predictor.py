"""Predictive pre-warming: EWMA arrival rates -> warm-fleet target.

A keep-alive pool only avoids cold starts for traffic that *already*
arrived; a flash crowd (the MMPP phase flip of Figure 13, 20 -> 40 rps)
still lands on a fleet sized for the quiet phase.  The pre-warmer
closes that gap: per-model :class:`EwmaRate` estimators are fed by
``on_dispatch`` events, and :meth:`Prewarmer.desired_warm` converts the
summed rate into a warm-fleet target via Little's law --

    endpoints = ceil(rate * service_time * headroom / slots_per_endpoint)

so the manager can launch endpoints *ahead* of predicted demand and the
crowd lands warm.

The rate estimator is an EWMA over inter-arrival gaps that also decays
while traffic is absent: the *current* gap since the last arrival is
folded into the estimate when it exceeds the learned interval, so a
model that went quiet predicts toward zero instead of holding its peak
rate forever (and the janitor can reclaim the fleet).

Deterministic: pure arithmetic over the event times the caller passes
in; no clocks, no randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class PredictorPolicy:
    """Knobs for the pre-warmer.

    ``alpha`` weights new inter-arrival samples in the EWMA;
    ``service_time_s`` seeds the per-request service-time estimate
    until measured completions refine it; ``slots_per_endpoint`` is the
    concurrency one endpoint offers (its TCS count); ``headroom``
    over-provisions the Little's-law target; ``min_samples`` arrivals
    must be seen for a model before it contributes to the target.
    """

    alpha: float = 0.3
    service_time_s: float = 0.5
    slots_per_endpoint: int = 1
    headroom: float = 1.2
    min_samples: int = 2
    #: smallest predicted concurrency (in endpoint slots) worth keeping
    #: an endpoint warm for: below it the target is zero, so a stream
    #: that went quiet decays all the way to scale-to-zero instead of
    #: ``ceil``-ing to one endpoint forever
    floor_concurrency: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        if self.service_time_s <= 0:
            raise ConfigError("service_time_s must be positive")
        if self.slots_per_endpoint < 1:
            raise ConfigError("slots_per_endpoint must be >= 1")
        if self.headroom <= 0:
            raise ConfigError("headroom must be positive")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.floor_concurrency < 0:
            raise ConfigError("floor_concurrency must be >= 0")


class EwmaRate:
    """EWMA arrival-rate estimator for one model's dispatch stream."""

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.samples = 0
        self._interval: Optional[float] = None  # EWMA inter-arrival gap
        self._last_at: Optional[float] = None

    def observe(self, now: float) -> None:
        """Fold one arrival at ``now`` into the estimate."""
        if self._last_at is not None:
            gap = max(now - self._last_at, 1e-9)
            if self._interval is None:
                self._interval = gap
            else:
                self._interval += self.alpha * (gap - self._interval)
        self._last_at = now
        self.samples += 1

    def rate(self, now: float) -> float:
        """Estimated arrivals/second at ``now`` (decays while quiet)."""
        if self._interval is None or self._last_at is None:
            return 0.0
        # a silent stretch longer than the learned interval is evidence
        # the rate dropped: use the larger of the two as the effective
        # inter-arrival time so the estimate decays toward zero.
        effective = max(self._interval, now - self._last_at)
        return 1.0 / effective if effective > 0 else 0.0


class Prewarmer:
    """Per-model rate estimators plus the warm-fleet sizing rule."""

    def __init__(self, policy: PredictorPolicy) -> None:
        self.policy = policy
        self._rates: Dict[str, EwmaRate] = {}
        #: EWMA of measured per-request service time (None until sampled)
        self._service_s: Optional[float] = None

    def on_dispatch(self, model_id: str, now: float) -> None:
        """Feed one dispatch event into the model's rate estimator."""
        estimator = self._rates.get(model_id)
        if estimator is None:
            estimator = EwmaRate(self.policy.alpha)
            self._rates[model_id] = estimator
        estimator.observe(now)

    def on_service_time(self, seconds: float) -> None:
        """Fold one measured request service time into the estimate."""
        if seconds <= 0:
            return
        if self._service_s is None:
            self._service_s = seconds
        else:
            self._service_s += self.policy.alpha * (seconds - self._service_s)

    @property
    def service_time_s(self) -> float:
        """Measured per-request service time, or the policy seed."""
        return (
            self._service_s
            if self._service_s is not None
            else self.policy.service_time_s
        )

    def rates(self, now: float) -> Dict[str, float]:
        """Per-model estimated arrival rates (models past ``min_samples``)."""
        return {
            model_id: estimator.rate(now)
            for model_id, estimator in sorted(self._rates.items())
            if estimator.samples >= self.policy.min_samples
        }

    def desired_warm(self, now: float) -> int:
        """Warm endpoints the predicted load needs (Little's law)."""
        total_rate = sum(self.rates(now).values())
        if total_rate <= 0:
            return 0
        concurrency = total_rate * self.service_time_s * self.policy.headroom
        slots = self.policy.slots_per_endpoint
        if concurrency < self.policy.floor_concurrency * slots:
            return 0
        return int(math.ceil(concurrency / slots))


__all__ = ["EwmaRate", "PredictorPolicy", "Prewarmer"]
