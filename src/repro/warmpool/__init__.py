"""Warm-pool management: cold-start elimination for enclave fleets.

The paper's FnPacker story (Fig 13, Table 3) hides enclave cold starts
behind shared warm instances; this package manages the *pool of warm
instances itself*.  Three cooperating parts, composed by
:class:`WarmPoolManager`:

- **warm-instance strategies** (:mod:`repro.warmpool.strategy`): which
  idle warm endpoint a new request should reuse.  ``lcs`` reuses the
  oldest-idle endpoint so every endpoint's keep-alive stays fresh and
  the warm pool is maximised; ``mru`` reuses the newest-idle endpoint
  so the idle tail ages out and the janitor can retire it; ``affinity``
  layers per-model warm sub-pools over either.
- a **scale-to-zero janitor** (:mod:`repro.warmpool.janitor`): sweeps
  endpoints idle past ``keep_alive_s``, respecting a ``min_warm`` floor
  and in-flight/pin protection, retiring through the gateway's existing
  drain-then-retire lifecycle.
- a **predictive pre-warmer** (:mod:`repro.warmpool.predictor`):
  per-model EWMA arrival-rate estimators fed by dispatch events that
  size the warm fleet *ahead* of predicted demand (Little's law over
  the estimated rate and service time), so flash crowds land warm.

Reactive growth under queue pressure
(:class:`~repro.routing.ScaleOutPolicy`) becomes one fleet-shape
strategy among several: the manager can own the pressure tracker so
reactive and predictive decisions share one decision log.

Layering rule (enforced by ``scripts/check_layering.py``): this package
imports only the stdlib, ``repro.errors``, and :mod:`repro.routing`
types.  It must never import ``repro.core``, ``repro.serverless``, or
``repro.faults`` -- the functional gateway adapts it onto live hosts,
and the warm-pool experiment drives it in pure virtual time.  Every
method takes ``now`` explicitly; the package never reads a clock, so a
seeded trace replays to a byte-identical decision log (the determinism
CI gate depends on that).

See ``docs/warmpool.md``.
"""

from repro.warmpool.janitor import Janitor, JanitorPolicy
from repro.warmpool.manager import WarmPoolConfig, WarmPoolManager
from repro.warmpool.predictor import EwmaRate, PredictorPolicy, Prewarmer
from repro.warmpool.strategy import (
    STRATEGIES,
    AffinityStrategy,
    LCSStrategy,
    MRUStrategy,
    WarmEndpoint,
    WarmStrategy,
    make_strategy,
)

__all__ = [
    "AffinityStrategy",
    "EwmaRate",
    "Janitor",
    "JanitorPolicy",
    "LCSStrategy",
    "MRUStrategy",
    "PredictorPolicy",
    "Prewarmer",
    "STRATEGIES",
    "WarmEndpoint",
    "WarmPoolConfig",
    "WarmPoolManager",
    "WarmStrategy",
    "make_strategy",
]
