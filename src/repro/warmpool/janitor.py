"""The scale-to-zero janitor: retire endpoints idle past keep-alive.

The gateway (PR 4) only ever *grows* its fleet under pressure; without
a janitor an idle fleet holds its peak size -- and its EPC -- forever.
The :class:`Janitor` turns the fleet into a managed lifecycle: on each
sweep it nominates every endpoint idle past ``keep_alive_s`` for
retirement, oldest-idle first, while

- a ``min_warm`` floor keeps that many endpoints alive no matter how
  idle they are (``min_warm=0`` is true scale-to-zero);
- endpoints with work in flight are never candidates (an idle endpoint
  by definition has ``in_flight == 0``; batch leaders hold their
  request in flight for the whole accumulation window, so they are
  covered too); and
- explicitly *pinned* endpoints (attached/shared hosts the gateway
  does not own) are skipped.

The janitor only nominates; the caller retires through the gateway's
existing drain-then-retire lifecycle
(:meth:`~repro.core.gateway.InferenceGateway.retire`), so in-flight
work always finishes and hosts are destroyed exactly once.

Like everything in :mod:`repro.warmpool`, sweeps take ``now``
explicitly and are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.warmpool.strategy import WarmEndpoint


@dataclass(frozen=True)
class JanitorPolicy:
    """When idle endpoints are retired.

    ``keep_alive_s`` is how long an endpoint may sit idle before the
    janitor retires it (0 retires on the first sweep after going
    idle).  ``min_warm`` endpoints always survive.  ``sweep_interval_s``
    debounces sweeps: :meth:`Janitor.due` is true at most once per
    interval.
    """

    keep_alive_s: float = 30.0
    min_warm: int = 1
    sweep_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.keep_alive_s < 0:
            raise ConfigError("keep_alive_s must be >= 0")
        if self.min_warm < 0:
            raise ConfigError("min_warm must be >= 0")
        if self.sweep_interval_s <= 0:
            raise ConfigError("sweep_interval_s must be positive")


class Janitor:
    """Nominate idle-past-keep-alive endpoints for retirement."""

    def __init__(self, policy: JanitorPolicy) -> None:
        self.policy = policy
        self.sweeps = 0
        self._last_sweep: Optional[float] = None

    def due(self, now: float) -> bool:
        """Whether a sweep should run at ``now`` (first call: always)."""
        if self._last_sweep is None:
            return True
        return now - self._last_sweep >= self.policy.sweep_interval_s

    def sweep(
        self,
        now: float,
        idle: Sequence[WarmEndpoint],
        fleet_size: int,
    ) -> List[str]:
        """Endpoints to retire at ``now``, oldest-idle first.

        ``idle`` holds the retire-eligible idle endpoints (the caller
        already excluded in-flight and pinned ones); ``fleet_size`` is
        the whole live fleet, which the ``min_warm`` floor counts
        against -- busy endpoints keep idle ones retirable.
        """
        self.sweeps += 1
        self._last_sweep = now
        expired = sorted(
            (
                ep
                for ep in idle
                if now - ep.idle_since >= self.policy.keep_alive_s
            ),
            key=lambda ep: (ep.idle_since, ep.name),
        )
        retirable = max(0, fleet_size - self.policy.min_warm)
        return [ep.name for ep in expired[:retirable]]


__all__ = ["Janitor", "JanitorPolicy"]
