"""Deterministic fault plans: what breaks, where, and when.

A :class:`FaultPlan` is the *complete* description of the failures one
chaos run will inject: per-site probabilistic wire faults and enclave
crashes (drawn from seeded named streams, so the schedule is a pure
function of the seed and the visit order) plus explicitly *scheduled*
faults -- "kill KeyService shard 1 at request 12, restart it at request
22" -- keyed by a global request index.  Same seed + same plan therefore
means the identical fault schedule on every run, which is what makes
chaos results reproducible enough to gate in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import ConfigError
from repro.sim.rand import RandomStreams


class FaultKind(Enum):
    """The failure modes the injector knows how to produce."""

    #: abrupt enclave death mid-ECALL: warm/hot SeMIRT state is lost
    ENCLAVE_CRASH = "enclave_crash"
    #: a KeyService shard stops answering (host down, enclave gone)
    SHARD_CRASH = "shard_crash"
    #: a killed shard comes back, recovering sealed state
    SHARD_RESTART = "shard_restart"
    #: a wire message is lost in transit
    WIRE_DROP = "wire_drop"
    #: a wire message arrives late (recorded; latency-neutral in wall time)
    WIRE_DELAY = "wire_delay"
    #: a wire message arrives with a flipped bit (AEAD must catch it)
    WIRE_CORRUPT = "wire_corrupt"


#: fault kinds that apply probabilistically at wire interception sites
WIRE_KINDS = (FaultKind.WIRE_DROP, FaultKind.WIRE_DELAY, FaultKind.WIRE_CORRUPT)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires just before request ``at``."""

    kind: FaultKind
    at: int
    #: kind-specific parameters (e.g. ``{"shard": 1}``)
    params: Mapping[str, int] = field(default_factory=dict)

    def to_mapping(self) -> dict:
        """JSON-friendly form (used by reports and the CLI)."""
        return {"kind": self.kind.value, "at": self.at, "params": dict(self.params)}


class FaultPlan:
    """A seeded, fully deterministic schedule of faults.

    ``rates`` maps a :class:`FaultKind` to its per-opportunity
    probability (a wire fault is one *opportunity* per message per site;
    an enclave crash is one opportunity per ECALL).  ``schedule`` lists
    faults pinned to absolute request indices.
    """

    def __init__(
        self,
        seed: int = 2025,
        rates: Mapping[FaultKind, float] | None = None,
        schedule: Iterable[FaultEvent] = (),
    ) -> None:
        self.seed = seed
        self.rates: Dict[FaultKind, float] = dict(rates or {})
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"fault rate for {kind.value} must be in [0,1]")
        self.schedule: Tuple[FaultEvent, ...] = tuple(
            sorted(schedule, key=lambda event: (event.at, event.kind.value))
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        requests: int,
        wire_rate: float = 0.0,
        crash_rate: float = 0.0,
        shard_outages: int = 0,
        num_shards: int = 0,
        outage_duration: int = 8,
        warmup: int = 2,
        target_shard: int | None = None,
    ) -> "FaultPlan":
        """Derive a complete plan from one seed.

        Wire faults split ``wire_rate`` evenly across drop/delay/corrupt;
        ``shard_outages`` crash/restart cycles are placed uniformly over
        the request range (after ``warmup`` requests, so key setup and
        the first cold start are never starved), each shard drawn
        uniformly from ``num_shards`` -- or pinned to ``target_shard``
        when the harness wants the outage to hit a specific shard (e.g.
        the user's primary, so failover is actually on the critical
        path).
        """
        if shard_outages and num_shards < 1:
            raise ConfigError("shard outages need num_shards >= 1")
        rates: Dict[FaultKind, float] = {}
        if wire_rate:
            for kind in WIRE_KINDS:
                rates[kind] = wire_rate / len(WIRE_KINDS)
        if crash_rate:
            rates[FaultKind.ENCLAVE_CRASH] = crash_rate
        schedule: List[FaultEvent] = []
        rand = RandomStreams(seed)
        horizon = max(requests - outage_duration, warmup + 1)
        for _ in range(shard_outages):
            at = int(rand.uniform("outage_at", warmup, horizon))
            if target_shard is not None:
                shard = target_shard
            else:
                shard = int(rand.uniform("outage_shard", 0, num_shards))
            schedule.append(
                FaultEvent(FaultKind.SHARD_CRASH, at, {"shard": shard})
            )
            schedule.append(
                FaultEvent(
                    FaultKind.SHARD_RESTART, at + outage_duration, {"shard": shard}
                )
            )
        return cls(seed=seed, rates=rates, schedule=schedule)

    def rate(self, kind: FaultKind) -> float:
        """The per-opportunity probability of ``kind`` (0 when unset)."""
        return self.rates.get(kind, 0.0)

    def events_at(self, index: int) -> Tuple[FaultEvent, ...]:
        """Scheduled faults that fire just before request ``index``."""
        return tuple(event for event in self.schedule if event.at == index)

    def to_mapping(self) -> dict:
        """JSON-friendly form: seed, rates, and the full schedule."""
        return {
            "seed": self.seed,
            "rates": {kind.value: rate for kind, rate in self.rates.items()},
            "schedule": [event.to_mapping() for event in self.schedule],
        }
