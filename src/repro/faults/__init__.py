"""``repro.faults``: deterministic fault injection + the resilience layer.

Two halves of one subsystem:

- :mod:`repro.faults.plan` / :mod:`repro.faults.injector` break things
  *on purpose*, reproducibly: a seeded :class:`FaultPlan` schedules
  enclave crashes, KeyService shard outages, and wire-level
  drop/delay/corrupt faults, and a :class:`FaultInjector` executes them
  at interception sites on the serving path;
- :mod:`repro.faults.resilience` survives them: per-request deadlines,
  retries with exponential backoff + jitter, per-endpoint circuit
  breakers -- combined with KeyService fleet failover
  (:class:`repro.core.keyfleet.FailoverEndpoint`) and SeMIRT cold-path
  relaunch in :class:`repro.core.deployment.UserSession`.

``python -m repro chaos`` sweeps fault rate against availability and
tail latency on this machinery; see ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector, FaultRecord, maybe_wire
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, WIRE_KINDS
from repro.faults.resilience import (
    RETRYABLE,
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilientCaller,
    RetryPolicy,
)

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "Deadline",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "RETRYABLE",
    "ResiliencePolicy",
    "ResilientCaller",
    "RetryPolicy",
    "WIRE_KINDS",
    "maybe_wire",
]
