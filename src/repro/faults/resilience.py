"""The resilience layer: deadlines, retries with backoff, circuit breakers.

The serving path survives injected (and real) partial failures with four
mechanisms, all deterministic under a seeded RNG and a logical clock:

- **deadlines** -- every request carries a time budget; when retries
  cannot beat it, :class:`~repro.errors.DeadlineExceeded` is raised
  rather than hanging;
- **retries** -- transport-level failures are retried with exponential
  backoff and decorrelated jitter (AWS-style), because the SeSeMI
  protocol operations are idempotent;
- **circuit breakers** -- a persistently failing endpoint flips its
  breaker open and callers fail fast with
  :class:`~repro.errors.CircuitOpen` until a cooldown admits one
  half-open probe;
- **failover** -- the KeyService fleet routes around dead shards (see
  :class:`repro.core.keyfleet.FailoverEndpoint`), and SeMIRT sessions
  relaunch crashed enclaves on the cold path.

Time comes from an :class:`repro.obs.span.Clock` so the same code is
deterministic in chaos runs (logical clock) and real in production
(wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    InvocationError,
    TransportError,
)
from repro.obs.span import Clock, WallClock
from repro.sim.rand import RandomStreams

#: error types a retry may fix: the op never completed (transport) or the
#: payload was mangled in flight (surfaces as an authentication failure
#: wrapped in InvocationError).  AccessDenied & friends are permanent.
RETRYABLE: Tuple[Type[BaseException], ...] = (TransportError, InvocationError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter.

    ``delay(attempt)`` grows as ``base * multiplier**attempt`` capped at
    ``max_delay_s``; a jitter fraction drawn from a seeded stream keeps
    concurrent retriers from synchronising (and keeps chaos runs
    deterministic).
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def delay_s(self, attempt: int, jitter_draw: float = 0.0) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        raw = self.backoff_base_s * (self.backoff_multiplier ** attempt)
        capped = min(raw, self.max_delay_s)
        return capped * (1.0 + self.jitter * jitter_draw)


@dataclass(frozen=True)
class BreakerPolicy:
    """When a circuit opens and how long it stays open."""

    failure_threshold: int = 5
    cooldown_s: float = 30.0


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the serving path needs to survive partial failure."""

    enabled: bool = True
    deadline_s: Optional[float] = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    seed: int = 2025

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """The paper's baseline: no deadlines, no retries, no breakers."""
        return cls(enabled=False)


class Deadline:
    """A per-request time budget read off a :class:`Clock`."""

    def __init__(self, clock: Clock, budget_s: Optional[float]) -> None:
        self._clock = clock
        self._budget = budget_s
        self._expires = None if budget_s is None else clock.now() + budget_s

    def expired(self) -> bool:
        """True once the budget is spent (never, for a None budget)."""
        return self._expires is not None and self._clock.now() >= self._expires

    def check(self, operation: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{operation}: deadline of {self._budget}s exceeded"
            )


class CircuitBreaker:
    """A per-endpoint breaker: closed -> open -> half-open -> closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`guard` raises :class:`CircuitOpen` without touching the
    endpoint.  After ``cooldown_s`` one probe call is admitted
    (*half-open*): success closes the circuit, failure re-opens it.
    """

    def __init__(
        self, policy: Optional[BreakerPolicy] = None, clock: Optional[Clock] = None
    ) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock or WallClock()
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open`` (introspection)."""
        if self.opened_at is None:
            return "closed"
        if self._cooled_down():
            return "half-open"
        return "open"

    def _cooled_down(self) -> bool:
        return (
            self.opened_at is not None
            and self.clock.now() - self.opened_at >= self.policy.cooldown_s
        )

    def guard(self, endpoint: str) -> None:
        """Raise :class:`CircuitOpen` unless a call may proceed now."""
        if self.opened_at is None:
            return
        if self._cooled_down() and not self._probing:
            self._probing = True  # admit exactly one half-open probe
            return
        raise CircuitOpen(
            f"circuit for {endpoint!r} is open "
            f"({self.failures} consecutive failures)"
        )

    def on_success(self) -> None:
        """A call succeeded: close the circuit and reset counters."""
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def on_failure(self) -> None:
        """A call failed: count it; open the circuit at the threshold."""
        self.failures += 1
        self._probing = False
        if self.failures >= self.policy.failure_threshold:
            self.opened_at = self.clock.now()


class ResilientCaller:
    """Runs operations under one policy: deadline + retries + breaker.

    One caller serves one endpoint; pass a shared
    :class:`CircuitBreaker` to let several sessions trip it together.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        clock: Optional[Clock] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.policy = policy
        self.clock = clock or WallClock()
        self.breaker = breaker or CircuitBreaker(policy.breaker, self.clock)
        self._sleep = sleep
        self._rand = RandomStreams(policy.seed)

    def call(
        self,
        operation: str,
        attempt_fn: Callable[[int], object],
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> object:
        """Run ``attempt_fn(attempt)`` until success, deadline, or give-up.

        Retries only :data:`RETRYABLE` errors; everything else (access
        denied, programming errors) propagates immediately.  ``on_retry``
        observes each retry (attempt index, error, backoff seconds) so
        sessions can record span events.
        """
        deadline = deadline or Deadline(self.clock, self.policy.deadline_s)
        retry = self.policy.retry
        last_error: Optional[BaseException] = None
        for attempt in range(max(1, retry.max_attempts)):
            deadline.check(operation)
            self.breaker.guard(operation)
            try:
                result = attempt_fn(attempt)
            except RETRYABLE as exc:
                self.breaker.on_failure()
                last_error = exc
                delay = retry.delay_s(
                    attempt, self._rand.uniform(f"jitter:{operation}")
                )
                if self._sleep is not None:
                    self._sleep(delay)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                continue
            self.breaker.on_success()
            return result
        deadline.check(operation)  # prefer the deadline diagnosis
        raise TransportError(
            f"{operation}: all {retry.max_attempts} attempts failed"
        ) from last_error
