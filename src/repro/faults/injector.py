"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into
actual breakage at well-known interception *sites*.

Components on the serving path consult the injector at their natural
fault points:

- :meth:`FaultInjector.on_wire` wraps every message crossing a channel
  (client->KeyService, user->SeMIRT, SeMIRT->KeyService): it may drop
  the message (raising :class:`~repro.errors.FaultInjected`), corrupt
  one bit (the AEAD layer then rejects it at the receiver), or record a
  delay;
- :meth:`FaultInjector.crash_enclave` is consulted per ECALL and tells
  the SeMIRT host to die mid-call, losing all warm/hot state;
- :meth:`FaultInjector.step` advances the global request index and fires
  any *scheduled* faults (shard crash/restart) through registered
  handlers.

Every injected fault is recorded (and, when a tracer is attached, added
as an event on the current span) so chaos traces show exactly what broke
and how the system recovered.  The injector starts *disarmed*: setup
traffic (registration, key release, deployment) runs fault-free, and the
workload arms it before the first request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core import wire
from repro.errors import FaultInjected
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, WIRE_KINDS
from repro.sim.rand import RandomStreams


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: what, where, and at which request index."""

    kind: FaultKind
    site: str
    request_index: int

    def to_mapping(self) -> dict:
        """JSON-friendly form for reports."""
        return {
            "kind": self.kind.value,
            "site": self.site,
            "request_index": self.request_index,
        }


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically against live sites."""

    def __init__(self, plan: FaultPlan, tracer=None) -> None:
        self.plan = plan
        self.tracer = tracer
        self.records: List[FaultRecord] = []
        self.armed = False
        self._rand = RandomStreams(plan.seed)
        self._request_index = 0
        self._handlers: Dict[FaultKind, Callable[[FaultEvent], None]] = {}

    # -- lifecycle ------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Start injecting (call after fault-free setup); chains."""
        self.armed = True
        return self

    def disarm(self) -> "FaultInjector":
        """Stop injecting (e.g. for a verification epilogue); chains."""
        self.armed = False
        return self

    def on(self, kind: FaultKind, handler: Callable[[FaultEvent], None]) -> None:
        """Register the handler that executes scheduled faults of ``kind``."""
        self._handlers[kind] = handler

    def step(self) -> List[FaultEvent]:
        """Advance to the next request; fire its scheduled faults.

        The workload driver calls this once per request.  Returns the
        events fired so harnesses can log them.
        """
        fired: List[FaultEvent] = []
        if self.armed:
            for event in self.plan.events_at(self._request_index):
                handler = self._handlers.get(event.kind)
                if handler is not None:
                    handler(event)
                    self._record(
                        event.kind,
                        f"scheduled:{dict(event.params)}",
                        index=event.at,
                    )
                    fired.append(event)
        self._request_index += 1
        return fired

    @property
    def request_index(self) -> int:
        """The index of the request currently being served."""
        return max(0, self._request_index - 1)

    # -- probabilistic sites ------------------------------------------------------

    def on_wire(self, site: str, payload: bytes) -> bytes:
        """Pass ``payload`` across a faulty link at ``site``.

        May raise :class:`FaultInjected` (drop), return a bit-flipped
        copy (corrupt), or record a delay; usually returns the payload
        untouched.  Draws come from per-``(site, kind)`` named streams,
        so adding a new site never perturbs the schedule of existing
        ones.
        """
        if not self.armed:
            return payload
        for kind in WIRE_KINDS:
            rate = self.plan.rate(kind)
            if rate <= 0.0:
                continue
            if self._rand.uniform(f"{site}:{kind.value}") >= rate:
                continue
            self._record(kind, site)
            if kind is FaultKind.WIRE_DROP:
                raise FaultInjected(f"injected {kind.value} at {site}")
            if kind is FaultKind.WIRE_CORRUPT:
                bit = int(self._rand.uniform(f"{site}:corrupt_bit", 0, 8 * 64))
                return wire.corrupt(payload, bit)
            # WIRE_DELAY: recorded (and visible in the trace); the
            # functional twin has no wall-clock to stretch.
        return payload

    def crash_enclave(self, site: str) -> bool:
        """True when the enclave at ``site`` must die mid-ECALL now."""
        if not self.armed:
            return False
        rate = self.plan.rate(FaultKind.ENCLAVE_CRASH)
        if rate <= 0.0:
            return False
        if self._rand.uniform(f"{site}:{FaultKind.ENCLAVE_CRASH.value}") >= rate:
            return False
        self._record(FaultKind.ENCLAVE_CRASH, site)
        return True

    # -- accounting ---------------------------------------------------------------

    def _record(
        self, kind: FaultKind, site: str, index: Optional[int] = None
    ) -> None:
        at = index if index is not None else self.request_index
        self.records.append(FaultRecord(kind, site, at))
        if self.tracer is not None:
            span = self.tracer.current_span()
            if span is not None:
                span.add_event(f"fault:{kind.value}", site=site)
            else:
                # scheduled faults fire between requests: give them a
                # standalone marker span so the trace still shows them
                with self.tracer.span(
                    "fault", kind=kind.value, site=site, request_index=at
                ) as marker:
                    marker.add_event(f"fault:{kind.value}", site=site)

    def counts(self) -> Dict[str, int]:
        """Injected-fault totals by kind (for reports)."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.kind.value] = totals.get(record.kind.value, 0) + 1
        return totals


def maybe_wire(
    injector: Optional[FaultInjector], site: str, payload: bytes
) -> bytes:
    """``injector.on_wire`` when an injector is present, else a pass-through.

    Interception sites call this so components stay injector-optional,
    mirroring :func:`repro.obs.tracer.maybe_span`.
    """
    if injector is None:
        return payload
    return injector.on_wire(site, payload)
