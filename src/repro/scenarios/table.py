"""The fixed-width text table every bench report renders through.

Moved here from ``repro.experiments.common`` so the scenario compare
and report tools (which must stay importable without numpy or either
twin) can share one implementation; ``repro.experiments.common``
re-exports it unchanged.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as a fixed-width text table for bench output."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) >= 100 else f"{value:.3f}"
    return str(value)
