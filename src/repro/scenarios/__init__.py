"""Scenario registry: declarative specs, persistent comparable runs.

An evaluation is described once as a :class:`ScenarioSpec` (workload,
fleet, faults, policy), executed by :func:`run_scenario` against either
twin, and persisted by :class:`RunStore` under a deterministic run ID
so any two runs can be diffed with :func:`format_compare`.  The named
:func:`~repro.scenarios.registry.named_scenarios` registry is what the
``repro scenario`` CLI serves; the migrated figure/table benchmarks
build their specs from the same builders.

See ``docs/scenarios.md``.
"""

from repro.scenarios.compare import (
    flatten,
    format_compare,
    format_store_report,
    metric_diff,
    spec_diff,
)
from repro.scenarios.registry import (
    chaos_spec,
    fig13_latency_spec,
    get_scenario,
    hotpath_spec,
    named_scenarios,
    scenario_names,
    table34_spec,
    warmpool_mmpp_spec,
    warmpool_poisson_spec,
)
from repro.scenarios.runner import (
    DETERMINISTIC_EXECUTORS,
    ScenarioResult,
    build_arrivals,
    run_scenario,
)
from repro.scenarios.spec import (
    EXECUTORS,
    WORKLOAD_SHAPES,
    FaultSpec,
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.scenarios.store import RunRecord, RunStore, current_git_sha
from repro.scenarios.table import format_table

__all__ = [
    "DETERMINISTIC_EXECUTORS",
    "EXECUTORS",
    "WORKLOAD_SHAPES",
    "FaultSpec",
    "FleetSpec",
    "PolicySpec",
    "RunRecord",
    "RunStore",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadSpec",
    "build_arrivals",
    "chaos_spec",
    "current_git_sha",
    "fig13_latency_spec",
    "flatten",
    "format_compare",
    "format_store_report",
    "format_table",
    "get_scenario",
    "hotpath_spec",
    "metric_diff",
    "named_scenarios",
    "run_scenario",
    "scenario_names",
    "spec_diff",
    "table34_spec",
    "warmpool_mmpp_spec",
    "warmpool_poisson_spec",
]
