"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the *complete*, serialisable description of
one evaluation run: workload shape (how requests arrive), fleet shape
(what serves them), fault plan (what breaks), and policy knobs (how the
platform reacts).  Specs are plain data -- validated on construction,
round-trippable through dict/JSON, and hashable -- so an experiment is
something you *store and diff*, not a script you rewrite.

This module is deliberately pinned to the stdlib + :mod:`repro.errors`
(enforced by ``scripts/check_layering.py``): a stored manifest must be
loadable for listing and comparison anywhere, without numpy or either
twin on the import path.  Everything that *executes* a spec lives in
:mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError

#: how requests arrive (see :mod:`repro.workloads.arrival`)
WORKLOAD_SHAPES = (
    "fixed",            # evenly spaced at rate_rps
    "poisson",          # Poisson at rate_rps
    "mmpp",             # Markov-modulated Poisson over rates_rps phases
    "diurnal",          # sinusoidal rate between base_rps and rate_rps
    "burst",            # Poisson base + a flash-crowd window at burst_rps
    "fnpacker-mix",     # the Table III/IV mix: Poisson streams + sessions
    "fnpacker-poisson", # only the Poisson half of the mix
    "requests",         # a fixed request count (closed-loop benchmarks)
)

#: who executes a spec (see :mod:`repro.scenarios.runner`)
EXECUTORS = (
    "sim",       # simulated twin: testbed + WorkloadDriver (fig13-style)
    "fnpacker",  # simulated twin behind a routing strategy (table3-style)
    "chaos",     # functional twin + fault injection on a logical clock
    "warmpool",  # warm-pool FleetSim policy sweep in virtual time
    "hotpath",   # live wall-clock hot-path benchmark
    "streaming", # live wall-clock continuous-batching decode benchmark
)

HARDWARE = ("sgx1", "sgx2")
SYSTEMS = ("Native", "Iso-reuse", "SeSeMI", "Untrusted")
ROUTERS = ("direct", "All-in-one", "One-to-one", "FnPacker")
WARM_POLICIES = ("none", "lcs", "mru", "lcs+predictive")
RESILIENCE_MODES = ("resilient", "baseline", "both")
FAULT_TARGETS = ("primary", "random")

#: keys a fault sweep point may override
_FAULT_SWEEP_KEYS = frozenset({"wire_rate", "crash_rate", "shard_outages"})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class WorkloadSpec:
    """How requests arrive: shape, rates, duration, identities.

    ``warmup_s``/``warmup_rate_rps`` prepend a Poisson warm-up phase and
    shift the main stream after it (drawn from the *same* seeded RNG, so
    the whole trace is one reproducible sequence -- the Figure 13
    convention).  ``horizon_s`` caps the executor's clock; 0 picks the
    executor's default.  ``seed`` overrides the scenario seed for the
    arrival stream only (fig13 pins its trace to seed 11 regardless of
    the run seed).
    """

    shape: str = "poisson"
    rate_rps: float = 2.0
    rates_rps: Tuple[float, ...] = ()
    phase_s: float = 60.0
    duration_s: float = 240.0
    warmup_s: float = 0.0
    warmup_rate_rps: float = 0.0
    base_rps: float = 0.0
    burst_rps: float = 0.0
    burst_start_s: float = 0.0
    burst_duration_s: float = 0.0
    period_s: float = 86400.0
    requests: int = 0
    model_id: str = "m"
    user_id: str = "user"
    timeline_bucket_s: float = 20.0
    horizon_s: float = 0.0
    seed: int = -1  # -1: use the scenario seed

    def __post_init__(self) -> None:
        _require(self.shape in WORKLOAD_SHAPES,
                 f"unknown workload shape {self.shape!r}")
        _require(self.duration_s > 0, "workload duration must be positive")
        if self.shape in ("fixed", "poisson", "burst"):
            _require(self.rate_rps > 0, f"{self.shape} needs rate_rps > 0")
        if self.shape == "mmpp":
            _require(len(self.rates_rps) >= 1 and
                     all(r > 0 for r in self.rates_rps),
                     "mmpp needs at least one positive phase rate")
            _require(self.phase_s > 0, "mmpp needs phase_s > 0")
        if self.shape == "diurnal":
            _require(self.rate_rps > 0, "diurnal needs a positive peak rate")
            _require(0 <= self.base_rps <= self.rate_rps,
                     "diurnal base_rps must be within [0, rate_rps]")
            _require(self.period_s > 0, "diurnal needs period_s > 0")
        if self.shape == "burst":
            _require(self.burst_rps >= 0 and self.burst_duration_s >= 0,
                     "burst window must be non-negative")
        if self.shape == "requests":
            _require(self.requests > 0, "requests shape needs requests > 0")
        _require(self.warmup_s >= 0, "warmup must be non-negative")
        if self.warmup_s > 0:
            _require(self.warmup_rate_rps > 0,
                     "a warm-up phase needs warmup_rate_rps > 0")
        _require(self.timeline_bucket_s > 0, "timeline bucket must be positive")
        _require(self.horizon_s >= 0, "horizon must be non-negative")

    def arrival_seed(self, scenario_seed: int) -> int:
        """The seed the arrival stream actually uses."""
        return scenario_seed if self.seed < 0 else self.seed


@dataclass(frozen=True)
class FleetSpec:
    """What serves the workload: nodes, hardware, runtime, system."""

    num_nodes: int = 1
    cores_per_node: int = 12
    node_memory_mb: int = 0  # 0: derive from the model's action budget
    node_memory_actions: int = 12
    hardware: str = "sgx2"
    tcs_count: int = 1
    system: str = "SeSeMI"
    systems: Tuple[str, ...] = ()  # sweep; empty means (system,)
    model_name: str = "MBNET"
    framework: str = "tvm"
    model_ids: Tuple[str, ...] = ()  # multi-model fleets (fnpacker)

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1, "a fleet needs at least one node")
        _require(self.cores_per_node >= 1, "cores_per_node must be >= 1")
        _require(self.node_memory_mb >= 0, "node_memory_mb must be >= 0")
        _require(self.node_memory_actions >= 1,
                 "node_memory_actions must be >= 1")
        _require(self.hardware in HARDWARE,
                 f"unknown hardware {self.hardware!r}")
        _require(self.tcs_count >= 1, "tcs_count must be >= 1")
        _require(self.system in SYSTEMS, f"unknown system {self.system!r}")
        for system in self.systems:
            _require(system in SYSTEMS, f"unknown system {system!r}")
        _require(self.framework in ("tvm", "tflm"),
                 f"unknown framework {self.framework!r}")

    def sweep_systems(self) -> Tuple[str, ...]:
        """The systems this fleet compares (the sweep, or the single one)."""
        return self.systems or (self.system,)


@dataclass(frozen=True)
class FaultSpec:
    """What breaks: the parameters of a seeded, deterministic fault plan.

    Mirrors :meth:`repro.faults.plan.FaultPlan.from_seed`; kept as plain
    data here so manifests stay loadable without the faults subsystem.
    ``sweep`` lists per-point overrides of ``wire_rate`` / ``crash_rate``
    / ``shard_outages`` -- the chaos experiment's grid as data.
    """

    wire_rate: float = 0.0
    crash_rate: float = 0.0
    shard_outages: int = 0
    num_shards: int = 2
    outage_duration: int = 8
    warmup: int = 2
    target: str = "primary"
    sweep: Tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(0.0 <= self.wire_rate <= 1.0, "wire_rate must be in [0,1]")
        _require(0.0 <= self.crash_rate <= 1.0, "crash_rate must be in [0,1]")
        _require(self.shard_outages >= 0, "shard_outages must be >= 0")
        _require(self.num_shards >= 1, "num_shards must be >= 1")
        _require(self.outage_duration >= 1, "outage_duration must be >= 1")
        _require(self.warmup >= 0, "warmup must be >= 0")
        _require(self.target in FAULT_TARGETS,
                 f"unknown fault target {self.target!r}")
        object.__setattr__(
            self, "sweep", tuple(dict(point) for point in self.sweep)
        )
        for point in self.sweep:
            unknown = set(point) - _FAULT_SWEEP_KEYS
            _require(not unknown,
                     f"fault sweep point has unknown keys {sorted(unknown)}")
            replaced = dataclasses.replace(self, sweep=(), **point)
            assert replaced is not self  # re-validates the overrides

    def points(self) -> Tuple["FaultSpec", ...]:
        """The sweep as concrete per-point specs (or just this one)."""
        if not self.sweep:
            return (self,)
        return tuple(
            dataclasses.replace(self, sweep=(), **point) for point in self.sweep
        )


@dataclass(frozen=True)
class PolicySpec:
    """How the platform reacts: routing, warm pool, batching, caches."""

    router: str = "direct"
    routers: Tuple[str, ...] = ()  # sweep; empty means (router,)
    idle_interval_s: float = 10.0
    warm_policies: Tuple[str, ...] = ()
    keep_alive_s: float = 30.0
    min_warm: int = 0
    max_endpoints: int = 64
    resilience: str = "both"
    key_cache_entries: int = 0  # 0: the shipped default
    batch_window_s: float = 0.0
    max_batch: int = 0  # 0: batching off
    alpha: float = 0.6

    def __post_init__(self) -> None:
        _require(self.router in ROUTERS, f"unknown router {self.router!r}")
        for router in self.routers:
            _require(router in ROUTERS, f"unknown router {router!r}")
        _require(self.idle_interval_s > 0, "idle_interval_s must be positive")
        for policy in self.warm_policies:
            _require(policy in WARM_POLICIES,
                     f"unknown warm policy {policy!r}")
        _require(self.keep_alive_s >= 0, "keep_alive_s must be >= 0")
        _require(self.min_warm >= 0, "min_warm must be >= 0")
        _require(self.max_endpoints >= 1, "max_endpoints must be >= 1")
        _require(self.resilience in RESILIENCE_MODES,
                 f"unknown resilience mode {self.resilience!r}")
        _require(self.key_cache_entries >= 0,
                 "key_cache_entries must be >= 0")
        _require(self.batch_window_s >= 0, "batch window must be non-negative")
        _require(self.max_batch >= 0, "max_batch must be >= 0")
        _require(0.0 < self.alpha <= 1.0, "alpha must be in (0, 1]")

    def sweep_routers(self) -> Tuple[str, ...]:
        """The routing strategies to compare (the sweep, or the single one)."""
        return self.routers or (self.router,)

    def resilience_modes(self) -> Tuple[str, ...]:
        """The chaos modes to run."""
        if self.resilience == "both":
            return ("resilient", "baseline")
        return (self.resilience,)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable, comparable evaluation scenario."""

    name: str
    executor: str
    seed: int = 2025
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    faults: Optional[FaultSpec] = None
    policy: PolicySpec = field(default_factory=PolicySpec)
    notes: str = ""

    def __post_init__(self) -> None:
        _require(bool(self.name), "a scenario needs a name")
        _require(
            all(c.isalnum() or c in "-_." for c in self.name),
            f"scenario name {self.name!r} may only use [A-Za-z0-9-_.] "
            "(it names the run directory)",
        )
        _require(self.executor in EXECUTORS,
                 f"unknown executor {self.executor!r}")
        if self.executor == "chaos":
            _require(self.faults is not None,
                     "the chaos executor needs a fault spec")
            _require(self.workload.shape == "requests",
                     "the chaos executor drives a fixed request count "
                     "(workload shape 'requests')")
        if self.executor == "warmpool":
            _require(bool(self.policy.warm_policies),
                     "the warmpool executor needs policy.warm_policies")
        if self.executor == "hotpath":
            _require(self.workload.shape == "requests",
                     "the hotpath executor drives a fixed request count "
                     "(workload shape 'requests')")
        if self.executor == "streaming":
            _require(self.workload.shape == "requests",
                     "the streaming executor opens a fixed stream count "
                     "(workload shape 'requests', one request per stream)")
            _require(self.policy.max_batch >= 2,
                     "the streaming executor compares continuous batching "
                     "against per-request decoding; policy.max_batch must "
                     "be >= 2")

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """The spec as nested plain dicts (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild (and re-validate) a spec from :meth:`to_dict` output."""
        payload = dict(data)
        parsed: Dict[str, Any] = {}
        for key, sub_cls in (
            ("workload", WorkloadSpec),
            ("fleet", FleetSpec),
            ("policy", PolicySpec),
        ):
            if key in payload:
                parsed[key] = _sub_spec(sub_cls, payload.pop(key), key)
        if "faults" in payload:
            raw = payload.pop("faults")
            parsed["faults"] = (
                None if raw is None else _sub_spec(FaultSpec, raw, "faults")
            )
        unknown = set(payload) - {f.name for f in fields(cls)}
        _require(not unknown, f"unknown scenario fields {sorted(unknown)}")
        return cls(**payload, **parsed)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators (hash input)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- identity ----------------------------------------------------------------

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON -- the spec's stable identity."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @property
    def run_id(self) -> str:
        """Deterministic run ID: name, seed, and the spec hash prefix."""
        return f"{self.name}-s{self.seed}-{self.spec_hash()[:10]}"

    # -- derivation --------------------------------------------------------------

    def with_updates(self, updates: Mapping[str, Any]) -> "ScenarioSpec":
        """A new spec with dotted-path overrides applied.

        ``{"workload.duration_s": 60.0, "seed": 7}`` -- the mechanism
        behind sweeps and the CLI's ``--set``.  String values are
        coerced to the field's current type so ``--set seed=7`` works
        from a shell.
        """
        data = self.to_dict()
        for dotted, value in updates.items():
            parts = dotted.split(".")
            node = data
            for part in parts[:-1]:
                _require(
                    isinstance(node, dict) and part in node,
                    f"unknown spec path {dotted!r}",
                )
                node = node[part]
                _require(isinstance(node, dict),
                         f"spec path {dotted!r} does not name a field")
            leaf = parts[-1]
            _require(isinstance(node, dict) and leaf in node,
                     f"unknown spec path {dotted!r}")
            node[leaf] = _coerce(value, node[leaf], dotted)
        return type(self).from_dict(data)


def _sub_spec(sub_cls, raw: Mapping[str, Any], where: str):
    """Build a sub-spec dataclass, rejecting unknown keys."""
    _require(isinstance(raw, Mapping), f"{where} must be a mapping")
    known = {f.name for f in fields(sub_cls)}
    unknown = set(raw) - known
    _require(not unknown, f"unknown {where} fields {sorted(unknown)}")
    kwargs = {}
    for f in fields(sub_cls):
        if f.name not in raw:
            continue
        value = raw[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return sub_cls(**kwargs)


def _coerce(value: Any, current: Any, dotted: str) -> Any:
    """Cast a CLI-supplied string to the shape of the field it replaces."""
    if not isinstance(value, str) or isinstance(current, str):
        return value
    if isinstance(current, bool):
        if value.lower() in ("true", "1", "yes"):
            return True
        if value.lower() in ("false", "0", "no"):
            return False
        raise ConfigError(f"{dotted} expects a boolean, got {value!r}")
    if isinstance(current, int):
        try:
            return int(value)
        except ValueError:
            raise ConfigError(f"{dotted} expects an integer, got {value!r}")
    if isinstance(current, float):
        try:
            return float(value)
        except ValueError:
            raise ConfigError(f"{dotted} expects a number, got {value!r}")
    if isinstance(current, (list, tuple)) or current is None:
        try:
            return json.loads(value)
        except json.JSONDecodeError:
            raise ConfigError(f"{dotted} expects JSON, got {value!r}")
    return value
