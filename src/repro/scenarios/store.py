"""Persistent, comparable scenario runs.

A :class:`RunStore` is a directory of runs, one sub-directory per
deterministic run ID (``<scenario>-s<seed>-<spec-hash-prefix>``), each
holding a ``manifest.json`` with the spec, the seed, the git revision,
and the metrics snapshot -- plus an optional Chrome trace.

Manifests are **timestamp-free and canonically formatted** on purpose:
running the same spec with the same seed twice must produce
byte-identical manifests (the ``scenario-smoke`` CI gate ``cmp``\\ s two
of them), which is what makes runs comparable across machines and PRs.

Like :mod:`repro.scenarios.spec`, this module stays stdlib-only so
stored results can be listed and diffed without importing either twin.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.scenarios.spec import ScenarioSpec

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
TRACE_NAME = "trace.json"

#: the default store directory (override with ``repro scenario --store``)
DEFAULT_ROOT = "runs"


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The repository HEAD sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass(frozen=True)
class RunRecord:
    """One stored run: identity, spec, and the metrics snapshot."""

    run_id: str
    spec: ScenarioSpec
    seed: int
    spec_hash: str
    metrics: Dict[str, Any]
    git_sha: Optional[str] = None
    has_trace: bool = False

    @property
    def scenario(self) -> str:
        return self.spec.name

    def manifest(self) -> dict:
        """The manifest mapping exactly as persisted (deterministic)."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "spec_hash": self.spec_hash,
            "git_sha": self.git_sha,
            "has_trace": self.has_trace,
            "spec": self.spec.to_dict(),
            "metrics": self.metrics,
        }


class RunStore:
    """A directory of persisted scenario runs."""

    def __init__(self, root: Union[str, Path] = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    # -- writing -----------------------------------------------------------------

    def save(
        self,
        spec: ScenarioSpec,
        metrics: Dict[str, Any],
        *,
        git_sha: Optional[str] = None,
        trace_json: Optional[dict] = None,
    ) -> RunRecord:
        """Persist one run under its deterministic ID (idempotent).

        Re-running the same spec + seed overwrites the same directory
        with byte-identical content (assuming the executor is
        deterministic -- the property CI gates on).
        """
        record = RunRecord(
            run_id=spec.run_id,
            spec=spec,
            seed=spec.seed,
            spec_hash=spec.spec_hash(),
            metrics=_jsonable(metrics),
            git_sha=git_sha,
            has_trace=trace_json is not None,
        )
        run_dir = self.root / record.run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / MANIFEST_NAME).write_text(
            _canonical(record.manifest()) + "\n"
        )
        if trace_json is not None:
            (run_dir / TRACE_NAME).write_text(
                json.dumps(trace_json, sort_keys=True) + "\n"
            )
        return record

    # -- reading -----------------------------------------------------------------

    def list_runs(self) -> List[str]:
        """All stored run IDs, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.parent.name for path in self.root.glob(f"*/{MANIFEST_NAME}")
        )

    def load(self, run_id: str) -> RunRecord:
        """Load one run's manifest back into a :class:`RunRecord`."""
        path = self.manifest_path(run_id)
        if not path.is_file():
            known = ", ".join(self.list_runs()) or "<empty store>"
            raise ConfigError(
                f"no run {run_id!r} under {self.root} (stored: {known})"
            )
        raw = json.loads(path.read_text())
        version = raw.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"run {run_id!r} has manifest version {version!r}; "
                f"this tool reads version {MANIFEST_VERSION}"
            )
        return RunRecord(
            run_id=raw["run_id"],
            spec=ScenarioSpec.from_dict(raw["spec"]),
            seed=raw["seed"],
            spec_hash=raw["spec_hash"],
            metrics=raw["metrics"],
            git_sha=raw.get("git_sha"),
            has_trace=bool(raw.get("has_trace")),
        )

    def manifest_path(self, run_id: str) -> Path:
        """Where ``run_id``'s manifest lives (whether or not it exists)."""
        return self.root / run_id / MANIFEST_NAME

    def trace_path(self, run_id: str) -> Path:
        """Where ``run_id``'s Chrome trace lives (if one was captured)."""
        return self.root / run_id / TRACE_NAME


def _canonical(payload: dict) -> str:
    """Deterministic manifest text: sorted keys, fixed indent, ASCII."""
    return json.dumps(
        payload, sort_keys=True, indent=2, ensure_ascii=True,
        allow_nan=False, default=_json_default,
    )


def _jsonable(value: Any) -> Any:
    """Round-trip metrics through canonical JSON types."""
    return json.loads(
        json.dumps(value, sort_keys=True, default=_json_default,
                   allow_nan=False)
    )


def _json_default(value: Any):
    """Fallback for numpy scalars without importing numpy here."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
