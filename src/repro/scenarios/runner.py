"""Execute a :class:`~repro.scenarios.spec.ScenarioSpec` against a twin.

One entry point -- :func:`run_scenario` -- dispatches on
``spec.executor`` to six executors, each of which reproduces one of the
bespoke benchmark harnesses number-for-number:

- ``sim``       the Figure 13 shape: a multi-node testbed serving one
                model per system through :class:`WorkloadDriver`;
- ``fnpacker``  the Table III/IV shape: the mixed Poisson + session
                workload behind a routing-strategy sweep;
- ``chaos``     the functional twin under a seeded fault plan on a
                logical clock, resilient vs baseline;
- ``warmpool``  the warm-pool policy sweep in virtual time;
- ``hotpath``   the live wall-clock legacy-vs-fast lane benchmark;
- ``streaming`` the live wall-clock continuous-batching decode
                benchmark (solo vs grouped streams).

The executors consume heavyweight machinery (numpy, both twins), so
every such import is deferred into the executor bodies: loading this
module -- e.g. to resolve ``run_scenario`` from the CLI -- stays cheap,
and the read-side siblings (:mod:`~repro.scenarios.spec`,
:mod:`~repro.scenarios.store`, :mod:`~repro.scenarios.compare`) never
pull them in at all.

Determinism contract: every metric an executor returns is a pure
function of the spec (the ``hotpath`` and ``streaming`` executors
excepted -- they measure wall-clock time by design, so only their
request/token *counts* are stable).
The ``scenario-smoke`` CI job runs one sim spec twice and ``cmp``\\ s
the manifests byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.scenarios.spec import FleetSpec, PolicySpec, ScenarioSpec, WorkloadSpec

#: executors whose metrics are a pure function of the spec (the CI
#: byte-identity gate only makes sense for these)
DETERMINISTIC_EXECUTORS = ("sim", "fnpacker", "chaos", "warmpool")


@dataclass(frozen=True)
class ScenarioResult:
    """What one execution produced: the spec, metrics, optional spans."""

    spec: ScenarioSpec
    metrics: Dict[str, Any]
    spans: Optional[list] = None


def run_scenario(spec: ScenarioSpec, *, traced: bool = False) -> ScenarioResult:
    """Execute ``spec`` and return its metrics (and spans if ``traced``)."""
    executor = _EXECUTORS.get(spec.executor)
    if executor is None:  # spec validation makes this unreachable
        raise ConfigError(f"no executor for {spec.executor!r}")
    return executor(spec, traced)


# -- arrival streams ---------------------------------------------------------------


def build_arrivals(workload: WorkloadSpec, scenario_seed: int):
    """The workload's arrival stream (and sessions, for the mix shapes).

    Returns ``(arrivals, sessions)``.  One RNG seeded with
    :meth:`WorkloadSpec.arrival_seed` drives the whole trace, warm-up
    phase first -- the Figure 13 convention, which is what keeps the
    migrated experiments byte-identical to their bespoke originals.
    """
    import numpy as np

    from repro.workloads import arrival as arr

    seed = workload.arrival_seed(scenario_seed)
    if workload.shape in ("fnpacker-mix", "fnpacker-poisson"):
        from repro.workloads.mlperf import build_fnpacker_workload

        mix = build_fnpacker_workload(
            duration_s=workload.duration_s, seed=seed
        )
        if workload.shape == "fnpacker-poisson":
            poisson_only = [
                a for a in mix.arrivals if a.user_id in ("alice", "bob")
            ]
            return poisson_only, []
        return list(mix.arrivals), list(mix.sessions)
    if workload.shape == "requests":
        return [], []  # closed-loop executors drive their own count

    rng = np.random.default_rng(seed)
    warm: List[arr.Arrival] = []
    if workload.warmup_s > 0:
        warm = arr.poisson(
            workload.warmup_rate_rps, workload.warmup_s,
            workload.model_id, user_id=workload.user_id, rng=rng,
        )
    if workload.shape == "fixed":
        main = arr.fixed_rate(
            workload.rate_rps, workload.duration_s,
            workload.model_id, user_id=workload.user_id,
        )
    elif workload.shape == "poisson":
        main = arr.poisson(
            workload.rate_rps, workload.duration_s,
            workload.model_id, user_id=workload.user_id, rng=rng,
        )
    elif workload.shape == "mmpp":
        main = arr.mmpp(
            workload.rates_rps, workload.phase_s, workload.duration_s,
            workload.model_id, user_id=workload.user_id, rng=rng,
        )
    elif workload.shape == "diurnal":
        main = arr.diurnal(
            workload.rate_rps, workload.base_rps, workload.period_s,
            workload.duration_s, workload.model_id,
            user_id=workload.user_id, rng=rng,
        )
    elif workload.shape == "burst":
        main = arr.burst(
            workload.rate_rps, workload.burst_rps,
            workload.burst_start_s, workload.burst_duration_s,
            workload.duration_s, workload.model_id,
            user_id=workload.user_id, rng=rng,
        )
    else:  # unreachable: WorkloadSpec validates the shape
        raise ConfigError(f"unknown workload shape {workload.shape!r}")
    if not warm:
        return main, []
    shifted = [
        arr.Arrival(
            time=a.time + workload.warmup_s,
            model_id=a.model_id,
            user_id=a.user_id,
        )
        for a in main
    ]
    return arr.merge_arrivals(warm, shifted), []


# -- shared helpers ----------------------------------------------------------------


def _hardware_profile(name: str):
    from repro.sgx.platform import SGX1, SGX2

    return SGX1 if name == "sgx1" else SGX2


def _node_memory(fleet: FleetSpec, servable) -> int:
    """Per-node memory: explicit MB, or multiples of the action budget."""
    from repro.experiments.common import action_budget
    from repro.sgx.epc import MB

    if fleet.node_memory_mb:
        return fleet.node_memory_mb * MB
    return fleet.node_memory_actions * action_budget(servable, fleet.tcs_count)


def _stats_metrics(stats) -> Dict[str, Any]:
    """A :class:`LatencyStats` as plain JSON-safe floats."""
    return {
        "count": stats.count,
        "mean_s": stats.mean,
        "p50_s": stats.p50,
        "p95_s": stats.p95,
        "p99_s": stats.p99,
        "max_s": stats.max,
    }


def _fast_scheduler(policy: PolicySpec):
    """The hot-path fast-lane scheduler the policy knobs describe.

    ``None`` when every knob is at its zero default -- the executor then
    uses the shipped default ``SchedulerConfig()``, matching the bespoke
    benchmark exactly.
    """
    if not policy.key_cache_entries and not policy.max_batch:
        return None
    from repro.core.batching import BatchPolicy
    from repro.core.semirt import SchedulerConfig

    kwargs: Dict[str, Any] = {}
    if policy.key_cache_entries:
        kwargs["key_cache_entries"] = policy.key_cache_entries
    if policy.max_batch:
        kwargs["batch"] = BatchPolicy(
            batch_window_s=policy.batch_window_s,
            max_batch=policy.max_batch,
            alpha=policy.alpha,
        )
    return SchedulerConfig(**kwargs)


# -- executors ---------------------------------------------------------------------


def _run_sim(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Figure-13-shaped run: one model, one endpoint, a system sweep."""
    from repro.core.simbridge import servable_map
    from repro.experiments.common import (
        deploy_single_model,
        make_driver,
        make_testbed,
    )
    from repro.mlrt.zoo import profile
    from repro.workloads.metrics import (
        LatencyStats,
        latency_timeline,
        throughput_rps,
    )

    workload, fleet = spec.workload, spec.fleet
    arrivals, _sessions = build_arrivals(workload, spec.seed)
    until = workload.horizon_s or (
        workload.warmup_s + workload.duration_s + 3000.0
    )
    spans: List[Any] = []
    systems: Dict[str, Any] = {}
    summary: Dict[str, Any] = {}
    for system in fleet.sweep_systems():
        servable = servable_map(
            [(workload.model_id, profile(fleet.model_name), fleet.framework)]
        )[workload.model_id]
        bed = make_testbed(
            num_nodes=fleet.num_nodes,
            node_memory=_node_memory(fleet, servable),
            cores_per_node=fleet.cores_per_node,
            hardware=_hardware_profile(fleet.hardware),
            traced=traced,
        )
        deploy_single_model(
            bed, system, fleet.model_name, fleet.framework,
            tcs_count=fleet.tcs_count, model_id=workload.model_id,
        )
        driver = make_driver(bed)
        driver.submit_arrivals(arrivals)
        report = driver.run(until=until)
        measured = [
            r for r in report.results if r.submitted_at >= workload.warmup_s
        ]
        stats = LatencyStats.of(measured)
        systems[system] = {
            **_stats_metrics(stats),
            "completed": len(measured),
            "throughput_rps": throughput_rps(measured),
            "timeline": latency_timeline(
                measured, bucket_s=workload.timeline_bucket_s
            ),
        }
        summary[f"{system}.mean_s"] = stats.mean
        summary[f"{system}.p95_s"] = stats.p95
        if traced and bed.tracer is not None:
            spans.extend(bed.tracer.finished_spans())
    metrics = {
        "systems": systems,
        "submitted": len(arrivals),
        "summary": summary,
    }
    return ScenarioResult(spec=spec, metrics=metrics, spans=spans or None)


def _run_fnpacker(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Table-III/IV-shaped run: the mixed workload behind a router sweep."""
    from repro.core.simbridge import semirt_factory, servable_map
    from repro.experiments.common import action_budget, make_testbed
    from repro.mlrt.zoo import profile
    from repro.routing import (
        AllInOneRouter,
        FnPackerRouter,
        FnPool,
        OneToOneRouter,
    )
    from repro.serverless.action import ActionSpec
    from repro.workloads.driver import WorkloadDriver
    from repro.workloads.metrics import LatencyStats

    workload, fleet, policy = spec.workload, spec.fleet, spec.policy
    model_ids = fleet.model_ids or ("m0", "m1", "m2", "m3", "m4")
    until = workload.horizon_s or (workload.duration_s + 3000.0)
    strategies: Dict[str, Any] = {}
    summary: Dict[str, Any] = {}
    spans: List[Any] = []
    for strategy in policy.sweep_routers():
        bed = make_testbed(
            num_nodes=fleet.num_nodes,
            cores_per_node=fleet.cores_per_node,
            hardware=_hardware_profile(fleet.hardware),
            traced=traced,
        )
        prof = profile(fleet.model_name)
        pool = FnPool(name="pool", models=model_ids, memory_budget=0)
        if strategy == "FnPacker":
            router = FnPackerRouter(
                pool, idle_interval_s=policy.idle_interval_s
            )
        elif strategy == "One-to-one":
            router = OneToOneRouter(pool)
        elif strategy == "All-in-one":
            router = AllInOneRouter(pool)
        else:
            raise ConfigError(
                f"the fnpacker executor cannot run router {strategy!r}"
            )
        models = servable_map([(m, prof, fleet.framework) for m in model_ids])
        for endpoint, servable_ids in router.endpoints():
            subset = (
                {m: models[m] for m in servable_ids} if servable_ids else models
            )
            action = ActionSpec(
                name=endpoint,
                image="semirt",
                memory_budget=action_budget(next(iter(subset.values()))),
                concurrency=1,
            )
            bed.platform.deploy(action, semirt_factory(subset, bed.cost))
        arrivals, sessions = build_arrivals(workload, spec.seed)
        driver = WorkloadDriver(bed.sim, bed.controller, router)
        driver.submit_arrivals(arrivals)
        for index, session in enumerate(sessions, start=1):
            driver.submit_session(session, index=index)
        report = driver.run(until=until)
        poisson_results = [
            r for r in report.results if r.request.user_id in ("alice", "bob")
        ]
        stats = LatencyStats.of(poisson_results)
        strategies[strategy] = {
            "poisson": _stats_metrics(stats),
            "sessions": {
                f"{index}:{model_id}": result.latency
                for (index, model_id), result
                in report.session_results.items()
            },
            "cold_starts": bed.controller.cold_starts,
        }
        summary[f"{strategy}.poisson_mean_ms"] = stats.mean * 1000
        summary[f"{strategy}.cold_starts"] = bed.controller.cold_starts
        if traced and bed.tracer is not None:
            spans.extend(bed.tracer.finished_spans())
    metrics = {"strategies": strategies, "summary": summary}
    return ScenarioResult(spec=spec, metrics=metrics, spans=spans or None)


def _run_chaos(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Chaos-shaped run: one fault grid, resilient vs baseline modes."""
    from repro.experiments.chaos import _run_mode, _user_primary_shard
    from repro.faults.plan import FaultPlan

    assert spec.faults is not None  # ScenarioSpec validates this
    requests = spec.workload.requests
    points: List[dict] = []
    spans: Optional[list] = None
    summary: Dict[str, Any] = {}
    for index, point in enumerate(spec.faults.points()):
        if point.target == "primary":
            target_shard = _user_primary_shard(point.num_shards)
        else:
            target_shard = index % point.num_shards
        plan = FaultPlan.from_seed(
            spec.seed,
            requests,
            wire_rate=point.wire_rate,
            crash_rate=point.crash_rate,
            shard_outages=point.shard_outages,
            num_shards=point.num_shards,
            outage_duration=point.outage_duration,
            warmup=point.warmup,
            target_shard=target_shard,
        )
        modes: Dict[str, dict] = {}
        for mode in spec.policy.resilience_modes():
            metrics, mode_spans = _run_mode(
                spec.seed, requests, plan,
                resilient=mode == "resilient",
                warmup=point.warmup,
            )
            modes[mode] = metrics
            summary[f"p{index}.{mode}.availability"] = metrics["availability"]
            if traced and mode == "resilient":
                spans = mode_spans
        points.append(
            {
                "wire_rate": point.wire_rate,
                "crash_rate": point.crash_rate,
                "plan": plan.to_mapping(),
                "modes": modes,
            }
        )
    metrics = {
        "seed": spec.seed,
        "requests": requests,
        "points": points,
        "summary": summary,
    }
    return ScenarioResult(spec=spec, metrics=metrics, spans=spans)


def _run_warmpool(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Warm-pool-shaped run: one arrival trace, a reuse-policy sweep."""
    del traced  # the fleet simulator records no spans
    from repro.experiments.warmpool import run_policy

    workload, policy = spec.workload, spec.policy
    arrivals, _sessions = build_arrivals(workload, spec.seed)
    until = workload.horizon_s or (
        workload.warmup_s + workload.duration_s + 3600.0
    )
    policies: Dict[str, dict] = {}
    summary: Dict[str, Any] = {}
    for warm_policy in policy.warm_policies:
        row = run_policy(
            warm_policy,
            arrivals,
            keep_alive_s=policy.keep_alive_s,
            min_warm=policy.min_warm,
            max_endpoints=policy.max_endpoints,
            until=until,
        )
        policies[warm_policy] = row
        summary[f"{warm_policy}.cold_ratio"] = row["cold_ratio"]
        summary[f"{warm_policy}.p50_ms"] = row["p50_ms"]
    metrics = {
        "arrivals": len(arrivals),
        "policies": policies,
        "summary": summary,
    }
    return ScenarioResult(spec=spec, metrics=metrics, spans=None)


def _run_hotpath(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Hot-path-shaped run: live legacy-vs-fast lanes (wall clock)."""
    del traced  # wall-clock lanes; span capture would skew the timing
    from repro.experiments.hotpath import run

    result = run(
        requests=spec.workload.requests,
        model_seed=spec.seed,
        fast_scheduler=_fast_scheduler(spec.policy),
    )
    metrics = dict(result)
    metrics["summary"] = {
        "speedup": result["speedup"],
        "legacy.p50_ms": result["legacy"]["p50_ms"],
        "fast.p50_ms": result["fast"]["p50_ms"],
    }
    return ScenarioResult(spec=spec, metrics=metrics, spans=None)


def _run_streaming(spec: ScenarioSpec, traced: bool) -> ScenarioResult:
    """Streaming-shaped run: continuous batching vs per-request decode.

    Field mapping (no streaming-specific spec fields, to keep every
    existing spec's canonical bytes -- and hence run ids -- unchanged):
    ``workload.requests`` is the stream count, ``workload.horizon_s``
    the per-stream token budget (0 picks the executor default of 24),
    and ``policy.max_batch``/``batch_window_s``/``alpha`` drive the
    continuous batcher of the grouped lane.
    """
    del traced  # wall-clock lanes; span capture would skew the timing
    from repro.experiments.streaming import run

    tokens = int(spec.workload.horizon_s) or 24
    result = run(
        streams=spec.workload.requests,
        tokens=tokens,
        max_batch=spec.policy.max_batch,
        window_ms=spec.policy.batch_window_s * 1e3,
        alpha=spec.policy.alpha,
        tcs_count=spec.fleet.tcs_count,
        model_seed=spec.seed,
    )
    metrics = dict(result)
    metrics["summary"] = {
        "speedup": result["speedup"],
        "grouped.tokens_per_s": result["grouped"]["tokens_per_s"],
        "grouped.ttft_max_s": result["ttft_max_s"],
        "verified": result["verified"],
    }
    return ScenarioResult(spec=spec, metrics=metrics, spans=None)


_EXECUTORS = {
    "sim": _run_sim,
    "fnpacker": _run_fnpacker,
    "chaos": _run_chaos,
    "warmpool": _run_warmpool,
    "hotpath": _run_hotpath,
    "streaming": _run_streaming,
}
