"""The named scenario registry and the migrated experiments' specs.

Two things live here:

- **spec builders** (``fig13_latency_spec`` & co.): the declarative
  form of each bespoke benchmark harness.  The experiment modules call
  these and hand the result to :func:`~repro.scenarios.runner.run_scenario`,
  so the spec is the single source of truth for what each figure runs;
- the **named registry** (:func:`named_scenarios` / :func:`get_scenario`):
  every spec reachable as ``repro scenario run <name>``, including a few
  exploratory shapes (flash crowd, diurnal day, shard-outage storm) that
  have no bespoke harness at all -- the point of the registry is that
  new evaluations are data, not scripts.

Stdlib + :mod:`repro.scenarios.spec` only: listing scenarios must not
import numpy or either twin.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.scenarios.spec import (
    FaultSpec,
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
)

#: the Figure 13 arrival trace is pinned to this seed regardless of the
#: run seed (the bespoke harness hard-coded it)
FIG13_ARRIVAL_SEED = 11

#: the chaos fault grid (wire_rate, crash_rate, shard_outages)
CHAOS_SWEEP = (
    {"wire_rate": 0.0, "crash_rate": 0.0, "shard_outages": 1},
    {"wire_rate": 0.06, "crash_rate": 0.02, "shard_outages": 1},
    {"wire_rate": 0.15, "crash_rate": 0.04, "shard_outages": 1},
)
CHAOS_QUICK_SWEEP = (CHAOS_SWEEP[0], CHAOS_SWEEP[2])


# -- migrated benchmark specs ------------------------------------------------------


def fig13_latency_spec(
    model_name: str,
    systems=("Native", "Iso-reuse", "SeSeMI"),
    duration_s: float = 240.0,
) -> ScenarioSpec:
    """Figure 13: MMPP (20<->40 rps) on 8 nodes, one model, 3 systems."""
    return ScenarioSpec(
        name=f"fig13-{model_name.lower()}-mmpp",
        executor="sim",
        seed=2025,
        workload=WorkloadSpec(
            shape="mmpp",
            rates_rps=(20.0, 40.0),
            phase_s=60.0,
            duration_s=duration_s,
            warmup_s=60.0,
            warmup_rate_rps=20.0,
            model_id="m",
            user_id="u",
            timeline_bucket_s=20.0,
            seed=FIG13_ARRIVAL_SEED,
        ),
        fleet=FleetSpec(
            num_nodes=8,
            node_memory_actions=12,
            model_name=model_name,
            systems=tuple(systems),
        ),
        notes="Figure 13: per-system latency under the MMPP trace.",
    )


def table34_spec(
    duration_s: float = 480.0,
    seed: int = 2025,
    strategies=("All-in-one", "One-to-one", "FnPacker"),
    idle_interval_s: float = 10.0,
) -> ScenarioSpec:
    """Tables III/IV: the mixed FnPacker workload, 3 routing strategies."""
    return ScenarioSpec(
        name="table3-fnpacker-mix",
        executor="fnpacker",
        seed=seed,
        workload=WorkloadSpec(shape="fnpacker-mix", duration_s=duration_s),
        fleet=FleetSpec(
            num_nodes=8,
            model_name="RSNET",
            model_ids=("m0", "m1", "m2", "m3", "m4"),
        ),
        policy=PolicySpec(
            routers=tuple(strategies), idle_interval_s=idle_interval_s
        ),
        notes="Tables III/IV: Poisson + session mix behind a router sweep.",
    )


def chaos_spec(
    seed: int = 2025, requests: int = 40, quick: bool = False
) -> ScenarioSpec:
    """The chaos sweep: fault rate vs availability, both modes."""
    if quick:
        requests = min(requests, 24)
    return ScenarioSpec(
        name="chaos-quick" if quick else "chaos-sweep",
        executor="chaos",
        seed=seed,
        workload=WorkloadSpec(
            shape="requests", requests=requests, duration_s=1.0
        ),
        faults=FaultSpec(
            num_shards=2,
            target="primary",
            sweep=CHAOS_QUICK_SWEEP if quick else CHAOS_SWEEP,
        ),
        policy=PolicySpec(resilience="both"),
        notes="Deterministic fault grid vs the resilience layer.",
    )


def warmpool_poisson_spec(
    duration_s: float = 240.0,
    seed: int = 2025,
    keep_alive_s: float = 30.0,
    horizon_s: float = 0.0,
) -> ScenarioSpec:
    """Warm-pool sweep on the Table III Poisson mix (four policies)."""
    return ScenarioSpec(
        name="warmpool-poisson",
        executor="warmpool",
        seed=seed,
        workload=WorkloadSpec(
            shape="fnpacker-poisson", duration_s=duration_s,
            horizon_s=horizon_s,
        ),
        policy=PolicySpec(
            warm_policies=("none", "lcs", "mru", "lcs+predictive"),
            keep_alive_s=keep_alive_s,
        ),
        notes="Cold-start elimination across reuse policies (Poisson).",
    )


def warmpool_mmpp_spec(
    duration_s: float = 120.0,
    seed: int = 2025,
    keep_alive_s: float = 30.0,
    horizon_s: float = 0.0,
) -> ScenarioSpec:
    """Warm-pool sweep on the Figure 13 flash-crowd MMPP trace."""
    return ScenarioSpec(
        name="warmpool-mmpp",
        executor="warmpool",
        seed=seed,
        workload=WorkloadSpec(
            shape="mmpp",
            rates_rps=(20.0, 40.0),
            phase_s=60.0,
            duration_s=duration_s,
            warmup_s=30.0,
            warmup_rate_rps=20.0,
            model_id="m0",
            user_id="u",
            horizon_s=horizon_s,
        ),
        policy=PolicySpec(
            warm_policies=("none", "lcs", "mru", "lcs+predictive"),
            keep_alive_s=keep_alive_s,
        ),
        notes="Cold-start elimination across reuse policies (MMPP).",
    )


def hotpath_spec(requests: int = 60, model_seed: int = 7) -> ScenarioSpec:
    """The live hot-path benchmark: legacy vs fast lanes, two users."""
    return ScenarioSpec(
        name="hotpath-2user",
        executor="hotpath",
        seed=model_seed,
        workload=WorkloadSpec(
            shape="requests", requests=requests, duration_s=1.0
        ),
        notes="Wall-clock per-request overhead, legacy vs fast lanes.",
    )


def stream_chat_spec(
    streams: int = 4, tokens: int = 24, model_seed: int = 7
) -> ScenarioSpec:
    """The live streaming benchmark: continuous batching vs per-request.

    ``workload.requests`` carries the stream count and
    ``workload.horizon_s`` the per-stream token budget (the streaming
    executor's field mapping -- no new spec fields, so every existing
    spec's canonical bytes stay put).
    """
    return ScenarioSpec(
        name="stream-chat",
        executor="streaming",
        seed=model_seed,
        workload=WorkloadSpec(
            shape="requests",
            requests=streams,
            duration_s=1.0,
            horizon_s=float(tokens),
        ),
        fleet=FleetSpec(tcs_count=4),
        policy=PolicySpec(batch_window_s=0.01, max_batch=4),
        notes="Wall-clock decode throughput, grouped vs solo streams.",
    )


# -- exploratory specs (registry-only: no bespoke harness exists) ------------------


def _scenario_smoke_spec() -> ScenarioSpec:
    """The CI determinism probe: tiny, deterministic, runs in seconds."""
    return ScenarioSpec(
        name="scenario-smoke",
        executor="sim",
        seed=2025,
        workload=WorkloadSpec(
            shape="poisson", rate_rps=2.0, duration_s=30.0, model_id="m",
        ),
        fleet=FleetSpec(num_nodes=2, model_name="MBNET", system="SeSeMI"),
        notes="CI gate: same spec + seed twice -> byte-identical manifests.",
    )


def _flash_crowd_spec() -> ScenarioSpec:
    """A flash crowd against the warm pool: base load + a 10x burst."""
    return ScenarioSpec(
        name="flash-crowd",
        executor="warmpool",
        seed=2025,
        workload=WorkloadSpec(
            shape="burst",
            rate_rps=2.0,
            burst_rps=20.0,
            burst_start_s=60.0,
            burst_duration_s=30.0,
            duration_s=180.0,
            model_id="m0",
            user_id="u",
        ),
        policy=PolicySpec(
            warm_policies=("none", "lcs", "lcs+predictive"),
            keep_alive_s=30.0,
        ),
        notes="How much of a 10x flash crowd lands warm, per policy.",
    )


def _diurnal_day_spec() -> ScenarioSpec:
    """A compressed diurnal cycle (one 'day' in 10 minutes)."""
    return ScenarioSpec(
        name="diurnal-day",
        executor="warmpool",
        seed=2025,
        workload=WorkloadSpec(
            shape="diurnal",
            rate_rps=12.0,
            base_rps=1.0,
            period_s=600.0,
            duration_s=600.0,
            model_id="m0",
            user_id="u",
        ),
        policy=PolicySpec(
            warm_policies=("lcs", "lcs+predictive"), keep_alive_s=30.0
        ),
        notes="Does the predictor track a slow sinusoidal rate swing?",
    )


def _shard_outage_storm_spec() -> ScenarioSpec:
    """Chaos with repeated KeyService shard outages and no wire faults."""
    return ScenarioSpec(
        name="shard-outage-storm",
        executor="chaos",
        seed=2025,
        workload=WorkloadSpec(shape="requests", requests=24, duration_s=1.0),
        faults=FaultSpec(
            shard_outages=2,
            num_shards=2,
            outage_duration=6,
            target="primary",
        ),
        policy=PolicySpec(resilience="both"),
        notes="Availability under back-to-back shard crash/restart cycles.",
    )


#: name -> zero-argument spec builder (builders, not instances, so the
#: registry import stays instant and each lookup re-validates)
_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {
    "fig13-dsnet-mmpp": lambda: fig13_latency_spec("DSNET"),
    "fig13-rsnet-mmpp": lambda: fig13_latency_spec("RSNET"),
    "table3-fnpacker-mix": table34_spec,
    "chaos-quick": lambda: chaos_spec(quick=True),
    "chaos-sweep": chaos_spec,
    "warmpool-poisson": warmpool_poisson_spec,
    "warmpool-mmpp": warmpool_mmpp_spec,
    "hotpath-2user": hotpath_spec,
    "stream-chat": stream_chat_spec,
    "scenario-smoke": _scenario_smoke_spec,
    "flash-crowd": _flash_crowd_spec,
    "diurnal-day": _diurnal_day_spec,
    "shard-outage-storm": _shard_outage_storm_spec,
}


def scenario_names() -> List[str]:
    """Every registered scenario name, sorted."""
    return sorted(_REGISTRY)


def named_scenarios() -> Dict[str, ScenarioSpec]:
    """All registered scenarios, built fresh."""
    return {name: _REGISTRY[name]() for name in scenario_names()}


def get_scenario(name: str) -> ScenarioSpec:
    """The registered spec for ``name`` (:class:`ConfigError` if absent)."""
    builder = _REGISTRY.get(name)
    if builder is None:
        known = ", ".join(scenario_names())
        raise ConfigError(f"no scenario named {name!r} (known: {known})")
    return builder()
