"""A minimal asyncio HTTP/1.1 server (stdlib only).

Just enough HTTP for the service tier: request-line + headers parsing,
``Content-Length`` bodies, keep-alive, chunked **responses** (for the
streaming route), and bounded line/body sizes.  Deliberately **not** a
general web server -- no chunked request bodies, no TLS (the payloads
are AEAD ciphertext end to end; see ``docs/service.md``), no
pipelining guarantees beyond serial handling per connection.

The handler is one coroutine ``async def handler(request) ->
HttpResponse``; anything it raises is mapped by the caller-supplied
``error_mapper`` so exception policy stays out of the transport.  A
handler may instead return a :class:`StreamingHttpResponse` whose body
is an async iterator of chunks -- the server writes each as one
``Transfer-Encoding: chunked`` chunk as it is produced, which is what
lets sealed token frames reach the client mid-decode.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

_MAX_LINE = 8192
_MAX_HEADERS = 64

_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # lower-cased names
    body: bytes


@dataclass
class HttpResponse:
    """One response to serialise."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool) -> bytes:
        """Serialise status line, headers, and body to raw HTTP/1.1."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


class StreamingHttpResponse:
    """A chunked response: the body is produced *while* it is sent.

    ``chunks`` is an async iterator of byte chunks; each becomes one
    HTTP/1.1 chunk on the wire, flushed as soon as it is yielded.  If
    the iterator raises after the head has been written there is no way
    to change the status line, so the server terminates the chunked body
    abnormally (connection close without the final ``0`` chunk) -- the
    client's de-chunking read surfaces that as a truncated stream.
    """

    def __init__(
        self,
        chunks,
        status: int = 200,
        content_type: str = "application/octet-stream",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.chunks = chunks
        self.content_type = content_type
        self.headers = dict(headers or {})

    def encode_head(self, keep_alive: bool) -> bytes:
        """Serialise the status line and headers (chunked framing)."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class HttpError(Exception):
    """A transport-level refusal (bad request line, oversized body)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]
ErrorMapper = Callable[[BaseException], HttpResponse]


class AsyncHttpServer:
    """Serve ``handler`` over HTTP/1.1 on an asyncio event loop."""

    def __init__(
        self,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 8 * 1024 * 1024,
        error_mapper: Optional[ErrorMapper] = None,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._max_body = max_body_bytes
        self._error_mapper = error_mapper
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        """Stop accepting and tear down every live connection task."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break  # peer closed between requests
                except HttpError as exc:
                    response = HttpResponse(
                        status=exc.status,
                        body=str(exc).encode(),
                        content_type="text/plain",
                    )
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    response = await self._handler(request)
                except Exception as exc:  # the mapper owns exception policy
                    if self._error_mapper is None:
                        raise
                    response = self._error_mapper(exc)
                if isinstance(response, StreamingHttpResponse):
                    if not await self._write_chunked(writer, response, keep_alive):
                        break  # body aborted mid-stream: the connection dies
                else:
                    writer.write(response.encode(keep_alive))
                    await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write_chunked(
        self, writer, response: StreamingHttpResponse, keep_alive: bool
    ) -> bool:
        """Pump a chunked body; ``False`` means the connection must die."""
        writer.write(response.encode_head(keep_alive))
        await writer.drain()
        try:
            async for chunk in response.chunks:
                if not chunk:
                    continue  # an empty chunk would terminate the body early
                writer.write(
                    f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n"
                )
                await writer.drain()
        except Exception:
            # the status line is gone; truncating the chunked body is the
            # only honest failure signal left (client sees a short read).
            # Close the producer NOW so its cleanup (e.g. cancelling the
            # upstream stream) runs promptly instead of at GC time.
            aclose = getattr(response.chunks, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except Exception:
                    pass
            return False
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return True

    async def _read_request(self, reader) -> Optional[HttpRequest]:
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise HttpError(400, "request line too long")
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            raise HttpError(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise HttpError(400, f"unsupported version {version}")
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if len(line) > _MAX_LINE:
                raise HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise HttpError(400, "too many headers")
        length = int(headers.get("content-length", "0") or "0")
        if length > self._max_body:
            raise HttpError(413, f"body exceeds {self._max_body} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = dict(parse_qsl(split.query))
        return HttpRequest(
            method=method.upper(),
            path=split.path,
            query=query,
            headers=headers,
            body=body,
        )


__all__ = [
    "AsyncHttpServer",
    "Handler",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "StreamingHttpResponse",
]
