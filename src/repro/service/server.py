"""The inference service: HTTP endpoints over an InferenceGateway.

One :class:`InferenceService` owns the network front door for one
gateway fleet:

========================== ==============================================
``POST /v1/ks/handshake``  RA-TLS handshake proxy to KeyService
``POST /v1/ks/call``       encrypted KeyService op proxy (register,
                           ADD_REQ_KEY, ... -- opaque to the service)
``POST /v1/grants``        owner-side GRANT_ACCESS for a user id
``GET  /v1/meta``          model catalogue: measurements, tcs_count,
                           batch ``feed_window``
``POST /v1/infer``         sync inference: wait for the sealed output
``POST /v1/submit``        async inference: 202 + ``req_id``
``POST /v1/stream``        autoregressive stream: chunked body of
                           length-prefixed sealed token frames
``GET  /v1/results/{id}``  poll/long-poll a submitted request
``DELETE /v1/results/{id}`` cancel (releases the enclave context)
``GET  /v1/healthz``       liveness + inflight
``GET  /v1/stats``         admission/shed counters, gateway state
========================== ==============================================

Bodies are :mod:`repro.core.wire` frames, decoded through the
versioned :func:`~repro.core.wire.loads` dispatcher: clients may POST
canonical JSON or the binary framing, and the response codec is
negotiated per request -- binary when the request body was binary or
the ``Accept`` header names ``application/x-sesemi-wire``, JSON
otherwise (so curl and old SDKs keep JSON).  KeyService proxy routes
are normally JSON end to end.  Exceptions map to the canonical
taxonomy in :mod:`repro.errors` (``to_wire``/``from_wire``), so a
:class:`~repro.errors.QueueFull` shed here and one raised by a
saturated enclave queue look identical to the client.

**Admission before work**: rate/inflight checks run synchronously on
the event loop; a shed request costs microseconds and never touches an
executor thread, the gateway, or an enclave.  Admitted work runs in a
bounded thread pool (the gateway surface is blocking), with the
request's HTTP root span attached so route and ECALL spans parent
under it -- one server-side trace covers service -> gateway -> ECALL,
and the ``x-trace-id`` response header lets the client join its own
span to it (``docs/service.md``).
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core import wire
from repro.core.deployment import ModelHandle, SeSeMIEnvironment
from repro.core.gateway import GatewaySubmission, InferenceGateway
from repro.core.semirt import SchedulerConfig, default_semirt_config
from repro.errors import (
    InvocationError,
    ReproError,
    RequestCancelled,
    StorageError,
    to_wire,
)
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.httpd import (
    AsyncHttpServer,
    HttpRequest,
    HttpResponse,
    StreamingHttpResponse,
)

_RESULTS_PREFIX = "/v1/results/"

#: media type of the binary wire framing (version byte 0x01)
BINARY_CONTENT_TYPE = "application/x-sesemi-wire"

#: high bit of a stream record's ``u32`` length prefix: the record is a
#: terminal wire-encoded error payload, not a sealed token frame (the
#: status line was already sent when the stream began)
STREAM_ERROR_FLAG = 0x80000000

#: per-request response codec, set by content negotiation in ``_handle``:
#: binary when the client POSTed a binary frame or sent an ``Accept``
#: naming the binary media type, canonical JSON otherwise -- so JSON
#: clients (curl, old SDKs) keep JSON replies on every route.
_RESPONSE_CODEC: "contextvars.ContextVar[wire.WireCodec]" = (
    contextvars.ContextVar("sesemi_response_codec", default=wire.JSON)
)


@dataclass
class _Entry:
    """One submitted request's server-side state."""

    submission: GatewaySubmission
    tenant: str
    release: Callable[[], None]
    created: float
    span: Optional[object] = None
    state: str = "pending"  # pending | consumed | cancelled | failed
    error_status: Optional[int] = None
    error_payload: Optional[dict] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class InferenceService:
    """Serve one gateway fleet over HTTP (see module docstring)."""

    def __init__(
        self,
        env: SeSeMIEnvironment,
        gateway: InferenceGateway,
        handles: Iterable[ModelHandle],
        *,
        config: Optional[ServiceConfig] = None,
        scheduler: Optional[SchedulerConfig] = None,
    ) -> None:
        self.env = env
        self.gateway = gateway
        self.handles: Dict[str, ModelHandle] = {
            handle.model_id: handle for handle in handles
        }
        self.config = config if config is not None else ServiceConfig()
        #: the SchedulerConfig endpoints are launched with (meta report)
        self.scheduler = scheduler
        self.tracer = env.tracer
        self.admission = AdmissionController(self.config)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="svc"
        )
        self._entries: Dict[str, _Entry] = {}
        self._entries_lock = threading.Lock()
        self._req_ids = itertools.count(1)
        self._counters: Dict[str, int] = {}
        self._httpd = AsyncHttpServer(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            error_mapper=self._map_error,
        )
        self._sweeper: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return self._httpd.address

    @property
    def base_url(self) -> str:
        host, port = self._httpd.address
        return f"http://{host}:{port}"

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving on the running event loop."""
        address = await self._httpd.start()
        self._sweeper = asyncio.get_running_loop().create_task(
            self._sweep_loop()
        )
        return address

    async def stop(self) -> None:
        """Cancel the sweeper and stop the HTTP server."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        await self._httpd.stop()

    def start_background(self) -> Tuple[str, int]:
        """Run the service on a dedicated event-loop thread (tests, CLI)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            started.set()
            loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="svc-loop", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise ReproError("service failed to start within 10s")
        return self.address

    def close(self) -> None:
        """Stop the background service (gateway teardown stays the owner's)."""
        loop, thread = self._loop, self._thread
        if loop is not None:
            asyncio.run_coroutine_threadsafe(self.stop(), loop).result(
                timeout=10
            )
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10)
            loop.close()
            self._loop = None
            self._thread = None
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- routing ------------------------------------------------------------------

    async def _handle(self, request: HttpRequest) -> HttpResponse:
        _RESPONSE_CODEC.set(self._negotiate_codec(request))
        method, path = request.method, request.path
        if path == "/v1/healthz" and method == "GET":
            return self._healthz()
        if path == "/v1/stats" and method == "GET":
            return self._stats()
        if path == "/v1/meta" and method == "GET":
            return self._meta()
        if path == "/v1/ks/handshake" and method == "POST":
            return await self._ks_handshake(request)
        if path == "/v1/ks/call" and method == "POST":
            return await self._ks_call(request)
        if path == "/v1/grants" and method == "POST":
            return await self._grants(request)
        if path == "/v1/infer" and method == "POST":
            return await self._infer(request)
        if path == "/v1/submit" and method == "POST":
            return await self._submit(request)
        if path == "/v1/stream" and method == "POST":
            return await self._stream(request)
        if path.startswith(_RESULTS_PREFIX):
            req_id = path[len(_RESULTS_PREFIX):]
            if method == "GET":
                return await self._results(req_id, request.query)
            if method == "DELETE":
                return await self._cancel(req_id)
        status, payload = to_wire(
            StorageError(f"no route {method} {path}")
        )
        return self._json(status, payload)

    def _negotiate_codec(self, request: HttpRequest) -> wire.WireCodec:
        """Pick the response codec for one request (see module notes)."""
        if BINARY_CONTENT_TYPE in request.headers.get("accept", ""):
            return wire.BINARY
        if request.body[:1] == bytes([wire.BINARY.version]):
            return wire.BINARY
        return wire.JSON

    def _map_error(self, exc: BaseException) -> HttpResponse:
        """Last-resort mapper the HTTP layer calls for unhandled errors."""
        if isinstance(exc, wire.WireError):
            exc = InvocationError(f"malformed body: {exc}")
        status, payload = to_wire(exc)
        return self._json(status, payload)

    def _count(self, route: str) -> None:
        self._counters[route] = self._counters.get(route, 0) + 1

    # -- plain endpoints ----------------------------------------------------------

    def _healthz(self) -> HttpResponse:
        return self._json(200, {
            "ok": True,
            "inflight": self.admission.inflight_total,
            "endpoints": self.gateway.endpoint_count,
        })

    def _stats(self) -> HttpResponse:
        with self._entries_lock:
            pending = sum(
                1 for e in self._entries.values() if e.state == "pending"
            )
            retained = len(self._entries)
        payload = {
            "admission": self.admission.stats(),
            "gateway": {
                "in_flight": self.gateway.in_flight,
                "endpoints": self.gateway.endpoint_count,
            },
            "service": {
                "requests": dict(self._counters),
                "results_pending": pending,
                "results_retained": retained,
            },
        }
        warm = self.gateway.warm_stats()
        if warm is not None:
            payload["warm_pool"] = warm
        return self._json(200, payload)

    def _meta(self) -> HttpResponse:
        models = {}
        batch = self.scheduler.batch if self.scheduler is not None else None
        for model_id, handle in self.handles.items():
            tcs = (handle.config or default_semirt_config()).tcs_count
            models[model_id] = {
                "framework": handle.framework,
                "measurement": handle.measurement.value,
                "tcs_count": tcs,
                "feed_window": (
                    batch.feed_window(tcs) if batch is not None else tcs
                ),
            }
        return self._json(200, {
            "service": self.tracer.service,
            "models": models,
            "keyservice_measurement": self.env.keyservice.measurement.value,
        })

    # -- keyservice proxy ---------------------------------------------------------

    async def _ks_handshake(self, request: HttpRequest) -> HttpResponse:
        self._count("ks_handshake")
        msg = self._decode(request, "offer")
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            self._executor, self.env.keyservice.handshake, msg["offer"]
        )
        return self._json(200, reply)

    async def _ks_call(self, request: HttpRequest) -> HttpResponse:
        self._count("ks_call")
        msg = self._decode(request, "channel_id", "ciphertext")
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            self._executor,
            self.env.keyservice.request,
            int(msg["channel_id"]),
            msg["ciphertext"],
        )
        return self._json(200, {"reply": reply})

    async def _grants(self, request: HttpRequest) -> HttpResponse:
        """Owner-side half of a grant: GRANT_ACCESS for ``uid``.

        The user's own half (ADD_REQ_KEY) runs client-side over the KS
        proxy -- the service never sees a request key.
        """
        self._count("grants")
        msg = self._decode(request, "model_id", "uid")
        handle = self._handle_for(msg["model_id"])
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._executor,
            handle.owner.grant_access,
            handle.model_id,
            handle.measurement,
            msg["uid"],
        )
        return self._json(200, {
            "ok": True, "measurement": handle.measurement.value,
        })

    # -- inference ----------------------------------------------------------------

    async def _infer(self, request: HttpRequest) -> HttpResponse:
        self._count("infer")
        msg = self._decode(request, "model_id", "uid", "enc_request")
        model_id, uid = msg["model_id"], msg["uid"]
        self._handle_for(model_id)
        # ``timeout_s`` is the wire field (docs/service.md)
        wait = msg.get("timeout_s")
        deadline = min(
            float(wait or self.config.default_deadline_s),
            self.config.default_deadline_s,
        )
        # admission is synchronous and O(1): a shed never leaves the loop
        release = self.admission.admit(uid)
        span = self._start_span(
            "http:infer", request, model_id=model_id, tenant=uid
        )
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                self._executor,
                self._dispatch_blocking,
                span,
                msg["enc_request"],
                uid,
                model_id,
                deadline,
            )
        except ReproError as exc:
            return self._fail(span, exc)
        finally:
            release()
        self._end_span(span, endpoint=reply.decision.endpoint)
        return self._json(200, {
            "enc_response": reply.output,
            "endpoint": reply.decision.endpoint,
        }, span=span)

    def _dispatch_blocking(self, span, enc_request, uid, model_id, deadline):
        with self.tracer.attach(span) if span is not None else _noop():
            return self.gateway.dispatch(
                enc_request, uid, model_id, timeout_s=deadline
            )

    async def _submit(self, request: HttpRequest) -> HttpResponse:
        self._count("submit")
        msg = self._decode(request, "model_id", "uid", "enc_request")
        model_id, uid = msg["model_id"], msg["uid"]
        self._handle_for(model_id)
        release = self.admission.admit(uid)
        span = self._start_span(
            "http:submit", request, model_id=model_id, tenant=uid
        )
        loop = asyncio.get_running_loop()
        try:
            submission = await loop.run_in_executor(
                self._executor,
                self._submit_blocking,
                span,
                msg["enc_request"],
                uid,
                model_id,
            )
        except ReproError as exc:
            release()
            return self._fail(span, exc)
        req_id = f"r-{next(self._req_ids)}"
        with self._entries_lock:
            self._entries[req_id] = _Entry(
                submission=submission,
                tenant=uid,
                release=release,
                created=time.monotonic(),
                span=span,
            )
        self._end_span(span, endpoint=submission.endpoint, req_id=req_id)
        return self._json(202, {
            "req_id": req_id,
            "endpoint": submission.endpoint,
            "ticket": submission.ticket,
        }, span=span)

    def _submit_blocking(self, span, enc_request, uid, model_id):
        # the attach parents the admission route span -- and, because the
        # endpoint scheduler captures the ambient span at submit time,
        # the worker's ECALL spans too -- under the HTTP root span
        with self.tracer.attach(span) if span is not None else _noop():
            return self.gateway.submit(enc_request, uid, model_id)

    async def _stream(self, request: HttpRequest):
        """Open an autoregressive stream; the reply body is chunked.

        Admission failures surface as an ordinary error response; once
        the gateway stream is open the reply commits to ``200`` with a
        chunked body of records, each ``u32 length || sealed frame``.
        A failure *mid-decode* cannot change the status line any more,
        so it is sent as one final record with :data:`STREAM_ERROR_FLAG`
        set in the length prefix and the wire-encoded error payload as
        the record body -- the client SDK rebuilds the typed exception.
        The blocking gateway iterator runs on the executor and feeds the
        event loop through an ``asyncio.Queue``, so one slow stream
        never stalls the loop.
        """
        self._count("stream")
        msg = self._decode(request, "model_id", "uid", "enc_request")
        model_id, uid = msg["model_id"], msg["uid"]
        self._handle_for(model_id)
        release = self.admission.admit(uid)
        span = self._start_span(
            "http:stream", request, model_id=model_id, tenant=uid
        )
        loop = asyncio.get_running_loop()
        try:
            handle = await loop.run_in_executor(
                self._executor,
                self._open_stream_blocking,
                span,
                msg["enc_request"],
                uid,
                model_id,
            )
        except ReproError as exc:
            release()
            return self._fail(span, exc)
        queue: asyncio.Queue = asyncio.Queue()

        def pump() -> None:
            error: Optional[BaseException] = None
            try:
                for frame in handle:
                    loop.call_soon_threadsafe(queue.put_nowait, frame)
            except BaseException as exc:
                error = exc
            finally:
                release()
                self._end_span(
                    span,
                    error=error,
                    endpoint=handle.endpoint,
                    frames=handle.token_count,
                )
                # None = clean end of stream; an exception = error record
                loop.call_soon_threadsafe(queue.put_nowait, error)

        self._executor.submit(pump)

        async def records():
            try:
                while True:
                    item = await queue.get()
                    if item is None:
                        return
                    if isinstance(item, BaseException):
                        status, payload = to_wire(item)
                        body = wire.dumps(dict(payload, status=status))
                        yield struct.pack(
                            ">I", STREAM_ERROR_FLAG | len(body)
                        ) + body
                        return
                    yield struct.pack(">I", len(item)) + item
            finally:
                # a torn connection abandons the generator: stop decoding
                # so the enclave stream context is released promptly
                handle.cancel()

        headers = {"x-endpoint": handle.endpoint}
        if handle.ticket is not None:
            headers["x-ticket"] = str(handle.ticket)
        if span is not None:
            headers["x-trace-id"] = span.trace_id
        return StreamingHttpResponse(
            records(), content_type=BINARY_CONTENT_TYPE, headers=headers
        )

    def _open_stream_blocking(self, span, enc_request, uid, model_id):
        with self.tracer.attach(span) if span is not None else _noop():
            return self.gateway.open_stream(enc_request, uid, model_id)

    # -- results ------------------------------------------------------------------

    async def _results(self, req_id: str, query: Dict[str, str]) -> HttpResponse:
        self._count("results")
        entry = self._entry(req_id)
        replay = self._terminal_response(entry)
        if replay is not None:
            return replay
        if query.get("peek") in ("1", "true"):
            return self._json(200, {"done": entry.submission.done()})
        timeout_s = float(query.get("timeout_s", "0") or "0")
        if not entry.submission.done() and timeout_s > 0:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._executor,
                entry.submission.wait,
                min(timeout_s, self.config.poll_wait_cap_s),
            )
        if not entry.submission.done():
            return self._json(202, {"done": False})
        loop = asyncio.get_running_loop()
        status, payload = await loop.run_in_executor(
            self._executor, self._fetch_blocking, entry
        )
        return self._json(status, payload, span=entry.span)

    def _fetch_blocking(self, entry: _Entry) -> Tuple[int, dict]:
        with entry.lock:
            replayed = self._terminal_state(entry)
            if replayed is not None:
                return replayed
            try:
                output = entry.submission.result(timeout_s=5.0)
            except RequestCancelled as exc:
                entry.state = "cancelled"
                entry.release()
                return to_wire(exc)
            except ReproError as exc:
                entry.state = "failed"
                entry.error_status, entry.error_payload = to_wire(exc)
                entry.release()
                return entry.error_status, entry.error_payload
            entry.state = "consumed"
            entry.release()
            return 200, {"enc_response": output, "done": True}

    async def _cancel(self, req_id: str) -> HttpResponse:
        self._count("cancel")
        entry = self._entry(req_id)
        with entry.lock:
            if entry.state == "cancelled":
                return self._json(200, {"cancelled": True})
            if entry.state != "pending":
                return self._json(200, {"cancelled": False})
            ok = entry.submission.cancel()
            if ok:
                entry.state = "cancelled"
                entry.release()
        return self._json(200, {"cancelled": ok})

    def _entry(self, req_id: str) -> _Entry:
        with self._entries_lock:
            entry = self._entries.get(req_id)
        if entry is None:
            raise StorageError(f"unknown request id {req_id!r}")
        return entry

    def _terminal_state(self, entry: _Entry) -> Optional[Tuple[int, dict]]:
        """The sticky terminal reply for an entry, if it has one."""
        if entry.state == "cancelled":
            return to_wire(
                RequestCancelled("request was cancelled; result discarded")
            )
        if entry.state == "consumed":
            return 410, {
                "error": "ResultConsumed",
                "message": "result already fetched",
            }
        if entry.state == "failed":
            return entry.error_status, entry.error_payload
        return None

    def _terminal_response(self, entry: _Entry) -> Optional[HttpResponse]:
        terminal = self._terminal_state(entry)
        if terminal is None:
            return None
        status, payload = terminal
        return self._json(status, payload)

    async def _sweep_loop(self) -> None:
        """Expire terminal/abandoned results so slots cannot leak.

        The same cadence drives the gateway's warm-pool housekeeping
        (janitor retirements + predictive pre-warming) when it is
        armed; retiring can block on a drain, so it runs on the
        executor, never the event loop.
        """
        interval = max(0.5, self.config.result_ttl_s / 4)
        if self.config.keep_alive_s is not None:
            interval = min(interval, max(0.25, self.config.keep_alive_s / 4))
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            if self.gateway.warm_pool is not None:
                await loop.run_in_executor(self._executor, self.gateway.maintain)
            cutoff = time.monotonic() - self.config.result_ttl_s
            with self._entries_lock:
                expired = [
                    (req_id, entry)
                    for req_id, entry in self._entries.items()
                    if entry.created < cutoff
                ]
                for req_id, _ in expired:
                    del self._entries[req_id]
            for _, entry in expired:
                with entry.lock:
                    if entry.state == "pending":
                        entry.submission.cancel()
                        entry.state = "cancelled"
                    entry.release()

    # -- helpers ------------------------------------------------------------------

    def _handle_for(self, model_id: str) -> ModelHandle:
        handle = self.handles.get(model_id)
        if handle is None:
            raise StorageError(f"model {model_id!r} is not served here")
        return handle

    def _decode(self, request: HttpRequest, *required: str) -> dict:
        try:
            msg = wire.loads(request.body)
        except wire.WireError as exc:
            raise InvocationError(f"malformed body: {exc}") from exc
        for key in required:
            if key not in msg:
                raise InvocationError(f"missing field {key!r}")
        return msg

    def _start_span(self, name: str, request: HttpRequest, **attrs):
        if self.tracer is None:
            return None
        client_span = request.headers.get("x-client-span")
        if client_span:
            attrs["client_span"] = client_span
        return self.tracer.start_span(name, parent=None, **attrs)

    def _end_span(self, span, *, error: Optional[BaseException] = None,
                  **attrs) -> None:
        if span is None:
            return
        if attrs:
            span.set_attributes(**attrs)
        span.end(status="error" if error is not None else "ok")

    def _fail(self, span, exc: ReproError) -> HttpResponse:
        self._end_span(span, error=exc)
        status, payload = to_wire(exc)
        return self._json(status, payload, span=span)

    def _json(self, status: int, payload: dict, span=None) -> HttpResponse:
        codec = _RESPONSE_CODEC.get()
        response = HttpResponse(
            status=status,
            body=wire.dumps(payload, codec=codec),
            content_type=(
                BINARY_CONTENT_TYPE
                if codec is wire.BINARY
                else "application/json"
            ),
        )
        if span is not None:
            # lets the client join its span to the server-side trace
            response.headers["x-trace-id"] = span.trace_id
        return response


class _noop:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def serve(service: InferenceService) -> None:
    """Run ``service`` in the foreground until interrupted (CLI)."""

    async def _run() -> None:
        host, port = await service.start()
        print(f"serving on http://{host}:{port}  (Ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass


__all__ = ["InferenceService", "serve"]
