"""The HTTP service tier: SeSeMI's network front door.

The paper's serverless premise is that untrusted clients reach enclave
inference through a network boundary.  This package puts an asyncio
HTTP/1.1 service (stdlib only) in front of
:class:`~repro.core.gateway.InferenceGateway`:

- :class:`ServiceConfig` -- admission, rate-limit, and deadline knobs;
- :class:`InferenceService` / :func:`serve` -- the server: sync
  ``POST /v1/infer``, async ``POST /v1/submit`` + polled
  ``GET /v1/results/{req_id}``, KeyService proxying, grants, health,
  and stats, with admission control and fast load shedding;
- :class:`RemoteEnvironment` / :class:`RemoteSession` -- the client,
  speaking the same session surface as
  :class:`~repro.core.deployment.UserSession` so examples and load
  drivers run unchanged against either transport.

Requests stay encrypted end to end: the client performs RA-TLS and key
release against KeyService *through* the service (``/v1/ks/*``), and
only AEAD ciphertext crosses ``/v1/infer``.  See ``docs/service.md``.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.client import (
    RemoteEnvironment,
    RemoteFuture,
    RemoteModelHandle,
    RemoteSession,
    ServiceClient,
)
from repro.service.config import ServiceConfig
from repro.service.server import InferenceService, serve

__all__ = [
    "AdmissionController",
    "InferenceService",
    "RemoteEnvironment",
    "RemoteFuture",
    "RemoteModelHandle",
    "RemoteSession",
    "ServiceClient",
    "ServiceConfig",
    "TokenBucket",
    "serve",
]
