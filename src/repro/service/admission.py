"""Admission control: bounded inflight plus per-tenant token buckets.

The service boundary -- not the enclave queue -- is where sustained
saturation must turn into *fast* rejections (S3ML and Privado both put
shedding at the RPC tier).  Inside the fleet, ``QueueFull`` reroutes;
here it becomes a 429 decided on the event loop in microseconds,
before any executor thread, gateway walk, or enclave work is spent.

:class:`AdmissionController` is thread-safe: admission happens on the
asyncio loop, releases arrive from executor threads and the TTL
sweeper.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import QueueFull
from repro.service.config import ServiceConfig


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s up to ``burst``.

    Starts full.  :meth:`try_take` is O(1) and never sleeps -- a miss
    is a shed, not a wait (the service converts it to 429 so the
    *client* paces itself).
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; ``False`` sheds the request."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens < n:
            return False
        self._tokens -= n
        return True

    @property
    def tokens(self) -> float:
        """Tokens available right now (refreshes the bucket)."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        return self._tokens


class AdmissionController:
    """Decide, in O(1), whether one tenant request may enter the tier.

    Enforces (in order): the per-tenant token bucket, the per-tenant
    inflight bound, and the total inflight bound.  All three shed with
    :class:`~repro.errors.QueueFull` -> 429 on the wire -- the same
    backpressure type the enclave admission queue raises, so a client
    treats "service shed" and "fleet saturated" identically.

    :meth:`admit` returns a **release callable**; the caller must
    invoke it exactly once when the request leaves the tier (response
    sent, result fetched, cancelled, or TTL-expired).  Release is
    idempotent per handle.
    """

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight_total = 0
        self._inflight: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        # shed/admit counters for /v1/stats and the benchmark gates
        self.admitted = 0
        self.shed_rate = 0
        self.shed_tenant = 0
        self.shed_total = 0
        self.released = 0

    def admit(self, tenant: str) -> Callable[[], None]:
        """Admit one request for ``tenant`` or raise :class:`QueueFull`."""
        with self._lock:
            if self.config.rate_rps is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(
                        self.config.rate_rps, self.config.rate_burst,
                        clock=self._clock,
                    )
                    self._buckets[tenant] = bucket
                if not bucket.try_take():
                    self.shed_rate += 1
                    raise QueueFull(
                        f"tenant {tenant!r} exceeded "
                        f"{self.config.rate_rps:g} req/s"
                    )
            tenant_inflight = self._inflight.get(tenant, 0)
            if tenant_inflight >= self.config.max_inflight_per_tenant:
                self.shed_tenant += 1
                raise QueueFull(
                    f"tenant {tenant!r} has "
                    f"{tenant_inflight} requests in flight"
                )
            if self._inflight_total >= self.config.max_inflight_total:
                self.shed_total += 1
                raise QueueFull(
                    f"service at max inflight "
                    f"({self.config.max_inflight_total})"
                )
            self._inflight[tenant] = tenant_inflight + 1
            self._inflight_total += 1
            self.admitted += 1
        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._lock:
                self._inflight_total -= 1
                left = self._inflight.get(tenant, 1) - 1
                if left <= 0:
                    self._inflight.pop(tenant, None)
                else:
                    self._inflight[tenant] = left
                self.released += 1

        return release

    @property
    def inflight_total(self) -> int:
        with self._lock:
            return self._inflight_total

    def stats(self) -> dict:
        """A snapshot for ``/v1/stats``."""
        with self._lock:
            return {
                "inflight_total": self._inflight_total,
                "inflight_by_tenant": dict(self._inflight),
                "admitted": self.admitted,
                "released": self.released,
                "shed_rate": self.shed_rate,
                "shed_tenant": self.shed_tenant,
                "shed_total": self.shed_total,
                "shed": self.shed_rate + self.shed_tenant + self.shed_total,
            }


__all__ = ["AdmissionController", "TokenBucket"]
