"""Service-tier configuration.

One :class:`ServiceConfig` owns every knob of the HTTP front door:
where it listens, how much work it admits, and when it sheds.  Like
:class:`~repro.core.semirt.SchedulerConfig` these are **operator
policy, not enclave identity** -- nothing here enters a measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.server.InferenceService`.

    Admission semantics (``docs/service.md``):

    ``max_inflight_total`` / ``max_inflight_per_tenant``
        Bounded concurrent admitted requests, overall and per user id.
        A request beyond either bound is shed with a fast 429 -- the
        decision runs on the event loop, before any enclave work.
    ``rate_rps`` / ``rate_burst``
        Optional per-tenant token bucket: sustained requests per second
        plus a burst allowance.  ``None`` disables rate limiting.
    ``default_deadline_s``
        Server-side cap on how long a sync ``/v1/infer`` may wait for
        the gateway; exceeded -> 504 (``DeadlineExceeded``).
    ``poll_wait_cap_s``
        Cap on one long-poll of ``GET /v1/results/{id}`` so a client
        cannot pin an executor thread indefinitely.
    ``result_ttl_s``
        How long a terminal (unfetched) result is retained before the
        sweeper drops it and releases its admission slot.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (tests, benchmarks)
    max_inflight_total: int = 64
    max_inflight_per_tenant: int = 16
    rate_rps: Optional[float] = None
    rate_burst: int = 8
    default_deadline_s: float = 30.0
    poll_wait_cap_s: float = 10.0
    result_ttl_s: float = 120.0
    max_body_bytes: int = 8 * 1024 * 1024
    executor_workers: Optional[int] = None  # default: inflight bound + spare

    def __post_init__(self) -> None:
        if self.max_inflight_total < 1:
            raise ConfigError("max_inflight_total must be >= 1")
        if self.max_inflight_per_tenant < 1:
            raise ConfigError("max_inflight_per_tenant must be >= 1")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ConfigError("rate_rps must be positive (or None)")
        if self.rate_burst < 1:
            raise ConfigError("rate_burst must be >= 1")
        if self.default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        if self.poll_wait_cap_s <= 0:
            raise ConfigError("poll_wait_cap_s must be positive")
        if self.result_ttl_s <= 0:
            raise ConfigError("result_ttl_s must be positive")
        if self.max_body_bytes < 1024:
            raise ConfigError("max_body_bytes must be >= 1024")

    @property
    def workers(self) -> int:
        """Executor threads: every admitted request can block at once."""
        if self.executor_workers is not None:
            return max(1, self.executor_workers)
        return self.max_inflight_total + 4


__all__ = ["ServiceConfig"]
