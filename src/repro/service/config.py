"""Service-tier configuration.

One :class:`ServiceConfig` owns every knob of the HTTP front door:
where it listens, how much work it admits, and when it sheds.  Like
:class:`~repro.core.semirt.SchedulerConfig` these are **operator
policy, not enclave identity** -- nothing here enters a measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.warmpool import STRATEGIES, PredictorPolicy, WarmPoolConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.server.InferenceService`.

    Admission semantics (``docs/service.md``):

    ``max_inflight_total`` / ``max_inflight_per_tenant``
        Bounded concurrent admitted requests, overall and per user id.
        A request beyond either bound is shed with a fast 429 -- the
        decision runs on the event loop, before any enclave work.
    ``rate_rps`` / ``rate_burst``
        Optional per-tenant token bucket: sustained requests per second
        plus a burst allowance.  ``None`` disables rate limiting.
    ``default_deadline_s``
        Server-side cap on how long a sync ``/v1/infer`` may wait for
        the gateway; exceeded -> 504 (``DeadlineExceeded``).
    ``poll_wait_cap_s``
        Cap on one long-poll of ``GET /v1/results/{id}`` so a client
        cannot pin an executor thread indefinitely.
    ``result_ttl_s``
        How long a terminal (unfetched) result is retained before the
        sweeper drops it and releases its admission slot.

    Warm-pool knobs (``docs/warmpool.md``) -- forwarded into the
    gateway's :class:`~repro.warmpool.WarmPoolConfig` by
    :func:`~repro.experiments.service.build_world`; the service
    sweeper then drives :meth:`~repro.core.gateway.InferenceGateway.maintain`:

    ``keep_alive_s`` / ``min_warm``
        Janitor policy: idle endpoints past ``keep_alive_s`` are
        retired down to the ``min_warm`` floor.  ``keep_alive_s=None``
        disables warm-pool management entirely (the pre-warm-pool
        behaviour: the fleet only ever grows).
    ``warm_strategy``
        Warm-endpoint reuse policy (``lcs`` / ``mru`` / ``affinity``).
    ``prewarm``
        Arm the predictive pre-warmer (EWMA arrival rates -> launch
        ahead of demand).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (tests, benchmarks)
    max_inflight_total: int = 64
    max_inflight_per_tenant: int = 16
    rate_rps: Optional[float] = None
    rate_burst: int = 8
    default_deadline_s: float = 30.0
    poll_wait_cap_s: float = 10.0
    result_ttl_s: float = 120.0
    max_body_bytes: int = 8 * 1024 * 1024
    executor_workers: Optional[int] = None  # default: inflight bound + spare
    keep_alive_s: Optional[float] = None  # None: warm pool off
    min_warm: int = 1
    warm_strategy: str = "lcs"
    prewarm: bool = False

    def __post_init__(self) -> None:
        if self.max_inflight_total < 1:
            raise ConfigError("max_inflight_total must be >= 1")
        if self.max_inflight_per_tenant < 1:
            raise ConfigError("max_inflight_per_tenant must be >= 1")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ConfigError("rate_rps must be positive (or None)")
        if self.rate_burst < 1:
            raise ConfigError("rate_burst must be >= 1")
        if self.default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        if self.poll_wait_cap_s <= 0:
            raise ConfigError("poll_wait_cap_s must be positive")
        if self.result_ttl_s <= 0:
            raise ConfigError("result_ttl_s must be positive")
        if self.max_body_bytes < 1024:
            raise ConfigError("max_body_bytes must be >= 1024")
        if self.keep_alive_s is not None and self.keep_alive_s < 0:
            raise ConfigError("keep_alive_s must be >= 0 (or None)")
        if self.min_warm < 0:
            raise ConfigError("min_warm must be >= 0")
        if self.warm_strategy not in STRATEGIES:
            raise ConfigError(
                f"warm_strategy must be one of {', '.join(STRATEGIES)}"
            )

    @property
    def workers(self) -> int:
        """Executor threads: every admitted request can block at once."""
        if self.executor_workers is not None:
            return max(1, self.executor_workers)
        return self.max_inflight_total + 4

    def warm_pool(
        self, slots_per_endpoint: int = 1, max_endpoints: int = 8
    ) -> Optional[WarmPoolConfig]:
        """The gateway-level warm-pool config these knobs describe.

        ``None`` when ``keep_alive_s`` is unset (warm pool off).
        """
        if self.keep_alive_s is None:
            return None
        return WarmPoolConfig(
            strategy=self.warm_strategy,
            keep_alive_s=self.keep_alive_s,
            min_warm=self.min_warm,
            max_endpoints=max_endpoints,
            predictive=self.prewarm,
            predictor=PredictorPolicy(slots_per_endpoint=slots_per_endpoint),
        )


__all__ = ["ServiceConfig"]
