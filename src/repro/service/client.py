"""The HTTP client: the session API consolidated over the service tier.

:class:`RemoteEnvironment` / :class:`RemoteSession` speak the same
surface as :class:`~repro.core.deployment.SeSeMIEnvironment` /
:class:`~repro.core.deployment.UserSession` (``connect_user``,
``grant``, ``infer``, ``infer_many``, ``submit``), so examples and
load drivers run unchanged against either transport.

Security is unchanged too: the real :class:`~repro.core.client.UserClient`
runs locally.  It performs RA-TLS **through** the service
(:class:`RemoteKeyService` proxies ``/v1/ks/*``), verifies the
KeyService quote against the attestation service it was handed (the
out-of-band IAS trust root), releases request keys over that encrypted
channel, and AEAD-seals every input itself -- the service tier only
ever sees ciphertext, exactly like the serverless platform in the
paper's threat model.

Errors arrive as the canonical wire mapping
(:func:`repro.errors.from_wire`): a 429 shed re-raises as
:class:`~repro.errors.QueueFull` whether the service's admission
controller or a saturated enclave queue produced it.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence, Union
from urllib.parse import urlencode, urlsplit

import numpy as np

from repro.core import wire
from repro.core.client import UserClient
from repro.errors import (
    DeadlineExceeded,
    QueueFull,
    SeSeMIError,
    TransportError,
    from_wire,
)
from repro.obs.tracer import Tracer, maybe_span
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import EnclaveMeasurement


#: media type of the binary wire framing (must match the server)
BINARY_CONTENT_TYPE = "application/x-sesemi-wire"


class ServiceClient:
    """A blocking HTTP/1.1 client for the service wire protocol.

    Stdlib :mod:`http.client` with one keep-alive connection per
    thread; bodies are :mod:`repro.core.wire` frames.  ``codec``
    selects the request framing per call: the inference hot path sends
    binary frames (and asks for binary replies via ``Accept``), while
    control-plane routes stay on JSON for debuggability.  Replies
    decode through the versioned :func:`~repro.core.wire.loads`
    dispatcher either way.  Network-level
    failures raise :class:`~repro.errors.TransportError`; HTTP error
    statuses re-raise the server's exception via
    :func:`~repro.errors.from_wire`.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or split.hostname is None:
            raise SeSeMIError(f"unsupported service url {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout_s = timeout_s
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        codec: wire.WireCodec = wire.JSON,
    ):
        """One round trip: ``(status, payload_dict, response_headers)``."""
        body = wire.dumps(payload, codec=codec) if payload is not None else b""
        target = path + ("?" + urlencode(query) if query else "")
        if codec is wire.BINARY:
            send_headers = {
                "Content-Type": BINARY_CONTENT_TYPE,
                "Accept": BINARY_CONTENT_TYPE,
            }
        else:
            send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):  # retry once over a stale keep-alive conn
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self._drop_connection()
                if attempt == 1:
                    raise TransportError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
        try:
            reply = wire.loads(raw) if raw else {}
        except wire.WireError:
            reply = {"error": "", "message": raw.decode("latin-1", "replace")}
        return response.status, reply, dict(response.getheaders())

    def call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        codec: wire.WireCodec = wire.JSON,
    ) -> dict:
        """Like :meth:`request` but raises the server's error on >= 400."""
        status, reply, _ = self.request(
            method, path, payload, query, headers, codec=codec
        )
        if status >= 400:
            raise from_wire(reply, status)
        return reply

    def close(self) -> None:
        """Close this thread's keep-alive connection."""
        self._drop_connection()


class RemoteKeyService:
    """KeyService as seen through the service proxy.

    Exposes exactly the two-method host surface
    (:meth:`handshake` / :meth:`request`) that
    :class:`~repro.core.client.KeyServiceConnection` needs, so the
    client's RA-TLS handshake and encrypted operations run unchanged --
    the proxy forwards opaque blobs and can neither read nor forge them.
    """

    def __init__(self, client: ServiceClient) -> None:
        self._client = client

    def handshake(self, offer_wire: dict) -> dict:
        """Forward an RA-TLS offer; returns the enclave's reply."""
        return self._client.call(
            "POST", "/v1/ks/handshake", {"offer": offer_wire}
        )

    def request(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Forward one encrypted KeyService op on an open channel."""
        reply = self._client.call(
            "POST", "/v1/ks/call",
            {"channel_id": channel_id, "ciphertext": ciphertext},
        )
        return reply["reply"]


class RemoteEnvironment:
    """A client-side view of one running service (the remote twin of
    :class:`~repro.core.deployment.SeSeMIEnvironment`).

    ``attestation`` is the verification service the client trusts
    out-of-band (the paper's IAS); KeyService's expected measurement is
    read from ``/v1/meta`` here for convenience -- a production client
    would pin it from the enclave build it audited.
    """

    def __init__(
        self,
        base_url: str,
        attestation: AttestationService,
        *,
        tracer: Optional[Tracer] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.client = ServiceClient(base_url, timeout_s=timeout_s)
        self.attestation = attestation
        self.tracer = tracer
        self.keyservice = RemoteKeyService(self.client)
        self.meta = self.client.call("GET", "/v1/meta")
        self._users: Dict[str, UserClient] = {}

    def connect_user(self, name: str = "user") -> UserClient:
        """Create a user, attest KeyService through the proxy, register."""
        user = UserClient(name, tracer=self.tracer)
        user.connect(
            self.keyservice,
            self.attestation,
            EnclaveMeasurement(self.meta["keyservice_measurement"]),
        )
        user.register()
        self._users[name] = user
        return user

    def user(self, user: Union[UserClient, str, None] = None) -> UserClient:
        """Resolve a name to a connected user, connecting on first use."""
        if isinstance(user, UserClient):
            return user
        name = user or "user"
        client = self._users.get(name)
        return client if client is not None else self.connect_user(name)

    def model(self, model_id: str) -> "RemoteModelHandle":
        """A handle for a model the service advertises in ``/v1/meta``."""
        info = self.meta["models"].get(model_id)
        if info is None:
            raise SeSeMIError(f"service does not serve model {model_id!r}")
        return RemoteModelHandle(self, model_id, info)

    def session(
        self, user: Union[UserClient, str], model_id: str
    ) -> "RemoteSession":
        """A serving session for ``user`` against ``model_id``."""
        return self.model(model_id).session(user)

    def healthz(self) -> dict:
        """The service's liveness snapshot (``GET /v1/healthz``)."""
        return self.client.call("GET", "/v1/healthz")

    def stats(self) -> dict:
        """Admission/gateway counters (``GET /v1/stats``)."""
        return self.client.call("GET", "/v1/stats")

    def close(self) -> None:
        """Release the underlying HTTP connections."""
        self.client.close()


class RemoteModelHandle:
    """The remote twin of :class:`~repro.core.deployment.ModelHandle`."""

    def __init__(
        self, env: RemoteEnvironment, model_id: str, info: dict
    ) -> None:
        self._env = env
        self.model_id = model_id
        self.framework = info["framework"]
        self.measurement = EnclaveMeasurement(info["measurement"])
        self.tcs_count = int(info["tcs_count"])
        self.feed_window = int(info["feed_window"])

    def grant(self, user: Union[UserClient, str]) -> "RemoteModelHandle":
        """Grant ``user`` access: owner half server-side, key release here.

        ``POST /v1/grants`` performs the owner's GRANT_ACCESS; the
        user's ADD_REQ_KEY runs locally over the KeyService proxy so
        the request key never exists outside client and KeyService.
        """
        client = self._env.user(user)
        if client.principal_id is None:
            raise SeSeMIError("user must be registered first")
        reply = self._env.client.call(
            "POST", "/v1/grants",
            {"model_id": self.model_id, "uid": client.principal_id},
        )
        if reply["measurement"] != self.measurement.value:
            raise SeSeMIError("service changed the target enclave identity")
        client.add_request_key(self.model_id, self.measurement)
        return self

    def session(self, user: Union[UserClient, str]) -> "RemoteSession":
        """A serving session for ``user`` against this model."""
        return RemoteSession(self._env, self._env.user(user), self)


class RemoteSession:
    """One user's serving session over HTTP -- the same surface as
    :class:`~repro.core.deployment.UserSession`.

    ``infer`` is the sync endpoint (server waits under a deadline);
    ``submit`` returns a :class:`RemoteFuture` polled over
    ``/v1/results/{id}``; ``infer_many`` pipelines submits with the
    ``feed_window`` the service derived from its live
    :class:`~repro.core.batching.BatchPolicy` -- the satellite-6 fix
    made that window policy-derived on both transports.
    """

    def __init__(
        self,
        env: RemoteEnvironment,
        user: UserClient,
        handle: RemoteModelHandle,
    ) -> None:
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self._env = env
        self.user = user
        self.handle = handle
        self.model_id = handle.model_id
        self.measurement = handle.measurement

    @property
    def _client(self) -> ServiceClient:
        return self._env.client

    def infer(
        self,
        x: np.ndarray,
        timeout_s: Optional[float] = None,
        *,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Encrypt ``x``, POST it, decrypt the reply (one client span).

        ``timeout_s`` is the repo-wide wait keyword (seconds; the
        server clamps it to its configured maximum -- docs/service.md);
        ``deadline_s`` is the deprecated spelling.
        """
        if deadline_s is not None:
            warnings.warn(
                "RemoteSession.infer(deadline_s=...) is deprecated; "
                "use timeout_s=",
                DeprecationWarning,
                stacklevel=2,
            )
            if timeout_s is None:
                timeout_s = deadline_s
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            "request",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            transport="http",
        ) as root:
            enc_request = self.user.encrypt_request(
                self.model_id, self.measurement, x
            )
            payload = {
                "model_id": self.model_id,
                "uid": self.user.principal_id,
                "enc_request": enc_request,
            }
            if timeout_s is not None:
                payload["timeout_s"] = float(timeout_s)
            status, reply, headers = self._client.request(
                "POST", "/v1/infer", payload,
                headers=self._span_headers(root),
                codec=wire.BINARY,
            )
            self._join_trace(root, headers)
            if status >= 400:
                raise from_wire(reply, status)
            return self.user.decrypt_response(
                self.model_id, self.measurement, reply["enc_response"]
            )

    def submit(self, x: np.ndarray) -> "RemoteFuture":
        """Admit ``x`` asynchronously; sheds raise ``QueueFull`` here."""
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            "submit",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            transport="http",
        ) as root:
            enc_request = self.user.encrypt_request(
                self.model_id, self.measurement, x
            )
            status, reply, headers = self._client.request(
                "POST", "/v1/submit",
                {
                    "model_id": self.model_id,
                    "uid": self.user.principal_id,
                    "enc_request": enc_request,
                },
                headers=self._span_headers(root),
                codec=wire.BINARY,
            )
            self._join_trace(root, headers)
            if status >= 400:
                raise from_wire(reply, status)
            return RemoteFuture(self, reply["req_id"])

    def infer_many(
        self, xs: Sequence[np.ndarray], window: Optional[int] = None
    ) -> List[np.ndarray]:
        """Pipelined batch serving over HTTP, outputs in input order.

        The default window is the service's advertised ``feed_window``
        (two full batches when the accumulator is armed), so the remote
        session feeds the batch window exactly like the in-process one.
        ``QueueFull`` (service shed *or* fleet saturation) drains the
        oldest in-flight future and retries -- the batch absorbs its
        own backpressure.
        """
        if window is None:
            window = self.handle.feed_window
        window = max(1, window)
        results: List[Optional[np.ndarray]] = [None] * len(xs)
        in_flight: deque = deque()  # (input index, RemoteFuture)

        def collect_oldest() -> None:
            idx, future = in_flight.popleft()
            results[idx] = future.result()

        for idx, x in enumerate(xs):
            while len(in_flight) >= window:
                collect_oldest()
            while True:
                try:
                    future = self.submit(x)
                    break
                except QueueFull:
                    if not in_flight:
                        raise
                    collect_oldest()
            in_flight.append((idx, future))
        while in_flight:
            collect_oldest()
        return results

    def _span_headers(self, span) -> Optional[Dict[str, str]]:
        if span is None:
            return None
        return {"x-client-span": span.span_id}

    def _join_trace(self, span, headers: Dict[str, str]) -> None:
        """Record the server-side trace id so the two trees join."""
        if span is None:
            return
        trace_id = headers.get("x-trace-id") or headers.get("X-Trace-Id")
        if trace_id:
            span.set_attributes(server_trace_id=trace_id)

    def close(self) -> None:
        """Sessions hold no server-side state; nothing to tear down."""

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteFuture:
    """A submitted request's client handle, polled over HTTP.

    Mirrors :class:`~repro.core.deployment.SessionFuture`:
    ``result()`` long-polls ``GET /v1/results/{id}`` and decrypts,
    ``cancel()`` DELETEs (releasing the enclave execution context
    server-side), and after a cancel every poll re-raises the sticky
    409 :class:`~repro.errors.RequestCancelled`.
    """

    _POLL_CHUNK_S = 5.0

    def __init__(self, session: RemoteSession, req_id: str) -> None:
        self._session = session
        self.req_id = req_id

    @property
    def _path(self) -> str:
        return f"/v1/results/{self.req_id}"

    def done(self) -> bool:
        """Poll without consuming; terminal errors also count as done."""
        status, reply, _ = self._session._client.request(
            "GET", self._path, query={"peek": "1"}
        )
        if status >= 400:
            return True  # sealed: cancelled, failed, or consumed
        return bool(reply.get("done"))

    def cancel(self) -> bool:
        """DELETE the request; ``True`` when the server cancelled it."""
        reply = self._session._client.call("DELETE", self._path)
        return bool(reply.get("cancelled"))

    def cancelled(self) -> bool:
        """True when the request reached the sticky cancelled state."""
        status, reply, _ = self._session._client.request(
            "GET", self._path, query={"peek": "1"}
        )
        return status == 409

    def result(self, timeout_s: Optional[float] = None) -> np.ndarray:
        """Long-poll for the output, decrypt, return the plaintext array.

        ``timeout_s`` follows the repo-wide wait rule (seconds,
        ``None`` = wait forever, DeadlineExceeded on expiry).
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        session = self._session
        while True:
            chunk = self._POLL_CHUNK_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"request {self.req_id} not served within {timeout_s}s"
                    )
                chunk = min(chunk, remaining)
            status, reply, _ = session._client.request(
                "GET", self._path, query={"timeout_s": f"{chunk:.3f}"},
                codec=wire.BINARY,
            )
            if status == 202:
                continue  # still in flight; poll again
            if status >= 400:
                raise from_wire(reply, status)
            return session.user.decrypt_response(
                session.model_id, session.measurement, reply["enc_response"]
            )


__all__ = [
    "RemoteEnvironment",
    "RemoteFuture",
    "RemoteModelHandle",
    "RemoteSession",
    "ServiceClient",
    "RemoteKeyService",
]
