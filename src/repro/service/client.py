"""The HTTP client: the session API consolidated over the service tier.

:class:`RemoteEnvironment` / :class:`RemoteSession` speak the same
surface as :class:`~repro.core.deployment.SeSeMIEnvironment` /
:class:`~repro.core.deployment.UserSession` (``connect_user``,
``grant``, ``infer``, ``infer_many``, ``submit``), so examples and
load drivers run unchanged against either transport.

Security is unchanged too: the real :class:`~repro.core.client.UserClient`
runs locally.  It performs RA-TLS **through** the service
(:class:`RemoteKeyService` proxies ``/v1/ks/*``), verifies the
KeyService quote against the attestation service it was handed (the
out-of-band IAS trust root), releases request keys over that encrypted
channel, and AEAD-seals every input itself -- the service tier only
ever sees ciphertext, exactly like the serverless platform in the
paper's threat model.

Errors arrive as the canonical wire mapping
(:func:`repro.errors.from_wire`): a 429 shed re-raises as
:class:`~repro.errors.QueueFull` whether the service's admission
controller or a saturated enclave queue produced it.
"""

from __future__ import annotations

import http.client
import socket
import struct
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Union
from urllib.parse import urlencode, urlsplit

import numpy as np

from repro.core import wire
from repro.core.client import UserClient
from repro.errors import (
    DeadlineExceeded,
    InvocationError,
    QueueFull,
    SeSeMIError,
    TransportError,
    from_wire,
)
from repro.obs.tracer import Tracer, maybe_span
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import EnclaveMeasurement


#: media type of the binary wire framing (must match the server)
BINARY_CONTENT_TYPE = "application/x-sesemi-wire"

#: high bit of a stream record's length prefix: terminal error record
#: instead of a sealed frame (must match ``repro.service.server``)
STREAM_ERROR_FLAG = 0x80000000


class ServiceClient:
    """A blocking HTTP/1.1 client for the service wire protocol.

    Stdlib :mod:`http.client` with one keep-alive connection per
    thread; bodies are :mod:`repro.core.wire` frames.  ``codec``
    selects the request framing per call: the inference hot path sends
    binary frames (and asks for binary replies via ``Accept``), while
    control-plane routes stay on JSON for debuggability.  Replies
    decode through the versioned :func:`~repro.core.wire.loads`
    dispatcher either way.  Network-level
    failures raise :class:`~repro.errors.TransportError`; HTTP error
    statuses re-raise the server's exception via
    :func:`~repro.errors.from_wire`.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or split.hostname is None:
            raise SeSeMIError(f"unsupported service url {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout_s = timeout_s
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        codec: wire.WireCodec = wire.JSON,
    ):
        """One round trip: ``(status, payload_dict, response_headers)``."""
        body = wire.dumps(payload, codec=codec) if payload is not None else b""
        target = path + ("?" + urlencode(query) if query else "")
        if codec is wire.BINARY:
            send_headers = {
                "Content-Type": BINARY_CONTENT_TYPE,
                "Accept": BINARY_CONTENT_TYPE,
            }
        else:
            send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):  # retry once over a stale keep-alive conn
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self._drop_connection()
                if attempt == 1:
                    raise TransportError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
        try:
            reply = wire.loads(raw) if raw else {}
        except wire.WireError:
            reply = {"error": "", "message": raw.decode("latin-1", "replace")}
        return response.status, reply, dict(response.getheaders())

    def call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        codec: wire.WireCodec = wire.JSON,
    ) -> dict:
        """Like :meth:`request` but raises the server's error on >= 400."""
        status, reply, _ = self.request(
            method, path, payload, query, headers, codec=codec
        )
        if status >= 400:
            raise from_wire(reply, status)
        return reply

    def open_stream(
        self,
        path: str,
        payload: dict,
        headers: Optional[Dict[str, str]] = None,
    ):
        """POST and return the live response for incremental reads.

        Streaming responses get a **dedicated** connection (not the
        per-thread keep-alive one): the body is read as the server
        decodes, so the connection cannot be reused until the stream
        drains -- and an abandoned stream must close its socket to tell
        the server to stop decoding.  Returns ``(connection, response,
        response_headers)``; the caller owns closing the connection.
        An HTTP error status raises the server's exception immediately.
        """
        body = wire.dumps(payload, codec=wire.BINARY)
        send_headers = {
            "Content-Type": BINARY_CONTENT_TYPE,
            "Accept": BINARY_CONTENT_TYPE,
        }
        if headers:
            send_headers.update(headers)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("POST", path, body=body, headers=send_headers)
            response = conn.getresponse()
        except (http.client.HTTPException, ConnectionError,
                socket.timeout, OSError) as exc:
            conn.close()
            raise TransportError(f"POST {path} failed: {exc}") from exc
        if response.status >= 400:
            raw = response.read()
            conn.close()
            try:
                reply = wire.loads(raw) if raw else {}
            except wire.WireError:
                reply = {"error": "", "message": raw.decode("latin-1", "replace")}
            raise from_wire(reply, response.status)
        return conn, response, dict(response.getheaders())

    def close(self) -> None:
        """Close this thread's keep-alive connection."""
        self._drop_connection()


class RemoteKeyService:
    """KeyService as seen through the service proxy.

    Exposes exactly the two-method host surface
    (:meth:`handshake` / :meth:`request`) that
    :class:`~repro.core.client.KeyServiceConnection` needs, so the
    client's RA-TLS handshake and encrypted operations run unchanged --
    the proxy forwards opaque blobs and can neither read nor forge them.
    """

    def __init__(self, client: ServiceClient) -> None:
        self._client = client

    def handshake(self, offer_wire: dict) -> dict:
        """Forward an RA-TLS offer; returns the enclave's reply."""
        return self._client.call(
            "POST", "/v1/ks/handshake", {"offer": offer_wire}
        )

    def request(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Forward one encrypted KeyService op on an open channel."""
        reply = self._client.call(
            "POST", "/v1/ks/call",
            {"channel_id": channel_id, "ciphertext": ciphertext},
        )
        return reply["reply"]


class RemoteEnvironment:
    """A client-side view of one running service (the remote twin of
    :class:`~repro.core.deployment.SeSeMIEnvironment`).

    ``attestation`` is the verification service the client trusts
    out-of-band (the paper's IAS); KeyService's expected measurement is
    read from ``/v1/meta`` here for convenience -- a production client
    would pin it from the enclave build it audited.
    """

    def __init__(
        self,
        base_url: str,
        attestation: AttestationService,
        *,
        tracer: Optional[Tracer] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.client = ServiceClient(base_url, timeout_s=timeout_s)
        self.attestation = attestation
        self.tracer = tracer
        self.keyservice = RemoteKeyService(self.client)
        self.meta = self.client.call("GET", "/v1/meta")
        self._users: Dict[str, UserClient] = {}

    def connect_user(self, name: str = "user") -> UserClient:
        """Create a user, attest KeyService through the proxy, register."""
        user = UserClient(name, tracer=self.tracer)
        user.connect(
            self.keyservice,
            self.attestation,
            EnclaveMeasurement(self.meta["keyservice_measurement"]),
        )
        user.register()
        self._users[name] = user
        return user

    def user(self, user: Union[UserClient, str, None] = None) -> UserClient:
        """Resolve a name to a connected user, connecting on first use."""
        if isinstance(user, UserClient):
            return user
        name = user or "user"
        client = self._users.get(name)
        return client if client is not None else self.connect_user(name)

    def model(self, model_id: str) -> "RemoteModelHandle":
        """A handle for a model the service advertises in ``/v1/meta``."""
        info = self.meta["models"].get(model_id)
        if info is None:
            raise SeSeMIError(f"service does not serve model {model_id!r}")
        return RemoteModelHandle(self, model_id, info)

    def session(
        self, user: Union[UserClient, str], model_id: str
    ) -> "RemoteSession":
        """A serving session for ``user`` against ``model_id``."""
        return self.model(model_id).session(user)

    def healthz(self) -> dict:
        """The service's liveness snapshot (``GET /v1/healthz``)."""
        return self.client.call("GET", "/v1/healthz")

    def stats(self) -> dict:
        """Admission/gateway counters (``GET /v1/stats``)."""
        return self.client.call("GET", "/v1/stats")

    def close(self) -> None:
        """Release the underlying HTTP connections."""
        self.client.close()


class RemoteModelHandle:
    """The remote twin of :class:`~repro.core.deployment.ModelHandle`."""

    def __init__(
        self, env: RemoteEnvironment, model_id: str, info: dict
    ) -> None:
        self._env = env
        self.model_id = model_id
        self.framework = info["framework"]
        self.measurement = EnclaveMeasurement(info["measurement"])
        self.tcs_count = int(info["tcs_count"])
        self.feed_window = int(info["feed_window"])

    def grant(self, user: Union[UserClient, str]) -> "RemoteModelHandle":
        """Grant ``user`` access: owner half server-side, key release here.

        ``POST /v1/grants`` performs the owner's GRANT_ACCESS; the
        user's ADD_REQ_KEY runs locally over the KeyService proxy so
        the request key never exists outside client and KeyService.
        """
        client = self._env.user(user)
        if client.principal_id is None:
            raise SeSeMIError("user must be registered first")
        reply = self._env.client.call(
            "POST", "/v1/grants",
            {"model_id": self.model_id, "uid": client.principal_id},
        )
        if reply["measurement"] != self.measurement.value:
            raise SeSeMIError("service changed the target enclave identity")
        client.add_request_key(self.model_id, self.measurement)
        return self

    def session(self, user: Union[UserClient, str]) -> "RemoteSession":
        """A serving session for ``user`` against this model."""
        return RemoteSession(self._env, self._env.user(user), self)


class RemoteSession:
    """One user's serving session over HTTP -- the same surface as
    :class:`~repro.core.deployment.UserSession`.

    ``infer`` is the sync endpoint (server waits under a deadline);
    ``submit`` returns a :class:`RemoteFuture` polled over
    ``/v1/results/{id}``; ``infer_many`` pipelines submits with the
    ``feed_window`` the service derived from its live
    :class:`~repro.core.batching.BatchPolicy` -- the satellite-6 fix
    made that window policy-derived on both transports.
    """

    def __init__(
        self,
        env: RemoteEnvironment,
        user: UserClient,
        handle: RemoteModelHandle,
    ) -> None:
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self._env = env
        self.user = user
        self.handle = handle
        self.model_id = handle.model_id
        self.measurement = handle.measurement

    @property
    def _client(self) -> ServiceClient:
        return self._env.client

    def infer(
        self,
        x: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Encrypt ``x``, POST it, decrypt the reply (one client span).

        ``timeout_s`` is the repo-wide wait keyword (seconds; the
        server clamps it to its configured maximum -- docs/service.md).
        """
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            "request",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            transport="http",
        ) as root:
            enc_request = self.user.encrypt_request(
                self.model_id, self.measurement, x
            )
            payload = {
                "model_id": self.model_id,
                "uid": self.user.principal_id,
                "enc_request": enc_request,
            }
            if timeout_s is not None:
                payload["timeout_s"] = float(timeout_s)
            status, reply, headers = self._client.request(
                "POST", "/v1/infer", payload,
                headers=self._span_headers(root),
                codec=wire.BINARY,
            )
            self._join_trace(root, headers)
            if status >= 400:
                raise from_wire(reply, status)
            return self.user.decrypt_response(
                self.model_id, self.measurement, reply["enc_response"]
            )

    def submit(self, x: np.ndarray) -> "RemoteFuture":
        """Admit ``x`` asynchronously; sheds raise ``QueueFull`` here."""
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            "submit",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            transport="http",
        ) as root:
            enc_request = self.user.encrypt_request(
                self.model_id, self.measurement, x
            )
            status, reply, headers = self._client.request(
                "POST", "/v1/submit",
                {
                    "model_id": self.model_id,
                    "uid": self.user.principal_id,
                    "enc_request": enc_request,
                },
                headers=self._span_headers(root),
                codec=wire.BINARY,
            )
            self._join_trace(root, headers)
            if status >= 400:
                raise from_wire(reply, status)
            return RemoteFuture(self, reply["req_id"])

    def stream(
        self, prompt: Sequence[int], max_new_tokens: int
    ) -> "RemoteStream":
        """Open an autoregressive stream; iterate decrypted token ids.

        The remote twin of :meth:`UserSession.stream
        <repro.core.deployment.UserSession.stream>`: the prompt is
        sealed locally with the stream AAD, POSTed to ``/v1/stream``,
        and token frames arrive as chunked records which the returned
        :class:`RemoteStream` authenticates, index-checks, and decrypts
        one by one -- the service tier relays ciphertext only.
        """
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            "stream",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            transport="http",
        ) as root:
            enc_request = self.user.encrypt_stream_request(
                self.model_id, self.measurement, prompt, max_new_tokens
            )
            conn, response, headers = self._client.open_stream(
                "/v1/stream",
                {
                    "model_id": self.model_id,
                    "uid": self.user.principal_id,
                    "enc_request": enc_request,
                },
                headers=self._span_headers(root),
            )
            self._join_trace(root, headers)
            return RemoteStream(self, conn, response)

    def infer_many(
        self, xs: Sequence[np.ndarray], window: Optional[int] = None
    ) -> List[np.ndarray]:
        """Pipelined batch serving over HTTP, outputs in input order.

        The default window is the service's advertised ``feed_window``
        (two full batches when the accumulator is armed), so the remote
        session feeds the batch window exactly like the in-process one.
        ``QueueFull`` (service shed *or* fleet saturation) drains the
        oldest in-flight future and retries -- the batch absorbs its
        own backpressure.
        """
        if window is None:
            window = self.handle.feed_window
        window = max(1, window)
        results: List[Optional[np.ndarray]] = [None] * len(xs)
        in_flight: deque = deque()  # (input index, RemoteFuture)

        def collect_oldest() -> None:
            idx, future = in_flight.popleft()
            results[idx] = future.result()

        for idx, x in enumerate(xs):
            while len(in_flight) >= window:
                collect_oldest()
            while True:
                try:
                    future = self.submit(x)
                    break
                except QueueFull:
                    if not in_flight:
                        raise
                    collect_oldest()
            in_flight.append((idx, future))
        while in_flight:
            collect_oldest()
        return results

    def _span_headers(self, span) -> Optional[Dict[str, str]]:
        if span is None:
            return None
        return {"x-client-span": span.span_id}

    def _join_trace(self, span, headers: Dict[str, str]) -> None:
        """Record the server-side trace id so the two trees join."""
        if span is None:
            return
        trace_id = headers.get("x-trace-id") or headers.get("X-Trace-Id")
        if trace_id:
            span.set_attributes(server_trace_id=trace_id)

    def close(self) -> None:
        """Sessions hold no server-side state; nothing to tear down."""

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteFuture:
    """A submitted request's client handle, polled over HTTP.

    Mirrors :class:`~repro.core.deployment.SessionFuture`:
    ``result()`` long-polls ``GET /v1/results/{id}`` and decrypts,
    ``cancel()`` DELETEs (releasing the enclave execution context
    server-side), and after a cancel every poll re-raises the sticky
    409 :class:`~repro.errors.RequestCancelled`.
    """

    _POLL_CHUNK_S = 5.0

    def __init__(self, session: RemoteSession, req_id: str) -> None:
        self._session = session
        self.req_id = req_id

    @property
    def _path(self) -> str:
        return f"/v1/results/{self.req_id}"

    def done(self) -> bool:
        """Poll without consuming; terminal errors also count as done."""
        status, reply, _ = self._session._client.request(
            "GET", self._path, query={"peek": "1"}
        )
        if status >= 400:
            return True  # sealed: cancelled, failed, or consumed
        return bool(reply.get("done"))

    def cancel(self) -> bool:
        """DELETE the request; ``True`` when the server cancelled it."""
        reply = self._session._client.call("DELETE", self._path)
        return bool(reply.get("cancelled"))

    def cancelled(self) -> bool:
        """True when the request reached the sticky cancelled state."""
        status, reply, _ = self._session._client.request(
            "GET", self._path, query={"peek": "1"}
        )
        return status == 409

    def result(self, timeout_s: Optional[float] = None) -> np.ndarray:
        """Long-poll for the output, decrypt, return the plaintext array.

        ``timeout_s`` follows the repo-wide wait rule (seconds,
        ``None`` = wait forever, DeadlineExceeded on expiry).
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        session = self._session
        while True:
            chunk = self._POLL_CHUNK_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"request {self.req_id} not served within {timeout_s}s"
                    )
                chunk = min(chunk, remaining)
            status, reply, _ = session._client.request(
                "GET", self._path, query={"timeout_s": f"{chunk:.3f}"},
                codec=wire.BINARY,
            )
            if status == 202:
                continue  # still in flight; poll again
            if status >= 400:
                raise from_wire(reply, status)
            return session.user.decrypt_response(
                session.model_id, session.measurement, reply["enc_response"]
            )


class RemoteStream:
    """A live autoregressive stream consumed over HTTP.

    The remote twin of :class:`~repro.core.deployment.SessionStream`:
    iterating yields decrypted token ids as the chunked records arrive;
    each sealed frame is AEAD-authenticated and index-checked locally,
    so a relay that drops, reorders, or replays frames surfaces as
    :class:`~repro.errors.InvocationError`, never as a silently wrong
    sequence.  Satisfies the :class:`~repro.core.futures.Future`
    protocol -- ``result()`` drains the stream and returns the full
    token list.

    One transport caveat: the stream *is* the connection.  A
    ``result(timeout_s=...)`` expiry or a :meth:`cancel` closes the
    socket -- the server notices and stops decoding (releasing the
    enclave stream context), but unlike the in-process handles the
    stream cannot be resumed afterwards.
    """

    def __init__(self, session: RemoteSession, conn, response) -> None:
        self._session = session
        self._conn = conn
        self._response = response
        self._opened_at = time.monotonic()
        self._tokens: List[int] = []
        self._index = 0
        self._finished = False
        self._cancelled = False
        self._error: Optional[BaseException] = None
        self._first_at: Optional[float] = None
        self._last_at: Optional[float] = None

    # -- the Future protocol -------------------------------------------------------

    def done(self) -> bool:
        """True once the stream has drained, failed, or been cancelled."""
        return self._finished or self._error is not None

    def cancelled(self) -> bool:
        """True when :meth:`cancel` tore the stream down."""
        return self._cancelled

    def cancel(self) -> bool:
        """Abandon the stream; ``False`` once it is already terminal.

        Closing the socket is the cancellation signal: the server's
        write fails at the next frame and it cancels the gateway
        stream, releasing the enclave KV/stream context.
        """
        if self.done():
            return False
        self._cancelled = True
        self._finished = True
        self._close()
        return True

    def result(self, timeout_s: Optional[float] = None) -> List[int]:
        """Drain the stream and return the full decrypted token list.

        ``timeout_s`` follows the repo-wide wait rule -- but on this
        transport an expiry closes the connection (see class docs), so
        a timed-out remote stream is dead, not resumable.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        for _ in self._iter_from(len(self._tokens), deadline):
            pass
        if self._error is not None:
            raise self._error
        return list(self._tokens)

    # -- streaming consumption -----------------------------------------------------

    def __iter__(self):
        """Yield decrypted token ids in decode order as frames arrive."""
        return self._iter_from(0, None)

    @property
    def token_count(self) -> int:
        return len(self._tokens)

    @property
    def ttft_s(self) -> Optional[float]:
        """Seconds from the POST to the first decrypted token."""
        if self._first_at is None:
            return None
        return self._first_at - self._opened_at

    @property
    def tokens_per_s(self) -> Optional[float]:
        """Decode throughput over the tokens received so far."""
        if self._first_at is None or self._last_at is None:
            return None
        elapsed = self._last_at - self._opened_at
        if elapsed <= 0:
            return None
        return len(self._tokens) / elapsed

    # -- internals -----------------------------------------------------------------

    def _iter_from(self, start: int, deadline: Optional[float]):
        index = start
        while True:
            while index < len(self._tokens):
                token = self._tokens[index]
                index += 1
                yield token
            if self.done():
                if index >= len(self._tokens) and self._error is not None:
                    raise self._error
                if index >= len(self._tokens):
                    return
                continue
            self._read_record(deadline)

    def _read_record(self, deadline: Optional[float]) -> None:
        """Read one chunked record off the socket and absorb it."""
        try:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        "remote stream not drained within the timeout"
                    )
                sock = getattr(self._conn, "sock", None)
                if sock is not None:
                    sock.settimeout(remaining)
            prefix = self._read_exact(4, eof_ok=True)
            if prefix is None:
                self._finished = True
                self._close()
                return
            (length,) = struct.unpack(">I", prefix)
            if length & STREAM_ERROR_FLAG:
                body = self._read_exact(length & ~STREAM_ERROR_FLAG)
                payload = wire.loads(body)
                raise from_wire(payload, payload.get("status"))
            frame = self._read_exact(length)
            session = self._session
            payload = session.user.decrypt_frame(
                session.model_id, session.measurement, frame
            )
            if payload["index"] != self._index:
                raise InvocationError(
                    f"stream frame out of order: expected index "
                    f"{self._index}, got {payload['index']} (dropped, "
                    f"reordered or replayed frame)"
                )
            now = time.monotonic()
            if self._first_at is None:
                self._first_at = now
            self._last_at = now
            self._tokens.append(payload["token"])
            self._index += 1
            if payload["done"]:
                self._drain_terminator()
                self._finished = True
                self._close()
        except (socket.timeout, TimeoutError) as exc:
            self._error = DeadlineExceeded(
                "remote stream not drained within the timeout"
            )
            self._close()
            raise self._error from exc
        except BaseException as exc:
            # a deadline expiry is terminal too: the socket is closed
            # below, so the stream can never resume (the class docstring's
            # transport caveat) -- sealing the outcome keeps done() honest
            if self._error is None:
                self._error = exc
            self._close()
            raise

    def _drain_terminator(self) -> None:
        """Consume the end-of-body after the final frame (keeps HTTP honest)."""
        try:
            self._response.read()
        except Exception:
            pass

    def _read_exact(self, n: int, eof_ok: bool = False) -> Optional[bytes]:
        chunks: List[bytes] = []
        needed = n
        while needed:
            chunk = self._response.read(needed)
            if not chunk:
                if eof_ok and needed == n:
                    return None
                raise TransportError("stream truncated mid-record")
            chunks.append(chunk)
            needed -= len(chunk)
        return b"".join(chunks)

    def _close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass


__all__ = [
    "RemoteEnvironment",
    "RemoteFuture",
    "RemoteModelHandle",
    "RemoteSession",
    "RemoteStream",
    "ServiceClient",
    "RemoteKeyService",
]
