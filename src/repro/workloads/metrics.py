"""Metrics: latency statistics, timelines, and the GB-second cost integral."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.serverless.action import InvocationResult

GB = 1024 ** 3


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of invocation results."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, results: Iterable[InvocationResult]) -> "LatencyStats":
        latencies = np.array([r.latency for r in results], dtype=float)
        if latencies.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(
            count=int(latencies.size),
            mean=float(latencies.mean()),
            p50=float(np.percentile(latencies, 50)),
            p95=float(np.percentile(latencies, 95)),
            p99=float(np.percentile(latencies, 99)),
            max=float(latencies.max()),
        )


def throughput_rps(results: Sequence[InvocationResult]) -> float:
    """Completed requests per second over the span of the results."""
    if not results:
        return 0.0
    start = min(r.submitted_at for r in results)
    end = max(r.finished_at for r in results)
    span = end - start
    if span <= 0:
        return float(len(results))
    return len(results) / span


def kind_counts(results: Iterable[InvocationResult]) -> Dict[str, int]:
    """How many invocations took each path (cold/warm/hot)."""
    counts: Dict[str, int] = {}
    for r in results:
        counts[r.kind] = counts.get(r.kind, 0) + 1
    return counts


def latency_timeline(
    results: Sequence[InvocationResult], bucket_s: float = 10.0
) -> List[Tuple[float, float]]:
    """``(bucket_start, mean_latency)`` series for Figure-13-style plots."""
    if not results:
        return []
    buckets: Dict[int, List[float]] = {}
    for r in results:
        buckets.setdefault(int(r.submitted_at // bucket_s), []).append(r.latency)
    return [
        (index * bucket_s, float(np.mean(values)))
        for index, values in sorted(buckets.items())
    ]


def gb_seconds(
    memory_timeline: Sequence[Tuple[float, int]], until: float
) -> float:
    """Integrate reserved memory over time (the paper's cost metric).

    ``memory_timeline`` is the controller's ``(time, reserved_bytes)``
    step function; the integral runs from time zero to ``until``.
    """
    if until <= 0:
        return 0.0
    total = 0.0
    for (t0, level), (t1, _) in zip(memory_timeline, memory_timeline[1:]):
        if t0 >= until:
            break
        span = min(t1, until) - t0
        if span > 0:
            total += level * span
    if memory_timeline:
        last_t, last_level = memory_timeline[-1]
        if last_t < until:
            total += last_level * (until - last_t)
    return total / GB


def stage_fractions(results: Sequence[InvocationResult]) -> Dict[str, float]:
    """Mean share of each serving stage in total stage time (Figure 8)."""
    sums: Dict[str, float] = {}
    for r in results:
        for stage, seconds in r.stage_seconds.items():
            sums[stage] = sums.get(stage, 0.0) + seconds
    total = sum(sums.values())
    if total <= 0:
        return {}
    return {stage: seconds / total for stage, seconds in sums.items()}
