"""Request drivers: replay workloads against a platform through a router.

The driver is the simulation counterpart of the paper's request-issuing
node.  It feeds arrival streams (open loop) and interactive sessions
(closed loop, next query after the previous response) through a
:class:`~repro.routing.Router` into the serverless controller, and
collects :class:`~repro.serverless.action.InvocationResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.routing import Router
from repro.serverless.action import Request
from repro.serverless.controller import Controller
from repro.sim.core import Simulation
from repro.workloads.arrival import Arrival, Session


@dataclass
class DriverReport:
    """Everything a driver run produced."""

    results: List = field(default_factory=list)
    #: results of session queries, keyed by (session_index, model_id)
    session_results: Dict = field(default_factory=dict)


class WorkloadDriver:
    """Issues requests and observes completions."""

    def __init__(
        self,
        sim: Simulation,
        controller: Controller,
        router: Router,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.router = router
        self.report = DriverReport()
        #: tracer for request root spans (falls back to the controller's)
        self.tracer = tracer if tracer is not None else controller.tracer

    def _start_request(self, model_id: str, user_id: str, endpoint: str) -> Request:
        """Build a request, opening its root span when tracing is on.

        The driver owns the root span (rather than the controller) so the
        trace also covers routing: the chosen endpoint is recorded as an
        attribute before the request enters the platform.
        """
        request = Request(model_id=model_id, user_id=user_id)
        if self.tracer is not None:
            request.span = self.tracer.start_span(
                "request",
                request_id=request.request_id,
                model_id=model_id,
                user_id=user_id,
                endpoint=endpoint,
            )
        return request

    # -- open-loop arrivals -------------------------------------------------------

    def submit_arrivals(self, arrivals: Sequence[Arrival]) -> None:
        """Schedule an open-loop stream (requests fire at their timestamps)."""
        self.sim.process(self._arrival_loop(list(arrivals)), name="driver:arrivals")

    def _arrival_loop(self, arrivals: List[Arrival]):
        arrivals.sort(key=lambda a: a.time)
        for arrival in arrivals:
            delay = arrival.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._fire(arrival.model_id, arrival.user_id)

    def _fire(self, model_id: str, user_id: str, sink: Optional[dict] = None,
              sink_key=None):
        endpoint = self.router.route(model_id, self.sim.now)
        request = self._start_request(model_id, user_id, endpoint)
        done = self.controller.invoke(endpoint, request)
        self.router.on_dispatch(endpoint, model_id, self.sim.now)
        self.sim.process(
            self._collect(done, endpoint, model_id, sink, sink_key),
            name=f"collect:{request.request_id}",
        )
        return done

    def _collect(self, done, endpoint: str, model_id: str, sink, sink_key):
        result = yield done
        self.router.on_complete(endpoint, model_id, self.sim.now)
        self.report.results.append(result)
        if sink is not None:
            sink[sink_key] = result

    # -- closed-loop sessions ----------------------------------------------------------

    def submit_session(self, session: Session, index: int = 0) -> None:
        """Schedule an interactive session (sequential queries)."""
        self.sim.process(
            self._session_loop(session, index), name=f"driver:session{index}"
        )

    def _session_loop(self, session: Session, index: int):
        if session.start_time > self.sim.now:
            yield self.sim.timeout(session.start_time - self.sim.now)
        for model_id in session.models:
            endpoint = self.router.route(model_id, self.sim.now)
            request = self._start_request(model_id, session.user_id, endpoint)
            done = self.controller.invoke(endpoint, request)
            self.router.on_dispatch(endpoint, model_id, self.sim.now)
            result = yield done
            self.router.on_complete(endpoint, model_id, self.sim.now)
            self.report.results.append(result)
            self.report.session_results[(index, model_id)] = result

    # -- running --------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> DriverReport:
        """Run the simulation and return the collected report."""
        self.sim.run(until=until)
        return self.report
